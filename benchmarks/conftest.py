"""Shared fixtures for the benchmark suite.

Measurement (real instrumented runs) happens once per session through
the ``repro.bench.workloads`` cache; the per-figure benchmarks then
time the *replay* stage and print the regenerated table so a
``pytest benchmarks/ --benchmark-only -s`` run shows every paper
artifact alongside its timing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

#: keep the measured workloads small so the suite stays minutes-scale
MEASURE_KWARGS = dict(ranks=2, steps=4, interval=2, num_pebbles=3, order=3,
                      image_size=192)
RBC_MEASURE_KWARGS = dict(total_ranks=3, steps=4, stream_interval=2, ratio=2,
                          order=3, elements_per_rank=4)

_RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    _RESULTS_DIR.mkdir(exist_ok=True)
    return _RESULTS_DIR


@pytest.fixture(scope="session")
def pb146_measured():
    from repro.bench.workloads import pb146_profiles

    return pb146_profiles(**MEASURE_KWARGS)


@pytest.fixture(scope="session")
def rbc_measured():
    from repro.bench.workloads import rbc_profiles

    return rbc_profiles(**RBC_MEASURE_KWARGS)


def emit(results_dir: Path, name: str, table) -> None:
    """Print a regenerated table and persist it under results/."""
    text = table.render()
    print("\n" + text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
