"""Ablation benchmarks: in situ frequency, SST queue policy, node ratio.

These are the design-choice sweeps DESIGN.md calls out beyond the
paper's own figures.  They run the *real* stack (small scale).
"""

import pytest
from conftest import MEASURE_KWARGS, emit

from repro.bench import ablations


def test_insitu_frequency_sweep(benchmark, pb146_measured, results_dir):
    table = benchmark.pedantic(
        lambda: ablations.insitu_frequency(measure_kwargs=MEASURE_KWARGS),
        rounds=3, iterations=1,
    )
    emit(results_dir, "ablation_frequency", table)

    rows = table.as_dicts()
    overheads = [row["overhead vs original [%]"] for row in rows]
    # rendering 10x more often costs more
    assert overheads[0] > overheads[-1]
    images = [row["images"] for row in rows]
    assert images == sorted(images, reverse=True)


def test_sst_queue_policies(benchmark, results_dir):
    table = benchmark.pedantic(
        lambda: ablations.sst_queue(queue_limits=(1, 2), total_ranks=3, steps=4),
        rounds=1, iterations=1,
    )
    emit(results_dir, "ablation_sst_queue", table)

    rows = table.as_dicts()
    # Block policy never drops; Discard may
    for row in rows:
        if row["policy"] == "Block":
            assert row["steps dropped"] == 0, row
        assert row["steps received"] > 0


def test_data_reduction_spectrum(benchmark, results_dir):
    table = benchmark.pedantic(
        lambda: ablations.data_reduction(error_bounds=(1e-2, 1e-5), steps=4),
        rounds=1, iterations=1,
    )
    emit(results_dir, "ablation_data_reduction", table)

    rows = table.as_dicts()
    raw = rows[0]["bytes/dump"]
    # compressed dumps sit strictly between raw checkpoints and images
    for row in rows[1:-1]:
        assert row["bytes/dump"] < raw, row
    # looser bounds compress harder
    compressed = [r["bytes/dump"] for r in rows[1:-1]]
    assert compressed == sorted(compressed)


def test_strong_scaling_limit(benchmark, pb146_measured, results_dir):
    table = benchmark.pedantic(
        lambda: ablations.strong_scaling_limit(measure_kwargs=MEASURE_KWARGS),
        rounds=3, iterations=1,
    )
    emit(results_dir, "ablation_strong_scaling", table)

    rows = table.as_dicts()
    # compute share falls, collective share rises: a crossover exists
    compute = [r["compute share [%]"] for r in rows]
    coll = [r["collective share [%]"] for r in rows]
    assert compute == sorted(compute, reverse=True)
    assert coll == sorted(coll)
    assert compute[0] > coll[0] and compute[-1] < coll[-1]
    # efficiency decays monotonically with rank count
    eff = [r["parallel efficiency [%]"] for r in rows]
    assert eff == sorted(eff, reverse=True)


def test_partition_strategy(benchmark, results_dir):
    table = benchmark.pedantic(
        lambda: ablations.partition_strategy(rank_counts=(2, 4, 8)),
        rounds=1, iterations=1,
    )
    emit(results_dir, "ablation_partition", table)

    rows = table.as_dicts()
    # Morton bricks never exchange more than slabs at higher rank counts
    assert rows[-1]["morton/slab"] <= 1.0
    # and strictly win somewhere in the sweep
    assert any(row["morton/slab"] < 0.95 for row in rows)


def test_endpoint_ratio_sweep(benchmark, results_dir):
    table = benchmark.pedantic(
        lambda: ablations.endpoint_ratio(ratios=(2, 4), steps=4),
        rounds=1, iterations=1,
    )
    emit(results_dir, "ablation_ratio", table)

    rows = table.as_dicts()
    assert [row["ratio"] for row in rows] == ["2:1", "4:1"]
    for row in rows:
        assert row["sim ms/step"] > 0
        assert row["endpoint ms/step"] > 0
