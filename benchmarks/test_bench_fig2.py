"""Regenerate Figure 2: pb146 time-to-solution at 280/560/1120 ranks.

Paper shape asserted: Original < Checkpointing <= Catalyst, with the
Catalyst-vs-Checkpointing gap "slight" (single-digit-to-low-tens of
percent), at every rank count.
"""

from conftest import MEASURE_KWARGS, emit

from repro.bench import fig2


def test_fig2_time_to_solution(benchmark, pb146_measured, results_dir):
    table = benchmark.pedantic(
        lambda: fig2.run(measure_kwargs=MEASURE_KWARGS),
        rounds=3, iterations=1,
    )
    emit(results_dir, "fig2_time_to_solution", table)

    for row in table.as_dicts():
        original = row["original [s]"]
        ckpt = row["checkpointing [s]"]
        catalyst = row["catalyst [s]"]
        assert original < ckpt, f"checkpointing must cost more: {row}"
        assert original < catalyst, f"catalyst must cost more: {row}"
        # in situ overhead "almost mirrors" checkpointing (paper wording):
        # catalyst within ~25% of checkpointing
        assert catalyst < 1.25 * ckpt, f"catalyst overhead too large: {row}"
        assert row["catalyst overhead [%]"] < 40.0


def test_fig2_strong_scaling_direction(pb146_measured, results_dir):
    """More ranks -> less wall time for the fixed-size pb146 problem."""
    table = fig2.run(measure_kwargs=MEASURE_KWARGS)
    originals = [row["original [s]"] for row in table.as_dicts()]
    assert originals == sorted(originals, reverse=True)
