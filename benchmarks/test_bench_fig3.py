"""Regenerate Figure 3: pb146 aggregate memory high-water mark.

Paper shape asserted: Catalyst's memory sits ~25% above Checkpointing
(we accept 10-40%), constant across rank counts, and aggregate memory
grows with rank count.
"""

from conftest import MEASURE_KWARGS, emit

from repro.bench import fig3


def test_fig3_memory(benchmark, pb146_measured, results_dir):
    table = benchmark.pedantic(
        lambda: fig3.run(measure_kwargs=MEASURE_KWARGS),
        rounds=3, iterations=1,
    )
    emit(results_dir, "fig3_memory", table)

    rows = table.as_dicts()
    for row in rows:
        ratio = row["catalyst/checkpointing"]
        assert 1.10 < ratio < 1.40, f"memory gap off paper shape: {row}"
    # aggregate memory grows with ranks
    ckpt = [row["checkpointing [GiB]"] for row in rows]
    assert ckpt == sorted(ckpt)
    assert ckpt[-1] > 2 * ckpt[0]
