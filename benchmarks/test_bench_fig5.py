"""Regenerate Figure 5: in transit RBC mean time per timestep (weak scaling).

Paper shapes asserted: (a) times are ~flat as rank count grows 64x
(weak scaling works), (b) Catalyst and Checkpointing are similar,
(c) both carry only a modest overhead over No Transport.
"""

from conftest import RBC_MEASURE_KWARGS, emit

from repro.bench import fig5


def test_fig5_intransit_time_per_step(benchmark, rbc_measured, results_dir):
    table = benchmark.pedantic(
        lambda: fig5.run(measure_kwargs=RBC_MEASURE_KWARGS),
        rounds=3, iterations=1,
    )
    emit(results_dir, "fig5_intransit_time", table)

    rows = table.as_dicts()
    for col in ("no transport [ms/step]", "checkpointing [ms/step]",
                "catalyst [ms/step]"):
        series = [row[col] for row in rows]
        # flat weak scaling: 64x the ranks costs < 10% more per step
        assert max(series) < 1.10 * min(series), (col, series)
    for row in rows:
        none = row["no transport [ms/step]"]
        ckpt = row["checkpointing [ms/step]"]
        cat = row["catalyst [ms/step]"]
        assert none < ckpt and none < cat, row
        # "times for Catalyst and Checkpointing are very similar"
        assert abs(cat - ckpt) < 0.35 * none, row
        # in transit overhead is small (paper: small vs the solve)
        assert max(cat, ckpt) < 1.6 * none, row
