"""Regenerate Figure 6: in transit RBC memory per simulation node.

Paper shapes asserted: (a) per-node memory is flat under weak scaling,
(b) Catalyst ~ No Transport, (c) Checkpointing's overhead is visible
but not large, (d) simulation memory never depends on endpoint count.
"""

from conftest import RBC_MEASURE_KWARGS, emit

from repro.bench import fig6


def test_fig6_intransit_memory_per_node(benchmark, rbc_measured, results_dir):
    table = benchmark.pedantic(
        lambda: fig6.run(measure_kwargs=RBC_MEASURE_KWARGS),
        rounds=3, iterations=1,
    )
    emit(results_dir, "fig6_intransit_memory", table)

    rows = table.as_dicts()
    for col in ("no transport [GiB/node]", "checkpointing [GiB/node]",
                "catalyst [GiB/node]"):
        series = [row[col] for row in rows]
        assert max(series) == series[0] or max(series) < 1.05 * min(series), (
            "per-node memory must stay flat under weak scaling",
            col, series,
        )
    for row in rows:
        none = row["no transport [GiB/node]"]
        ckpt = row["checkpointing [GiB/node]"]
        cat = row["catalyst [GiB/node]"]
        # Catalyst close to No Transport; Checkpointing visible, not huge
        assert cat < 1.5 * none, row
        assert none <= cat <= ckpt, row
        assert ckpt < 2.0 * none, row
