"""Perf-gate benchmarks: the gated kernels through ``run_gate``.

These are the same kernels ``python -m repro bench --gate`` times
against ``BENCH_10.json``; running them under pytest (marked ``perf``)
wires the gate into the benchmark suite so a CI lane can fail on
regressions without shelling out to the CLI.
"""

from __future__ import annotations

import json

import pytest

from repro.perf.gate import KERNELS, THRESHOLD, run_gate

pytestmark = pytest.mark.perf


def test_gate_runs_every_kernel(tmp_path):
    path = tmp_path / "BENCH.json"
    report = run_gate(path=path, repeats=2)
    assert report.ok
    assert set(report.kernels) == set(KERNELS)
    for k in report.kernels.values():
        assert k["latest_s"] > 0 and k["reference_s"] > 0
        assert k["status"] == "ok"
    data = json.loads(path.read_text())
    assert data["threshold"] == THRESHOLD
    assert set(data["kernels"]) == set(KERNELS)


def test_gate_records_speedups_on_hot_kernels(tmp_path):
    """The headline kernels must beat their reference paths.

    Generous floor (1.2x, not the 2x the PR demonstrates) so a loaded
    CI box doesn't flake; BENCH_9.json records the real margins.
    """
    subset = {
        name: KERNELS[name]
        for name in ("gather_scatter_setup", "rasterize_mesh")
    }
    report = run_gate(path=tmp_path / "BENCH.json", repeats=3, kernels=subset)
    for name, k in report.kernels.items():
        assert k["speedup"] > 1.2, f"{name}: {k['speedup']:.2f}x"


def test_compositing_beats_gather_rendering_2x(tmp_path):
    """Sort-last at 8 ranks must model >= 2x over gather-to-root.

    The kernel returns machine-modeled seconds (slowest rank's CPU plus
    wire time for its metered ingress), so the margin is stable even on
    a one-core container; the real margin recorded in BENCH_9.json is
    an order of magnitude above this floor.
    """
    report = run_gate(
        path=tmp_path / "BENCH.json", repeats=2,
        kernels={"compositing": KERNELS["compositing"]},
    )
    assert report.kernels["compositing"]["speedup"] >= 2.0


def test_collectives_beat_slot_exchange(tmp_path):
    """Tree collectives at 8 ranks must beat the two-barrier allgather
    reference in aggregate rank CPU time."""
    report = run_gate(
        path=tmp_path / "BENCH.json", repeats=3,
        kernels={"collectives": KERNELS["collectives"]},
    )
    assert report.kernels["collectives"]["speedup"] > 1.1


def test_recovery_beats_static_split(tmp_path):
    """Losing 1 of 2 endpoints: the elastic fleet's makespan (lease
    detection + reroute + replay) must finish well ahead of the static
    split, which burns the writers' full retry budgets before
    degrading.  Floor of 2x; BENCH_9.json records ~9x."""
    report = run_gate(
        path=tmp_path / "BENCH.json", repeats=1,
        kernels={"recovery": KERNELS["recovery"]},
    )
    assert report.kernels["recovery"]["speedup"] >= 2.0


def test_device_render_beats_host_residency(tmp_path):
    """The device-resident pipeline must cut the modeled 1120-rank
    in situ overhead by >= 1.5x over the host-resident gather (the
    row itself also enforces this floor internally); BENCH_9.json
    records ~6x."""
    report = run_gate(
        path=tmp_path / "BENCH.json", repeats=1,
        kernels={"device_render": KERNELS["device_render"]},
    )
    assert report.kernels["device_render"]["speedup"] >= 1.5


def test_serving_mesh_beats_flat_fanout(tmp_path):
    """The sharded relay mesh must beat the flat hub's inline
    publisher fan-out on the same client population.  Floor of 1.5x
    (48 clients on a loaded CI box); BENCH_10.json records ~4x, and
    the margin widens with client count since publish is O(relays)
    instead of O(clients)."""
    report = run_gate(
        path=tmp_path / "BENCH.json", repeats=1,
        kernels={"serving_mesh": KERNELS["serving_mesh"]},
    )
    assert report.kernels["serving_mesh"]["speedup"] >= 1.5


def test_gate_fails_on_synthetic_regression(tmp_path):
    """Doctoring the baseline below latest/threshold must fail the gate."""
    path = tmp_path / "BENCH.json"
    first = run_gate(path=path, repeats=1,
                     kernels={"marshal_roundtrip": KERNELS["marshal_roundtrip"]})
    assert first.ok
    data = json.loads(path.read_text())
    kern = data["kernels"]["marshal_roundtrip"]
    # pretend the recorded baseline was 4x faster than anything the
    # machine can do now -> current timing exceeds threshold * baseline
    # (the exact-25% boundary case is covered deterministically by
    # tests/test_perf.py::test_compare_to_baseline_synthetic_regression)
    kern["baseline_s"] = kern["latest_s"] / 4.0
    path.write_text(json.dumps(data))

    report = run_gate(path=path, repeats=1,
                      kernels={"marshal_roundtrip": KERNELS["marshal_roundtrip"]})
    assert not report.ok
    assert report.kernels["marshal_roundtrip"]["status"] == "FAIL"
    assert any("marshal_roundtrip" in msg for msg in report.failures)
