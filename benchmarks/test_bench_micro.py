"""Microbenchmarks of the performance-critical kernels.

These are classic pytest-benchmark timings of the operations the
profiling-driven design cares about: SEM operator application,
gather-scatter, a full solver step, spectral resampling, rendering,
PNG encoding, and BP marshaling.
"""

import numpy as np
import pytest

from repro.adios.marshal import StepPayload, marshal_step
from repro.catalyst import RenderPipeline, RenderSpec
from repro.catalyst.contour import marching_tetrahedra
from repro.nekrs import NekRSSolver
from repro.nekrs.cases import lid_cavity_case
from repro.parallel import SerialCommunicator
from repro.sem import BoxMesh, SEMOperators
from repro.sem.interp import resample_field
from repro.util.png import encode_png
from repro.vtkdata import DataArray, ImageData


@pytest.fixture(scope="module")
def ops():
    mesh = BoxMesh((4, 4, 4), order=7)
    return SEMOperators(mesh, SerialCommunicator())


@pytest.fixture(scope="module")
def field(ops):
    rng = np.random.default_rng(0)
    return rng.normal(size=ops.mesh.field_shape())


def test_stiffness_apply(benchmark, ops, field):
    benchmark(ops.stiffness_apply, field)


def test_gather_scatter(benchmark, ops, field):
    benchmark(ops.gs, field)


def test_physical_gradient(benchmark, ops, field):
    benchmark(ops.grad, field)


def test_spectral_resample(benchmark, ops, field):
    benchmark(resample_field, ops.mesh, field, 8)


def test_solver_step(benchmark):
    case = lid_cavity_case(reynolds=100, elements=2, order=5, dt=5e-3)
    solver = NekRSSolver(case, SerialCommunicator())
    solver.run(2)  # warm caches / ramp BDF order
    benchmark(solver.step)


def test_marching_tetrahedra(benchmark):
    g = np.linspace(-1, 1, 24)
    Z, Y, X = np.meshgrid(g, g, g, indexing="ij")
    vol = np.sqrt(X**2 + Y**2 + Z**2) - 0.6
    benchmark(marching_tetrahedra, vol, 0.0)


def test_render_pipeline(benchmark):
    n = 16
    img = ImageData((n, n, n), spacing=(1 / (n - 1),) * 3)
    g = np.linspace(0, 1, n)
    Z, Y, X = np.meshgrid(g, g, g, indexing="ij")
    img.add_array(DataArray("phi", (np.sqrt(
        (X - 0.5) ** 2 + (Y - 0.5) ** 2 + (Z - 0.5) ** 2
    )).ravel()))
    pipe = RenderPipeline(
        specs=[RenderSpec(kind="contour", array="phi", isovalue=0.3),
               RenderSpec(kind="slice", array="phi", axis="y")],
        width=256, height=256,
    )
    benchmark(pipe.render, img, 0, 0.0)


def test_png_encode(benchmark):
    rng = np.random.default_rng(0)
    ramp = np.linspace(0, 255, 512).astype(np.uint8)
    image = np.stack([np.tile(ramp, (512, 1))] * 3, axis=2)
    image += rng.integers(0, 8, size=image.shape, dtype=np.uint8)
    benchmark(encode_png, image)


def test_bp_marshal(benchmark):
    rng = np.random.default_rng(0)
    payload = StepPayload(
        step=1, time=0.1, rank=0,
        variables={f"f{i}": rng.normal(size=(64, 6, 6, 6)) for i in range(4)},
    )
    benchmark(marshal_step, payload)
