"""Regenerate the storage-economy result: 6.5 MB images vs 19 GB dumps.

Paper shape asserted: checkpoint volume lands on the 19 GB the paper
reports (it is exact arithmetic at the pb146 problem size), and the
Catalyst image volume sits ~3 orders of magnitude below it.
"""

from conftest import MEASURE_KWARGS, emit

from repro.bench import storage
from repro.util.sizes import GIB


def test_storage_economy(benchmark, pb146_measured, results_dir):
    table = benchmark.pedantic(
        lambda: storage.run(measure_kwargs=MEASURE_KWARGS),
        rounds=3, iterations=1,
    )
    emit(results_dir, "storage_economy", table)

    rows = {row["configuration"]: row for row in table.as_dicts()}
    ckpt_bytes = rows["Checkpointing"]["bytes"]
    cat_bytes = rows["Catalyst"]["bytes"]
    # 30 dumps x 4 fields x 19.8e6 points x 8 B = 19.0 GB (paper: 19 GB)
    assert 15 * GIB < ckpt_bytes < 20 * GIB
    assert cat_bytes > 0
    orders = rows["Catalyst"]["orders of magnitude vs ckpt"]
    assert orders > 2.5, "storage economy must be ~3 orders of magnitude"
