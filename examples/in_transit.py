#!/usr/bin/env python
"""In transit visualization: simulation and endpoint on separate ranks.

Reproduces the paper's Section 4.2 workflow at laptop scale: 4
simulation ranks advance a Rayleigh-Benard case and stream fields
through an ADIOS2-style SST stream to 1 endpoint rank (the paper's 4:1
ratio); the endpoint is a SENSEI data consumer that either renders
(Catalyst), writes VTU checkpoints, or does nothing (No Transport).

The comparison printed at the end mirrors Figures 5 and 6: mean time
per timestep and memory on the *simulation* side, per mode.

Run:  python examples/in_transit.py
"""

import shutil
from pathlib import Path

from repro.insitu import InTransitRunner
from repro.nekrs.cases import weak_scaled_rbc_case
from repro.parallel import run_spmd
from repro.util.sizes import format_bytes
from repro.util.tables import Table

OUTPUT = Path("in_transit_output")
TOTAL_RANKS = 5          # 4 simulation + 1 endpoint
STEPS = 9
STREAM_EVERY = 3


def case_builder(num_sim_ranks):
    case = weak_scaled_rbc_case(
        num_sim_ranks, elements_per_rank=6, order=4, rayleigh=1e5, dt=3e-3,
    )
    return case.with_overrides(num_steps=STEPS)


def main():
    if OUTPUT.exists():
        shutil.rmtree(OUTPUT)

    table = Table(
        ["endpoint mode", "sim ms/step", "sim memory", "streamed",
         "endpoint output"],
        title=f"in transit RBC — {TOTAL_RANKS - 1} sim ranks : 1 endpoint "
        f"rank, stream every {STREAM_EVERY} steps",
    )
    for mode in ("none", "checkpoint", "catalyst"):
        runner = InTransitRunner(
            case_builder,
            mode=mode,
            ratio=4,
            num_steps=STEPS,
            stream_interval=STREAM_EVERY,
            arrays=("temperature", "velocity_magnitude"),
            output_dir=OUTPUT,
            image_size=256,
            contour_isovalue=0.0,
        )
        results = run_spmd(TOTAL_RANKS, runner.run)
        sims = [r for r in results if r.role == "simulation"]
        ends = [r for r in results if r.role == "endpoint"]
        table.add_row(
            [
                mode,
                1e3 * max(s.mean_step_seconds for s in sims),
                format_bytes(max(s.memory_bytes for s in sims)),
                format_bytes(sum(s.stream_bytes for s in sims)),
                format_bytes(sum(e.files_bytes for e in ends)),
            ]
        )
    print(table.render())
    print(f"\nendpoint artifacts under {OUTPUT}/:")
    for p in sorted(OUTPUT.rglob("*")):
        if p.is_file():
            print(f"  {p.relative_to(OUTPUT)}  ({format_bytes(p.stat().st_size)})")
    print(
        "\nNote how the simulation's memory is bounded by the SST queue "
        "in every mode:\nvisualization cost lives on the endpoint, which "
        "is the point of in transit."
    )


if __name__ == "__main__":
    main()
