#!/usr/bin/env python
"""Pebble-bed reactor flow with in situ rendering (paper Section 4.1).

A scaled-down pb146 analog: coolant forced vertically through a duct
packed with heated spherical pebbles (Brinkman-penalized immersed
solids).  The run compares the paper's three configurations on the same
physics:

- **original**     — solver only,
- **checkpointing**— raw .fld field dumps every `INTERVAL` steps,
- **catalyst**     — SENSEI + Catalyst renders a pebble/flow image
  every `INTERVAL` steps (the Figure 1 analog).

The punchline printed at the end is the paper's storage-economy result:
images cost orders of magnitude less disk than checkpoints.

Run:  python examples/pebble_bed.py
"""

import shutil
import time
from pathlib import Path

from repro.insitu import Bridge
from repro.nekrs import NekRSSolver
from repro.nekrs.checkpoint import write_checkpoint
from repro.nekrs.cases import pebble_bed_case
from repro.occa import Device
from repro.parallel import run_spmd
from repro.util.sizes import format_bytes
from repro.util.tables import Table

OUTPUT = Path("pebble_bed_output")
RANKS = 2
STEPS = 12
INTERVAL = 4

CATALYST_XML = f"""
<sensei>
  <analysis type="catalyst" mesh="uniform" array="temperature"
            isovalue="0.45" color_array="temperature"
            slice_axis="y" colormap="plasma"
            width="400" height="400" frequency="{INTERVAL}" />
</sensei>
"""


def rank_body(comm, mode):
    case = pebble_bed_case(
        num_pebbles=5, elements_per_unit=3, order=4,
        dt=1.5e-3, num_steps=STEPS, viscosity=5e-2,
    )
    device = Device("cuda-sim")
    solver = NekRSSolver(case, comm, device)

    bridge = None
    if mode == "catalyst":
        bridge = Bridge(solver, config_xml=CATALYST_XML, output_dir=OUTPUT)

    ckpt_bytes = 0
    t0 = time.perf_counter()
    for _ in range(STEPS):
        report = solver.step()
        if report.step % INTERVAL == 0:
            if mode == "checkpointing":
                fields = {
                    "velocity_x": solver.u, "velocity_y": solver.v,
                    "velocity_z": solver.w, "pressure": solver.p,
                    "temperature": solver.T,
                }
                _, n = write_checkpoint(
                    OUTPUT / "fld", case.name, report.step, report.time,
                    comm.rank, comm.size, fields,
                )
                ckpt_bytes += n
            elif mode == "catalyst":
                bridge.update(report.step, report.time)
    wall = time.perf_counter() - t0
    if bridge is not None:
        bridge.finalize()
        catalyst = bridge.analysis.adaptors[0][1]
        return {"wall": wall, "bytes": catalyst.image_bytes if comm.is_root else 0}
    return {"wall": wall, "bytes": ckpt_bytes}


def main():
    if OUTPUT.exists():
        shutil.rmtree(OUTPUT)
    OUTPUT.mkdir()

    table = Table(
        ["configuration", "wall time [s]", "storage", "storage [bytes]"],
        title=f"pb146 analog — {STEPS} steps on {RANKS} ranks, "
        f"action every {INTERVAL} steps",
    )
    stored = {}
    for mode in ("original", "checkpointing", "catalyst"):
        results = run_spmd(RANKS, rank_body, args=(mode,))
        wall = max(r["wall"] for r in results)
        nbytes = sum(r["bytes"] for r in results)
        stored[mode] = nbytes
        table.add_row([mode, wall, format_bytes(nbytes), nbytes])
    print(table.render())

    ratio = stored["checkpointing"] / max(stored["catalyst"], 1)
    print(
        f"\nstorage economy: catalyst images need {ratio:,.0f}x less disk "
        "than checkpoints"
    )
    print(f"images + checkpoints under: {OUTPUT}/")
    for img in sorted(OUTPUT.glob("*.png")):
        print(f"  {img.name}  ({format_bytes(img.stat().st_size)})")


if __name__ == "__main__":
    main()
