#!/usr/bin/env python
"""Quickstart: instrument a small flow with SENSEI-style in situ analysis.

This is the 60-second tour of the stack:

1. build a lid-driven-cavity case (the classic incompressible benchmark),
2. run the NekRS-analog solver on 2 in-process ranks with its fields on
   a simulated CUDA device,
3. attach the SENSEI bridge, configured *purely through XML* (paper
   Listing 1): a histogram every 2 steps and Catalyst image rendering
   every 5 steps,
4. report what the in situ machinery observed, moved, and wrote.

Run:  python examples/quickstart.py
"""

from pathlib import Path

from repro.insitu import Bridge
from repro.nekrs import NekRSSolver
from repro.nekrs.cases import lid_cavity_case
from repro.occa import Device
from repro.parallel import run_spmd
from repro.util.sizes import format_bytes

OUTPUT = Path("quickstart_output")

SENSEI_XML = f"""
<sensei>
  <analysis type="histogram" mesh="mesh" array="pressure"
            bins="24" frequency="2" />
  <analysis type="catalyst" mesh="uniform" array="velocity_magnitude"
            isovalue="0.2" slice_axis="y" colormap="viridis"
            width="320" height="320" frequency="5" />
</sensei>
"""


def rank_body(comm):
    case = lid_cavity_case(reynolds=400, elements=3, order=5, dt=5e-3,
                           num_steps=20)
    device = Device("cuda-sim")            # forces explicit GPU->CPU copies
    solver = NekRSSolver(case, comm, device)
    bridge = Bridge(solver, config_xml=SENSEI_XML, output_dir=OUTPUT)

    reports = solver.run(observer=bridge.observer)
    bridge.finalize()

    return {
        "final_cfl": reports[-1].cfl,
        "kinetic_energy": solver.kinetic_energy(),
        "insitu_seconds": bridge.insitu_seconds,
        "d2h_bytes": device.transfers.d2h_bytes,
        "staging_peak": bridge.adaptor.staging_bytes_peak,
    }


def main():
    results = run_spmd(2, rank_body)

    print("=== quickstart: lid-driven cavity with in situ analysis ===")
    for rank, r in enumerate(results):
        print(
            f"rank {rank}: KE={r['kinetic_energy']:.5f} "
            f"CFL={r['final_cfl']:.3f} "
            f"in-situ={r['insitu_seconds'] * 1e3:.1f} ms "
            f"GPU->CPU={format_bytes(r['d2h_bytes'])} "
            f"staging peak={format_bytes(r['staging_peak'])}"
        )
    images = sorted(OUTPUT.glob("*.png"))
    print(f"\nrendered images ({len(images)}):")
    for img in images:
        print(f"  {img}  ({format_bytes(img.stat().st_size)})")
    hist = OUTPUT / "histogram_pressure.txt"
    print(f"\nhistogram report: {hist} ({hist.stat().st_size} bytes)")
    print("\nEdit SENSEI_XML above — e.g. swap 'catalyst' for 'PosthocIO' —")
    print("and the analysis changes without touching a line of solver code.")


if __name__ == "__main__":
    main()
