#!/usr/bin/env python
"""Rayleigh-Benard convection with side-view rendering (paper Fig. 4).

Buoyancy-driven convection in a wide periodic box heated from below:
the instability grows from a seeded perturbation into convection cells.
Every few steps the temperature field is spectrally resampled and a
vertical slice is rendered — the "side view visualization of a RBC
case" of the paper's Figure 4 — plus an isotherm surface view.

The script also prints the Nusselt-number proxy (volume-averaged
convective heat flux) so you can watch convection switch on.

Run:  python examples/rayleigh_benard.py
"""

import shutil
from pathlib import Path

import numpy as np

from repro.insitu import Bridge
from repro.nekrs import NekRSSolver
from repro.nekrs.cases import rayleigh_benard_case
from repro.occa import Device
from repro.parallel import run_spmd

OUTPUT = Path("rbc_output")
STEPS = 30
RENDER_EVERY = 10

SENSEI_XML = f"""
<sensei>
  <analysis type="catalyst" mesh="uniform" array="temperature"
            isovalue="0.0" color_array="temperature"
            slice_axis="y" colormap="coolwarm"
            width="480" height="240" frequency="{RENDER_EVERY}" />
  <analysis type="histogram" mesh="mesh" array="temperature"
            bins="20" frequency="{RENDER_EVERY}" />
</sensei>
"""


def rank_body(comm):
    case = rayleigh_benard_case(
        rayleigh=2e5, prandtl=0.7, aspect=(3, 1), elements_per_unit=3,
        order=5, dt=4e-3, num_steps=STEPS,
    )
    solver = NekRSSolver(case, comm, Device("cuda-sim"))
    bridge = Bridge(solver, config_xml=SENSEI_XML, output_dir=OUTPUT)

    nusselt_proxy = []
    for _ in range(STEPS):
        report = solver.step()
        bridge.update(report.step, report.time)
        # convective flux <w T> relative to conduction
        wT = solver.ops.integrate(solver.w * solver.T)
        nusselt_proxy.append(wT)
    bridge.finalize()
    return {
        "ke": solver.kinetic_energy(),
        "wT": nusselt_proxy,
        "T_range": (float(solver.T.min()), float(solver.T.max())),
    }


def main():
    if OUTPUT.exists():
        shutil.rmtree(OUTPUT)
    OUTPUT.mkdir()

    results = run_spmd(2, rank_body)
    r = results[0]
    print("=== Rayleigh-Benard convection (Ra=2e5, Pr=0.7, aspect 3:1) ===")
    print(f"final kinetic energy : {r['ke']:.3e}")
    print(f"temperature range    : [{r['T_range'][0]:+.3f}, {r['T_range'][1]:+.3f}]")
    print("convective flux <wT> over time (conduction = 0):")
    flux = np.array(r["wT"])
    for i in range(0, STEPS, 5):
        bar = "#" * max(0, int(400 * flux[i]))
        print(f"  step {i + 1:3d}: {flux[i]:+.3e} {bar}")
    growing = flux[-1] > flux[STEPS // 3]
    print(f"\nconvection {'growing' if growing else 'saturated'};", end=" ")
    print(f"side views under {OUTPUT}/:")
    for img in sorted(OUTPUT.glob("*.png")):
        print(f"  {img.name}")


if __name__ == "__main__":
    main()
