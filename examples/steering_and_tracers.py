#!/usr/bin/env python
"""Computational steering and in situ particle tracing.

Two things only *in situ* coupling can do (posthoc analysis cannot,
because the data between checkpoints no longer exists):

1. **tracers** — passive particles advected through the instantaneous
   velocity field at every step, seeded under the cavity lid,
2. **steering** — analyses that *stop the simulation*: a divergence
   guard (abort on blow-up) and a steady-state detector (stop when
   converged, saving the rest of the allocation).

All three are wired in through the same XML mechanism as everything
else; the solver loop never changes.

Run:  python examples/steering_and_tracers.py
"""

import shutil
from pathlib import Path

import numpy as np

from repro.insitu import Bridge
from repro.nekrs import NekRSSolver
from repro.nekrs.cases import lid_cavity_case
from repro.parallel import run_spmd

OUTPUT = Path("steering_output")

SENSEI_XML = """
<sensei>
  <analysis type="particles" count="48" seed="11" frequency="1"/>
  <analysis type="divergence_guard" array="velocity_magnitude"
            limit="1e3" frequency="1"/>
  <analysis type="steady_state" array="velocity_magnitude"
            tolerance="2e-3" patience="3" frequency="1"/>
</sensei>
"""


def rank_body(comm):
    case = lid_cavity_case(reynolds=100, elements=2, order=4, dt=2e-2,
                           num_steps=200)
    solver = NekRSSolver(case, comm)
    bridge = Bridge(solver, config_xml=SENSEI_XML, output_dir=OUTPUT)

    steps_taken = 0
    for _ in range(case.num_steps):
        report = solver.step()
        steps_taken = report.step
        if not bridge.update(report.step, report.time):
            break
    bridge.finalize()

    tracer = bridge.analysis.adaptors[0][1]
    steady = bridge.analysis.adaptors[2][1]
    return {
        "steps": steps_taken,
        "budget": case.num_steps,
        "converged_at": steady.converged_at,
        "change_history": steady.history[-3:],
        "displacement": (
            np.linalg.norm(tracer.displacement, axis=1).max()
            if comm.is_root and tracer.positions is not None
            else 0.0
        ),
    }


def main():
    if OUTPUT.exists():
        shutil.rmtree(OUTPUT)
    OUTPUT.mkdir()

    r = run_spmd(2, rank_body)[0]
    print("=== steering + tracers on the lid-driven cavity ===")
    print(f"step budget          : {r['budget']}")
    print(f"steps actually taken : {r['steps']}")
    if r["converged_at"] is not None:
        saved = r["budget"] - r["steps"]
        print(f"steady state detected at step {r['converged_at']}; "
              f"{saved} steps ({100 * saved / r['budget']:.0f}% of the "
              "allocation) returned unused")
    print(f"last relative changes: "
          + ", ".join(f"{c:.2e}" for c in r["change_history"]))
    print(f"max tracer displacement: {r['displacement']:.4f}")
    csv = OUTPUT / "tracers.csv"
    print(f"trajectories: {csv} ({len(csv.read_text().splitlines()) - 1} rows)")


if __name__ == "__main__":
    main()
