"""repro — reproduction of *Scaling Computational Fluid Dynamics: In Situ
Visualization of NekRS using SENSEI* (Mateevitsi et al., SC 2023).

The package is organized as a stack of subsystems mirroring the paper's
software stack, each implemented from scratch in Python:

``repro.util``
    Shared utilities: timing, sizes, PNG encoding, tables, RNG plumbing.
``repro.parallel``
    In-process SPMD runtime with MPI-like communicators (serial and
    threaded back ends) standing in for MPI.
``repro.machine``
    Discrete-event performance model of leadership machines (Polaris,
    JUWELS Booster): network topology, PCIe, filesystem, cost ledger.
``repro.occa``
    OCCA-style device/memory/kernel abstraction with a host backend and
    a simulated-CUDA backend that accounts device<->host transfers.
``repro.sem``
    Spectral element method infrastructure: GLL quadrature, tensor
    product operators, hexahedral meshes, gather-scatter, Krylov
    solvers.
``repro.nekrs``
    The NekRS-analog incompressible Navier-Stokes solver, case files,
    checkpointing, and the paper's two science cases (pebble bed, RBC).
``repro.vtkdata``
    VTK-like data model (unstructured grids, image data, multiblock)
    plus VTU/VTI/VTM XML writers.
``repro.sensei``
    SENSEI-style in situ framework: DataAdaptor / AnalysisAdaptor,
    XML-configurable analysis, stock analyses.
``repro.catalyst``
    Catalyst-style software rendering pipeline (rasterizer, contour,
    slice, colormaps) producing real PNG images.
``repro.adios``
    ADIOS2-style I/O and streaming API with SST (in-process streaming)
    and BPFile engines.
``repro.insitu``
    The paper's contribution proper: the NekRS<->SENSEI coupling
    (DataAdaptor + bridge), in situ and in transit run orchestration,
    and overhead instrumentation.
``repro.bench``
    Experiment drivers that regenerate every figure/table of the
    paper's evaluation section.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
