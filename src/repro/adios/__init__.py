"""ADIOS2-style I/O and streaming.

The paper's in transit workflow uses ADIOS2 2.9.1 with the SST
(Sustainable Staging Transport) engine: simulation ranks *put*
variables each step; a separate endpoint application *gets* them over
the network, decoupling visualization resources from simulation
resources.  This package reproduces the API surface the coupling uses:

- :class:`ADIOS` -> :meth:`ADIOS.declare_io` -> :class:`IO` ->
  :meth:`IO.open` -> an :class:`Engine` with
  ``begin_step / put / get / end_step / close``;
- an **SST** engine backed by bounded in-process queues (one per
  writer rank) with ADIOS-style ``QueueLimit`` / ``QueueFullPolicy``
  (Block = backpressure, Discard = drop oldest) semantics;
- a **BPFile** engine writing BP-marshaled step files to a directory;
- BP marshaling itself (:mod:`repro.adios.marshal`): a compact,
  deterministic binary encoding of named typed arrays + step metadata.

Transported byte counts are metered so the machine model can replay
the stream volume on the JUWELS Booster interconnect at paper scale.
"""

from repro.adios.marshal import marshal_step, unmarshal_step, StepPayload
from repro.adios.engine import (
    ADIOS,
    IO,
    Engine,
    SSTBroker,
    SSTWriterEngine,
    SSTReaderEngine,
    BPFileWriterEngine,
    BPFileReaderEngine,
    EndOfStream,
    StepStatus,
    StreamStats,
)
from repro.faults.errors import (
    CorruptPayloadError,
    EndpointDownError,
    StreamTimeout,
    TransportError,
)

__all__ = [
    "ADIOS",
    "IO",
    "Engine",
    "SSTBroker",
    "SSTWriterEngine",
    "SSTReaderEngine",
    "BPFileWriterEngine",
    "BPFileReaderEngine",
    "EndOfStream",
    "StepStatus",
    "StreamStats",
    "TransportError",
    "StreamTimeout",
    "EndpointDownError",
    "CorruptPayloadError",
    "marshal_step",
    "unmarshal_step",
    "StepPayload",
]
