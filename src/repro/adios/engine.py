"""ADIOS-style IO objects and engines (SST streaming, BPFile).

The API follows adios2's shape: an :class:`ADIOS` object owns named
:class:`IO` configurations (engine type + parameters); opening an IO
yields an :class:`Engine` driven with ``begin_step / put / end_step``
on the writer and ``begin_step / get / end_step`` on the reader.

SST here is an in-process broker: one bounded queue per writer rank.
``QueueLimit`` and ``QueueFullPolicy`` reproduce the real engine's
backpressure-or-discard behavior — the knob our queue-depth ablation
benchmark sweeps.
"""

from __future__ import annotations

import queue
import threading
import time as _time
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

import numpy as np

from repro.adios.marshal import StepPayload, marshal_step, unmarshal_step
from repro.codec import CodecContext
from repro.faults.errors import (
    CorruptPayloadError,
    EndpointDownError,
    StreamTimeout,
)
from repro.faults.injector import FaultInjector, FaultLog
from repro.faults.retry import RetryPolicy
from repro.observe.session import get_telemetry


class EndOfStream(Exception):
    """The writer closed the stream; no more steps will arrive."""


class StepStatus(Enum):
    OK = "ok"
    END_OF_STREAM = "end-of-stream"
    NOT_READY = "not-ready"


@dataclass
class StreamStats:
    """Per-broker transport accounting."""

    steps_put: int = 0
    steps_got: int = 0
    steps_discarded: int = 0
    steps_corrupt: int = 0
    bytes_put: int = 0
    bytes_got: int = 0
    staged_bytes: int = 0
    staged_bytes_peak: int = 0
    faults: FaultLog = field(default_factory=FaultLog)
    _staged_by_writer: dict = field(default_factory=dict, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_put(self, nbytes: int, writer: int = 0) -> int:
        """Account a staged step; returns the writer queue's new level."""
        with self._lock:
            self.steps_put += 1
            self.bytes_put += nbytes
            self.staged_bytes += nbytes
            if self.staged_bytes > self.staged_bytes_peak:
                self.staged_bytes_peak = self.staged_bytes
            level = self._staged_by_writer.get(writer, 0) + nbytes
            self._staged_by_writer[writer] = level
            return level

    def record_get(self, nbytes: int, writer: int = 0) -> None:
        with self._lock:
            self.steps_got += 1
            self.bytes_got += nbytes
            self._drain(writer, nbytes)

    def record_discard(self, nbytes: int = 0, writer: int = 0) -> None:
        with self._lock:
            self.steps_discarded += 1
            self._drain(writer, nbytes)

    def _drain(self, writer: int, nbytes: int) -> None:
        self.staged_bytes = max(0, self.staged_bytes - nbytes)
        self._staged_by_writer[writer] = max(
            0, self._staged_by_writer.get(writer, 0) - nbytes
        )

    def staged_level(self, writer: int) -> int:
        with self._lock:
            return self._staged_by_writer.get(writer, 0)

    def record_corrupt(self) -> None:
        with self._lock:
            self.steps_corrupt += 1


class SSTBroker:
    """Shared staging area between one writer group and one reader group.

    Create it in the orchestrator, hand it to both sides.  `queue_limit`
    bounds the number of staged steps per writer rank (ADIOS
    ``QueueLimit``); `queue_full_policy` selects Block (writer waits —
    backpressure reaches the simulation) or Discard (oldest staged step
    is dropped, decoupling the simulation from a slow consumer).
    """

    _SENTINEL = object()

    #: how often a blocked get re-checks for broker close / writer death
    _POLL_S = 0.02

    def __init__(
        self,
        num_writers: int,
        queue_limit: int = 2,
        queue_full_policy: str = "Block",
        timeout: float = 120.0,
        injector: FaultInjector | None = None,
    ):
        if num_writers < 1:
            raise ValueError("num_writers must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if queue_full_policy not in ("Block", "Discard"):
            raise ValueError("queue_full_policy must be Block or Discard")
        self.num_writers = num_writers
        self.queue_limit = queue_limit
        self.queue_full_policy = queue_full_policy
        self.timeout = timeout
        self.injector = injector
        self.queues: list[queue.Queue] = [
            queue.Queue(maxsize=queue_limit) for _ in range(num_writers)
        ]
        self.stats = StreamStats()
        if injector is not None:
            # one ledger: injector decisions and stream accounting share it
            self.stats.faults = injector.log
        self.endpoint_down = threading.Event()
        self.closed = threading.Event()
        self._writer_down: list[threading.Event] = [
            threading.Event() for _ in range(num_writers)
        ]

    def mark_endpoint_down(self) -> None:
        """Declare the consumer side dead: writers fail fast from now on."""
        self.endpoint_down.set()

    def mark_writer_down(self, writer_rank: int) -> None:
        """Declare one producer dead: readers of its stream fail fast
        (after draining whatever it already staged)."""
        self._writer_down[writer_rank].set()

    def close(self) -> None:
        """Shut the broker down: every blocked or future get fails fast
        with :class:`EndpointDownError` once its queue is drained,
        instead of burning the full stream timeout."""
        self.closed.set()

    def _stream_dead(self, writer_rank: int) -> bool:
        return self.closed.is_set() or self._writer_down[writer_rank].is_set()

    def put(
        self,
        writer_rank: int,
        payload_bytes: bytes,
        step: int = -1,
        timeout: float | None = None,
    ) -> None:
        tel = get_telemetry()
        with tel.tracer.span("sst.put", step=step, writer=writer_rank):
            self._put(writer_rank, payload_bytes, step, timeout, tel)

    def _put(self, writer_rank, payload_bytes, step, timeout, tel) -> None:
        if self.endpoint_down.is_set():
            raise EndpointDownError(
                f"SST writer {writer_rank}: endpoint marked down"
            )
        inj = self.injector
        if inj is not None:
            stall = inj.maybe("writer_stall", "broker.put", step, key=writer_rank)
            if stall is not None:
                tel.tracer.instant("fault.writer_stall", step=step, writer=writer_rank)
                inj.sleep(stall)
                self.stats.faults.try_resolve("writer_stall", "recovered")
            drop = inj.maybe("drop_step", "broker.put", step, key=writer_rank)
            if drop is not None:
                tel.tracer.instant("fault.drop_step", step=step, writer=writer_rank)
                self.stats.record_discard(writer=writer_rank)
                self.stats.faults.try_resolve("drop_step", "detected")
                return
        q = self.queues[writer_rank]
        if self.queue_full_policy == "Block":
            try:
                q.put(payload_bytes, timeout=self.timeout if timeout is None else timeout)
            except queue.Full:
                raise StreamTimeout(
                    f"SST writer {writer_rank} blocked > "
                    f"{self.timeout if timeout is None else timeout:g}s "
                    "(reader stalled?)"
                ) from None
        else:
            # Discard: drop the oldest staged step to make room.  A
            # concurrent reader may drain the queue between our failed
            # put and the drop attempt, so loop until the put lands;
            # record a discard only when we actually removed a step.
            while True:
                try:
                    q.put_nowait(payload_bytes)
                    break
                except queue.Full:
                    try:
                        dropped = q.get_nowait()
                    except queue.Empty:
                        pass  # reader drained it concurrently; retry the put
                    else:
                        nbytes = len(dropped) if isinstance(dropped, (bytes, bytearray)) else 0
                        self.stats.record_discard(nbytes, writer=writer_rank)
        level = self.stats.record_put(len(payload_bytes), writer=writer_rank)
        if tel.enabled:
            tel.metrics.counter(
                "repro_sst_steps_put_total", "Steps staged into the SST broker"
            ).inc()
            tel.metrics.counter(
                "repro_sst_bytes_put_total", "Bytes staged into the SST broker"
            ).inc(len(payload_bytes))
            tel.memory.observe("sst.queue", level)

    def close_writer(self, writer_rank: int) -> None:
        if self.endpoint_down.is_set():
            return  # nobody is listening for the sentinel
        try:
            self.queues[writer_rank].put(self._SENTINEL, timeout=self.timeout)
        except queue.Full:
            raise StreamTimeout(
                f"SST writer {writer_rank} could not deliver end-of-stream "
                f"within {self.timeout:g}s"
            ) from None

    def get(self, writer_rank: int, step: int = -1, timeout: float | None = None) -> bytes:
        tel = get_telemetry()
        with tel.tracer.span("sst.get", step=step, writer=writer_rank):
            return self._get(writer_rank, step, timeout, tel)

    def _get(self, writer_rank, step, timeout, tel) -> bytes:
        inj = self.injector
        if inj is not None:
            slow = inj.maybe("slow_consumer", "broker.get", step, key=writer_rank)
            if slow is not None:
                tel.tracer.instant("fault.slow_consumer", step=step, writer=writer_rank)
                inj.sleep(slow)
                self.stats.faults.try_resolve("slow_consumer", "recovered")
        # Wait in short slices so a broker close or producer death is
        # noticed within _POLL_S, not after the full stream timeout —
        # staged items are still drained before the stream fails.
        deadline = _time.monotonic() + (self.timeout if timeout is None else timeout)
        q = self.queues[writer_rank]
        while True:
            try:
                item = q.get_nowait()
                break
            except queue.Empty:
                pass
            if self._stream_dead(writer_rank):
                raise EndpointDownError(
                    f"SST stream of writer {writer_rank} is down "
                    f"({'broker closed' if self.closed.is_set() else 'producer dead'})"
                )
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                raise StreamTimeout(
                    f"SST reader timed out waiting on writer {writer_rank}"
                ) from None
            try:
                item = q.get(timeout=min(self._POLL_S, remaining))
                break
            except queue.Empty:
                continue
        if item is self._SENTINEL:
            raise EndOfStream
        if inj is not None:
            corrupt = inj.maybe("corrupt_payload", "broker.get", step, key=writer_rank)
            if corrupt is not None:
                tel.tracer.instant("fault.corrupt_payload", step=step, writer=writer_rank)
                item = inj.corrupt(item, corrupt)
        self.stats.record_get(len(item), writer=writer_rank)
        if tel.enabled:
            tel.metrics.counter(
                "repro_sst_steps_got_total", "Steps drained from the SST broker"
            ).inc()
            tel.metrics.counter(
                "repro_sst_bytes_got_total", "Bytes drained from the SST broker"
            ).inc(len(item))
        return item

    def try_get(self, writer_rank: int, step: int = -1) -> bytes | None:
        """Non-blocking get for polling consumers (the endpoint fleet).

        Returns the next staged payload, or ``None`` when the queue is
        momentarily empty.  Raises :class:`EndOfStream` on the writer's
        sentinel and :class:`EndpointDownError` when the stream is dead
        (broker closed / producer marked down) *and* fully drained.
        Fault hooks run only after a successful dequeue, so injection
        probability is per delivered step, not per poll.
        """
        try:
            item = self.queues[writer_rank].get_nowait()
        except queue.Empty:
            if self._stream_dead(writer_rank):
                raise EndpointDownError(
                    f"SST stream of writer {writer_rank} is down "
                    f"({'broker closed' if self.closed.is_set() else 'producer dead'})"
                ) from None
            return None
        if item is self._SENTINEL:
            raise EndOfStream
        tel = get_telemetry()
        inj = self.injector
        if inj is not None:
            slow = inj.maybe("slow_consumer", "broker.get", step, key=writer_rank)
            if slow is not None:
                tel.tracer.instant("fault.slow_consumer", step=step, writer=writer_rank)
                inj.sleep(slow)
                self.stats.faults.try_resolve("slow_consumer", "recovered")
            corrupt = inj.maybe("corrupt_payload", "broker.get", step, key=writer_rank)
            if corrupt is not None:
                tel.tracer.instant("fault.corrupt_payload", step=step, writer=writer_rank)
                item = inj.corrupt(item, corrupt)
        self.stats.record_get(len(item), writer=writer_rank)
        if tel.enabled:
            tel.metrics.counter(
                "repro_sst_steps_got_total", "Steps drained from the SST broker"
            ).inc()
            tel.metrics.counter(
                "repro_sst_bytes_got_total", "Bytes drained from the SST broker"
            ).inc(len(item))
        return item


class Engine:
    """Common engine surface."""

    def __init__(self, name: str, mode: str):
        self.name = name
        self.mode = mode
        self._in_step = False
        self.closed = False

    def begin_step(self) -> StepStatus:
        if self.closed:
            raise RuntimeError(f"engine {self.name} is closed")
        if self._in_step:
            raise RuntimeError("begin_step called twice without end_step")
        self._in_step = True
        return StepStatus.OK

    def end_step(self) -> None:
        if not self._in_step:
            raise RuntimeError("end_step without begin_step")
        self._in_step = False

    def close(self) -> None:
        self.closed = True


class SSTWriterEngine(Engine):
    """One writer rank's end of an SST stream.

    With a :class:`RetryPolicy`, a timed-out put is retried with
    backoff instead of killing the run; exhaustion raises
    :class:`EndpointDownError`.  Step state is reset even when the
    transport fails, so a degraded writer keeps streaming (or keeps
    falling back) on subsequent steps.
    """

    def __init__(
        self,
        name: str,
        broker: SSTBroker,
        writer_rank: int,
        retry: RetryPolicy | None = None,
        codec=None,
    ):
        super().__init__(name, "w")
        if not 0 <= writer_rank < broker.num_writers:
            raise ValueError(f"writer rank {writer_rank} out of range")
        self.broker = broker
        self.writer_rank = writer_rank
        self.retry = retry
        self.codec = codec
        # one encoder context per directed stream: temporal references
        # plus the raw-vs-wire stats the bench/router read back
        self.codec_context = CodecContext() if codec is not None else None
        self._staged: dict[str, np.ndarray] = {}
        self._attrs: dict[str, str] = {}
        self._step = 0
        self._time = 0.0
        # wire-size observables the hybrid router feeds on
        self.last_wire_bytes = 0
        self.wire_bytes_total = 0

    def set_step_info(self, step: int, time: float) -> None:
        self._step = step
        self._time = time

    def begin_step(self) -> StepStatus:
        if self.broker.endpoint_down.is_set():
            # fail before staging work the transport cannot deliver
            raise EndpointDownError(
                f"SST writer {self.writer_rank}: endpoint marked down"
            )
        return super().begin_step()

    def put(self, name: str, array: np.ndarray) -> None:
        if not self._in_step:
            raise RuntimeError("put outside begin_step/end_step")
        self._staged[name] = np.asarray(array)

    def put_attribute(self, name: str, value: str) -> None:
        self._attrs[name] = str(value)

    def end_step(self) -> None:
        live = get_telemetry().live
        t0 = _time.perf_counter() if live.enabled else 0.0
        payload = StepPayload(
            step=self._step,
            time=self._time,
            rank=self.writer_rank,
            variables=dict(self._staged),
            attributes=dict(self._attrs),
        )
        data = marshal_step(payload, codec=self.codec, context=self.codec_context)
        self.last_wire_bytes = len(data)
        self.wire_bytes_total += len(data)
        if live.enabled:
            live.stage(
                "marshal", self._step, t0, _time.perf_counter(),
                stream=self.writer_rank,
            )
        try:
            if self.retry is None:
                self.broker.put(self.writer_rank, data, step=self._step)
            else:
                self.retry.call(
                    lambda attempt: self.broker.put(
                        self.writer_rank, data,
                        step=self._step,
                        timeout=self.retry.attempt_timeout,
                    ),
                    on_retry=self._on_retry,
                    describe=f"SST put (writer {self.writer_rank}, step {self._step})",
                )
            if live.enabled:
                # put mark: the wire stage opens when the payload lands
                # in the broker and closes at the consumer's got mark
                live.wire_mark(
                    "put", self._step, self.writer_rank,
                    _time.perf_counter(), len(data),
                )
        finally:
            self._staged.clear()
            super().end_step()

    def _on_retry(self, attempt: int, exc: Exception) -> None:
        self.broker.stats.faults.record_retry()
        tel = get_telemetry()
        tel.live.event("retry")
        if tel.enabled:
            tel.tracer.instant(
                "sst.retry", attempt=attempt, writer=self.writer_rank,
                error=type(exc).__name__,
            )
            tel.metrics.counter(
                "repro_sst_retries_total", "SST put attempts retried after a timeout"
            ).inc()

    def close(self) -> None:
        if not self.closed:
            self.broker.close_writer(self.writer_rank)
        super().close()


class SSTReaderEngine(Engine):
    """One reader rank's end: drains an assigned set of writer ranks.

    A payload that fails its CRC check is counted and *skipped* — the
    reader carries on with whatever the other writers delivered (an
    all-corrupt step surfaces as OK with an empty payload set, which
    the endpoint treats as a no-op).
    """

    def __init__(self, name: str, broker: SSTBroker, writer_ranks: list[int]):
        super().__init__(name, "r")
        self.broker = broker
        self.writer_ranks = list(writer_ranks)
        self._current: dict[int, StepPayload] = {}
        self._ended: set[int] = set()
        self._read_step = 0
        self.corrupt_steps = 0
        # per-writer decode contexts: RBP3 temporal deltas reference the
        # previous step of the *same* writer's stream
        self._codec_ctx: dict[int, CodecContext] = {}

    def begin_step(self) -> StepStatus:
        super().begin_step()
        live = get_telemetry().live
        self._current = {}
        for w in self.writer_ranks:
            if w in self._ended:
                continue
            try:
                raw = self.broker.get(w, step=self._read_step)
            except EndOfStream:
                self._ended.add(w)
                continue
            try:
                ctx = self._codec_ctx.setdefault(w, CodecContext())
                payload = self._current[w] = unmarshal_step(raw, context=ctx)
                if live.enabled:
                    live.wire_mark(
                        "got", payload.step, w, _time.perf_counter(), len(raw)
                    )
            except CorruptPayloadError:
                self.corrupt_steps += 1
                self.broker.stats.record_corrupt()
                self.broker.stats.faults.try_resolve("corrupt_payload", "detected")
        self._read_step += 1
        if len(self._ended) == len(self.writer_ranks) and not self._current:
            self._in_step = False
            return StepStatus.END_OF_STREAM
        return StepStatus.OK

    def get(self, writer_rank: int) -> StepPayload:
        if not self._in_step:
            raise RuntimeError("get outside begin_step/end_step")
        return self._current[writer_rank]

    def payloads(self) -> dict[int, StepPayload]:
        if not self._in_step:
            raise RuntimeError("payloads outside begin_step/end_step")
        return dict(self._current)


class BPFileWriterEngine(Engine):
    """File-based engine: one BP payload file per (step, rank)."""

    def __init__(self, name: str, directory, writer_rank: int = 0, codec=None):
        super().__init__(name, "w")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.writer_rank = writer_rank
        self.codec = codec
        self.codec_context = CodecContext() if codec is not None else None
        self._staged: dict[str, np.ndarray] = {}
        self._attrs: dict[str, str] = {}
        self._step = 0
        self._time = 0.0
        self.bytes_written = 0

    def set_step_info(self, step: int, time: float) -> None:
        self._step = step
        self._time = time

    def put(self, name: str, array: np.ndarray) -> None:
        if not self._in_step:
            raise RuntimeError("put outside begin_step/end_step")
        self._staged[name] = np.asarray(array)

    def put_attribute(self, name: str, value: str) -> None:
        self._attrs[name] = str(value)

    def end_step(self) -> None:
        payload = marshal_step(
            StepPayload(
                self._step, self._time, self.writer_rank,
                dict(self._staged), dict(self._attrs),
            ),
            codec=self.codec,
            context=self.codec_context,
        )
        path = self.directory / f"{self.name}.step{self._step:06d}.rank{self.writer_rank:04d}.bp"
        path.write_bytes(payload)
        self.bytes_written += len(payload)
        self._staged.clear()
        super().end_step()


class BPFileReaderEngine(Engine):
    """Reads BP payload files back in step order for one rank."""

    def __init__(self, name: str, directory, writer_rank: int = 0):
        super().__init__(name, "r")
        self.directory = Path(directory)
        self.writer_rank = writer_rank
        pattern = f"{name}.step*.rank{writer_rank:04d}.bp"
        self._files = sorted(self.directory.glob(pattern))
        self._index = 0
        self._payload: StepPayload | None = None
        # file series decode in step order, so one context carries any
        # temporal references across begin_step calls
        self.codec_context = CodecContext()

    def begin_step(self) -> StepStatus:
        super().begin_step()
        if self._index >= len(self._files):
            self._in_step = False
            return StepStatus.END_OF_STREAM
        self._payload = unmarshal_step(
            self._files[self._index].read_bytes(), context=self.codec_context
        )
        self._index += 1
        return StepStatus.OK

    def get(self) -> StepPayload:
        if not self._in_step or self._payload is None:
            raise RuntimeError("get outside a valid step")
        return self._payload


@dataclass
class IO:
    """A named engine configuration (adios2.IO analog)."""

    name: str
    engine_type: str = "SST"
    parameters: dict = field(default_factory=dict)

    def set_engine(self, engine_type: str) -> None:
        if engine_type not in ("SST", "BPFile"):
            raise ValueError(f"unknown engine type {engine_type!r}")
        self.engine_type = engine_type

    def set_parameters(self, params: dict) -> None:
        self.parameters.update(params)

    def open(self, name: str, mode: str, **kwargs) -> Engine:
        """Open an engine. SST needs broker=...; writers need
        writer_rank=..., readers writer_ranks=[...]."""
        if mode not in ("r", "w"):
            raise ValueError("mode must be 'r' or 'w'")
        if self.engine_type == "SST":
            broker = kwargs.get("broker")
            if broker is None:
                raise ValueError("SST engines need a broker")
            if mode == "w":
                return SSTWriterEngine(
                    name, broker, kwargs.get("writer_rank", 0),
                    codec=kwargs.get("codec"),
                )
            return SSTReaderEngine(name, broker, kwargs.get("writer_ranks", [0]))
        directory = kwargs.get("directory", self.parameters.get("directory", "."))
        if mode == "w":
            return BPFileWriterEngine(
                name, directory, kwargs.get("writer_rank", 0),
                codec=kwargs.get("codec"),
            )
        return BPFileReaderEngine(name, directory, kwargs.get("writer_rank", 0))


class ADIOS:
    """Root object holding named IO configurations."""

    def __init__(self) -> None:
        self._ios: dict[str, IO] = {}

    def declare_io(self, name: str) -> IO:
        if name in self._ios:
            raise ValueError(f"IO {name!r} already declared")
        io_obj = IO(name)
        self._ios[name] = io_obj
        return io_obj

    def at_io(self, name: str) -> IO:
        return self._ios[name]
