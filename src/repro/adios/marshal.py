"""BP-style binary marshaling of step data.

One *step payload* carries: step index, simulation time, producing
rank, and a set of named typed nd-arrays plus a small string-keyed
attribute table.  The encoding is explicit and little-endian (magic,
lengths, dtype tags) rather than pickle — matching how ADIOS BP
serializes for transport, keeping payload sizes honest, and avoiding
executing anything on the receive side.

Version 2 payloads (``RBP2``) prepend a CRC32 of the body so
in-flight corruption is *detected* on unmarshal — raised as
:class:`~repro.faults.errors.CorruptPayloadError` — instead of
silently feeding garbage arrays to the analysis side.  Version 1
(``RBP1``, no checksum) payloads are still readable, so BP files
written by older runs replay unchanged.

Version 3 payloads (``RBP3``) carry codec-compressed field blocks:
:func:`marshal_step` takes an optional :class:`~repro.codec.CodecSpec`
and, when it is active, runs each variable through its per-field
pipeline (`repro.codec`), writing the codec id and parameters into
the field header.  The CRC32 covers the *compressed* body — exactly
the bytes on the wire — so the broker, the fleet's replay cache, and
BP files all verify what they actually stored.  An inactive/lossless
spec (or ``codec=None``) emits the plain ``RBP2`` frame, byte
identical to an uncompressed run, and :func:`unmarshal_step`
auto-detects all three versions.

The default paths are zero-copy: :func:`marshal_step` sizes the
payload first and writes every field into one preallocated
``bytearray`` through ``memoryview`` slices (no BytesIO growth, no
``tobytes`` staging copy), and :func:`unmarshal_step` returns arrays
that *view* the payload buffer, marked read-only.  A consumer that
needs to mutate calls :meth:`StepPayload.ensure_writable` — copy on
first write, not per payload.  The byte layout is identical to the
retained ``*_reference`` implementations (``repro.perf.naive_mode``),
which the equivalence tests assert byte-for-byte.
"""

from __future__ import annotations

import io
import json
import struct
import time as _time
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.faults.errors import CorruptPayloadError
from repro.observe.session import get_telemetry
from repro.perf import config

_MAGIC = b"RBP2"
_MAGIC_V1 = b"RBP1"
_MAGIC_V3 = b"RBP3"
_HEADER = "<qdqI"
_HEADER_SIZE = struct.calcsize(_HEADER)

_DTYPE_TAGS = {
    np.dtype("<f8"): b"f8",
    np.dtype("<f4"): b"f4",
    np.dtype("<i8"): b"i8",
    np.dtype("<i4"): b"i4",
    np.dtype("uint8"): b"u1",
}
_TAG_DTYPES = {v: k for k, v in _DTYPE_TAGS.items()}


@dataclass
class StepPayload:
    """Decoded step data."""

    step: int
    time: float
    rank: int
    variables: dict[str, np.ndarray] = field(default_factory=dict)
    attributes: dict[str, str] = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        return sum(v.nbytes for v in self.variables.values())

    def ensure_writable(self, name: str) -> np.ndarray:
        """Copy-on-write access to a variable.

        Arrays from :func:`unmarshal_step` are read-only views into the
        transport buffer; this replaces one with a private writable
        copy the first time a consumer needs to mutate it.
        """
        arr = self.variables[name]
        if not arr.flags.writeable:
            arr = arr.copy()
            self.variables[name] = arr
        return arr


def _normalize_array(arr: np.ndarray) -> tuple[np.ndarray, bytes]:
    """Contiguous little-endian array + its two-byte dtype tag."""
    arr = np.ascontiguousarray(arr)
    dtype = arr.dtype.newbyteorder("<") if arr.dtype.byteorder == ">" else arr.dtype
    arr = arr.astype(dtype, copy=False)
    tag = _DTYPE_TAGS.get(arr.dtype)
    if tag is None:
        raise TypeError(f"unsupported dtype for BP marshal: {arr.dtype}")
    return arr, tag


# -- reference (copying) codec ------------------------------------------

def _write_block(buf: io.BytesIO, name: str, arr: np.ndarray) -> None:
    arr, tag = _normalize_array(arr)
    name_b = name.encode()
    buf.write(struct.pack("<H", len(name_b)))
    buf.write(name_b)
    buf.write(tag)
    buf.write(struct.pack("<B", arr.ndim))
    buf.write(struct.pack(f"<{arr.ndim}q", *arr.shape))
    raw = arr.tobytes()
    buf.write(struct.pack("<q", len(raw)))
    buf.write(raw)


def marshal_step_reference(payload: StepPayload) -> bytes:
    """Original BytesIO encoder, kept for the gate/equivalence tests."""
    buf = io.BytesIO()
    attrs = json.dumps(payload.attributes).encode()
    buf.write(struct.pack(_HEADER, payload.step, payload.time, payload.rank, len(attrs)))
    buf.write(attrs)
    buf.write(struct.pack("<I", len(payload.variables)))
    for name, arr in payload.variables.items():
        _write_block(buf, name, np.asarray(arr))
    body = buf.getvalue()
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return _MAGIC + struct.pack("<I", crc) + body


def unmarshal_step_reference(data) -> StepPayload:
    """Original copying decoder, kept for the gate/equivalence tests."""
    payload, variables = _parse(data)
    for name in list(variables):
        variables[name] = variables[name].copy()
    return payload


# -- zero-copy codec ----------------------------------------------------

def marshal_step(payload: StepPayload, codec=None, context=None):
    """Encode a StepPayload to transportable bytes (CRC32-protected).

    Returns a ``bytearray`` whose layout is byte-identical to
    :func:`marshal_step_reference`, built with a single allocation.
    With an *active* :class:`~repro.codec.CodecSpec` the ``RBP3``
    frame is emitted instead (per-field compressed blocks, CRC over
    the compressed body); an inactive/lossless spec falls through to
    the byte-identical ``RBP2`` path.
    """
    if codec is not None and codec.active:
        return _marshal_step_v3(payload, codec, context)
    if not config.enabled():
        return marshal_step_reference(payload)
    attrs = json.dumps(payload.attributes).encode()
    blocks: list[tuple[bytes, np.ndarray, bytes]] = []
    size = 8 + _HEADER_SIZE + len(attrs) + 4
    for name, arr in payload.variables.items():
        arr, tag = _normalize_array(np.asarray(arr))
        name_b = name.encode()
        blocks.append((name_b, arr, tag))
        size += 2 + len(name_b) + 2 + 1 + 8 * arr.ndim + 8 + arr.nbytes

    out = bytearray(size)
    mv = memoryview(out)
    mv[0:4] = _MAGIC
    off = 8
    struct.pack_into(_HEADER, out, off, payload.step, payload.time,
                     payload.rank, len(attrs))
    off += _HEADER_SIZE
    mv[off:off + len(attrs)] = attrs
    off += len(attrs)
    struct.pack_into("<I", out, off, len(blocks))
    off += 4
    for name_b, arr, tag in blocks:
        struct.pack_into("<H", out, off, len(name_b))
        off += 2
        mv[off:off + len(name_b)] = name_b
        off += len(name_b)
        mv[off:off + 2] = tag
        off += 2
        struct.pack_into("<B", out, off, arr.ndim)
        off += 1
        struct.pack_into(f"<{arr.ndim}q", out, off, *arr.shape)
        off += 8 * arr.ndim
        struct.pack_into("<q", out, off, arr.nbytes)
        off += 8
        mv[off:off + arr.nbytes] = memoryview(arr).cast("B")
        off += arr.nbytes
    struct.pack_into("<I", out, 4, zlib.crc32(mv[8:]) & 0xFFFFFFFF)
    return out


def unmarshal_step(data, context=None) -> StepPayload:
    """Decode bytes produced by :func:`marshal_step`.

    Raises :class:`CorruptPayloadError` when the magic is unknown or
    the body fails its CRC32 check (v2/v3 payloads); v1 payloads carry
    no checksum and decode as before.  Variables are read-only —
    views into `data` for v1/v2 and raw v3 blocks, freshly decoded
    (then frozen) arrays for compressed v3 blocks — so
    :meth:`StepPayload.ensure_writable` is the single mutation path
    for every version.  `context` is the per-stream
    :class:`~repro.codec.CodecContext` temporal-delta decodes need.
    """
    if bytes(memoryview(data)[:4]) == _MAGIC_V3:
        return _unmarshal_step_v3(data, context)
    if not config.enabled():
        return unmarshal_step_reference(data)
    payload, _ = _parse(data)
    return payload


def _parse(data) -> tuple[StepPayload, dict[str, np.ndarray]]:
    """Shared decoder: header checks + read-only array views."""
    view = memoryview(data)
    if bytes(view[:4]) == _MAGIC:
        (stored,) = struct.unpack_from("<I", view, 4)
        if zlib.crc32(view[8:]) & 0xFFFFFFFF != stored:
            raise CorruptPayloadError(
                "BP payload CRC32 mismatch (corrupt or trailing bytes)"
            )
        off = 8
    elif bytes(view[:4]) == _MAGIC_V1:
        off = 4
    else:
        raise CorruptPayloadError("not a BP step payload (bad magic)")
    step, time, rank, attr_len = struct.unpack_from(_HEADER, view, off)
    off += _HEADER_SIZE
    attributes = json.loads(bytes(view[off : off + attr_len]).decode())
    off += attr_len
    (nvars,) = struct.unpack_from("<I", view, off)
    off += 4
    variables: dict[str, np.ndarray] = {}
    for _ in range(nvars):
        (name_len,) = struct.unpack_from("<H", view, off)
        off += 2
        name = bytes(view[off : off + name_len]).decode()
        off += name_len
        tag = bytes(view[off : off + 2])
        off += 2
        dtype = _TAG_DTYPES.get(tag)
        if dtype is None:
            raise ValueError(f"unknown dtype tag {tag!r} in payload")
        (ndim,) = struct.unpack_from("<B", view, off)
        off += 1
        shape = struct.unpack_from(f"<{ndim}q", view, off)
        off += 8 * ndim
        (raw_len,) = struct.unpack_from("<q", view, off)
        off += 8
        arr = np.frombuffer(view[off : off + raw_len], dtype=dtype).reshape(shape)
        arr.flags.writeable = False
        off += raw_len
        variables[name] = arr
    if off != len(view):
        raise ValueError("trailing bytes in BP payload")
    return (
        StepPayload(step=step, time=time, rank=rank, variables=variables,
                    attributes=attributes),
        variables,
    )


# -- RBP3: codec-compressed frames --------------------------------------

def _meter_codec(kind: str, raw: int, wire: int, seconds: float) -> None:
    """Aggregate raw-vs-wire and codec-time counters on this rank."""
    tel = get_telemetry()
    if not tel.enabled:
        return
    m = tel.metrics
    m.counter(
        "repro_codec_raw_bytes_total", "Uncompressed payload bytes through the codec"
    ).inc(raw)
    m.counter(
        "repro_codec_wire_bytes_total", "Codec-compressed bytes on the wire"
    ).inc(wire)
    m.counter(
        f"repro_codec_{kind}_seconds_total", f"Seconds spent in codec {kind}"
    ).inc(seconds)


def _marshal_step_v3(payload: StepPayload, codec, context) -> bytearray:
    """Encode the RBP3 frame: per-field codec blocks, CRC over them."""
    from repro.codec import encode_field

    t0 = _time.perf_counter()
    attrs = json.dumps(payload.attributes).encode()
    buf = io.BytesIO()
    buf.write(struct.pack(_HEADER, payload.step, payload.time, payload.rank,
                          len(attrs)))
    buf.write(attrs)
    buf.write(struct.pack("<I", len(payload.variables)))
    raw_total = 0
    for name, arr in payload.variables.items():
        arr, tag = _normalize_array(np.asarray(arr))
        raw_total += arr.nbytes
        cfg = codec.config_for(name, arr.dtype)
        codec_id, params, data = encode_field(
            name, arr, cfg, payload.step, context
        )
        name_b = name.encode()
        params_b = json.dumps(params).encode() if params else b"{}"
        buf.write(struct.pack("<H", len(name_b)))
        buf.write(name_b)
        buf.write(tag)
        buf.write(struct.pack("<B", arr.ndim))
        buf.write(struct.pack(f"<{arr.ndim}q", *arr.shape))
        buf.write(struct.pack("<B", codec_id))
        buf.write(struct.pack("<H", len(params_b)))
        buf.write(params_b)
        buf.write(struct.pack("<q", len(data)))
        buf.write(data)
    body = buf.getvalue()
    out = bytearray(8 + len(body))
    out[0:4] = _MAGIC_V3
    struct.pack_into("<I", out, 4, zlib.crc32(body) & 0xFFFFFFFF)
    out[8:] = body
    _meter_codec("encode", raw_total, len(out), _time.perf_counter() - t0)
    return out


def _unmarshal_step_v3(data, context) -> StepPayload:
    """Decode an RBP3 frame (CRC over the compressed body)."""
    from repro.codec import decode_field

    t0 = _time.perf_counter()
    view = memoryview(data)
    (stored,) = struct.unpack_from("<I", view, 4)
    if zlib.crc32(view[8:]) & 0xFFFFFFFF != stored:
        raise CorruptPayloadError(
            "BP payload CRC32 mismatch (corrupt or trailing bytes)"
        )
    off = 8
    step, time, rank, attr_len = struct.unpack_from(_HEADER, view, off)
    off += _HEADER_SIZE
    attributes = json.loads(bytes(view[off : off + attr_len]).decode())
    off += attr_len
    (nvars,) = struct.unpack_from("<I", view, off)
    off += 4
    variables: dict[str, np.ndarray] = {}
    raw_total = 0
    for _ in range(nvars):
        (name_len,) = struct.unpack_from("<H", view, off)
        off += 2
        name = bytes(view[off : off + name_len]).decode()
        off += name_len
        tag = bytes(view[off : off + 2])
        off += 2
        dtype = _TAG_DTYPES.get(tag)
        if dtype is None:
            raise ValueError(f"unknown dtype tag {tag!r} in payload")
        (ndim,) = struct.unpack_from("<B", view, off)
        off += 1
        shape = struct.unpack_from(f"<{ndim}q", view, off)
        off += 8 * ndim
        (codec_id,) = struct.unpack_from("<B", view, off)
        off += 1
        (params_len,) = struct.unpack_from("<H", view, off)
        off += 2
        params = json.loads(bytes(view[off : off + params_len]).decode())
        off += params_len
        (enc_len,) = struct.unpack_from("<q", view, off)
        off += 8
        arr = decode_field(
            name, codec_id, params, view[off : off + enc_len], dtype, shape,
            step, context,
        )
        arr.flags.writeable = False
        off += enc_len
        variables[name] = arr
        raw_total += arr.nbytes
    if off != len(view):
        raise ValueError("trailing bytes in BP payload")
    _meter_codec("decode", raw_total, len(view), _time.perf_counter() - t0)
    return StepPayload(step=step, time=time, rank=rank, variables=variables,
                       attributes=attributes)
