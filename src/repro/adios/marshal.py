"""BP-style binary marshaling of step data.

One *step payload* carries: step index, simulation time, producing
rank, and a set of named typed nd-arrays plus a small string-keyed
attribute table.  The encoding is explicit and little-endian (magic,
lengths, dtype tags) rather than pickle — matching how ADIOS BP
serializes for transport, keeping payload sizes honest, and avoiding
executing anything on the receive side.

Version 2 payloads (``RBP2``) prepend a CRC32 of the body so
in-flight corruption is *detected* on unmarshal — raised as
:class:`~repro.faults.errors.CorruptPayloadError` — instead of
silently feeding garbage arrays to the analysis side.  Version 1
(``RBP1``, no checksum) payloads are still readable, so BP files
written by older runs replay unchanged.
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.faults.errors import CorruptPayloadError

_MAGIC = b"RBP2"
_MAGIC_V1 = b"RBP1"

_DTYPE_TAGS = {
    np.dtype("<f8"): b"f8",
    np.dtype("<f4"): b"f4",
    np.dtype("<i8"): b"i8",
    np.dtype("<i4"): b"i4",
    np.dtype("uint8"): b"u1",
}
_TAG_DTYPES = {v: k for k, v in _DTYPE_TAGS.items()}


@dataclass
class StepPayload:
    """Decoded step data."""

    step: int
    time: float
    rank: int
    variables: dict[str, np.ndarray] = field(default_factory=dict)
    attributes: dict[str, str] = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        return sum(v.nbytes for v in self.variables.values())


def _write_block(buf: io.BytesIO, name: str, arr: np.ndarray) -> None:
    arr = np.ascontiguousarray(arr)
    dtype = arr.dtype.newbyteorder("<") if arr.dtype.byteorder == ">" else arr.dtype
    arr = arr.astype(dtype, copy=False)
    tag = _DTYPE_TAGS.get(arr.dtype)
    if tag is None:
        raise TypeError(f"unsupported dtype for BP marshal: {arr.dtype}")
    name_b = name.encode()
    buf.write(struct.pack("<H", len(name_b)))
    buf.write(name_b)
    buf.write(tag)
    buf.write(struct.pack("<B", arr.ndim))
    buf.write(struct.pack(f"<{arr.ndim}q", *arr.shape))
    raw = arr.tobytes()
    buf.write(struct.pack("<q", len(raw)))
    buf.write(raw)


def marshal_step(payload: StepPayload) -> bytes:
    """Encode a StepPayload to transportable bytes (CRC32-protected)."""
    buf = io.BytesIO()
    attrs = json.dumps(payload.attributes).encode()
    buf.write(struct.pack("<qdqI", payload.step, payload.time, payload.rank, len(attrs)))
    buf.write(attrs)
    buf.write(struct.pack("<I", len(payload.variables)))
    for name, arr in payload.variables.items():
        _write_block(buf, name, np.asarray(arr))
    body = buf.getvalue()
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return _MAGIC + struct.pack("<I", crc) + body


def unmarshal_step(data: bytes) -> StepPayload:
    """Decode bytes produced by :func:`marshal_step`.

    Raises :class:`CorruptPayloadError` when the magic is unknown or
    the body fails its CRC32 check (v2 payloads); v1 payloads carry no
    checksum and decode as before.
    """
    if data[:4] == _MAGIC:
        (stored,) = struct.unpack_from("<I", data, 4)
        if zlib.crc32(data[8:]) & 0xFFFFFFFF != stored:
            raise CorruptPayloadError(
                "BP payload CRC32 mismatch (corrupt or trailing bytes)"
            )
        off = 8
    elif data[:4] == _MAGIC_V1:
        off = 4
    else:
        raise CorruptPayloadError("not a BP step payload (bad magic)")
    step, time, rank, attr_len = struct.unpack_from("<qdqI", data, off)
    off += struct.calcsize("<qdqI")
    attributes = json.loads(data[off : off + attr_len].decode())
    off += attr_len
    (nvars,) = struct.unpack_from("<I", data, off)
    off += 4
    variables: dict[str, np.ndarray] = {}
    for _ in range(nvars):
        (name_len,) = struct.unpack_from("<H", data, off)
        off += 2
        name = data[off : off + name_len].decode()
        off += name_len
        tag = data[off : off + 2]
        off += 2
        dtype = _TAG_DTYPES.get(tag)
        if dtype is None:
            raise ValueError(f"unknown dtype tag {tag!r} in payload")
        (ndim,) = struct.unpack_from("<B", data, off)
        off += 1
        shape = struct.unpack_from(f"<{ndim}q", data, off)
        off += 8 * ndim
        (raw_len,) = struct.unpack_from("<q", data, off)
        off += 8
        arr = np.frombuffer(data[off : off + raw_len], dtype=dtype).reshape(shape)
        off += raw_len
        variables[name] = arr.copy()
    if off != len(data):
        raise ValueError("trailing bytes in BP payload")
    return StepPayload(step=step, time=time, rank=rank, variables=variables, attributes=attributes)
