"""Benchmark harness: regenerate every figure/table of the evaluation.

Two-level design (see DESIGN.md section 5):

1. **measure** — run the real instrumented stack at laptop scale
   (a few threaded ranks, a few timesteps) and extract a
   :class:`repro.insitu.instrumentation.RunProfile`: per-step compute
   seconds, bytes per channel, memory per rank.
2. **replay** — feed the profile and a machine spec
   (:data:`repro.machine.POLARIS` / :data:`repro.machine.JUWELS_BOOSTER`)
   to first-order cost models to predict the paper-scale figures.

Experiment drivers (one per paper artifact):

- :mod:`repro.bench.fig2` — pb146 time-to-solution, 280/560/1120 ranks
- :mod:`repro.bench.fig3` — pb146 aggregate memory high-water mark
- :mod:`repro.bench.storage` — 6.5 MB images vs 19 GB checkpoints
- :mod:`repro.bench.fig5` — RBC in transit weak scaling, time/step
- :mod:`repro.bench.fig6` — RBC in transit memory per node
- :mod:`repro.bench.ablations` — in situ frequency, SST queue, ratio
- :mod:`repro.bench.robustness` — fault-injected in transit runs:
  endpoint crash + payload corruption, FaultLog accounting
- :mod:`repro.bench.serving` — multi-client frame fan-out load test:
  hundreds of loopback viewers, backpressure, latency percentiles

Each driver has a ``run(...) -> Table`` and is executable as
``python -m repro.bench.figN``.
"""

from repro.bench.measure import measure_insitu_profile, measure_intransit_profiles
from repro.bench.replay import (
    PredictedRun,
    ReplayConfig,
    predict_insitu_run,
    predict_intransit_step,
)

__all__ = [
    "measure_insitu_profile",
    "measure_intransit_profiles",
    "PredictedRun",
    "ReplayConfig",
    "predict_insitu_run",
    "predict_intransit_step",
]
