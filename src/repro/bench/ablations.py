"""Ablation benchmarks for the design choices DESIGN.md calls out.

- :func:`insitu_frequency` — how the in situ action interval trades
  overhead against temporal resolution (paper uses every 100 steps),
- :func:`sst_queue` — SST QueueLimit / QueueFullPolicy: backpressure
  vs dropped steps when the endpoint is slower than the simulation,
- :func:`endpoint_ratio` — sim:endpoint node ratio (paper fixes 4:1).

Each returns a Table; run as ``python -m repro.bench.ablations``.
"""

from __future__ import annotations

from repro.bench.replay import ReplayConfig, predict_insitu_run
from repro.bench.workloads import PB146_GRIDPOINTS, PB146_STEPS, pb146_profiles
from repro.bench.measure import measure_intransit_profiles
from repro.machine import POLARIS
from repro.nekrs.cases import weak_scaled_rbc_case
from repro.util.sizes import format_bytes
from repro.util.tables import Table


def insitu_frequency(
    intervals: tuple[int, ...] = (10, 50, 100, 500),
    ranks: int = 280,
    config: ReplayConfig = ReplayConfig(),
    measure_kwargs: dict | None = None,
) -> Table:
    """Sweep the in situ action interval at fixed 3000 steps."""
    profiles = pb146_profiles(**(measure_kwargs or {}))
    table = Table(
        ["interval", "catalyst [s]", "overhead vs original [%]",
         "images", "image storage"],
        title=f"Ablation — in situ frequency (pb146, {ranks} ranks)",
    )
    base = predict_insitu_run(
        profiles["original"], POLARIS, ranks, PB146_GRIDPOINTS,
        steps=PB146_STEPS, interval=100, config=config,
    ).total_seconds
    images_per_invocation = profiles["catalyst"].extra.get("images_per_invocation", 2)
    for interval in intervals:
        pred = predict_insitu_run(
            profiles["catalyst"], POLARIS, ranks, PB146_GRIDPOINTS,
            steps=PB146_STEPS, interval=interval, config=config,
        )
        dumps = PB146_STEPS // interval
        table.add_row(
            [
                interval,
                pred.total_seconds,
                100.0 * (pred.total_seconds - base) / base,
                int(dumps * images_per_invocation),
                format_bytes(pred.storage_bytes),
            ]
        )
    return table


def sst_queue(
    queue_limits: tuple[int, ...] = (1, 2, 4),
    policies: tuple[str, ...] = ("Block", "Discard"),
    total_ranks: int = 5,
    steps: int = 6,
) -> Table:
    """Measure (for real, at small scale) how the SST queue behaves
    when the Catalyst endpoint is slower than the simulation."""

    def case_builder(nsim):
        c = weak_scaled_rbc_case(nsim, elements_per_rank=4, order=3, dt=1e-3)
        return c.with_overrides(num_steps=steps)

    table = Table(
        ["queue limit", "policy", "sim ms/step", "steps received", "steps dropped"],
        title="Ablation — SST QueueLimit / QueueFullPolicy (measured)",
    )
    for limit in queue_limits:
        for policy in policies:
            out = measure_intransit_profiles(
                case_builder,
                "catalyst",
                total_ranks=total_ranks,
                steps=steps,
                stream_interval=1,
                queue_limit=limit,
                queue_full_policy=policy,
                image_size=96,
            )
            sim = out["simulation"]
            end = out["endpoint"]
            dropped = steps - end["steps"]
            table.add_row(
                [limit, policy, sim.solver_seconds_per_step * 1e3,
                 end["steps"], max(dropped, 0)]
            )
    return table


def endpoint_ratio(
    ratios: tuple[int, ...] = (2, 4, 8),
    steps: int = 4,
) -> Table:
    """Measure sim-vs-endpoint balance across sim:endpoint ratios."""

    def case_builder(nsim):
        c = weak_scaled_rbc_case(nsim, elements_per_rank=4, order=3, dt=1e-3)
        return c.with_overrides(num_steps=steps)

    table = Table(
        ["ratio", "total ranks", "sim ranks", "endpoint ranks",
         "sim ms/step", "endpoint ms/step"],
        title="Ablation — sim:endpoint ratio (measured)",
    )
    for ratio in ratios:
        total = ratio + 1
        out = measure_intransit_profiles(
            case_builder,
            "catalyst",
            total_ranks=total,
            steps=steps,
            stream_interval=2,
            ratio=ratio,
            image_size=96,
        )
        sim = out["simulation"]
        end = out["endpoint"]
        table.add_row(
            [f"{ratio}:1", total, sim.ranks, end["ranks"],
             sim.solver_seconds_per_step * 1e3, end["mean_step_seconds"] * 1e3]
        )
    return table


def data_reduction(
    error_bounds: tuple[float, ...] = (1e-2, 1e-4, 1e-6),
    steps: int = 4,
    interval: int = 2,
) -> Table:
    """The fidelity-vs-volume curve the paper's dilemma implies.

    Measures, on a real pb146-analog run, the bytes written per dump
    by: raw .fld checkpointing, error-bounded compressed dumps at
    several tolerances, and Catalyst images — the full spectrum from
    "keep everything" to "keep two views".
    """
    import tempfile
    from pathlib import Path

    from repro.insitu import Bridge, NekDataAdaptor
    from repro.nekrs import NekRSSolver
    from repro.nekrs.checkpoint import write_checkpoint
    from repro.parallel import SerialCommunicator
    from repro.sensei.analyses import CompressedIO
    from repro.bench.workloads import measurement_pebble_case

    case = measurement_pebble_case(num_pebbles=3, elements_per_unit=3,
                                   order=3, num_steps=steps)
    comm = SerialCommunicator()
    solver = NekRSSolver(case, comm)
    adaptor = NekDataAdaptor(solver)
    outdir = Path(tempfile.mkdtemp(prefix="repro-reduction-"))

    compressed = {
        b: CompressedIO(
            comm, outdir / f"szl{b:g}",
            arrays=("pressure", "velocity_x", "velocity_y", "velocity_z"),
            error_bound=b,
        )
        for b in error_bounds
    }
    catalyst_xml = (
        '<sensei><analysis type="catalyst" mesh="uniform" '
        'array="velocity_magnitude" isovalue="0.5" width="256" '
        f'height="256" frequency="{interval}"/></sensei>'
    )
    bridge = Bridge(solver, config_xml=catalyst_xml, output_dir=outdir / "png")

    raw_bytes = 0
    dumps = 0
    for _ in range(steps):
        report = solver.step()
        if report.step % interval == 0:
            dumps += 1
            fields = {"pressure": solver.p, "velocity_x": solver.u,
                      "velocity_y": solver.v, "velocity_z": solver.w}
            _, n = write_checkpoint(outdir / "fld", case.name, report.step,
                                    report.time, 0, 1, fields)
            raw_bytes += n
            adaptor.set_data_time_step(report.step)
            adaptor.set_data_time(report.time)
            for io in compressed.values():
                io.execute(adaptor)
            adaptor.release_data()
            bridge.update(report.step, report.time)
    bridge.finalize()
    image_bytes = bridge.analysis.adaptors[0][1].image_bytes

    table = Table(
        ["representation", "bytes/dump", "vs raw", "guaranteed error"],
        title="Ablation — data reduction spectrum (measured, per dump)",
    )
    table.add_row(["raw .fld checkpoint", raw_bytes // dumps, 1.0, "0 (exact)"])
    for bound, io in sorted(compressed.items(), reverse=True):
        table.add_row(
            [
                f"compressed (SZ-lite)",
                io.bytes_written // dumps,
                io.bytes_written / raw_bytes,
                f"{bound:g}",
            ]
        )
    table.add_row(
        ["catalyst images", image_bytes // dumps, image_bytes / raw_bytes,
         "n/a (pixels)"]
    )
    return table


def partition_strategy(
    shape: tuple[int, int, int] = (8, 8, 4),
    order: int = 3,
    rank_counts: tuple[int, ...] = (2, 4, 8),
) -> Table:
    """Slab vs Morton element partitioning: gather-scatter interface size.

    Measured on real meshes: the number of interface nodes each rank
    shares with peers (the per-application communication volume of the
    direct-stiffness exchange).  Space-filling-curve bricks beat thin
    slabs as rank counts grow — why production Nek does not use naive
    slabs.
    """
    from repro.parallel import run_spmd
    from repro.sem import BoxMesh
    from repro.sem.gather_scatter import GatherScatter

    def measure(partition, ranks):
        def body(comm):
            mesh = BoxMesh(shape, order=order, rank=comm.rank,
                           size=comm.size, partition=partition)
            gs = GatherScatter(mesh.global_ids, comm)
            return len(gs.interface_ids)

        return run_spmd(ranks, body)[0]

    table = Table(
        ["ranks", "slab interface nodes", "morton interface nodes",
         "morton/slab"],
        title=f"Ablation — partition strategy, {shape} elements at order "
        f"{order} (measured gather-scatter interface)",
    )
    for ranks in rank_counts:
        slab = measure("slab", ranks)
        morton = measure("morton", ranks)
        table.add_row([ranks, slab, morton, morton / slab if slab else 0.0])
    return table


def strong_scaling_limit(
    rank_counts: tuple[int, ...] = (70, 140, 280, 560, 1120, 2240),
    measure_kwargs: dict | None = None,
) -> Table:
    """Where does pb146 stop strong-scaling on Polaris?

    The replay model separates per-step compute (shrinks with ranks)
    from collective latency (grows ~log P): their crossover is the
    strong-scaling limit for this problem size.  The paper runs up to
    1120 ranks; this ablation shows how much further would have paid.
    """
    from repro.bench.workloads import pb146_profiles, PB146_GRIDPOINTS, PB146_STEPS

    profiles = pb146_profiles(**(measure_kwargs or {}))
    table = Table(
        ["ranks", "time [s]", "compute share [%]", "collective share [%]",
         "parallel efficiency [%]"],
        title="Ablation — pb146 strong-scaling limit on Polaris (Original config)",
    )
    base = None
    for ranks in rank_counts:
        pred = predict_insitu_run(
            profiles["original"], POLARIS, ranks, PB146_GRIDPOINTS,
            steps=PB146_STEPS,
        )
        total = pred.total_seconds
        if base is None:
            base = (ranks, total)
        efficiency = 100.0 * (base[1] / total) * (base[0] / ranks)
        table.add_row(
            [
                ranks,
                total,
                100.0 * pred.seconds.get("solve", 0.0) / total,
                100.0 * pred.seconds.get("collectives", 0.0) / total,
                efficiency,
            ]
        )
    return table


if __name__ == "__main__":
    print(insitu_frequency().render())
    print()
    print(sst_queue().render())
    print()
    print(endpoint_ratio().render())
    print()
    print(data_reduction().render())
    print()
    print(strong_scaling_limit().render())
