"""Compression bench: measured codec ratios + modeled in-transit step.

Two halves, matching how the other figure drivers split work:

- **Measured** — short single-rank RBC and pb146-analog solves produce
  real velocity/pressure/temperature sequences; each field sequence is
  pushed through the :mod:`repro.codec` pipelines at the gate budget
  (relative 1e-3) and the raw-vs-wire ratio, encode/decode bandwidth
  and worst-case reconstruction error are recorded.  The ratio is a
  property of the *data*, not the machine, so the laptop-scale
  measurement transfers to paper scale directly.
- **Modeled** — the measured ratio is replayed on the paper machine at
  the Section 4.2 shape (1120 ranks: 896 simulation + 224 endpoints at
  the 4:1 in-transit split): per-step seconds for solve, collectives,
  on-device encode, D2H, marshal, and SST stream, compressed vs
  uncompressed.  On-device encode is charged at
  :data:`CODEC_DEVICE_BANDWIDTH` — an SZ/ZFP-class GPU compressor
  sustains tens of GB/s, so compression happens *before* the PCIe hop
  and the wire only ever sees compressed bytes.  Every relative
  conclusion (compressed step <= uncompressed step) is insensitive to
  the exact constant until it drops below PCIe bandwidth.

``python -m repro.bench.compression`` prints the table;
``python -m repro bench --gate`` pins the modeled compressed step and
the measured >=4x ratio as the ``compression`` row in BENCH_9.json.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.bench.replay import ReplayConfig
from repro.codec import CodecContext, CodecSpec, decode_field, encode_field
from repro.machine import (
    JUWELS_BOOSTER,
    ClusterSpec,
    CollectiveModel,
    DragonflyPlusTopology,
    NetworkModel,
    PcieModel,
)
from repro.util.sizes import format_bytes
from repro.util.tables import Table

#: sustained on-device (GPU) compression throughput, bytes/s.  Public
#: cuSZ / nvCOMP / ZFP-CUDA figures for f8 fields on an A100 cluster
#: around 30-90 GB/s; 50 GB/s is a mid-range pick, ~2x the effective
#: PCIe gen4 x16 rate, so encode overlaps favorably with the D2H hop
#: it shrinks.
CODEC_DEVICE_BANDWIDTH = 50e9

#: Section 4.2 paper shape: 1120 total ranks at the 4:1 split.
PAPER_SIM_RANKS = 896
PAPER_ENDPOINT_RATIO = 4

#: streamed bytes per gridpoint per step: velocity (3 x f8) + pressure
#: (f8), the fields the gate row compresses.
STREAM_BYTES_PER_GRIDPOINT = 32.0

#: the gate budget: every lossy row runs at relative 1e-3.
GATE_BUDGET = "1e-3"

_CODECS = ("lossless", "delta-rle", "bitplane-rle")

_measure_cache: dict = {}


# -- measured half -------------------------------------------------------

def _field_sequences(case, steps: int) -> dict[str, list[np.ndarray]]:
    """Run `case` single-rank for `steps`; return per-field step series."""
    from repro.nekrs import NekRSSolver
    from repro.parallel import SerialCommunicator

    solver = NekRSSolver(case, SerialCommunicator())
    seqs: dict[str, list[np.ndarray]] = {}
    for _ in range(steps):
        solver.step()
        fields = {
            "velocity_u": solver.u,
            "velocity_v": solver.v,
            "velocity_w": solver.w,
            "pressure": solver.p,
        }
        if solver.T is not None:
            fields["temperature"] = solver.T
        for name, arr in fields.items():
            seqs.setdefault(name, []).append(np.array(arr, dtype=np.float64))
    return seqs


def _measure_one(name: str, seq: list[np.ndarray], codec: str) -> dict:
    """Encode a field's step sequence through one codec; decode-verify.

    One encode context carries the temporal reference chain (delta-rle
    runs temporal, exactly as the SST writer engine does) and one
    decode context mirrors the reader side, so the measured ratio is
    the steady-state wire ratio of a streaming run, not a single-shot
    number.
    """
    spec = CodecSpec.from_cli(codec, GATE_BUDGET, temporal=True)
    enc_ctx, dec_ctx = CodecContext(), CodecContext()
    max_err = 0.0
    bound = 0.0
    for step, arr in enumerate(seq):
        cfg = spec.config_for(name, arr.dtype)
        if cfg is not None and not cfg.budget.lossless:
            bound = max(bound, cfg.budget.bound_for(arr) or 0.0)
        codec_id, params, data = encode_field(name, arr, cfg, step, enc_ctx)
        out = decode_field(
            name, codec_id, params, data, arr.dtype, arr.shape, step, dec_ctx
        )
        err = float(np.max(np.abs(out - arr))) if arr.size else 0.0
        max_err = max(max_err, err)
    stats = enc_ctx.stats
    dec_seconds = dec_ctx.stats.decode_seconds
    return {
        "field": name,
        "codec": codec,
        "raw_bytes": stats.raw_bytes,
        "wire_bytes": stats.wire_bytes,
        "ratio": stats.ratio,
        "encode_mb_s": (
            stats.raw_bytes / stats.encode_seconds / 1e6
            if stats.encode_seconds else float("inf")
        ),
        "decode_mb_s": (
            stats.raw_bytes / dec_seconds / 1e6 if dec_seconds else float("inf")
        ),
        "max_abs_err": max_err,
        "bound": bound,
    }


def measure_compression(
    rbc_ranks: int = 8,
    rbc_order: int = 4,
    pebble_count: int = 5,
    pebble_order: int = 3,
    steps: int = 6,
    codecs: tuple[str, ...] = _CODECS,
) -> dict:
    """Measured ratios for both cases, all codecs (module-cached).

    Returns ``{"rows": [...], "aggregate": {(case, codec): ratio},
    "gate_ratio": float}`` where ``gate_ratio`` is the combined
    velocity+pressure wire ratio for ``delta-rle`` across both cases —
    the number the ISSUE's >=4x acceptance pins.
    """
    from repro.bench.workloads import measurement_pebble_case
    from repro.nekrs.cases import weak_scaled_rbc_case

    key = (rbc_ranks, rbc_order, pebble_count, pebble_order, steps, codecs)
    if key in _measure_cache:
        return _measure_cache[key]

    cases = {
        "rbc": weak_scaled_rbc_case(
            rbc_ranks, elements_per_rank=4, order=rbc_order, dt=1e-3
        ),
        f"pb{pebble_count}": measurement_pebble_case(
            num_pebbles=pebble_count, order=pebble_order, num_steps=steps
        ),
    }
    rows: list[dict] = []
    gate_raw = gate_wire = 0
    aggregate: dict[tuple[str, str], float] = {}
    for case_name, case in cases.items():
        seqs = _field_sequences(case, steps)
        for codec in codecs:
            agg_raw = agg_wire = 0
            for field_name, seq in seqs.items():
                row = _measure_one(field_name, seq, codec)
                row["case"] = case_name
                rows.append(row)
                if field_name.startswith(("velocity", "pressure")):
                    agg_raw += row["raw_bytes"]
                    agg_wire += row["wire_bytes"]
                    if codec == "delta-rle":
                        gate_raw += row["raw_bytes"]
                        gate_wire += row["wire_bytes"]
            aggregate[(case_name, codec)] = (
                agg_raw / agg_wire if agg_wire else 1.0
            )
    result = {
        "rows": rows,
        "aggregate": aggregate,
        "gate_ratio": gate_raw / gate_wire if gate_wire else 1.0,
        "budget": GATE_BUDGET,
    }
    _measure_cache[key] = result
    return result


def clear_cache() -> None:
    _measure_cache.clear()


# -- modeled half --------------------------------------------------------

def predict_compressed_step(
    cluster: ClusterSpec = JUWELS_BOOSTER,
    num_sim_ranks: int = PAPER_SIM_RANKS,
    compression_ratio: float = 1.0,
    ratio: int = PAPER_ENDPOINT_RATIO,
    gridpoints_per_rank: float = 2.0e6,
    bytes_per_gridpoint: float = STREAM_BYTES_PER_GRIDPOINT,
    codec_bandwidth: float = CODEC_DEVICE_BANDWIDTH,
    config: ReplayConfig = ReplayConfig(),
) -> dict:
    """One modeled in-transit timestep with the codec in the path.

    Mirrors :func:`repro.bench.replay.predict_intransit_step`'s cost
    terms; `compression_ratio` shrinks every post-encode byte count
    (D2H, marshal, stream, staged queue) while charging the on-device
    encode for the *raw* bytes at `codec_bandwidth`.
    """
    if compression_ratio < 1.0:
        raise ValueError("compression_ratio must be >= 1 (1 = uncompressed)")
    total_ranks = num_sim_ranks + max(1, num_sim_ranks // ratio)
    nodes = cluster.nodes_for_ranks(total_ranks)
    topo = DragonflyPlusTopology(cluster)
    net = NetworkModel(cluster, topo)
    coll = CollectiveModel(net)
    hops = topo.mean_hops(nodes)
    pcie = PcieModel(cluster.node.gpu)

    raw = int(bytes_per_gridpoint * gridpoints_per_rank)
    wire = int(math.ceil(raw / compression_ratio))
    seconds = {
        "solve": gridpoints_per_rank / config.gpu_dof_throughput,
        "collectives": config.allreduces_per_step
        * coll.allreduce_time(8, num_sim_ranks, hops),
    }
    if compression_ratio > 1.0:
        seconds["encode"] = raw / codec_bandwidth
    seconds["d2h"] = pcie.transfer_time(wire)
    seconds["marshal"] = wire / config.marshal_bandwidth
    seconds["stream"] = net.stream_time(
        wire, cluster.node.ranks_per_node, math.ceil(hops)
    )
    return {
        "cluster": cluster.name,
        "total_ranks": total_ranks,
        "sim_ranks": num_sim_ranks,
        "endpoint_ranks": total_ranks - num_sim_ranks,
        "raw_bytes_per_rank": raw,
        "wire_bytes_per_rank": wire,
        "seconds": seconds,
        "total_seconds": sum(seconds.values()),
    }


def gate_step_seconds(compressed: bool, **measure_kwargs) -> float:
    """The gate row's self-measured number: modeled step seconds.

    Optimized path (`compressed`) replays the *measured* delta-rle
    velocity+pressure ratio at the 1120-rank paper shape and enforces
    the ISSUE's floor — a measured ratio under 4x at the 1e-3 budget
    fails the gate loudly rather than quietly shipping a worse wire.
    The reference path is the same step uncompressed.
    """
    if not compressed:
        return predict_compressed_step(compression_ratio=1.0)["total_seconds"]
    measured = measure_compression(**measure_kwargs)
    ratio = measured["gate_ratio"]
    if ratio < 4.0:
        raise RuntimeError(
            f"compression gate: measured velocity+pressure ratio {ratio:.2f}x "
            f"at relative {GATE_BUDGET} is below the 4x floor"
        )
    return predict_compressed_step(compression_ratio=ratio)["total_seconds"]


# -- table ---------------------------------------------------------------

def run(measure_kwargs: dict | None = None) -> Table:
    t0 = time.perf_counter()
    measured = measure_compression(**(measure_kwargs or {}))
    table = Table(
        ["case", "field", "codec", "raw", "wire", "ratio",
         "enc [MB/s]", "max err / bound"],
        title=(
            "Compression — measured codec ratios at relative "
            f"{GATE_BUDGET} ({time.perf_counter() - t0:.1f}s measure)"
        ),
        float_format="{:.2f}",
    )
    for row in measured["rows"]:
        over = (
            f"{row['max_abs_err']:.2e} / {row['bound']:.2e}"
            if row["bound"] else f"{row['max_abs_err']:.2e} / exact"
        )
        table.add_row([
            row["case"], row["field"], row["codec"],
            format_bytes(row["raw_bytes"]), format_bytes(row["wire_bytes"]),
            f"{row['ratio']:.2f}x", f"{row['encode_mb_s']:.0f}", over,
        ])
    for (case_name, codec), ratio in sorted(measured["aggregate"].items()):
        table.add_row([
            case_name, "velocity+pressure", codec, "", "",
            f"{ratio:.2f}x", "", "(aggregate)",
        ])
    table.add_row([
        "both", "velocity+pressure", "delta-rle", "", "",
        f"{measured['gate_ratio']:.2f}x", "", "(gate, floor 4x)",
    ])

    ratio = max(measured["gate_ratio"], 1.0)
    base = predict_compressed_step(compression_ratio=1.0)
    comp = predict_compressed_step(compression_ratio=ratio)
    for label, pred in (("uncompressed", base), ("compressed", comp)):
        terms = ", ".join(
            f"{k} {v * 1e3:.1f}ms" for k, v in pred["seconds"].items()
        )
        table.add_row([
            pred["cluster"], f"{pred['total_ranks']} ranks", label,
            format_bytes(pred["raw_bytes_per_rank"]),
            format_bytes(pred["wire_bytes_per_rank"]),
            f"{pred['total_seconds'] * 1e3:.1f}ms/step", "", terms,
        ])
    return table


if __name__ == "__main__":
    print(run().render())
