"""Device-render bench: modeled 1120-rank in situ overhead, host vs device.

The gate row for the device-resident visualization pipeline.  The
measured pb146-analog profiles (shared with Figures 2/3 through
:func:`repro.bench.workloads.pb146_profiles`) are replayed on the paper
machine at the largest Section 4.1 shape — 1120 ranks — and the number
pinned is the *in situ overhead*: predicted total seconds of the
Catalyst configuration minus the original (no-I/O) run.  Optimized is
``catalyst_device`` (tile-only PCIe traffic, no host staging, GPU
render kernels); the reference is the host-resident ``catalyst`` mode.

``python -m repro.bench.device_render`` prints the comparison;
``python -m repro bench --gate`` pins the device overhead as the
``device_render`` row in BENCH_9.json and enforces the ISSUE's floor —
a modeled overhead reduction under 1.5x fails loudly rather than
quietly shipping a regressed render path.
"""

from __future__ import annotations

from repro.bench.replay import predict_insitu_run
from repro.bench.workloads import (
    PB146_GRIDPOINTS,
    PB146_INTERVAL,
    PB146_STEPS,
    pb146_profiles,
)
from repro.machine import POLARIS
from repro.util.tables import Table

#: largest Fig. 2 configuration — where the D->H gather hurts most.
GATE_RANKS = 1120

#: acceptance floor: device residency must cut the modeled in situ
#: overhead by at least this factor at GATE_RANKS.
MIN_OVERHEAD_REDUCTION = 1.5

#: laptop-scale measurement shape (matches the quick-report pb146
#: kwargs so a report run in the same process reuses the cached
#: profiles).
MEASURE_KWARGS = dict(ranks=2, steps=4, interval=2, num_pebbles=3,
                      order=3, image_size=192)

_MODES = ("original", "catalyst", "catalyst_device")


def measure_device_render(measure_kwargs: dict | None = None) -> dict:
    """Modeled GATE_RANKS overhead for both residencies.

    Cheap after the first call — the underlying profile measurement is
    module-cached in :mod:`repro.bench.workloads`.
    """
    profiles = pb146_profiles(**(MEASURE_KWARGS if measure_kwargs is None
                                 else measure_kwargs))
    preds = {
        mode: predict_insitu_run(
            profiles[mode], POLARIS, GATE_RANKS, PB146_GRIDPOINTS,
            steps=PB146_STEPS, interval=PB146_INTERVAL,
        )
        for mode in _MODES
    }
    base = preds["original"].total_seconds
    host = preds["catalyst"].total_seconds - base
    device = preds["catalyst_device"].total_seconds - base
    return {
        "ranks": GATE_RANKS,
        "host_overhead_s": host,
        "device_overhead_s": device,
        "reduction": host / device if device > 0 else float("inf"),
        "host_seconds": preds["catalyst"].seconds,
        "device_seconds": preds["catalyst_device"].seconds,
    }


def gate_step_seconds(device: bool, measure_kwargs: dict | None = None) -> float:
    """The gate row's self-measured number: modeled overhead seconds.

    Optimized path (`device`) is the device-resident pipeline and
    enforces the >=1.5x floor; the reference is the same run with the
    host-resident gather in the path.
    """
    measured = measure_device_render(measure_kwargs)
    if not device:
        return measured["host_overhead_s"]
    if measured["reduction"] < MIN_OVERHEAD_REDUCTION:
        raise RuntimeError(
            f"device_render gate: modeled {GATE_RANKS}-rank overhead "
            f"reduction {measured['reduction']:.2f}x is below the "
            f"{MIN_OVERHEAD_REDUCTION}x floor "
            f"(host {measured['host_overhead_s']:.3f}s vs device "
            f"{measured['device_overhead_s']:.3f}s)"
        )
    return measured["device_overhead_s"]


def run(measure_kwargs: dict | None = None) -> Table:
    measured = measure_device_render(measure_kwargs)
    table = Table(
        ["residency", "overhead [s]", "terms"],
        title=(
            f"Device-resident Catalyst — modeled in situ overhead at "
            f"{GATE_RANKS} ranks (floor {MIN_OVERHEAD_REDUCTION}x)"
        ),
        float_format="{:.3f}",
    )
    for label, key in (("host", "host"), ("device", "device")):
        terms = ", ".join(
            f"{k} {v * 1e3:.1f}ms"
            for k, v in measured[f"{key}_seconds"].items()
            if k not in ("solve", "collectives")
        )
        table.add_row([label, measured[f"{key}_overhead_s"], terms])
    table.add_row(["reduction", measured["reduction"], "(host / device)"])
    return table


if __name__ == "__main__":
    print(run().render())
