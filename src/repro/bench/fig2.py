"""Figure 2: pb146 time-to-solution — Catalyst vs Checkpointing vs Original.

Paper setup: 3000 timesteps on Polaris at 280 / 560 / 1120 ranks
(70/140/280 nodes), in situ or checkpoint action every 100 steps.
Expected shape: Original < Checkpointing <= Catalyst, with the in situ
overhead "slight" relative to checkpointing.

Run as ``python -m repro.bench.fig2``.
"""

from __future__ import annotations

from repro.bench.replay import ReplayConfig, predict_insitu_run
from repro.bench.workloads import (
    PB146_GRIDPOINTS,
    PB146_INTERVAL,
    PB146_STEPS,
    pb146_profiles,
)
from repro.machine import POLARIS, ClusterSpec
from repro.util.tables import Table

RANK_COUNTS = (280, 560, 1120)
MODES = ("original", "checkpoint", "catalyst", "catalyst_device")


def run(
    rank_counts: tuple[int, ...] = RANK_COUNTS,
    cluster: ClusterSpec = POLARIS,
    steps: int = PB146_STEPS,
    interval: int = PB146_INTERVAL,
    total_gridpoints: float = PB146_GRIDPOINTS,
    config: ReplayConfig = ReplayConfig(),
    measure_kwargs: dict | None = None,
) -> Table:
    """Measure the three modes at laptop scale, replay at paper scale."""
    profiles = pb146_profiles(**(measure_kwargs or {}))
    table = Table(
        ["ranks", "original [s]", "checkpointing [s]", "catalyst [s]",
         "device catalyst [s]", "ckpt overhead [%]", "catalyst overhead [%]",
         "device overhead [%]"],
        title=f"Fig. 2 — pb146 time-to-solution on {cluster.name} "
        f"({steps} steps, action every {interval})",
    )
    predictions = {}
    for ranks in rank_counts:
        row = {}
        for mode in MODES:
            pred = predict_insitu_run(
                profiles[mode],
                cluster,
                ranks,
                total_gridpoints,
                steps=steps,
                interval=interval,
                config=config,
            )
            row[mode] = pred
        predictions[ranks] = row
        base = row["original"].total_seconds
        table.add_row(
            [
                ranks,
                row["original"].total_seconds,
                row["checkpoint"].total_seconds,
                row["catalyst"].total_seconds,
                row["catalyst_device"].total_seconds,
                100.0 * (row["checkpoint"].total_seconds - base) / base,
                100.0 * (row["catalyst"].total_seconds - base) / base,
                100.0 * (row["catalyst_device"].total_seconds - base) / base,
            ]
        )
    table.predictions = predictions  # attached for downstream figures
    return table


if __name__ == "__main__":
    print(run().render())
