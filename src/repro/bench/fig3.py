"""Figure 3: pb146 aggregate memory high-water mark.

Paper finding: Catalyst's CPU memory is ~25% above Checkpointing,
"rational, given the need to transition data from GPU to CPU and the
inherent overhead accompanying Catalyst operations."

Run as ``python -m repro.bench.fig3``.
"""

from __future__ import annotations

from repro.bench.fig2 import MODES, RANK_COUNTS
from repro.bench.replay import ReplayConfig, predict_insitu_run
from repro.bench.workloads import (
    PB146_GRIDPOINTS,
    PB146_INTERVAL,
    PB146_STEPS,
    pb146_profiles,
)
from repro.machine import POLARIS, ClusterSpec
from repro.util.sizes import GIB
from repro.util.tables import Table


def run(
    rank_counts: tuple[int, ...] = RANK_COUNTS,
    cluster: ClusterSpec = POLARIS,
    steps: int = PB146_STEPS,
    interval: int = PB146_INTERVAL,
    total_gridpoints: float = PB146_GRIDPOINTS,
    config: ReplayConfig = ReplayConfig(),
    measure_kwargs: dict | None = None,
) -> Table:
    profiles = pb146_profiles(**(measure_kwargs or {}))
    table = Table(
        ["ranks", "checkpointing [GiB]", "catalyst [GiB]",
         "device catalyst [GiB]", "catalyst/checkpointing",
         "device/checkpointing"],
        title=f"Fig. 3 — pb146 aggregate memory high-water mark on {cluster.name}",
    )
    for ranks in rank_counts:
        preds = {
            mode: predict_insitu_run(
                profiles[mode],
                cluster,
                ranks,
                total_gridpoints,
                steps=steps,
                interval=interval,
                config=config,
            )
            for mode in MODES
        }
        ckpt = preds["checkpoint"].memory_aggregate_bytes
        cat = preds["catalyst"].memory_aggregate_bytes
        dev = preds["catalyst_device"].memory_aggregate_bytes
        table.add_row(
            [ranks, ckpt / GIB, cat / GIB, dev / GIB, cat / ckpt, dev / ckpt]
        )
    return table


if __name__ == "__main__":
    print(run().render())
