"""Figure 5: in transit RBC — mean time per timestep, weak scaling.

Paper setup: NekRS-SENSEI on JUWELS Booster streams through ADIOS2 SST
to a SENSEI endpoint (4:1 sim:endpoint nodes); measurement points are
No Transport / Checkpointing / Catalyst.  Expected shape: the three
curves sit close together and stay ~flat as ranks grow (weak scaling
works; in transit overhead is small).

Run as ``python -m repro.bench.fig5``.
"""

from __future__ import annotations

from repro.bench.replay import ReplayConfig, predict_intransit_step
from repro.bench.workloads import rbc_profiles
from repro.machine import JUWELS_BOOSTER, ClusterSpec
from repro.util.tables import Table

RANK_COUNTS = (16, 64, 256, 1024)
MODES = ("none", "checkpoint", "catalyst")


def run(
    rank_counts: tuple[int, ...] = RANK_COUNTS,
    cluster: ClusterSpec = JUWELS_BOOSTER,
    ratio: int = 4,
    config: ReplayConfig = ReplayConfig(),
    measure_kwargs: dict | None = None,
) -> Table:
    profiles = rbc_profiles(**(measure_kwargs or {}))
    table = Table(
        ["ranks", "no transport [ms/step]", "checkpointing [ms/step]",
         "catalyst [ms/step]"],
        title=f"Fig. 5 — RBC in transit mean time per timestep on {cluster.name} "
        f"(weak scaling, {ratio}:1 sim:endpoint)",
    )
    for ranks in rank_counts:
        row = [ranks]
        for mode in MODES:
            pred = predict_intransit_step(
                profiles[mode]["simulation"], cluster, ranks, ratio=ratio, config=config
            )
            row.append(pred.seconds_per_step * 1e3)
        table.add_row(row)
    return table


if __name__ == "__main__":
    print(run().render())
