"""Figure 6: in transit RBC — main-memory footprint per simulation node.

Paper findings: per-node memory is ~flat under weak scaling; Catalyst
and No Transport are very similar; Checkpointing's overhead is visible
but not large; and simulation memory is independent of the number of
visualization nodes (the in-transit headline).

Run as ``python -m repro.bench.fig6``.
"""

from __future__ import annotations

from repro.bench.fig5 import MODES, RANK_COUNTS
from repro.bench.replay import ReplayConfig, predict_intransit_step
from repro.bench.workloads import rbc_profiles
from repro.machine import JUWELS_BOOSTER, ClusterSpec
from repro.util.sizes import GIB
from repro.util.tables import Table


def run(
    rank_counts: tuple[int, ...] = RANK_COUNTS,
    cluster: ClusterSpec = JUWELS_BOOSTER,
    ratio: int = 4,
    config: ReplayConfig = ReplayConfig(),
    measure_kwargs: dict | None = None,
) -> Table:
    profiles = rbc_profiles(**(measure_kwargs or {}))
    rpn = cluster.node.ranks_per_node
    table = Table(
        ["ranks", "no transport [GiB/node]", "checkpointing [GiB/node]",
         "catalyst [GiB/node]"],
        title=f"Fig. 6 — RBC in transit memory per simulation node on "
        f"{cluster.name} ({rpn} ranks/node)",
        float_format="{:.4f}",
    )
    for ranks in rank_counts:
        row = [ranks]
        for mode in MODES:
            pred = predict_intransit_step(
                profiles[mode]["simulation"], cluster, ranks, ratio=ratio, config=config
            )
            row.append(pred.memory_per_node_bytes(rpn) / GIB)
        table.add_row(row)
    return table


if __name__ == "__main__":
    print(run().render())
