"""Fleet bench: time-to-recover and elastic weak scaling.

Two measurements for the elastic endpoint fleet (:mod:`repro.fleet`):

**Recovery** — a synthetic in-transit pipeline (marshaled payloads,
no solver) loses 1 of 2 endpoints mid-stream.  The fleet path detects
the lapsed lease, rebalances the dead member's streams over the hash
ring, and replays its queued steps on the survivor — every step
commits.  The reference path (``naive_mode``) is the static split:
the surviving endpoint cannot take over the orphaned streams, so the
affected writers burn their retry budgets, mark the transport down,
and drop the remaining steps.  :func:`measure_recovery` returns the
scenario's makespan in seconds and is gated as the ``recovery`` row
of ``python -m repro bench --gate`` (baseline ``BENCH_9.json``).

**Weak scaling** — Fig 5/6 analogs with the fleet enabled: the
simulation side doubles while the autoscaler picks the endpoint count
inside the 2:1..16:1 ratio clamp; per-step time should stay flat.

``python -m repro bench fleet`` prints both tables.
"""

from __future__ import annotations

import tempfile
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.util.tables import Table

#: synthetic stream geometry for the recovery scenario
_WRITERS = 4
_POOL = 2
_STEPS = 8
_ELEMS = 2048
_CRASH_AT = 0          # endpoint 1 dies on its first poll — deterministic
                       # (later crash points race against how fast the
                       # survivor drains the synthetic stream), and its ring
                       # arcs still hold staged steps that must be recovered
_LEASE_S = 0.1


def _producers(broker, steps: int, elems: int):
    """Start one writer thread per stream; return (threads, counters)."""
    from repro.adios.engine import SSTWriterEngine
    from repro.faults.errors import EndpointDownError
    from repro.faults.retry import RetryPolicy

    # the retry window must outlive lease detection (~_LEASE_S) so the
    # fleet path reroutes before any writer burns its budget; the
    # static path still exhausts it (no takeover ever drains the
    # orphaned queues) and degrades within max_elapsed_s
    retry = RetryPolicy(
        max_attempts=12, base_delay=0.01, attempt_timeout=0.05,
        max_elapsed_s=1.0,
    )
    sent = [0] * broker.num_writers
    degraded = [0] * broker.num_writers

    def body(writer: int) -> None:
        engine = SSTWriterEngine("fleet-bench", broker, writer, retry=retry)
        data = np.full(elems, float(writer))
        for step in range(steps):
            try:
                engine.begin_step()
            except EndpointDownError:
                degraded[writer] += 1
                continue
            engine.set_step_info(step, step * 1e-2)
            engine.put("data", data)
            try:
                engine.end_step()
                sent[writer] += 1
            except EndpointDownError:
                # retry budget spent: the consumer side is gone.  Mirror
                # Bridge._degrade — mark the transport down and drop.
                broker.mark_endpoint_down()
                degraded[writer] += 1
        try:
            engine.close()
        except Exception:
            pass

    threads = [
        threading.Thread(target=body, args=(w,), name=f"fleet-writer-{w}",
                         daemon=True)
        for w in range(broker.num_writers)
    ]
    return threads, sent, degraded


class _CountSink:
    """Cheapest possible fleet sink: touch the payloads, count the step."""

    def __init__(self):
        self.steps = 0
        self.recv_bytes = 0
        self.staging_peak = 0

    def process(self, task, coordinator) -> bool:
        nbytes = task.nbytes
        self.recv_bytes += nbytes
        self.staging_peak = max(self.staging_peak, nbytes)
        self.steps += 1
        return True

    def finalize(self) -> None:
        pass


def _run_fleet_recovery(
    steps: int = _STEPS, elems: int = _ELEMS, lease_timeout: float = _LEASE_S
) -> dict:
    """Elastic fleet: endpoint 1 crashes; endpoint 0 takes over everything."""
    from repro.adios.engine import SSTBroker
    from repro.faults.injector import FaultInjector
    from repro.fleet import FleetCoordinator, FleetEndpoint

    injector = FaultInjector(schedule={"endpoint_crash": ((_CRASH_AT, 1),)})
    broker = SSTBroker(num_writers=_WRITERS, queue_limit=2, injector=injector)
    # seed 1 splits the 4 writer keys 2/2 across the 2-member ring
    # (seed 0 happens to hash all four onto endpoint 0, which would
    # leave the crashed member with nothing to recover)
    coordinator = FleetCoordinator(
        broker, num_writers=_WRITERS, pool_size=_POOL,
        lease_timeout=lease_timeout, seed=1,
    )
    producers, sent, degraded = _producers(broker, steps, elems)
    sinks = [_CountSink() for _ in range(_POOL)]
    endpoints = [
        FleetEndpoint(eid, coordinator, sinks[eid], injector=injector,
                      poll_interval=0.001)
        for eid in range(_POOL)
    ]
    reports = [None] * _POOL

    def endpoint_body(eid: int) -> None:
        reports[eid] = endpoints[eid].run()

    consumers = [
        threading.Thread(target=endpoint_body, args=(eid,),
                         name=f"fleet-endpoint-{eid}", daemon=True)
        for eid in range(_POOL)
    ]
    t0 = time.perf_counter()
    for t in producers + consumers:
        t.start()
    for t in producers + consumers:
        t.join()
    seconds = time.perf_counter() - t0
    recoveries = coordinator.stats()["recoveries"]
    return {
        "seconds": seconds,
        "mode": "fleet",
        "sent": sum(sent),
        "degraded": sum(degraded),
        "committed": len(coordinator.committed),
        "expected": steps,
        "recovery_seconds": max(
            (r["recovery_seconds"] or 0.0 for r in recoveries), default=0.0
        ),
        "streams_moved": sum(r["streams_moved"] for r in recoveries),
        "tasks_replayed": sum(
            r["tasks_requeued"] + r["steps_backlogged"] for r in recoveries
        ),
        "crashes_detected": coordinator.crashes_detected,
    }


def _run_static_recovery(steps: int = _STEPS, elems: int = _ELEMS) -> dict:
    """Static split reference: the orphaned streams are unrecoverable."""
    from repro.adios.engine import SSTBroker, SSTReaderEngine, StepStatus
    from repro.faults.errors import EndpointDownError, StreamTimeout
    from repro.parallel.partition import block_range

    broker = SSTBroker(num_writers=_WRITERS, queue_limit=2, timeout=0.3)
    producers, sent, degraded = _producers(broker, steps, elems)
    committed = [0] * _POOL

    def endpoint_body(rank: int) -> None:
        lo, hi = block_range(_WRITERS, _POOL, rank)
        reader = SSTReaderEngine("fleet-bench", broker, list(range(lo, hi)))
        while True:
            if rank == 1 and committed[rank] == _CRASH_AT:
                return  # crash: stop consuming, no drain, no close
            try:
                status = reader.begin_step()
            except (StreamTimeout, EndpointDownError):
                return  # upstream writers degraded without sentinels
            if status is StepStatus.END_OF_STREAM:
                return
            payloads = reader.payloads()
            for p in payloads.values():
                for arr in p.variables.values():
                    _ = arr.shape
            reader.end_step()
            committed[rank] += 1

    consumers = [
        threading.Thread(target=endpoint_body, args=(rank,),
                         name=f"static-endpoint-{rank}", daemon=True)
        for rank in range(_POOL)
    ]
    t0 = time.perf_counter()
    for t in producers + consumers:
        t.start()
    for t in producers + consumers:
        t.join()
    return {
        "seconds": time.perf_counter() - t0,
        "mode": "static",
        "sent": sum(sent),
        "degraded": sum(degraded),
        "committed": sum(committed),
        "expected": steps,
    }


def measure_recovery(
    steps: int = _STEPS, elems: int = _ELEMS, lease_timeout: float = _LEASE_S
) -> float:
    """Makespan of the endpoint-loss scenario; the gated ``recovery`` kernel.

    Dispatches on :func:`repro.perf.config.enabled`: optimized is the
    elastic fleet (reroute + replay, zero lost steps), the
    ``naive_mode`` reference is the static split (retry exhaustion +
    degraded drops).  Returns measured seconds, as the gate's
    float-returning kernels do.
    """
    from repro.perf import config

    if config.enabled():
        return float(_run_fleet_recovery(steps, elems, lease_timeout)["seconds"])
    return float(_run_static_recovery(steps, elems)["seconds"])


def recovery_slo() -> Table:
    """Side-by-side fleet vs static outcome of losing 1 of 2 endpoints."""
    from repro.perf.config import naive_mode

    fleet = _run_fleet_recovery()
    with naive_mode():
        static = _run_static_recovery()
    table = Table(
        ["path", "makespan [s]", "steps committed", "steps degraded",
         "recovery [s]", "streams moved", "steps replayed"],
        title=(
            f"Endpoint-loss recovery — {_WRITERS} writers : {_POOL} endpoints, "
            f"{_STEPS} steps, endpoint 1 dies at its first poll "
            f"(lease {_LEASE_S:g}s)"
        ),
    )
    table.add_row([
        "fleet (reroute + replay)",
        f"{fleet['seconds']:.3f}",
        f"{fleet['committed']}/{fleet['expected']}",
        fleet["degraded"],
        f"{fleet['recovery_seconds']:.3f}",
        fleet["streams_moved"],
        fleet["tasks_replayed"],
    ])
    table.add_row([
        "static split (retry + degrade)",
        f"{static['seconds']:.3f}",
        f"{static['committed']}/{2 * static['expected']} (both endpoints)",
        static["degraded"],
        "-",
        "-",
        "-",
    ])
    return table


def weak_scaling(
    totals: tuple[int, ...] = (3, 6),
    steps: int = 4,
    elements_per_rank: int = 2,
) -> Table:
    """Fig 5/6 analog with the elastic fleet + autoscaler enabled."""
    from repro.fleet import FleetConfig
    from repro.insitu import InTransitRunner
    from repro.nekrs.cases import weak_scaled_rbc_case
    from repro.parallel import run_spmd

    table = Table(
        ["ranks (sim+end)", "autoscale ratio", "sim CPU/step [s/rank]",
         "endpoint steps", "stolen", "rebalances"],
        title=(
            "Weak scaling, elastic fleet — RBC "
            f"{elements_per_rank} elements/rank, {steps} steps, "
            "autoscaler on (clamp 2:1..16:1)"
        ),
    )
    base = None
    for total in totals:
        def case_builder(nsim):
            case = weak_scaled_rbc_case(
                nsim, elements_per_rank=elements_per_rank, order=3, dt=1e-3
            )
            return case.with_overrides(num_steps=steps)

        runner = InTransitRunner(
            case_builder,
            mode="checkpoint",
            ratio=2,
            num_steps=steps,
            stream_interval=1,
            arrays=("temperature", "velocity_magnitude"),
            output_dir=tempfile.mkdtemp(prefix="repro-fleet-ws-"),
            fleet=FleetConfig(
                lease_timeout=0.5, initial_active=1, autoscale=True,
                autoscale_every=2,
            ),
        )

        # Rank threads share the host's cores, so wall time per step
        # grows linearly with the rank count no matter how good the
        # scaling is.  Charge each rank its own CPU time instead
        # (``thread_time`` excludes time spent descheduled): under
        # weak scaling the per-rank work is constant, so this column
        # should stay flat.  Fig 5 proper uses the machine model
        # (:mod:`repro.bench.fig5`) for the same reason.
        def body(comm):
            t0 = time.thread_time()
            result = runner.run(comm)
            result.extra["cpu_seconds"] = time.thread_time() - t0
            return result

        results = run_spmd(total, body)
        sims = [r for r in results if r.role == "simulation"]
        ends = [r for r in results if r.role == "endpoint"]
        stats = runner.last_coordinator.stats()
        mean_step = sum(
            r.extra["cpu_seconds"] / steps for r in sims
        ) / len(sims)
        if base is None:
            base = mean_step
        auto = runner.last_coordinator.autoscaler
        ratios = sorted(
            {auto.ratio(n) for pair in auto.decisions for n in pair}
            | {auto.ratio(stats["active"] or 1)}
        )
        ratio_txt = (
            f"{ratios[0]:g}:1..{ratios[-1]:g}:1" if len(ratios) > 1
            else f"{ratios[0]:g}:1"
        )
        table.add_row([
            f"{len(sims)}+{len(ends)}",
            ratio_txt,
            f"{mean_step:.4f} ({mean_step / base:.2f}x)",
            stats["committed"],
            stats["stolen"],
            stats["rebalances"],
        ])
    return table


@dataclass
class _Sections:
    tables: list

    def render(self) -> str:
        return "\n\n".join(t.render() for t in self.tables)


def run(**_kwargs) -> _Sections:
    """CLI entry: ``python -m repro bench fleet``."""
    return _Sections([recovery_slo(), weak_scaling()])


if __name__ == "__main__":
    print(run().render())
