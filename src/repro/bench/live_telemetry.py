"""Live telemetry bench: what the streaming plane costs while running.

Drives the same small in-transit fleet run twice — once bare, once
with a :class:`~repro.observe.live.plane.LivePlane` attached — and
reports the wall-clock delta the live plane adds: correlation tags on
every payload, per-rank ring collectors on every stage boundary, the
streaming aggregator, and the SLO watchdog pass per snapshot flush.
The acceptance budget is **< 5% overhead**; the adaptive sampler
exists to hold that line by degrading span detail before the budget
blows.

``python -m repro.bench.live_telemetry`` prints the table;
``python -m repro bench --gate`` times the instrumented run as the
``live_telemetry`` gate row (baseline ``BENCH_9.json``), so an
accidental hot-path regression in the collectors fails CI the same
way a solver regression would.
"""

from __future__ import annotations

import sys
import tempfile
import time

from repro.util.tables import Table

#: workload knobs shared by the gate kernel and the overhead table
DEFAULT_RANKS = 3
DEFAULT_STEPS = 2


def measure_live_run(
    with_plane: bool = True,
    ranks: int = DEFAULT_RANKS,
    steps: int = DEFAULT_STEPS,
    image_size: int = 48,
    overhead_budget: float = 0.05,
):
    """One fleet run, optionally instrumented; returns raw results.

    ``{"seconds": wall, "session": ..., "plane": ... or None,
    "runner": ...}`` — the plane is returned live so callers can
    inspect timelines, sampler level, and SLO state after the run.
    """
    from repro.fleet import FleetConfig
    from repro.insitu import InTransitRunner
    from repro.nekrs.cases import weak_scaled_rbc_case
    from repro.observe import TelemetrySession
    from repro.observe.live import LivePlane
    from repro.parallel import run_spmd

    def case_builder(nsim):
        case = weak_scaled_rbc_case(nsim, elements_per_rank=2, order=3,
                                    dt=1e-3)
        return case.with_overrides(num_steps=steps)

    session = TelemetrySession("live-bench")
    plane = (
        LivePlane(session, overhead_budget=overhead_budget)
        if with_plane else None
    )
    with tempfile.TemporaryDirectory(prefix="repro-live-bench-") as tmp:
        runner = InTransitRunner(
            case_builder,
            mode="catalyst",
            ratio=2,
            num_steps=steps,
            stream_interval=1,
            arrays=("temperature",),
            output_dir=tmp,
            image_size=image_size,
            session=session,
            fleet=FleetConfig(),
        )
        t0 = time.perf_counter()
        run_spmd(ranks, runner.run)
        seconds = time.perf_counter() - t0
    if plane is not None:
        plane.flush_all()
    return {
        "seconds": seconds,
        "session": session,
        "plane": plane,
        "runner": runner,
    }


def measure_overhead(
    repeats: int = 3,
    ranks: int = DEFAULT_RANKS,
    steps: int = DEFAULT_STEPS,
    **kwargs,
) -> dict:
    """Best-of-`repeats` instrumented vs bare wall time.

    One throwaway warmup run absorbs first-use costs (plan builds,
    arena pools, import time) before either side is measured.  The
    bare and instrumented runs are interleaved pairwise (not two
    back-to-back blocks) so a load or frequency shift mid-measurement
    hits both sides alike instead of masquerading as overhead, and the
    headline ``overhead_ratio`` is the **median** of the per-pair
    ratios — single measurements of sub-second runs on a shared core
    are coin flips, and occasional scheduler spikes can inflate a
    whole best-of block, but they cannot move the median of a dozen
    adjacent pairs.  ``off_s``/``on_s`` remain the per-side floors.
    """
    measure_live_run(with_plane=False, ranks=ranks, steps=steps, **kwargs)
    off = None
    best_on = None
    pair_ratios = []
    for _ in range(repeats):
        bare = measure_live_run(
            with_plane=False, ranks=ranks, steps=steps, **kwargs
        )["seconds"]
        if off is None or bare < off:
            off = bare
        out = measure_live_run(
            with_plane=True, ranks=ranks, steps=steps, **kwargs
        )
        if best_on is None or out["seconds"] < best_on["seconds"]:
            best_on = out
        if bare > 0:
            pair_ratios.append((out["seconds"] - bare) / bare)
    plane = best_on["plane"]
    import statistics

    return {
        "off_s": off,
        "on_s": best_on["seconds"],
        "pair_ratios": pair_ratios,
        "overhead_ratio": (
            statistics.median(pair_ratios) if pair_ratios else 0.0
        ),
        "sampler": plane.sampler.as_dict(),
        "snapshots": plane.aggregator.snapshots,
        "events": plane.aggregator.events_seen,
        "timelines_complete": sum(
            1 for tl in plane.timelines() if tl.complete
        ),
        "plane": plane,
    }


def overhead_table(repeats: int = 3, **kwargs) -> Table:
    """The live-telemetry table: instrumented vs bare, budget verdict."""
    out = measure_overhead(repeats=repeats, **kwargs)
    table = Table(
        ["metric", "value"],
        title="Live telemetry — streaming plane overhead "
              f"(fleet run, best of {repeats}, budget 5%)",
    )
    table.add_row(["bare run [s]", f"{out['off_s']:.3f}"])
    table.add_row(["instrumented run [s]", f"{out['on_s']:.3f}"])
    table.add_row(["overhead", f"{out['overhead_ratio'] * 100:+.2f}%"])
    table.add_row(["sampler level", out["sampler"]["level_name"]])
    table.add_row(["sampler downgrades", out["sampler"]["downgrades"]])
    table.add_row(["snapshots ingested", out["snapshots"]])
    table.add_row(["stage events", out["events"]])
    table.add_row(["complete timelines", out["timelines_complete"]])
    return table


if __name__ == "__main__":
    print(overhead_table().render())
    sys.exit(0)
