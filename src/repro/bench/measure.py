"""Instrumented scaled-down runs producing RunProfiles.

Three in situ configurations mirror Section 4.1's measurement points:

- ``original``   — solver only, no SENSEI,
- ``checkpoint`` — solver + built-in .fld dumps every `interval` steps,
- ``catalyst``   — solver + SENSEI bridge + Catalyst rendering every
  `interval` steps (device->host copy + resample + gather + render +
  PNG write, all real).
- ``catalyst_device`` — the same bridge with ``residency="device"``:
  resample/render/composite run as registered device kernels and only
  the composited tile crosses the modeled PCIe link.

The in transit measurement reuses :class:`repro.insitu.InTransitRunner`
for the three Section 4.2 measurement points (none / checkpoint /
catalyst endpoints).
"""

from __future__ import annotations

import tempfile
import time as _time
from contextlib import nullcontext
from pathlib import Path

import numpy as np

from repro.insitu.bridge import Bridge
from repro.insitu.instrumentation import RunProfile
from repro.insitu.intransit import InTransitRunner
from repro.nekrs.checkpoint import write_checkpoint
from repro.nekrs.config import CaseDefinition
from repro.nekrs.solver import NekRSSolver
from repro.observe.session import TelemetrySession
from repro.occa import Device
from repro.parallel import run_spmd

_MODES = ("original", "checkpoint", "catalyst", "catalyst_device")


def _catalyst_xml(interval: int, isovalue: float, array: str, color: str,
                  size: int, residency: str = "host") -> str:
    return f"""
    <sensei>
      <analysis type="catalyst" mesh="uniform" array="{array}"
                color_array="{color}" isovalue="{isovalue}"
                slice_axis="y" width="{size}" height="{size}"
                frequency="{interval}" residency="{residency}" />
    </sensei>
    """


def _rank_body(
    comm,
    case: CaseDefinition,
    mode: str,
    steps: int,
    interval: int,
    outdir: str,
    isovalue: float,
    array: str,
    color_array: str,
    image_size: int,
    session: TelemetrySession | None = None,
):
    scope = session.activate(comm.rank) if session is not None else nullcontext()
    with scope:
        return _instrumented_rank_body(
            comm, case, mode, steps, interval, outdir,
            isovalue, array, color_array, image_size,
        )


def _instrumented_rank_body(
    comm,
    case: CaseDefinition,
    mode: str,
    steps: int,
    interval: int,
    outdir: str,
    isovalue: float,
    array: str,
    color_array: str,
    image_size: int,
):
    device = Device("cuda-sim")
    solver = NekRSSolver(case, comm, device)
    fields = {"pressure": solver.p, "velocity_x": solver.u,
              "velocity_y": solver.v, "velocity_z": solver.w}
    if solver.T is not None:
        fields["temperature"] = solver.T

    bridge = None
    if mode in ("catalyst", "catalyst_device"):
        residency = "device" if mode == "catalyst_device" else "host"
        bridge = Bridge(
            solver,
            config_xml=_catalyst_xml(
                interval, isovalue, array, color_array, image_size,
                residency=residency,
            ),
            output_dir=outdir,
        )

    checkpoint_bytes = 0
    checkpoint_seconds = 0.0
    dumps = 0
    step_seconds = []
    t0 = _time.perf_counter()
    for _ in range(steps):
        ts = _time.perf_counter()
        report = solver.step()
        if report.step % interval == 0:
            if mode == "checkpoint":
                tc = _time.perf_counter()
                _, nbytes = write_checkpoint(
                    Path(outdir) / "fld",
                    case.name,
                    report.step,
                    report.time,
                    comm.rank,
                    comm.size,
                    fields,
                )
                checkpoint_seconds += _time.perf_counter() - tc
                checkpoint_bytes += nbytes
                dumps += 1
            elif mode in ("catalyst", "catalyst_device"):
                bridge.update(report.step, report.time)
                dumps += 1
        step_seconds.append(_time.perf_counter() - ts)
    wall = _time.perf_counter() - t0
    if bridge is not None:
        bridge.finalize()

    result = {
        "wall": wall,
        "solver_seconds_per_step": float(np.mean(step_seconds)),
        "gridpoints": solver.local_gridpoints(),
        "solver_memory": solver.memory_bytes(),
        "num_fields": len(fields),
        "d2h_bytes": device.transfers.d2h_bytes,
        "checkpoint_bytes": checkpoint_bytes,
        "checkpoint_seconds": checkpoint_seconds,
        "dumps": dumps,
        "pressure_iters": 0,
        "staging": 0,
        "insitu_seconds": 0.0,
        "image_bytes": 0,
        "images": 0,
        "render_seconds": 0.0,
    }
    if bridge is not None:
        result["staging"] = bridge.adaptor.staging_bytes_peak
        result["insitu_seconds"] = bridge.insitu_seconds
        catalyst = bridge.analysis.adaptors[0][1]
        result["image_bytes"] = catalyst.image_bytes
        result["images"] = catalyst.images_written
        result["render_seconds"] = (
            catalyst.watch.total("render") + catalyst.watch.total("write")
        )
    return result


def measure_insitu_profile(
    case: CaseDefinition,
    mode: str,
    ranks: int = 4,
    steps: int = 6,
    interval: int = 2,
    output_dir: str | Path | None = None,
    isovalue: float = 0.5,
    array: str = "velocity_magnitude",
    color_array: str = "temperature",
    image_size: int = 256,
    session: TelemetrySession | None = None,
) -> RunProfile:
    """Run one instrumented configuration; aggregate to a RunProfile.

    Pass a :class:`TelemetrySession` to additionally collect per-rank
    spans, metrics, and memory high-water marks for the run.
    """
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    if steps % interval:
        raise ValueError("steps must be a multiple of interval")
    outdir = str(output_dir) if output_dir else tempfile.mkdtemp(prefix="repro-bench-")
    results = run_spmd(
        ranks,
        _rank_body,
        args=(case, mode, steps, interval, outdir, isovalue, array, color_array,
              image_size, session),
    )
    n = len(results)
    dumps = max(results[0]["dumps"], 1)
    profile = RunProfile(
        case=case.name,
        mode=mode,
        ranks=ranks,
        steps=steps,
        insitu_interval=interval,
        gridpoints_per_rank=float(np.mean([r["gridpoints"] for r in results])),
        num_fields=results[0]["num_fields"],
        solver_seconds_per_step=float(np.mean([r["solver_seconds_per_step"] for r in results])),
        insitu_seconds_per_invocation=float(
            np.mean([r["insitu_seconds"] for r in results]) / dumps
        ),
        d2h_bytes_per_invocation_per_rank=int(
            np.mean([r["d2h_bytes"] for r in results]) / dumps
        ),
        checkpoint_bytes_per_dump_per_rank=int(
            np.mean([r["checkpoint_bytes"] for r in results]) / dumps
        ),
        image_bytes_per_invocation=int(results[0]["image_bytes"] / dumps),
        render_seconds_per_invocation=float(results[0]["render_seconds"] / dumps),
        solver_memory_bytes_per_rank=int(np.mean([r["solver_memory"] for r in results])),
        staging_memory_bytes_per_rank=int(np.mean([r["staging"] for r in results])),
        extra={
            "wall_seconds": float(np.mean([r["wall"] for r in results])),
            "checkpoint_seconds_per_dump": float(
                np.mean([r["checkpoint_seconds"] for r in results]) / dumps
            ),
            "images_per_invocation": results[0]["images"] / dumps,
        },
    )
    return profile


def measure_intransit_profiles(
    case_builder,
    mode: str,
    total_ranks: int = 5,
    steps: int = 6,
    stream_interval: int = 1,
    ratio: int = 4,
    arrays: tuple[str, ...] = ("temperature", "velocity_magnitude"),
    output_dir: str | Path | None = None,
    **runner_kwargs,
) -> dict:
    """Measure one in transit configuration.

    Returns {"simulation": RunProfile, "endpoint": {...stats...}} —
    simulation-node quantities are what Figures 5 and 6 plot.
    """
    outdir = str(output_dir) if output_dir else tempfile.mkdtemp(prefix="repro-bench-it-")
    runner = InTransitRunner(
        case_builder,
        mode={"original": "none", "none": "none"}.get(mode, mode),
        ratio=ratio,
        num_steps=steps,
        stream_interval=stream_interval,
        arrays=arrays,
        output_dir=outdir,
        **runner_kwargs,
    )
    results = run_spmd(total_ranks, runner.run)
    sims = [r for r in results if r.role == "simulation"]
    ends = [r for r in results if r.role == "endpoint"]
    num_sim = len(sims)
    case = case_builder(num_sim)
    gp = case.total_gridpoints() / num_sim
    profile = RunProfile(
        case=case.name,
        mode=mode,
        ranks=num_sim,
        steps=steps,
        insitu_interval=stream_interval,
        gridpoints_per_rank=gp,
        num_fields=len(arrays),
        solver_seconds_per_step=float(np.mean([r.mean_step_seconds for r in sims])),
        stream_bytes_per_step_per_rank=int(
            np.mean([r.stream_bytes for r in sims]) / max(steps // stream_interval, 1)
        ),
        solver_memory_bytes_per_rank=int(
            np.mean([r.memory_bytes - r.staging_bytes for r in sims])
        ),
        staging_memory_bytes_per_rank=int(np.mean([r.staging_bytes for r in sims])),
        extra={
            "insitu_seconds": float(np.mean([r.extra.get("insitu_seconds", 0.0) for r in sims])),
        },
    )
    endpoint_stats = {
        "ranks": len(ends),
        "steps": ends[0].steps if ends else 0,
        "files_bytes": sum(e.files_bytes for e in ends),
        "images": sum(e.images for e in ends),
        "memory_bytes": max((e.memory_bytes for e in ends), default=0),
        "mean_step_seconds": float(np.mean([e.mean_step_seconds for e in ends])) if ends else 0.0,
    }
    return {"simulation": profile, "endpoint": endpoint_stats}
