"""Replay measured profiles on leadership-machine models.

The predictors turn a :class:`RunProfile` measured at laptop scale
into paper-scale figures using first-order cost models (DESIGN.md
section 5).  One explicit calibration constant bridges the substrate
gap: ``gpu_dof_throughput``, the sustained Navier-Stokes-step DOF
throughput of one A100 running NekRS (public NekRS performance data
puts full-step throughput around 1 GDOF/s per A100).  Every *relative*
result the paper reports (overhead ratios, scaling shapes, storage
economy) is independent of this constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.insitu.instrumentation import RunProfile
from repro.machine import (
    ClusterSpec,
    CollectiveModel,
    DragonflyPlusTopology,
    FilesystemModel,
    NetworkModel,
    PcieModel,
)


@dataclass(frozen=True)
class ReplayConfig:
    """Calibration constants for the replay models.

    Every *relative* quantity the paper reports (overhead percentages,
    the 25% memory gap, the 3-orders storage economy, flat weak
    scaling) is insensitive to these; they set absolute magnitudes.
    """

    #: effective full-NS-step throughput per GPU, DOFs stepped per
    #: second at production tolerances (~5 MDOF/s puts pb146-at-280-GPUs
    #: in the tens-of-ms-per-step regime NekRS reports at this strong
    #: scale)
    gpu_dof_throughput: float = 5.0e6
    #: host-side marshal/copy/resample bandwidth for staging (B/s)
    marshal_bandwidth: float = 1.0e9
    #: global 8-byte allreduces per timestep (CG inner products);
    #: NekRS pressure+velocity solves do O(50-100) per step
    allreduces_per_step: int = 80
    #: ParaView/OSPRay's compiled renderer vs our NumPy renderer,
    #: per extracted cell (applies to the replayed render term only)
    render_speed_ratio: float = 20.0
    #: same substrate bridge for the device-resident pipeline: CUDA
    #: contour/raster kernels vs our NumPy twins.  GPU extraction and
    #: rasterization outruns the CPU renderer by roughly the ~6x a
    #: production A100 render kernel has over a compiled CPU renderer
    #: (OSPRay vs OptiX-class throughput), hence 6 x 20.
    device_render_speed_ratio: float = 120.0
    #: host-resident footprint of the solver runtime per rank (NekRS
    #: host allocations, MPI, CUDA context, OS share) -- dominates the
    #: host memory of a GPU-resident solve
    host_runtime_bytes: int = 1_500_000_000
    #: additional resident footprint of ParaView/Catalyst libraries on
    #: each rank when the Catalyst adaptor is active; this fixed
    #: per-rank cost is what drives the paper's ~25% memory gap
    catalyst_runtime_bytes: int = 350_000_000


@dataclass
class PredictedRun:
    """Predicted paper-scale run (one bar of a figure)."""

    mode: str
    cluster: str
    ranks: int
    nodes: int
    steps: int
    interval: int
    seconds: dict[str, float] = field(default_factory=dict)
    memory_per_rank_bytes: int = 0
    storage_bytes: int = 0

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    @property
    def memory_aggregate_bytes(self) -> int:
        return self.memory_per_rank_bytes * self.ranks

    def memory_per_node_bytes(self, ranks_per_node: int) -> int:
        return self.memory_per_rank_bytes * ranks_per_node

    @property
    def seconds_per_step(self) -> float:
        return self.total_seconds / self.steps if self.steps else 0.0


def _per_gridpoint(profile: RunProfile, attr: str) -> float:
    """Measured bytes-per-gridpoint ratio for a memory/traffic field."""
    value = getattr(profile, attr)
    return value / profile.gridpoints_per_rank if profile.gridpoints_per_rank else 0.0


def predict_insitu_run(
    profile: RunProfile,
    cluster: ClusterSpec,
    target_ranks: int,
    total_gridpoints: float,
    steps: int = 3000,
    interval: int = 100,
    num_checkpoint_fields: int = 4,
    config: ReplayConfig = ReplayConfig(),
) -> PredictedRun:
    """Predict one Section 4.1 configuration at paper scale.

    Strong scaling: `total_gridpoints` is the pb146-scale problem size,
    divided over `target_ranks` ranks (one per GPU).
    """
    nodes = cluster.nodes_for_ranks(target_ranks)
    topo = DragonflyPlusTopology(cluster)
    net = NetworkModel(cluster, topo)
    coll = CollectiveModel(net)
    fs = FilesystemModel(cluster.fs)
    pcie = PcieModel(cluster.node.gpu)
    hops = topo.mean_hops(nodes)

    gp_rank = total_gridpoints / target_ranks
    dumps = steps // interval
    out = PredictedRun(
        mode=profile.mode,
        cluster=cluster.name,
        ranks=target_ranks,
        nodes=nodes,
        steps=steps,
        interval=interval,
    )

    # -- compute + solver collectives (all modes) --------------------------
    out.seconds["solve"] = steps * gp_rank / config.gpu_dof_throughput
    out.seconds["collectives"] = (
        steps * config.allreduces_per_step * coll.allreduce_time(8, target_ranks, hops)
    )

    # -- memory: host footprint per rank ------------------------------------
    # The solve itself is GPU-resident; host RAM holds the runtime
    # (solver + MPI + CUDA context), the mesh setup (~8 doubles per
    # gridpoint for coordinates/numbering/factors), plus whatever the
    # active mode stages on the host.
    memory = config.host_runtime_bytes + 64.0 * gp_rank

    if profile.mode == "checkpoint":
        dump_bytes_rank = num_checkpoint_fields * gp_rank * 8
        dump_bytes_total = dump_bytes_rank * target_ranks
        out.seconds["d2h"] = dumps * pcie.transfer_time(int(dump_bytes_rank))
        out.seconds["checkpoint_io"] = dumps * fs.write_time(
            int(dump_bytes_total), nodes, num_files=target_ranks
        )
        out.storage_bytes = int(dumps * dump_bytes_total)
        memory += dump_bytes_rank  # host mirror staged for the write
    elif profile.mode == "catalyst":
        d2h_bpg = _per_gridpoint(profile, "d2h_bytes_per_invocation_per_rank")
        d2h_bytes_rank = d2h_bpg * gp_rank
        out.seconds["d2h"] = dumps * pcie.transfer_time(int(d2h_bytes_rank))
        staging_bpg = _per_gridpoint(profile, "staging_memory_bytes_per_rank")
        staging_rank = staging_bpg * gp_rank
        out.seconds["staging"] = dumps * staging_rank / config.marshal_bandwidth
        # Production Catalyst renders *distributed*: each rank extracts
        # and rasterizes its local data, then sort-last compositing
        # (IceT) merges images -- log2(P) image exchanges.  Our
        # measured render covered the whole measured volume on one
        # rank; at scale each rank renders its own gp_rank share, and
        # isosurface work scales like the extracted surface ~ V^(2/3).
        volume_ratio = gp_rank / (profile.gridpoints_per_rank * profile.ranks)
        out.seconds["render"] = (
            dumps
            * profile.render_seconds_per_invocation
            * max(volume_ratio, 1e-12) ** (2.0 / 3.0)
            / config.render_speed_ratio
        )
        image_bytes = max(profile.image_bytes_per_invocation, 1)
        out.seconds["compositing"] = dumps * math.ceil(
            math.log2(max(target_ranks, 2))
        ) * coll.net.p2p_time(image_bytes, math.ceil(hops))
        memory += config.catalyst_runtime_bytes
        out.storage_bytes = int(dumps * profile.image_bytes_per_invocation)
        memory += staging_rank
    elif profile.mode == "catalyst_device":
        # Device-resident Catalyst: the render path consumes device
        # memory directly, so the per-step D2H is the *composited tile*
        # -- a constant, not a function of gridpoints -- and there is
        # no host staging/marshal term at all.
        out.seconds["d2h"] = dumps * pcie.transfer_time(
            int(profile.d2h_bytes_per_invocation_per_rank)
        )
        volume_ratio = gp_rank / (profile.gridpoints_per_rank * profile.ranks)
        out.seconds["render"] = (
            dumps
            * profile.render_seconds_per_invocation
            * max(volume_ratio, 1e-12) ** (2.0 / 3.0)
            / config.device_render_speed_ratio
        )
        image_bytes = max(profile.image_bytes_per_invocation, 1)
        out.seconds["compositing"] = dumps * math.ceil(
            math.log2(max(target_ranks, 2))
        ) * coll.net.p2p_time(image_bytes, math.ceil(hops))
        # the Catalyst runtime still loads; the resampled working set
        # stays in GPU memory, so no host staging is added
        memory += config.catalyst_runtime_bytes
        out.storage_bytes = int(dumps * profile.image_bytes_per_invocation)
    elif profile.mode != "original":
        raise ValueError(f"unknown profile mode {profile.mode!r}")

    out.memory_per_rank_bytes = int(memory)
    return out


def predict_intransit_step(
    profile: RunProfile,
    cluster: ClusterSpec,
    num_sim_ranks: int,
    ratio: int = 4,
    queue_limit: int = 2,
    gridpoints_per_rank: float | None = None,
    config: ReplayConfig = ReplayConfig(),
) -> PredictedRun:
    """Predict one Section 4.2 measurement point: mean seconds per
    timestep and per-node memory on the *simulation* nodes, under weak
    scaling.  `gridpoints_per_rank` sets the production per-rank load
    (default 2M, a load that fills an A100 usefully); the measured
    profile contributes the per-gridpoint byte/memory ratios."""
    total_ranks = num_sim_ranks + max(1, num_sim_ranks // ratio)
    nodes = cluster.nodes_for_ranks(total_ranks)
    sim_nodes = cluster.nodes_for_ranks(num_sim_ranks)
    topo = DragonflyPlusTopology(cluster)
    net = NetworkModel(cluster, topo)
    coll = CollectiveModel(net)
    hops = topo.mean_hops(nodes)
    pcie = PcieModel(cluster.node.gpu)

    gp_rank = gridpoints_per_rank if gridpoints_per_rank is not None else 2.0e6
    out = PredictedRun(
        mode=profile.mode,
        cluster=cluster.name,
        ranks=num_sim_ranks,
        nodes=sim_nodes,
        steps=1,
        interval=profile.insitu_interval,
    )
    out.seconds["solve"] = gp_rank / config.gpu_dof_throughput
    out.seconds["collectives"] = config.allreduces_per_step * coll.allreduce_time(
        8, num_sim_ranks, hops
    )

    # Simulation nodes never load ParaView in the in transit layout --
    # that's the point -- so their host memory is runtime + mesh setup
    # + staging for the stream only.
    memory = config.host_runtime_bytes + 64.0 * gp_rank

    stream_bytes = int(
        _per_gridpoint(profile, "stream_bytes_per_step_per_rank") * gp_rank
    )
    if stream_bytes:
        out.seconds["d2h"] = pcie.transfer_time(stream_bytes)
        out.seconds["marshal"] = stream_bytes / config.marshal_bandwidth
        out.seconds["stream"] = net.stream_time(
            stream_bytes, cluster.node.ranks_per_node, math.ceil(hops)
        )
        staging_bpg = _per_gridpoint(profile, "staging_memory_bytes_per_rank")
        memory += staging_bpg * gp_rank
        memory += queue_limit * stream_bytes  # staged SST payloads
    out.memory_per_rank_bytes = int(memory)
    return out
