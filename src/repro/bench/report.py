"""One-shot evaluation report: every figure/table in a single document.

``python -m repro.bench.report [--quick] [--output report.md]`` measures
the workloads once, regenerates all five paper artifacts plus the
ablations, and writes a Markdown report with the tables and a phase
breakdown Gantt per configuration — the reproduction's equivalent of
the paper's full Section 4.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.bench import (
    ablations,
    compression,
    fig2,
    fig3,
    fig5,
    fig6,
    fleet,
    live_telemetry,
    robustness,
    serving,
    storage,
    telemetry,
)
from repro.bench.replay import predict_insitu_run
from repro.bench.workloads import PB146_GRIDPOINTS, pb146_profiles
from repro.machine import POLARIS
from repro.machine.timeline import Timeline

QUICK_PB = dict(ranks=2, steps=4, interval=2, num_pebbles=3, order=3,
                image_size=192)
QUICK_RBC = dict(total_ranks=3, steps=4, stream_interval=2, ratio=2,
                 order=3, elements_per_rank=4)
QUICK_CODEC = dict(rbc_ranks=4, rbc_order=3, pebble_count=3, pebble_order=3,
                   steps=4)


def _section(title: str, table) -> str:
    return f"## {title}\n\n```\n{table.render()}\n```\n"


def build_report(quick: bool = True) -> str:
    pb_kwargs = QUICK_PB if quick else {}
    rbc_kwargs = QUICK_RBC if quick else {}
    started = time.strftime("%Y-%m-%d %H:%M:%S")
    parts = [
        "# Reproduction report — NekRS x SENSEI (SC 2023)",
        "",
        f"Generated {started}; measurement scale: {'quick' if quick else 'default'}.",
        "",
    ]
    parts.append(_section("Figure 2 — pb146 time-to-solution",
                          fig2.run(measure_kwargs=pb_kwargs)))
    parts.append(_section("Figure 3 — pb146 aggregate memory",
                          fig3.run(measure_kwargs=pb_kwargs)))
    parts.append(_section("Storage economy", storage.run(measure_kwargs=pb_kwargs)))
    parts.append(_section("Figure 5 — in transit time per step",
                          fig5.run(measure_kwargs=rbc_kwargs)))
    parts.append(_section("Figure 6 — in transit memory per node",
                          fig6.run(measure_kwargs=rbc_kwargs)))

    # phase breakdown of the catalyst configuration at 280 ranks
    profiles = pb146_profiles(**pb_kwargs)
    pred = predict_insitu_run(profiles["catalyst"], POLARIS, 280, PB146_GRIDPOINTS)
    timeline = Timeline.from_breakdown(pred.seconds)
    parts.append("## Where Catalyst-at-280-ranks spends its time\n")
    parts.append("```\n" + timeline.render() + "\n```\n")

    # the same breakdown device-resident: the d2h/staging terms collapse
    dev_pred = predict_insitu_run(
        profiles["catalyst_device"], POLARIS, 280, PB146_GRIDPOINTS
    )
    dev_timeline = Timeline.from_breakdown(dev_pred.seconds)
    parts.append("## Device-resident Catalyst at 280 ranks "
                 "(tile-only PCIe traffic)\n")
    parts.append("```\n" + dev_timeline.render() + "\n```\n")

    parts.append(_section("Ablation — in situ frequency",
                          ablations.insitu_frequency(measure_kwargs=pb_kwargs)))
    parts.append(_section("Ablation — SST queue policy", ablations.sst_queue()))
    parts.append(_section("Ablation — endpoint ratio", ablations.endpoint_ratio()))
    parts.append(_section("Robustness — fault-tolerant in transit",
                          robustness.fault_tolerance()))
    parts.append(_section("Fleet — endpoint-loss recovery SLO",
                          fleet.recovery_slo()))
    parts.append(_section("Fleet — elastic weak scaling",
                          fleet.weak_scaling()))
    parts.append(_section(
        "Compression — codec ratios and modeled 1120-rank step",
        compression.run(measure_kwargs=QUICK_CODEC if quick else None),
    ))
    serve_kwargs = dict(clients=64, frames=20, workers=4) if quick else {}
    serve_kwargs["codec"] = "delta-rle"
    parts.append(_section("Serving — multi-client frame fan-out",
                          serving.serving_table(**serve_kwargs)))
    parts.append(_section("Observability — live telemetry plane overhead",
                          live_telemetry.overhead_table()))
    parts.append(_section("Telemetry — per-phase time and memory HWM per mode",
                          telemetry.run(measure_kwargs=pb_kwargs)))
    parts.append("```\n" + telemetry.flame(measure_kwargs=pb_kwargs) + "\n```\n")
    return "\n".join(parts)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="report.md")
    parser.add_argument("--quick", action="store_true", default=True)
    parser.add_argument("--full", dest="quick", action="store_false")
    args = parser.parse_args(argv)
    report = build_report(quick=args.quick)
    Path(args.output).write_text(report)
    print(report)
    print(f"\n[report written to {args.output}]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
