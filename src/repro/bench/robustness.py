"""Robustness bench: fault-injected in-transit runs, measured.

The acceptance scenario for the fault-tolerance subsystem: an RBC
in-transit run at the paper's 4:1 writer:endpoint ratio with an
injected mid-run endpoint crash plus a low rate of in-flight payload
corruption.  The run must complete every simulation timestep — the
writers discover the dead endpoint through their retry budgets and
degrade to local checkpoint fallback — and the :class:`FaultLog`
must account for every injected fault::

    injected == detected + recovered + degraded    (per fault kind)

``python -m repro.bench.robustness`` prints the table; the report
driver embeds it as the "Robustness" section.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.faults import FaultInjector, RetryPolicy
from repro.insitu import InTransitRunner
from repro.nekrs.cases import weak_scaled_rbc_case
from repro.parallel import run_spmd
from repro.util.sizes import format_bytes
from repro.util.tables import Table


def run_faulted_intransit(
    total_ranks: int = 5,
    steps: int = 8,
    crash_step: int = 3,
    corrupt_probability: float = 0.02,
    seed: int = 7,
    ratio: int = 4,
    queue_limit: int = 2,
    output_dir: str | Path | None = None,
) -> dict:
    """Run the fault scenario; return raw results + the fault ledger.

    Returns a dict with ``results`` (per-rank InTransitResult),
    ``faults`` (the FaultLog), ``stats`` (broker StreamStats), and the
    scenario parameters — consumed by :func:`fault_tolerance` and the
    robustness tests.
    """
    if output_dir is None:
        output_dir = tempfile.mkdtemp(prefix="repro-robustness-")

    def case_builder(nsim):
        c = weak_scaled_rbc_case(nsim, elements_per_rank=4, order=3, dt=1e-3)
        return c.with_overrides(num_steps=steps)

    injector = FaultInjector(
        seed=seed,
        probabilities={"corrupt_payload": corrupt_probability},
        schedule={"endpoint_crash": (crash_step,)},
    )
    runner = InTransitRunner(
        case_builder,
        mode="checkpoint",
        ratio=ratio,
        num_steps=steps,
        stream_interval=1,
        arrays=("temperature", "velocity_magnitude"),
        queue_limit=queue_limit,
        queue_full_policy="Block",
        output_dir=output_dir,
        image_size=64,
        injector=injector,
        retry=RetryPolicy(max_attempts=3, base_delay=0.01, attempt_timeout=0.1),
        fallback="checkpoint",
    )
    results = run_spmd(total_ranks, runner.run)
    broker = runner.last_broker
    return {
        "results": results,
        "faults": broker.stats.faults,
        "stats": broker.stats,
        "steps": steps,
        "crash_step": crash_step,
        "corrupt_probability": corrupt_probability,
        "seed": seed,
        "output_dir": Path(output_dir),
    }


def fault_tolerance(**kwargs) -> Table:
    """The robustness table: per-kind fault accounting + run outcome."""
    out = run_faulted_intransit(**kwargs)
    log = out["faults"]
    snap = log.snapshot()
    sims = [r for r in out["results"] if r.role == "simulation"]
    ends = [r for r in out["results"] if r.role == "endpoint"]

    table = Table(
        ["fault kind / outcome", "injected", "detected", "recovered", "degraded"],
        title=(
            "Robustness — fault-injected in transit "
            f"(RBC, {len(sims)} writers : {len(ends)} endpoint, "
            f"{out['steps']} steps, crash@{out['crash_step']}, "
            f"{100 * out['corrupt_probability']:g}% corruption, "
            f"seed {out['seed']})"
        ),
    )
    kinds = sorted(
        set(snap["injected"]) | set(snap["detected"])
        | set(snap["recovered"]) | set(snap["degraded"])
    )
    for kind in kinds:
        table.add_row(
            [
                kind,
                snap["injected"].get(kind, 0),
                snap["detected"].get(kind, 0),
                snap["recovered"].get(kind, 0),
                snap["degraded"].get(kind, 0),
            ]
        )
    table.add_row(
        [
            "TOTAL" + ("" if log.accounted else " (UNACCOUNTED!)"),
            sum(snap["injected"].values()),
            sum(snap["detected"].values()),
            sum(snap["recovered"].values()),
            sum(snap["degraded"].values()),
        ]
    )

    degraded_steps = sum(r.extra.get("degraded_steps", 0) for r in sims)
    fallback_bytes = sum(r.extra.get("fallback_bytes", 0) for r in sims)
    min_sim_steps = min(r.steps for r in sims)
    table.add_row(["retries", snap["retries"], "", "", ""])
    table.add_row(
        [f"sim steps completed (min over {len(sims)} writers)",
         min_sim_steps, "", "", ""]
    )
    table.add_row(["endpoint steps analyzed", ends[0].steps, "", "", ""])
    table.add_row(
        ["endpoint corrupt steps skipped",
         ends[0].extra.get("corrupt_steps", 0), "", "", ""]
    )
    table.add_row(["writer steps degraded to fallback", degraded_steps, "", "", ""])
    table.add_row(
        ["fallback checkpoint volume", format_bytes(fallback_bytes), "", "", ""]
    )
    return table


if __name__ == "__main__":
    print(fault_tolerance().render())
