"""Serving bench: hundreds of concurrent viewers against one FrameHub.

The acceptance scenario for ``repro.serve``: a publisher streaming
PNG frames into a :class:`~repro.serve.FrameHub` while a mixed client
population consumes them over the loopback transport — fast clients
that drain every frame, slow clients that wake rarely (the
drop-to-latest path), and churning clients that disconnect and
reconnect mid-run (reusing the :class:`~repro.faults.FaultInjector`
so the churn schedule is reproducible).  Clients are multiplexed onto
a small worker pool, the same way an async transport multiplexes
sockets onto an event loop, so "500 concurrent clients" means 500
live sessions, not 500 OS threads.

Measured: delivery throughput, p50/p99 frame latency
(delivery time minus ``Frame.published_at``), dropped / rate-limited
frames, per-client fairness among the fast population, and — the
invariant the hub exists for — **zero publisher stalls**: the
simulation thread must never wait on a viewer.

``python -m repro.bench.serving`` prints the table; the report driver
embeds it as the "Serving" section, and ``python -m repro bench
--gate`` times the fan-out path as the ``serving`` gate row.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.faults import FaultInjector
from repro.observe import Telemetry, active
from repro.serve import FrameHub
from repro.util.png import encode_png
from repro.util.sizes import format_bytes
from repro.util.tables import Table


def synthetic_frames(count: int = 8, size: int = 64, seed: int = 0) -> list[bytes]:
    """A cycle of pre-encoded PNG payloads (distinct, realistic sizes)."""
    rng = np.random.default_rng(seed)
    frames = []
    for i in range(count):
        img = np.zeros((size, size, 3), dtype=np.uint8)
        x = np.linspace(0, 4 * np.pi, size)
        img[:, :, 0] = (127 + 120 * np.sin(x + i)).astype(np.uint8)[None, :]
        img[:, :, 1] = rng.integers(0, 32, size=(size, size), dtype=np.uint8)
        img[:, :, 2] = i * (255 // max(count - 1, 1))
        frames.append(encode_png(img))
    return frames


def synthetic_field_frames(
    count: int = 8, size: int = 16, codec: str = "delta-rle",
    budget: str = "1e-3", seed: int = 0,
) -> list[tuple[bytes, int]]:
    """Codec-encoded RBP3 payloads, as rank 0's ``fields`` stream
    publishes them: a smoothly evolving pressure/temperature pair
    marshalled through one temporal :class:`CodecContext`.  Returns
    ``(wire_bytes, raw_nbytes)`` pairs."""
    from repro.adios.marshal import StepPayload, marshal_step
    from repro.codec import CodecContext, CodecSpec

    spec = CodecSpec.from_cli(codec, budget, temporal=True)
    ctx = CodecContext()
    rng = np.random.default_rng(seed)
    z, y, x = np.meshgrid(*(np.arange(size, dtype=float),) * 3, indexing="ij")
    noise = 1e-4 * rng.normal(size=x.shape)
    frames = []
    for i in range(count):
        p = np.cos(0.21 * x + 0.03 * i) * np.sin(0.17 * y) + 0.05 * z + noise
        t = np.tanh(0.1 * (z - size / 2 + 0.2 * i)) + 0.3 * np.cos(0.2 * x)
        payload = StepPayload(
            step=i, time=i * 1e-2, rank=0,
            variables={"pressure": p, "temperature": t},
        )
        raw = sum(v.nbytes for v in payload.variables.values())
        frames.append((marshal_step(payload, codec=spec, context=ctx), raw))
    return frames


def run_serving_load(
    clients: int = 500,
    frames: int = 60,
    workers: int = 8,
    slow_every: int = 5,
    slow_fraction: float = 0.2,
    churn_probability: float = 0.002,
    seed: int = 11,
    history: int = 32,
    depth: int = 2,
    payload_size: int = 64,
    publish_interval_s: float = 0.002,
    codec: str | None = None,
    codec_budget: str = "1e-3",
) -> dict:
    """Drive the hub with a mixed client population; return raw stats.

    Client ``i`` is *slow* when ``i % int(1/slow_fraction) == 0`` — it
    only drains its queue every ``slow_every``-th service round, so
    backpressure must drop frames for it.  Churn fires per (frame,
    client) through a seeded :class:`FaultInjector` — the draw sites
    are the fixed ``frames x clients`` grid, never the timing-dependent
    service-round count — so the disconnect schedule (and the churn
    total) is identical run to run.
    """
    if clients < 1 or frames < 1:
        raise ValueError("need at least one client and one frame")
    hub = FrameHub(history=history, default_depth=depth)
    injector = FaultInjector(
        seed=seed, probabilities={"endpoint_crash": churn_probability}
    )
    # precomputed churn schedule: client cid churns once frame f is out
    churn_steps = {
        cid: [f for f in range(frames)
              if injector.fires("endpoint_crash", "serve.client", f, cid)]
        for cid in range(clients)
    }
    churn_idx = {cid: 0 for cid in range(clients)}
    payloads = synthetic_frames(size=payload_size, seed=seed)
    # with a codec, the publisher mirrors the serve CLI's rank-0
    # "fields" stream: RBP3 payloads ride the same hub/store path and
    # the store's interning accounts their raw-vs-wire savings
    field_payloads = (
        synthetic_field_frames(codec=codec, budget=codec_budget, seed=seed)
        if codec else []
    )
    slow_modulus = max(int(round(1.0 / slow_fraction)), 1) if slow_fraction > 0 else 0

    def is_slow(cid: int) -> bool:
        return slow_modulus > 0 and cid % slow_modulus == 0

    sessions = {}
    for cid in range(clients):
        kind = "slow" if is_slow(cid) else "fast"
        sessions[cid] = hub.connect(label=f"{kind}-{cid}")

    latencies: list[float] = []
    latency_lock = threading.Lock()
    done = threading.Event()
    churn_events = 0
    churn_lock = threading.Lock()
    # stats of sessions retired by churn, so totals and fairness cover a
    # client's whole lifetime, not just its latest reincarnation
    retired: list = []

    # the publisher thread carries real telemetry so the frame store's
    # refcount-aware `serve.framestore` charge lands in a MemoryMeter
    pub_tel = Telemetry.create(rank=0)

    def publisher():
        with active(pub_tel):
            for i in range(frames):
                hub.publish("catalyst", step=i, time=i * 1e-2,
                            data=payloads[i % len(payloads)])
                if field_payloads:
                    data, raw = field_payloads[i % len(field_payloads)]
                    hub.publish("fields", step=i, time=i * 1e-2, data=data,
                                encoding="rbp3", raw_nbytes=raw)
                if publish_interval_s:
                    time.sleep(publish_interval_s)
        done.set()

    def worker(wid: int):
        nonlocal churn_events
        owned = [cid for cid in range(clients) if cid % workers == wid]
        rnd = 0
        local_lat = []
        while True:
            finished = done.is_set()
            rnd += 1
            for cid in owned:
                session = sessions[cid]
                sched = churn_steps[cid]
                i = churn_idx[cid]
                churned = False
                # churn: this viewer drops and a new one takes its place,
                # once its scheduled frame is published (all of them once
                # the publisher is done, so no scheduled churn is lost)
                while i < len(sched) and (
                    finished or sched[i] < hub.frames_published
                ):
                    for frame in session.drain():
                        local_lat.append(
                            time.perf_counter() - frame.published_at)
                    hub.disconnect(session)
                    sessions[cid] = hub.connect(label=session.label)
                    with churn_lock:
                        churn_events += 1
                        retired.append((cid, session.stats))
                    session = sessions[cid]
                    i += 1
                    churned = True
                churn_idx[cid] = i
                if churned:
                    continue
                if is_slow(cid) and rnd % slow_every and not finished:
                    continue              # a slow viewer sleeps this round
                for frame in session.drain():
                    local_lat.append(time.perf_counter() - frame.published_at)
            if finished and all(
                sessions[cid].backlog == 0 for cid in owned
            ):
                break
            time.sleep(0.001)
        with latency_lock:
            latencies.extend(local_lat)

    t0 = time.perf_counter()
    threads = [threading.Thread(target=worker, args=(w,)) for w in range(workers)]
    pub = threading.Thread(target=publisher)
    for t in threads:
        t.start()
    pub.start()
    pub.join()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0

    stats = [sessions[cid].stats for cid in range(clients)]
    stats.extend(s for _cid, s in retired)
    per_client = [sessions[cid].stats.delivered for cid in range(clients)]
    for cid, s in retired:
        per_client[cid] += s.delivered
    delivered = sum(s.delivered for s in stats)
    lat = np.asarray(latencies) if latencies else np.zeros(1)
    fast_counts = np.asarray(
        [n for cid, n in enumerate(per_client) if not is_slow(cid)] or [0]
    )
    result = {
        "clients": clients,
        "peak_clients": hub.peak_clients,
        "frames_published": hub.frames_published,
        "stalls": hub.stalls,
        "max_publish_ms": hub.max_publish_s * 1e3,
        "elapsed_s": elapsed,
        "delivered": delivered,
        "throughput_fps": delivered / elapsed if elapsed > 0 else 0.0,
        "bytes_out": sum(s.bytes_out for s in stats),
        "dropped": sum(s.dropped for s in stats),
        "rate_limited": sum(s.rate_limited for s in stats),
        "latency_p50_ms": float(np.percentile(lat, 50)) * 1e3,
        "latency_p99_ms": float(np.percentile(lat, 99)) * 1e3,
        "fast_delivered_min": int(fast_counts.min()),
        "fast_delivered_max": int(fast_counts.max()),
        "fairness": float(fast_counts.min() / fast_counts.max())
        if fast_counts.max() else 1.0,
        "churn_events": churn_events,
        "store": hub.store.stats(),
        "framestore_hwm_bytes": pub_tel.memory.peaks().get(
            "serve.framestore", 0
        ),
    }
    hub.close()
    return result


def serving_table(**kwargs) -> Table:
    """The serving table: fan-out throughput, latency, backpressure."""
    out = run_serving_load(**kwargs)
    table = Table(
        ["metric", "value"],
        title=(
            "Serving — multi-client frame fan-out "
            f"({out['clients']} loopback clients, "
            f"{out['frames_published']} frames published)"
        ),
    )
    table.add_row(["delivered frames", out["delivered"]])
    table.add_row(["throughput [frames/s]", f"{out['throughput_fps']:.0f}"])
    table.add_row(["bytes out", format_bytes(out["bytes_out"])])
    table.add_row(["latency p50 [ms]", out["latency_p50_ms"]])
    table.add_row(["latency p99 [ms]", out["latency_p99_ms"]])
    table.add_row(["dropped (backpressure)", out["dropped"]])
    table.add_row(["rate limited", out["rate_limited"]])
    table.add_row(
        ["fairness (min/max fast-client frames)",
         f"{out['fast_delivered_min']}/{out['fast_delivered_max']}"
         f" = {out['fairness']:.2f}"]
    )
    table.add_row(["client churn events", out["churn_events"]])
    table.add_row(["publisher stalls", out["stalls"]])
    table.add_row(["max publish [ms]", out["max_publish_ms"]])
    table.add_row(
        ["frame store", format_bytes(out["store"]["payload_bytes"])
         + f" held, {out['store']['frames_deduped']} dedup hits"]
    )
    table.add_row(
        ["frame store HWM (serve.framestore)",
         format_bytes(out["framestore_hwm_bytes"])
         + f" metered, {format_bytes(out['store']['peak_payload_bytes'])}"
           " store peak"]
    )
    store = out["store"]
    if store["codec_raw_bytes"]:
        ratio = store["codec_raw_bytes"] / max(store["codec_wire_bytes"], 1)
        table.add_row(
            ["interned codec frames (fields stream)",
             f"{format_bytes(store['codec_raw_bytes'])} raw -> "
             f"{format_bytes(store['codec_wire_bytes'])} stored "
             f"({ratio:.1f}x, {format_bytes(store['codec_bytes_saved'])}"
             " saved)"]
        )
    return table


if __name__ == "__main__":
    print(serving_table().render())
