"""Serving bench: hundreds of concurrent viewers against one FrameHub.

The acceptance scenario for ``repro.serve``: a publisher streaming
PNG frames into a :class:`~repro.serve.FrameHub` while a mixed client
population consumes them over the loopback transport — fast clients
that drain every frame, slow clients that wake rarely (the
drop-to-latest path), and churning clients that disconnect and
reconnect mid-run (reusing the :class:`~repro.faults.FaultInjector`
so the churn schedule is reproducible).  Clients are multiplexed onto
a small worker pool, the same way an async transport multiplexes
sockets onto an event loop, so "500 concurrent clients" means 500
live sessions, not 500 OS threads.

Measured: delivery throughput, p50/p99 frame latency
(delivery time minus ``Frame.published_at``), dropped / rate-limited
frames, per-client fairness among the fast population, and — the
invariant the hub exists for — **zero publisher stalls**: the
simulation thread must never wait on a viewer.

``python -m repro.bench.serving`` prints the table; the report driver
embeds it as the "Serving" section, and ``python -m repro bench
--gate`` times the fan-out path as the ``serving`` gate row.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.faults import FaultInjector
from repro.observe import Telemetry, active
from repro.serve import FrameHub, HubFull, ServeMesh
from repro.util.png import encode_png
from repro.util.sizes import format_bytes
from repro.util.tables import Table


def synthetic_frames(count: int = 8, size: int = 64, seed: int = 0) -> list[bytes]:
    """A cycle of pre-encoded PNG payloads (distinct, realistic sizes)."""
    rng = np.random.default_rng(seed)
    frames = []
    for i in range(count):
        img = np.zeros((size, size, 3), dtype=np.uint8)
        x = np.linspace(0, 4 * np.pi, size)
        img[:, :, 0] = (127 + 120 * np.sin(x + i)).astype(np.uint8)[None, :]
        img[:, :, 1] = rng.integers(0, 32, size=(size, size), dtype=np.uint8)
        img[:, :, 2] = i * (255 // max(count - 1, 1))
        frames.append(encode_png(img))
    return frames


def synthetic_field_frames(
    count: int = 8, size: int = 16, codec: str = "delta-rle",
    budget: str = "1e-3", seed: int = 0,
) -> list[tuple[bytes, int]]:
    """Codec-encoded RBP3 payloads, as rank 0's ``fields`` stream
    publishes them: a smoothly evolving pressure/temperature pair
    marshalled through one temporal :class:`CodecContext`.  Returns
    ``(wire_bytes, raw_nbytes)`` pairs."""
    from repro.adios.marshal import StepPayload, marshal_step
    from repro.codec import CodecContext, CodecSpec

    spec = CodecSpec.from_cli(codec, budget, temporal=True)
    ctx = CodecContext()
    rng = np.random.default_rng(seed)
    z, y, x = np.meshgrid(*(np.arange(size, dtype=float),) * 3, indexing="ij")
    noise = 1e-4 * rng.normal(size=x.shape)
    frames = []
    for i in range(count):
        p = np.cos(0.21 * x + 0.03 * i) * np.sin(0.17 * y) + 0.05 * z + noise
        t = np.tanh(0.1 * (z - size / 2 + 0.2 * i)) + 0.3 * np.cos(0.2 * x)
        payload = StepPayload(
            step=i, time=i * 1e-2, rank=0,
            variables={"pressure": p, "temperature": t},
        )
        raw = sum(v.nbytes for v in payload.variables.values())
        frames.append((marshal_step(payload, codec=spec, context=ctx), raw))
    return frames


def run_serving_load(
    clients: int = 500,
    frames: int = 60,
    workers: int = 8,
    slow_every: int = 5,
    slow_fraction: float = 0.2,
    churn_probability: float = 0.002,
    seed: int = 11,
    history: int = 32,
    depth: int = 2,
    payload_size: int = 64,
    publish_interval_s: float = 0.002,
    codec: str | None = None,
    codec_budget: str = "1e-3",
) -> dict:
    """Drive the hub with a mixed client population; return raw stats.

    Client ``i`` is *slow* when ``i % int(1/slow_fraction) == 0`` — it
    only drains its queue every ``slow_every``-th service round, so
    backpressure must drop frames for it.  Churn fires per (frame,
    client) through a seeded :class:`FaultInjector` — the draw sites
    are the fixed ``frames x clients`` grid, never the timing-dependent
    service-round count — so the disconnect schedule (and the churn
    total) is identical run to run.
    """
    if clients < 1 or frames < 1:
        raise ValueError("need at least one client and one frame")
    hub = FrameHub(history=history, default_depth=depth)
    injector = FaultInjector(
        seed=seed, probabilities={"endpoint_crash": churn_probability}
    )
    # precomputed churn schedule: client cid churns once frame f is out
    churn_steps = {
        cid: [f for f in range(frames)
              if injector.fires("endpoint_crash", "serve.client", f, cid)]
        for cid in range(clients)
    }
    churn_idx = {cid: 0 for cid in range(clients)}
    payloads = synthetic_frames(size=payload_size, seed=seed)
    # with a codec, the publisher mirrors the serve CLI's rank-0
    # "fields" stream: RBP3 payloads ride the same hub/store path and
    # the store's interning accounts their raw-vs-wire savings
    field_payloads = (
        synthetic_field_frames(codec=codec, budget=codec_budget, seed=seed)
        if codec else []
    )
    slow_modulus = max(int(round(1.0 / slow_fraction)), 1) if slow_fraction > 0 else 0

    def is_slow(cid: int) -> bool:
        return slow_modulus > 0 and cid % slow_modulus == 0

    sessions = {}
    for cid in range(clients):
        kind = "slow" if is_slow(cid) else "fast"
        sessions[cid] = hub.connect(label=f"{kind}-{cid}")

    latencies: list[float] = []
    latency_lock = threading.Lock()
    done = threading.Event()
    churn_events = 0
    churn_lock = threading.Lock()
    # stats of sessions retired by churn, so totals and fairness cover a
    # client's whole lifetime, not just its latest reincarnation
    retired: list = []

    # the publisher thread carries real telemetry so the frame store's
    # refcount-aware `serve.framestore` charge lands in a MemoryMeter
    pub_tel = Telemetry.create(rank=0)

    def publisher():
        with active(pub_tel):
            for i in range(frames):
                hub.publish("catalyst", step=i, time=i * 1e-2,
                            data=payloads[i % len(payloads)])
                if field_payloads:
                    data, raw = field_payloads[i % len(field_payloads)]
                    hub.publish("fields", step=i, time=i * 1e-2, data=data,
                                encoding="rbp3", raw_nbytes=raw)
                if publish_interval_s:
                    time.sleep(publish_interval_s)
        done.set()

    def worker(wid: int):
        nonlocal churn_events
        owned = [cid for cid in range(clients) if cid % workers == wid]
        rnd = 0
        local_lat = []
        while True:
            finished = done.is_set()
            rnd += 1
            for cid in owned:
                session = sessions[cid]
                sched = churn_steps[cid]
                i = churn_idx[cid]
                churned = False
                # churn: this viewer drops and a new one takes its place,
                # once its scheduled frame is published (all of them once
                # the publisher is done, so no scheduled churn is lost)
                while i < len(sched) and (
                    finished or sched[i] < hub.frames_published
                ):
                    for frame in session.drain():
                        local_lat.append(
                            time.perf_counter() - frame.published_at)
                    hub.disconnect(session)
                    sessions[cid] = hub.connect(label=session.label)
                    with churn_lock:
                        churn_events += 1
                        retired.append((cid, session.stats))
                    session = sessions[cid]
                    i += 1
                    churned = True
                churn_idx[cid] = i
                if churned:
                    continue
                if is_slow(cid) and rnd % slow_every and not finished:
                    continue              # a slow viewer sleeps this round
                for frame in session.drain():
                    local_lat.append(time.perf_counter() - frame.published_at)
            if finished and all(
                sessions[cid].backlog == 0 for cid in owned
            ):
                break
            time.sleep(0.001)
        with latency_lock:
            latencies.extend(local_lat)

    t0 = time.perf_counter()
    threads = [threading.Thread(target=worker, args=(w,)) for w in range(workers)]
    pub = threading.Thread(target=publisher)
    for t in threads:
        t.start()
    pub.start()
    pub.join()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0

    stats = [sessions[cid].stats for cid in range(clients)]
    stats.extend(s for _cid, s in retired)
    per_client = [sessions[cid].stats.delivered for cid in range(clients)]
    for cid, s in retired:
        per_client[cid] += s.delivered
    delivered = sum(s.delivered for s in stats)
    lat = np.asarray(latencies) if latencies else np.zeros(1)
    fast_counts = np.asarray(
        [n for cid, n in enumerate(per_client) if not is_slow(cid)] or [0]
    )
    result = {
        "clients": clients,
        "peak_clients": hub.peak_clients,
        "frames_published": hub.frames_published,
        "stalls": hub.stalls,
        "max_publish_ms": hub.max_publish_s * 1e3,
        "elapsed_s": elapsed,
        "delivered": delivered,
        "throughput_fps": delivered / elapsed if elapsed > 0 else 0.0,
        "bytes_out": sum(s.bytes_out for s in stats),
        "dropped": sum(s.dropped for s in stats),
        "rate_limited": sum(s.rate_limited for s in stats),
        "latency_p50_ms": float(np.percentile(lat, 50)) * 1e3,
        "latency_p99_ms": float(np.percentile(lat, 99)) * 1e3,
        "fast_delivered_min": int(fast_counts.min()),
        "fast_delivered_max": int(fast_counts.max()),
        "fairness": float(fast_counts.min() / fast_counts.max())
        if fast_counts.max() else 1.0,
        "churn_events": churn_events,
        "store": hub.store.stats(),
        "framestore_hwm_bytes": pub_tel.memory.peaks().get(
            "serve.framestore", 0
        ),
    }
    hub.close()
    return result


def run_mesh_load(
    clients: int = 2000,
    frames: int = 48,
    relays: int = 4,
    workers: int = 8,
    slow_every: int = 5,
    slow_fraction: float = 0.2,
    churn_probability: float = 0.0005,
    probe_clients: int = 64,
    seed: int = 11,
    history: int = 32,
    depth: int = 2,
    payload_size: int = 48,
    publish_interval_s: float = 0.002,
    kill_relay_at_frame: int | None = None,
    lease_timeout_s: float = 0.5,
    max_clients: int | None = None,
) -> dict:
    """Drive the serving mesh at scale; return raw stats.

    The population mirrors :func:`run_serving_load` — fast clients,
    slow clients (every ``slow_modulus``-th), churners — but the churn
    grid is drawn with :meth:`FaultInjector.fires_grid` (the per-call
    draw would cost ~10us x frames x clients, prohibitive at 100k).
    Because a full sweep over 100k sessions takes longer than a frame
    interval, end-to-end latency is measured on a small *probe*
    population drained in a tight loop (synthetic monitoring), while
    the bulk population feeds throughput, fairness and backpressure.

    ``kill_relay_at_frame`` crashes the busiest relay once that frame
    is out; the run then waits for lease expiry + migration and the
    result records whether every migrated session kept a strictly
    increasing delivered-step sequence (``monotonic_violations``).
    """
    if clients < 1 or frames < 1:
        raise ValueError("need at least one client and one frame")
    pub_tel = Telemetry.create(rank=0)
    with active(pub_tel):
        return _run_mesh_load(
            clients, frames, relays, workers, slow_every, slow_fraction,
            churn_probability, probe_clients, seed, history, depth,
            payload_size, publish_interval_s, kill_relay_at_frame,
            lease_timeout_s, max_clients, pub_tel,
        )


def _run_mesh_load(
    clients, frames, relays, workers, slow_every, slow_fraction,
    churn_probability, probe_clients, seed, history, depth,
    payload_size, publish_interval_s, kill_relay_at_frame,
    lease_timeout_s, max_clients, pub_tel,
) -> dict:
    mesh = ServeMesh(
        relays=relays,
        history=history,
        default_depth=depth,
        max_clients=max_clients,
        lease_timeout_s=lease_timeout_s,
        poll_interval_s=0.001,
        telemetry=pub_tel,
        seed=seed,
    )
    injector = FaultInjector(
        seed=seed, probabilities={"endpoint_crash": churn_probability}
    )
    churn_steps = {
        cid: sorted(fired)
        for cid, fired in injector.fires_grid(
            "endpoint_crash", "serve.client", range(frames), range(clients)
        ).items()
    }
    churn_idx = {cid: 0 for cid in range(clients)}
    payloads = synthetic_frames(size=payload_size, seed=seed)
    slow_modulus = max(int(round(1.0 / slow_fraction)), 1) if slow_fraction > 0 else 0
    probe_stride = max(clients // probe_clients, 1) if probe_clients else 0
    probes = set(range(0, clients, probe_stride)[:probe_clients]
                 if probe_stride else [])

    def is_probe(cid: int) -> bool:
        return cid in probes

    def is_slow(cid: int) -> bool:
        return (
            not is_probe(cid)
            and slow_modulus > 0
            and cid % slow_modulus == 0
        )

    sessions = {}
    for cid in range(clients):
        kind = (
            "probe" if is_probe(cid) else "slow" if is_slow(cid) else "fast"
        )
        sessions[cid] = mesh.connect(label=f"{kind}-{cid}")

    latencies: list[float] = []
    latency_lock = threading.Lock()
    done = threading.Event()
    churn_events = 0
    churn_lock = threading.Lock()
    retired: list = []
    killed_rid: int | None = None

    def publisher():
        nonlocal killed_rid
        with active(pub_tel):
            for i in range(frames):
                mesh.publish("catalyst", step=i, time=i * 1e-2,
                             data=payloads[i % len(payloads)])
                if kill_relay_at_frame is not None and i == kill_relay_at_frame:
                    # crash the busiest relay: the thread dies silently,
                    # detection must come from the lease sweep
                    shard = mesh.shard_map()
                    killed_rid = int(
                        max(shard, key=lambda r: shard[r]["clients"])
                    )
                    mesh.kill_relay(killed_rid)
                if publish_interval_s:
                    time.sleep(publish_interval_s)
            if killed_rid is not None:
                # wait out the lease so migration happens in-run
                deadline = time.perf_counter() + 20 * lease_timeout_s
                while (
                    killed_rid in mesh.ring.members
                    and time.perf_counter() < deadline
                ):
                    mesh.check()
                    time.sleep(lease_timeout_s / 10)
                # one more publish drives backfilled queues to a head
                # every migrated client can drain
                mesh.publish("catalyst", step=frames, time=frames * 1e-2,
                             data=payloads[frames % len(payloads)])
        done.set()

    def probe_worker(wid: int, nworkers: int):
        owned = [cid for i, cid in enumerate(sorted(probes))
                 if i % nworkers == wid]
        local = []
        while owned:
            for cid in owned:
                frame = sessions[cid].take(block=False)
                while frame is not None:
                    local.append(time.perf_counter() - frame.published_at)
                    frame = sessions[cid].take(block=False)
            if done.is_set() and all(
                sessions[cid].backlog == 0 for cid in owned
            ):
                break
            time.sleep(0.0005)
        with latency_lock:
            latencies.extend(local)

    def worker(wid: int):
        nonlocal churn_events
        owned = [cid for cid in range(clients)
                 if cid % workers == wid and not is_probe(cid)]
        rnd = 0
        while True:
            finished = done.is_set()
            rnd += 1
            for cid in owned:
                session = sessions[cid]
                sched = churn_steps[cid]
                i = churn_idx[cid]
                churned = False
                while i < len(sched) and (
                    finished or sched[i] < mesh.frames_published
                ):
                    session.drain()
                    mesh.disconnect(session)
                    try:
                        sessions[cid] = mesh.connect(label=session.label)
                    except HubFull:
                        # budget taken between our release and re-grab
                        # (or the mesh is closing): the viewer stays gone
                        i = len(sched)
                        churned = True
                        break
                    with churn_lock:
                        churn_events += 1
                        retired.append((cid, session.stats))
                    session = sessions[cid]
                    i += 1
                    churned = True
                churn_idx[cid] = i
                if churned:
                    continue
                if is_slow(cid) and rnd % slow_every and not finished:
                    continue
                session.drain()
            if finished and all(
                sessions[cid].backlog == 0 for cid in owned
            ):
                break
            if not finished:
                time.sleep(0.001)

    t0 = time.perf_counter()
    nprobe_workers = min(2, len(probes)) or 0
    threads = [
        threading.Thread(target=worker, args=(w,)) for w in range(workers)
    ] + [
        threading.Thread(target=probe_worker, args=(w, nprobe_workers))
        for w in range(nprobe_workers)
    ]
    pub = threading.Thread(target=publisher)
    for t in threads:
        t.start()
    pub.start()
    pub.join()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0

    stats = [sessions[cid].stats for cid in range(clients)]
    stats.extend(s for _cid, s in retired)
    per_client = [sessions[cid].stats.delivered for cid in range(clients)]
    churned_cids = {cid for cid, _s in retired}
    for cid, s in retired:
        per_client[cid] += s.delivered
    delivered = sum(s.delivered for s in stats)
    # committed steps must be strictly increasing per session — across
    # churn reincarnations and relay handoffs alike
    monotonic_violations = sum(
        1 for s in stats
        if any(b <= a for a, b in zip(s.steps, s.steps[1:]))
    )
    lat = np.asarray(latencies) if latencies else np.zeros(1)
    # fairness is a steady-state property: clients that churned or sat
    # on the crashed relay legitimately missed frames (drop-to-latest
    # skips, it never replays an outage), so they are excluded — the
    # migration itself is gated by monotonic_violations + migrations
    migrated_cids: set = set()
    if killed_rid is not None:
        from repro.fleet import HashRing

        ring0 = HashRing(range(relays), seed=seed)
        migrated_cids = {
            cid for cid in range(clients)
            if ring0.assign(sessions[cid].key) == killed_rid
        }
    fast_counts = np.asarray(
        [n for cid, n in enumerate(per_client)
         if not is_slow(cid) and not is_probe(cid)
         and cid not in churned_cids and cid not in migrated_cids] or [0]
    )
    mesh_stats = mesh.stats()
    result = {
        "clients": clients,
        "relays": relays,
        "peak_clients": mesh.peak_clients,
        "frames_published": mesh.frames_published,
        "stalls": mesh.stalls,
        "max_publish_ms": mesh.max_publish_s * 1e3,
        "elapsed_s": elapsed,
        "delivered": delivered,
        "throughput_fps": delivered / elapsed if elapsed > 0 else 0.0,
        "bytes_out": sum(s.bytes_out for s in stats),
        "dropped": sum(s.dropped for s in stats),
        "rate_limited": sum(s.rate_limited for s in stats),
        "latency_p50_ms": float(np.percentile(lat, 50)) * 1e3,
        "latency_p99_ms": float(np.percentile(lat, 99)) * 1e3,
        "fast_delivered_min": int(fast_counts.min()),
        "fast_delivered_max": int(fast_counts.max()),
        "fairness": float(fast_counts.min() / fast_counts.max())
        if fast_counts.max() else 1.0,
        "churn_events": churn_events,
        "monotonic_violations": monotonic_violations,
        "migrated_clients": len(migrated_cids),
        "killed_relay": killed_rid,
        "migrations": mesh_stats["migrations"],
        "cache": mesh_stats["cache"],
        "shard_map": mesh_stats["shard_map"],
        "notifies": sum(
            r["notifies"] for r in mesh_stats["relays"].values()
        ),
        "store": mesh_stats["store"],
    }
    mesh.close()
    return result


MESH_GATES = {
    "p99_ms": 1000.0,
    "fairness_min": 0.5,
    "cache_hit_rate_min": 0.5,
}


def check_mesh_gate(result: dict, **overrides) -> list[str]:
    """The mesh acceptance gates; returns human-readable failures.

    Gates: zero publisher stalls (the simulation never waits on a
    viewer), probe p99 latency, fast-population fairness, edge-cache
    hit rate, and zero per-session step-monotonicity violations
    (nothing lost or reordered across churn or relay handoff).
    """
    gates = {**MESH_GATES, **overrides}
    failures = []
    if result["stalls"]:
        failures.append(f"publisher stalled {result['stalls']}x (want 0)")
    if result["latency_p99_ms"] > gates["p99_ms"]:
        failures.append(
            f"p99 latency {result['latency_p99_ms']:.1f}ms "
            f"> {gates['p99_ms']:.1f}ms"
        )
    if result["fairness"] < gates["fairness_min"]:
        failures.append(
            f"fairness {result['fairness']:.2f} < {gates['fairness_min']}"
        )
    if result["cache"]["hit_rate"] < gates["cache_hit_rate_min"]:
        failures.append(
            f"cache hit rate {result['cache']['hit_rate']:.2f} "
            f"< {gates['cache_hit_rate_min']}"
        )
    if result["monotonic_violations"]:
        failures.append(
            f"{result['monotonic_violations']} sessions delivered "
            "non-increasing steps (want 0)"
        )
    return failures


def mesh_serving_table(**kwargs) -> Table:
    """The mesh table: sharded fan-out at 100k-client scale."""
    out = run_mesh_load(**kwargs)
    table = Table(
        ["metric", "value"],
        title=(
            "Serving mesh — sharded relay fan-out "
            f"({out['clients']} clients on {out['relays']} relays, "
            f"{out['frames_published']} frames published)"
        ),
    )
    table.add_row(["delivered frames", out["delivered"]])
    table.add_row(["throughput [frames/s]", f"{out['throughput_fps']:.0f}"])
    table.add_row(["bytes out", format_bytes(out["bytes_out"])])
    table.add_row(["probe latency p50 [ms]", out["latency_p50_ms"]])
    table.add_row(["probe latency p99 [ms]", out["latency_p99_ms"]])
    table.add_row(["dropped (backpressure)", out["dropped"]])
    table.add_row(
        ["fairness (min/max fast-client frames)",
         f"{out['fast_delivered_min']}/{out['fast_delivered_max']}"
         f" = {out['fairness']:.2f}"]
    )
    table.add_row(["client churn events", out["churn_events"]])
    table.add_row(["publisher stalls", out["stalls"]])
    table.add_row(["max publish [ms]", out["max_publish_ms"]])
    table.add_row(
        ["publisher wakeups (O(relays) per frame)",
         f"{out['notifies']} = {out['frames_published']} frames x "
         f"{out['relays']} relays"]
    )
    cache = out["cache"]
    table.add_row(
        ["edge cache",
         f"{cache['hits']} hits / {cache['misses']} misses "
         f"= {cache['hit_rate']:.2f} hit rate"]
    )
    table.add_row(["step monotonicity violations", out["monotonic_violations"]])
    if out["killed_relay"] is not None:
        moved = sum(
            m["sessions_moved"] for m in out["migrations"]
            if m["kind"] == "crash"
        )
        table.add_row(
            ["relay crash",
             f"relay {out['killed_relay']} killed; {moved} sessions "
             "migrated via lease expiry"]
        )
    failures = check_mesh_gate(out)
    table.add_row(
        ["acceptance gates", "all passing" if not failures
         else "; ".join(failures)]
    )
    return table


def serving_table(**kwargs) -> Table:
    """The serving table: fan-out throughput, latency, backpressure."""
    out = run_serving_load(**kwargs)
    table = Table(
        ["metric", "value"],
        title=(
            "Serving — multi-client frame fan-out "
            f"({out['clients']} loopback clients, "
            f"{out['frames_published']} frames published)"
        ),
    )
    table.add_row(["delivered frames", out["delivered"]])
    table.add_row(["throughput [frames/s]", f"{out['throughput_fps']:.0f}"])
    table.add_row(["bytes out", format_bytes(out["bytes_out"])])
    table.add_row(["latency p50 [ms]", out["latency_p50_ms"]])
    table.add_row(["latency p99 [ms]", out["latency_p99_ms"]])
    table.add_row(["dropped (backpressure)", out["dropped"]])
    table.add_row(["rate limited", out["rate_limited"]])
    table.add_row(
        ["fairness (min/max fast-client frames)",
         f"{out['fast_delivered_min']}/{out['fast_delivered_max']}"
         f" = {out['fairness']:.2f}"]
    )
    table.add_row(["client churn events", out["churn_events"]])
    table.add_row(["publisher stalls", out["stalls"]])
    table.add_row(["max publish [ms]", out["max_publish_ms"]])
    table.add_row(
        ["frame store", format_bytes(out["store"]["payload_bytes"])
         + f" held, {out['store']['frames_deduped']} dedup hits"]
    )
    table.add_row(
        ["frame store HWM (serve.framestore)",
         format_bytes(out["framestore_hwm_bytes"])
         + f" metered, {format_bytes(out['store']['peak_payload_bytes'])}"
           " store peak"]
    )
    store = out["store"]
    if store["codec_raw_bytes"]:
        ratio = store["codec_raw_bytes"] / max(store["codec_wire_bytes"], 1)
        table.add_row(
            ["interned codec frames (fields stream)",
             f"{format_bytes(store['codec_raw_bytes'])} raw -> "
             f"{format_bytes(store['codec_wire_bytes'])} stored "
             f"({ratio:.1f}x, {format_bytes(store['codec_bytes_saved'])}"
             " saved)"]
        )
    return table


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description="serving load bench")
    parser.add_argument("--mesh", action="store_true",
                        help="drive the sharded ServeMesh instead of the flat hub")
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--relays", type=int, default=8)
    parser.add_argument("--frames", type=int, default=48)
    parser.add_argument("--kill-at", type=int, default=None, metavar="FRAME",
                        help="crash the busiest relay once FRAME is published")
    cli_args = parser.parse_args()
    if cli_args.mesh:
        n = cli_args.clients or 100_000
        # a frame interval the interpreter can actually fan out at
        # this scale (~1.5us of pump work per client per frame);
        # 100k clients -> ~6.7 fps, a realistic viz cadence
        interval = max(0.002, n * 1.5e-6)
        print(mesh_serving_table(
            clients=n,
            relays=cli_args.relays,
            frames=cli_args.frames,
            probe_clients=min(256, max(n // 8, 1)),
            kill_relay_at_frame=cli_args.kill_at,
            publish_interval_s=interval,
            # the lease must outlive a GIL-contended fan-out pass (which
            # scales with the frame interval) but a crash outage is
            # lease-bound, so don't make a small run wait 100k's worth
            lease_timeout_s=min(2.0, max(0.5, 20 * interval)),
        ).render())
    else:
        print(serving_table(
            **({"clients": cli_args.clients} if cli_args.clients else {})
        ).render())
