"""Storage economy: 6.5 MB of Catalyst images vs 19 GB of checkpoints.

The paper's in-text result for the pb146 runs: "the storage demand for
Catalyst was a mere 6.5 MB, in stark contrast to the whopping 19 GB
necessitated by Checkpointing ... nearly three orders of magnitude
less."  Checkpoint volume is exact arithmetic (dumps x fields x
gridpoints x 8 B); image volume extrapolates the *measured* PNG bytes
per rendered image of the real pipeline.

Run as ``python -m repro.bench.storage``.
"""

from __future__ import annotations

import math

from repro.bench.replay import ReplayConfig, predict_insitu_run
from repro.bench.workloads import (
    PB146_GRIDPOINTS,
    PB146_INTERVAL,
    PB146_STEPS,
    pb146_profiles,
)
from repro.machine import POLARIS, ClusterSpec
from repro.util.sizes import format_bytes
from repro.util.tables import Table


def run(
    cluster: ClusterSpec = POLARIS,
    ranks: int = 280,
    steps: int = PB146_STEPS,
    interval: int = PB146_INTERVAL,
    total_gridpoints: float = PB146_GRIDPOINTS,
    config: ReplayConfig = ReplayConfig(),
    measure_kwargs: dict | None = None,
) -> Table:
    profiles = pb146_profiles(**(measure_kwargs or {}))
    preds = {
        mode: predict_insitu_run(
            profiles[mode], cluster, ranks, total_gridpoints,
            steps=steps, interval=interval, config=config,
        )
        for mode in ("checkpoint", "catalyst")
    }
    ckpt = preds["checkpoint"].storage_bytes
    cat = preds["catalyst"].storage_bytes
    table = Table(
        ["configuration", "storage", "bytes", "orders of magnitude vs ckpt"],
        title="Storage economy — pb146, full 3000-step run",
        float_format="{:.2f}",
    )
    table.add_row(["Checkpointing", format_bytes(ckpt), ckpt, 0.0])
    table.add_row(
        ["Catalyst", format_bytes(cat), cat, math.log10(ckpt / cat) if cat else float("inf")]
    )
    return table


if __name__ == "__main__":
    print(run().render())
