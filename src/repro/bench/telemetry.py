"""Telemetry summary: traced measurement runs per in situ mode.

Runs the scaled-down pb146 analog once per Section 4.1 mode with a
:class:`repro.observe.TelemetrySession` attached and tabulates what the
trace says: per-phase wall time (solver pipeline, in situ bridge,
checkpoint IO) and per-rank memory high-water marks per category.  The
same numbers the RunProfile instrumentation reports, but derived from
the unified telemetry layer — the two must agree (the integration test
pins them to within 1%).

Run as ``python -m repro.bench.telemetry``; the full bench report
(:mod:`repro.bench.report`) embeds this as its Telemetry section, and
``python -m repro trace`` exports the raw trace/metrics files.
"""

from __future__ import annotations

import sys

from repro.bench.measure import measure_insitu_profile
from repro.bench.workloads import measurement_pebble_case
from repro.observe import TelemetrySession
from repro.observe.tracer import SpanEvent
from repro.util.sizes import MIB
from repro.util.tables import Table

MODES = ("original", "checkpoint", "catalyst")

_trace_cache: dict = {}


def span_seconds(events, name: str) -> float:
    """Total seconds spent in spans named `name`, across all ranks."""
    return sum(
        e.dur for e in events if isinstance(e, SpanEvent) and e.name == name
    )


def traced_profiles(measure_kwargs: dict | None = None) -> dict:
    """Measure each mode with a telemetry session attached (cached).

    Returns ``{mode: (RunProfile, TelemetrySession)}``.
    """
    kwargs = dict(measure_kwargs or {})
    num_pebbles = kwargs.pop("num_pebbles", 3)
    order = kwargs.pop("order", 3)
    kwargs.setdefault("ranks", 2)
    kwargs.setdefault("steps", 4)
    kwargs.setdefault("interval", 2)
    kwargs.setdefault("image_size", 192)
    key = (num_pebbles, order, tuple(sorted(kwargs.items())))
    if key not in _trace_cache:
        case = measurement_pebble_case(
            num_pebbles, order=order, num_steps=kwargs["steps"]
        )
        out = {}
        for mode in MODES:
            session = TelemetrySession(label=f"pb146-{mode}")
            out[mode] = (
                measure_insitu_profile(case, mode, session=session, **kwargs),
                session,
            )
        _trace_cache[key] = out
    return _trace_cache[key]


def run(measure_kwargs: dict | None = None) -> Table:
    """Telemetry summary table: per-phase time and memory HWM per mode."""
    table = Table(
        [
            "mode",
            "solver [s]",
            "insitu [s]",
            "render [s]",
            "checkpoint [s]",
            "solver HWM [MiB]",
            "staging HWM [MiB]",
            "total HWM [MiB]",
        ],
        title="Telemetry — traced pb146 runs (times summed across ranks, "
              "memory = sum of per-rank category peaks)",
    )
    for mode, (_, session) in traced_profiles(measure_kwargs).items():
        events = session.events()
        agg = session.memory_aggregate()
        table.add_row(
            [
                mode,
                span_seconds(events, "solver.step"),
                span_seconds(events, "bridge.execute"),
                span_seconds(events, "catalyst.render"),
                span_seconds(events, "checkpoint.write"),
                agg.get("solver", 0) / MIB,
                agg.get("sensei.staging", 0) / MIB,
                sum(agg.values()) / MIB,
            ]
        )
    return table


def flame(measure_kwargs: dict | None = None, mode: str = "catalyst") -> str:
    """Flame summary of one traced mode (default: catalyst)."""
    _, session = traced_profiles(measure_kwargs)[mode]
    return session.flame_summary()


def clear_cache() -> None:
    _trace_cache.clear()


if __name__ == "__main__":
    print(run().render())
    print()
    print(flame())
    sys.exit(0)
