"""Scaled-down measurement workloads shared by the figure drivers.

The pb146 and RBC analogs are measured once per parameter set (module
cache) and reused by every figure that replays them — Figures 2, 3 and
the storage table all share one set of pb146 profiles, exactly as the
paper derives them from one set of runs.
"""

from __future__ import annotations

from repro.bench.measure import measure_insitu_profile, measure_intransit_profiles
from repro.nekrs.cases import pebble_bed_case, weak_scaled_rbc_case

#: pb146 production-scale problem size (gridpoints).  Calibrated to the
#: paper's 19 GB checkpoint volume: 30 dumps x 4 fields x 8 B x G = 19 GB
#: => G ~ 19.8e6, consistent with the public pb146 mesh at N=7.
PB146_GRIDPOINTS = 19.8e6

#: The paper's run shape: 3000 steps, in situ / checkpoint every 100.
PB146_STEPS = 3000
PB146_INTERVAL = 100

_profile_cache: dict = {}


def measurement_pebble_case(
    num_pebbles: int = 5,
    elements_per_unit: int = 3,
    order: int = 3,
    num_steps: int = 4,
):
    """A laptop-scale pb146 analog for instrumented measurement."""
    return pebble_bed_case(
        num_pebbles=num_pebbles,
        elements_per_unit=elements_per_unit,
        order=order,
        dt=1e-3,
        num_steps=num_steps,
        viscosity=5e-2,
    )


def pb146_profiles(
    ranks: int = 4,
    steps: int = 4,
    interval: int = 2,
    num_pebbles: int = 5,
    order: int = 3,
    image_size: int = 256,
) -> dict:
    """Measured profiles for the Section 4.1 modes plus the
    device-resident Catalyst variant (cached)."""
    key = ("pb146", ranks, steps, interval, num_pebbles, order, image_size)
    if key not in _profile_cache:
        case = measurement_pebble_case(num_pebbles, order=order, num_steps=steps)
        _profile_cache[key] = {
            mode: measure_insitu_profile(
                case,
                mode,
                ranks=ranks,
                steps=steps,
                interval=interval,
                isovalue=0.5,
                array="velocity_magnitude",
                color_array="temperature",
                image_size=image_size,
            )
            for mode in (
                "original", "checkpoint", "catalyst", "catalyst_device"
            )
        }
    return _profile_cache[key]


def rbc_profiles(
    total_ranks: int = 5,
    steps: int = 4,
    stream_interval: int = 2,
    ratio: int = 4,
    order: int = 3,
    elements_per_rank: int = 4,
) -> dict:
    """Measured profiles for the three Section 4.2 modes (cached)."""
    key = ("rbc", total_ranks, steps, stream_interval, ratio, order, elements_per_rank)
    if key not in _profile_cache:

        def case_builder(nsim):
            c = weak_scaled_rbc_case(
                nsim, elements_per_rank=elements_per_rank, order=order, dt=1e-3
            )
            return c.with_overrides(num_steps=steps)

        _profile_cache[key] = {
            mode: measure_intransit_profiles(
                case_builder,
                mode,
                total_ranks=total_ranks,
                steps=steps,
                stream_interval=stream_interval,
                ratio=ratio,
                image_size=128,
            )
            for mode in ("none", "checkpoint", "catalyst")
        }
    return _profile_cache[key]


def clear_cache() -> None:
    _profile_cache.clear()
