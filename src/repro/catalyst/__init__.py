"""Catalyst-style software visualization pipeline.

The paper's Catalyst AnalysisAdaptor renders images with ParaView
(OSPRay backend); this package is the from-scratch equivalent: filters
(isosurface via marching tetrahedra, plane slices, thresholds) feeding
a z-buffered triangle rasterizer with diffuse shading and perceptual
colormaps, writing real PNG files.

Everything operates on plain NumPy volumes/vertex arrays so it can run
at the endpoint of either the in situ or the in transit workflow.
"""

from repro.catalyst.colormaps import apply_colormap, colormap_names
from repro.catalyst.camera import Camera
from repro.catalyst.rasterizer import Rasterizer
from repro.catalyst.contour import marching_tetrahedra
from repro.catalyst.slicefilter import axis_slice, plane_sample
from repro.catalyst.pipeline import RenderPipeline, RenderSpec, load_pipeline_script
from repro.catalyst.threshold import clip_box, threshold, threshold_by
from repro.catalyst.annotations import draw_colorbar, draw_step_label, draw_text

__all__ = [
    "apply_colormap",
    "colormap_names",
    "Camera",
    "Rasterizer",
    "marching_tetrahedra",
    "axis_slice",
    "plane_sample",
    "RenderPipeline",
    "RenderSpec",
    "load_pipeline_script",
    "threshold",
    "threshold_by",
    "clip_box",
    "draw_text",
    "draw_colorbar",
    "draw_step_label",
]
