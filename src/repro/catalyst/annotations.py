"""Image annotations: bitmap text, step/time labels, colorbars.

Production in situ frames carry burned-in annotations (timestep, time,
a colorbar with its range) because nobody can re-render a frame whose
simulation state is gone.  A tiny built-in 5x7 bitmap font covers the
characters annotations need; no font files, no dependencies.
"""

from __future__ import annotations

import numpy as np

from repro.catalyst.colormaps import apply_colormap

# 5x7 bitmap glyphs, rows top->bottom, 5-bit binary strings per row.
_GLYPHS: dict[str, tuple[str, ...]] = {
    "0": ("01110", "10001", "10011", "10101", "11001", "10001", "01110"),
    "1": ("00100", "01100", "00100", "00100", "00100", "00100", "01110"),
    "2": ("01110", "10001", "00001", "00010", "00100", "01000", "11111"),
    "3": ("11110", "00001", "00001", "01110", "00001", "00001", "11110"),
    "4": ("00010", "00110", "01010", "10010", "11111", "00010", "00010"),
    "5": ("11111", "10000", "11110", "00001", "00001", "10001", "01110"),
    "6": ("00110", "01000", "10000", "11110", "10001", "10001", "01110"),
    "7": ("11111", "00001", "00010", "00100", "01000", "01000", "01000"),
    "8": ("01110", "10001", "10001", "01110", "10001", "10001", "01110"),
    "9": ("01110", "10001", "10001", "01111", "00001", "00010", "01100"),
    ".": ("00000", "00000", "00000", "00000", "00000", "01100", "01100"),
    "-": ("00000", "00000", "00000", "01110", "00000", "00000", "00000"),
    "+": ("00000", "00100", "00100", "11111", "00100", "00100", "00000"),
    ":": ("00000", "01100", "01100", "00000", "01100", "01100", "00000"),
    "=": ("00000", "00000", "11111", "00000", "11111", "00000", "00000"),
    " ": ("00000",) * 7,
    "e": ("00000", "00000", "01110", "10001", "11111", "10000", "01110"),
    "s": ("00000", "00000", "01111", "10000", "01110", "00001", "11110"),
    "t": ("01000", "01000", "11100", "01000", "01000", "01001", "00110"),
    "p": ("00000", "00000", "11110", "10001", "11110", "10000", "10000"),
    "i": ("00100", "00000", "01100", "00100", "00100", "00100", "01110"),
    "m": ("00000", "00000", "11010", "10101", "10101", "10101", "10101"),
    "x": ("00000", "00000", "10001", "01010", "00100", "01010", "10001"),
    "y": ("00000", "00000", "10001", "10001", "01111", "00001", "01110"),
    "z": ("00000", "00000", "11111", "00010", "00100", "01000", "11111"),
    "a": ("00000", "00000", "01110", "00001", "01111", "10001", "01111"),
    "n": ("00000", "00000", "11110", "10001", "10001", "10001", "10001"),
    "r": ("00000", "00000", "10110", "11001", "10000", "10000", "10000"),
    "u": ("00000", "00000", "10001", "10001", "10001", "10011", "01101"),
    "c": ("00000", "00000", "01110", "10001", "10000", "10001", "01110"),
    "o": ("00000", "00000", "01110", "10001", "10001", "10001", "01110"),
    "d": ("00001", "00001", "01111", "10001", "10001", "10001", "01111"),
    "l": ("01100", "00100", "00100", "00100", "00100", "00100", "01110"),
}

GLYPH_WIDTH = 5
GLYPH_HEIGHT = 7


def text_extent(text: str, scale: int = 1) -> tuple[int, int]:
    """(width, height) in pixels of rendered `text`."""
    return (len(text) * (GLYPH_WIDTH + 1) * scale, GLYPH_HEIGHT * scale)


def draw_text(
    image: np.ndarray,
    x: int,
    y: int,
    text: str,
    color: tuple[int, int, int] = (255, 255, 255),
    scale: int = 1,
) -> np.ndarray:
    """Draw `text` with its top-left corner at (x, y); clips at edges.

    Unknown characters render as blanks rather than raising — an
    annotation must never kill a render.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    h, w = image.shape[:2]
    col = np.asarray(color, dtype=np.uint8)
    cx = x
    for ch in text.lower():
        glyph = _GLYPHS.get(ch, _GLYPHS[" "])
        for gy, row in enumerate(glyph):
            for gx, bit in enumerate(row):
                if bit != "1":
                    continue
                py0 = y + gy * scale
                px0 = cx + gx * scale
                py1, px1 = py0 + scale, px0 + scale
                if px1 <= 0 or py1 <= 0 or px0 >= w or py0 >= h:
                    continue
                image[max(py0, 0) : min(py1, h), max(px0, 0) : min(px1, w)] = col
        cx += (GLYPH_WIDTH + 1) * scale
    return image


def _format_value(v: float) -> str:
    if v == 0:
        return "0"
    if 0.01 <= abs(v) < 10000:
        return f"{v:.3g}"
    return f"{v:.1e}"


def draw_colorbar(
    image: np.ndarray,
    vmin: float,
    vmax: float,
    colormap: str = "viridis",
    width: int = 12,
    margin: int = 6,
) -> np.ndarray:
    """Vertical colorbar on the right edge with min/max labels."""
    h, w = image.shape[:2]
    bar_h = max(h - 2 * margin - 2 * GLYPH_HEIGHT - 4, 8)
    top = margin + GLYPH_HEIGHT + 2
    left = w - margin - width
    if left < 0:
        raise ValueError("image too narrow for a colorbar")
    ramp = np.linspace(1.0, 0.0, bar_h)
    colors = apply_colormap(ramp, 0.0, 1.0, colormap)
    image[top : top + bar_h, left : left + width] = colors[:, None, :]
    # thin border
    image[top - 1, left - 1 : left + width + 1] = 255
    image[top + bar_h, left - 1 : left + width + 1] = 255
    image[top - 1 : top + bar_h + 1, left - 1] = 255
    image[top - 1 : top + bar_h + 1, left + width] = 255
    hi_label = _format_value(vmax)
    lo_label = _format_value(vmin)
    draw_text(image, left + width - text_extent(hi_label)[0], margin, hi_label)
    draw_text(
        image,
        left + width - text_extent(lo_label)[0],
        top + bar_h + 3,
        lo_label,
    )
    return image


def draw_step_label(
    image: np.ndarray, step: int, time: float, margin: int = 6
) -> np.ndarray:
    """Burn "step N  t=T" into the top-left corner."""
    label = f"step {step}  t={_format_value(time)}"
    return draw_text(image, margin, margin, label)
