"""Look-at camera with perspective or orthographic projection."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _normalize(v: np.ndarray) -> np.ndarray:
    n = np.linalg.norm(v)
    if n == 0:
        raise ValueError("zero-length vector in camera setup")
    return v / n


@dataclass
class Camera:
    """World -> screen transform.

    `project(points)` maps ``(N, 3)`` world points to ``(N, 3)`` where
    the first two columns are pixel coordinates and the third is view
    depth (larger = farther), which the rasterizer z-buffers on.
    """

    position: tuple[float, float, float]
    look_at: tuple[float, float, float]
    up: tuple[float, float, float] = (0.0, 0.0, 1.0)
    fov_degrees: float = 35.0
    width: int = 512
    height: int = 512
    orthographic: bool = False
    ortho_scale: float = 1.0   # world units spanned vertically (ortho only)

    _basis: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        if self.width < 1 or self.height < 1:
            raise ValueError("image dimensions must be positive")
        if not 0 < self.fov_degrees < 180:
            raise ValueError("fov must be in (0, 180) degrees")
        eye = np.asarray(self.position, dtype=float)
        target = np.asarray(self.look_at, dtype=float)
        forward = _normalize(target - eye)
        up = np.asarray(self.up, dtype=float)
        right = _normalize(np.cross(forward, up))
        true_up = np.cross(right, forward)
        self._basis = np.stack([right, true_up, forward])  # rows

    @classmethod
    def fit_bounds(
        cls,
        bounds: np.ndarray,
        direction: tuple[float, float, float] = (1.0, -1.5, 0.8),
        width: int = 512,
        height: int = 512,
        **kwargs,
    ) -> "Camera":
        """Frame an axis-aligned bounding box from a view direction."""
        bounds = np.asarray(bounds, dtype=float)
        center = bounds.mean(axis=1)
        radius = float(np.linalg.norm(bounds[:, 1] - bounds[:, 0])) / 2.0
        d = _normalize(np.asarray(direction, dtype=float))
        # tan(35 deg / 2) ~ 0.315 => the bounding sphere needs ~3.2
        # radii of standoff to fit; 3.4 leaves a margin
        eye = center + d * radius * 3.4
        return cls(
            position=tuple(eye),
            look_at=tuple(center),
            width=width,
            height=height,
            **kwargs,
        )

    def project(self, points: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        eye = np.asarray(self.position, dtype=float)
        rel = pts - eye
        cam = rel @ self._basis.T       # columns: right, up, forward
        x, y, z = cam[:, 0], cam[:, 1], cam[:, 2]
        if self.orthographic:
            scale = self.height / self.ortho_scale
            sx = x * scale
            sy = y * scale
        else:
            f = (self.height / 2.0) / np.tan(np.radians(self.fov_degrees) / 2.0)
            with np.errstate(divide="ignore", invalid="ignore"):
                sx = np.where(z > 1e-9, f * x / z, np.inf)
                sy = np.where(z > 1e-9, f * y / z, np.inf)
        px = self.width / 2.0 + sx
        py = self.height / 2.0 - sy     # screen y grows downward
        return np.stack([px, py, z], axis=1)

    @property
    def view_direction(self) -> np.ndarray:
        return self._basis[2]
