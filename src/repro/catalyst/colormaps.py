"""Perceptual colormaps for pseudocoloring.

Control points sampled from the standard viridis/plasma tables plus a
diverging coolwarm; piecewise-linear interpolation between them is
visually indistinguishable at render resolution and keeps the tables
small and dependency-free.
"""

from __future__ import annotations

import numpy as np

_MAPS: dict[str, np.ndarray] = {
    # (position-implicit uniform) RGB control points in [0, 1]
    "viridis": np.array(
        [
            [0.267, 0.005, 0.329],
            [0.283, 0.141, 0.458],
            [0.254, 0.265, 0.530],
            [0.207, 0.372, 0.553],
            [0.164, 0.471, 0.558],
            [0.128, 0.567, 0.551],
            [0.135, 0.659, 0.518],
            [0.267, 0.749, 0.441],
            [0.478, 0.821, 0.318],
            [0.741, 0.873, 0.150],
            [0.993, 0.906, 0.144],
        ]
    ),
    "plasma": np.array(
        [
            [0.050, 0.030, 0.528],
            [0.294, 0.012, 0.631],
            [0.492, 0.012, 0.658],
            [0.658, 0.134, 0.588],
            [0.798, 0.280, 0.469],
            [0.899, 0.422, 0.361],
            [0.973, 0.580, 0.254],
            [0.993, 0.766, 0.157],
            [0.940, 0.975, 0.131],
        ]
    ),
    "coolwarm": np.array(
        [
            [0.230, 0.299, 0.754],
            [0.406, 0.537, 0.934],
            [0.602, 0.731, 0.999],
            [0.788, 0.846, 0.939],
            [0.930, 0.820, 0.761],
            [0.967, 0.657, 0.537],
            [0.887, 0.413, 0.324],
            [0.706, 0.016, 0.150],
        ]
    ),
    "grayscale": np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]]),
}


def colormap_names() -> list[str]:
    return sorted(_MAPS)


def apply_colormap(
    values: np.ndarray,
    vmin: float | None = None,
    vmax: float | None = None,
    name: str = "viridis",
) -> np.ndarray:
    """Map scalars to uint8 RGB, shape ``values.shape + (3,)``.

    NaNs map to mid-gray; a degenerate range maps everything to the
    low end (uniform fields render flat rather than raising).
    """
    if name not in _MAPS:
        raise KeyError(f"unknown colormap {name!r}; known: {colormap_names()}")
    table = _MAPS[name]
    vals = np.asarray(values, dtype=float)
    nan_mask = ~np.isfinite(vals)
    lo = float(np.nanmin(vals)) if vmin is None else float(vmin)
    hi = float(np.nanmax(vals)) if vmax is None else float(vmax)
    if not np.isfinite(lo) or not np.isfinite(hi) or hi <= lo:
        t = np.zeros_like(vals)
    else:
        t = np.clip((vals - lo) / (hi - lo), 0.0, 1.0)
    t = np.where(nan_mask, 0.0, t)
    pos = t * (len(table) - 1)
    i0 = np.floor(pos).astype(int)
    i1 = np.minimum(i0 + 1, len(table) - 1)
    frac = (pos - i0)[..., None]
    rgb = table[i0] * (1.0 - frac) + table[i1] * frac
    rgb[nan_mask] = 0.5
    return (rgb * 255.0 + 0.5).astype(np.uint8)


def apply_colormap_device(
    device,
    values,
    vmin: float | None = None,
    vmax: float | None = None,
    name: str = "viridis",
) -> np.ndarray:
    """Device twin: colormap a :class:`DeviceMemory` buffer through the
    registered ``catalyst.colormap`` kernel — same table walk, no
    device→host transfer charged."""
    from repro.occa.kernels import install_render_kernels

    return install_render_kernels(device).colormap(values, vmin, vmax, name)
