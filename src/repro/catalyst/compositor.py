"""Sort-last parallel rendering: depth compositing of rank framebuffers.

The gather-to-root render path ships the *entire* global volume to rank
0 every step — O(N · fragment) traffic into one endpoint, exactly the
serial bottleneck production in situ renderers avoid with sort-last
compositing (ISAAC; the paper's Catalyst endpoint at 1120 ranks).
Here every rank rasterizes only its own volume fragments into an RGB +
depth framebuffer and the group merges those by depth:

- :func:`composite_binary_swap` — the classic power-of-two scheme:
  log2(N) pairwise rounds, each exchanging *half* of the remaining
  image region, leaving each rank with a fully composited 1/N of the
  image; total per-rank traffic ~2·(N−1)/N of one framebuffer.
- :func:`composite_direct_send` — the ragged-size fallback: each rank
  owns an H/N row strip and receives the other N−1 partial strips
  directly.
- :func:`composite` — dispatcher (``binary_swap`` auto-falls back to
  direct-send for non-power-of-two groups); after the merge rounds the
  root collects the N strips, ~one framebuffer of ingress — still
  independent of volume size.
- :func:`gather_composite` — the allgather-based reference the parity
  suite checks the network schemes against bit for bit; also the
  ``naive_mode()`` path.

Pixels are merged by lexicographic ``(depth, owner_rank)`` minimum —
associative and commutative, so any composition order yields the same
image.

:func:`render_composited` runs a :class:`RenderPipeline` spec list
distributed: contours are extracted per fragment against *global* grid
indices (``marching_tetrahedra(index_offset=...)`` keeps vertex
coordinates bitwise identical to contouring the assembled volume),
after a one-``alltoall`` ghost-layer exchange that extends each
fragment by the +x/+y/+z neighbor planes (fragments tile the lattice
disjointly, so without ghosts the inter-fragment cell layer would be
lost).  Colormap and annotation ranges are min/max allreduces of local
extrema — bitwise equal to the global scan.  Slices gather only the
two contributing lattice planes to the root.  For opaque surfaces the
result is pixel-identical to the gather-to-root reference.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.catalyst.camera import Camera
from repro.catalyst.colormaps import apply_colormap
from repro.catalyst.contour import marching_tetrahedra
from repro.catalyst.pipeline import (
    RenderPipeline,
    _resize_nearest,
    draw_annotations,
)
from repro.catalyst.rasterizer import Rasterizer, apply_background_gradient
from repro.catalyst.slicefilter import slice_plan
from repro.catalyst.threshold import threshold_by
from repro.observe import get_telemetry
from repro.parallel.comm import Communicator, ReduceOp
from repro.perf import config as perf_config
from repro.perf.arena import get_arena

__all__ = [
    "composite",
    "composite_binary_swap",
    "composite_direct_send",
    "exchange_ghost_layers",
    "gather_composite",
    "render_composited",
]

#: reserved mailbox tag for compositing traffic (negative = internal,
#: see repro.parallel.thread_comm)
_TAG_COMPOSITE = -106

#: the seven positive-neighbor directions a fragment needs ghost data
#: from: faces, edges, and the corner, in (x, y, z) unit steps
_GHOST_DIRS = (
    (1, 0, 0), (0, 1, 0), (0, 0, 1),
    (1, 1, 0), (1, 0, 1), (0, 1, 1),
    (1, 1, 1),
)


# -- transport ----------------------------------------------------------

def _xfer_put(comm: Communicator, obj, dest: int) -> None:
    put = getattr(comm, "_put", None)
    if put is not None:
        put(obj, dest, _TAG_COMPOSITE)
    else:  # pragma: no cover - non-thread communicators
        comm.send(obj, dest, _TAG_COMPOSITE)


def _xfer_take(comm: Communicator, source: int):
    take = getattr(comm, "_take", None)
    if take is not None:
        return take(source, _TAG_COMPOSITE)
    return comm.recv(source, _TAG_COMPOSITE)  # pragma: no cover


def _record_ingress(comm: Communicator, *arrays: np.ndarray) -> None:
    comm.meter.record(
        "composite",
        sum(a.nbytes for a in arrays),
        comm.size,
        comm.channel,
        rank=comm.rank,
    )


# -- pixel merge --------------------------------------------------------

def _merge(color_a, depth_a, owner_a, color_b, depth_b, owner_b) -> None:
    """Merge framebuffer B into A by lexicographic (depth, owner) min."""
    if depth_a.size == 0:
        return
    sel = (depth_b < depth_a) | ((depth_b == depth_a) & (owner_b < owner_a))
    color_a[sel] = color_b[sel]
    depth_a[sel] = depth_b[sel]
    owner_a[sel] = owner_b[sel]


def gather_composite(
    comm: Communicator, color: np.ndarray, depth: np.ndarray, root: int = 0
):
    """Reference compositor: gather every framebuffer, merge at root.

    O(N) framebuffers of ingress at the root; kept as the bit-for-bit
    semantic reference for the network schemes (processing in rank
    order with a strict ``<`` equals the (depth, owner) tie-break).
    """
    gathered = comm.gather((color, depth), root)
    if gathered is None:
        return None
    c0, d0 = gathered[0]
    out_color = np.array(c0)
    out_depth = np.array(d0)
    for c, d in gathered[1:]:
        sel = d < out_depth
        out_color[sel] = c[sel]
        out_depth[sel] = d[sel]
    return out_color, out_depth


def _collect_regions(
    comm: Communicator,
    region: tuple[int, int],
    color: np.ndarray,
    depth: np.ndarray,
    root: int,
):
    """Gather each rank's composited row region onto fresh root buffers.

    The root copies into *new* arrays rather than its own framebuffer:
    peers may still be reading regions the root sent in earlier rounds,
    so the root's buffers must stay immutable outside its kept region
    until the closing barrier.
    """
    lo, hi = region
    if comm.rank == root:
        out_color = np.empty_like(color)
        out_depth = np.empty_like(depth)
        out_color[lo:hi] = color[lo:hi]
        out_depth[lo:hi] = depth[lo:hi]
        for r in range(comm.size):
            if r == root:
                continue
            (rlo, rhi), c, d = _xfer_take(comm, r)
            _record_ingress(comm, c, d)
            if rhi > rlo:
                out_color[rlo:rhi] = c
                out_depth[rlo:rhi] = d
        result = (out_color, out_depth)
    else:
        _xfer_put(comm, ((lo, hi), color[lo:hi], depth[lo:hi]), root)
        result = None
    # peers hold views of this rank's buffers until they finish their
    # copies; nobody returns (and possibly recycles a buffer) early
    comm.barrier()
    return result


def composite_binary_swap(
    comm: Communicator, color: np.ndarray, depth: np.ndarray, root: int = 0,
    arena=None,
):
    """Binary-swap depth compositing (communicator size must be 2^k).

    Round i pairs rank with ``rank ^ 2^i``: each sends half of its
    remaining image rows and merges the partner's half into the half it
    keeps, so after log2(N) rounds every rank owns a disjoint, fully
    composited 1/N of the image; the root then collects the regions.

    `arena` supplies the owner-buffer scratch; the device-resident path
    passes a ``DeviceArena.raw_view()`` so the merge rounds recycle
    device memory (defaults to the host :func:`get_arena`).
    """
    size, rank = comm.size, comm.rank
    if size & (size - 1):
        raise ValueError(f"binary swap needs a power-of-two group, got {size}")
    height = depth.shape[0]
    if arena is None:
        arena = get_arena()
    owner = arena.borrow(depth.shape, np.int32)
    owner.fill(rank)
    try:
        lo, hi = 0, height
        for i in range(size.bit_length() - 1):
            bit = 1 << i
            partner = rank ^ bit
            mid = (lo + hi) // 2
            if rank & bit:
                keep, send = (mid, hi), (lo, mid)
            else:
                keep, send = (lo, mid), (mid, hi)
            s = slice(send[0], send[1])
            _xfer_put(comm, (send, color[s], depth[s], owner[s]), partner)
            recv_region, c, d, o = _xfer_take(comm, partner)
            _record_ingress(comm, c, d, o)
            assert recv_region == keep, "binary-swap region mismatch"
            k = slice(keep[0], keep[1])
            _merge(color[k], depth[k], owner[k], c, d, o)
            lo, hi = keep
        return _collect_regions(comm, (lo, hi), color, depth, root)
    finally:
        arena.release(owner)


def composite_direct_send(
    comm: Communicator, color: np.ndarray, depth: np.ndarray, root: int = 0,
    arena=None,
):
    """Direct-send depth compositing for arbitrary group sizes.

    Each rank owns rows ``[r*H/N, (r+1)*H/N)``, sends every peer its
    strip, merges the N−1 incoming partial strips, and the root
    collects the finished strips.
    """
    size, rank = comm.size, comm.rank
    height = depth.shape[0]
    bounds = [(r * height // size, (r + 1) * height // size) for r in range(size)]
    if arena is None:
        arena = get_arena()
    owner = arena.borrow(depth.shape, np.int32)
    owner.fill(rank)
    try:
        for shift in range(1, size):
            dest = (rank + shift) % size
            s = slice(bounds[dest][0], bounds[dest][1])
            _xfer_put(comm, (color[s], depth[s], owner[s]), dest)
        lo, hi = bounds[rank]
        k = slice(lo, hi)
        for shift in range(1, size):
            src = (rank - shift) % size
            c, d, o = _xfer_take(comm, src)
            _record_ingress(comm, c, d, o)
            _merge(color[k], depth[k], owner[k], c, d, o)
        return _collect_regions(comm, (lo, hi), color, depth, root)
    finally:
        arena.release(owner)


def composite(
    comm: Communicator,
    color: np.ndarray,
    depth: np.ndarray,
    method: str = "auto",
    root: int = 0,
    arena=None,
):
    """Composite per-rank framebuffers; ``(color, depth)`` on root.

    `method`: ``binary_swap`` (falls back to direct-send when the group
    size is not a power of two), ``direct_send``, or ``auto``.  Under
    ``repro.perf.naive_mode`` everything routes through the
    :func:`gather_composite` reference.  Collective: every rank must
    call with the same method.
    """
    if method not in ("auto", "binary_swap", "direct_send"):
        raise ValueError(f"unknown compositing method {method!r}")
    size = comm.size
    if size == 1:
        return color, depth
    if not perf_config.enabled():
        return gather_composite(comm, color, depth, root)
    pow2 = size & (size - 1) == 0
    with get_telemetry().tracer.span(
        "catalyst.composite", method=method, size=size
    ):
        if method in ("auto", "binary_swap") and pow2:
            return composite_binary_swap(comm, color, depth, root, arena=arena)
        return composite_direct_send(comm, color, depth, root, arena=arena)


# -- ghost-layer exchange ----------------------------------------------

def _fragment_offsets(fragments, global_origin, global_spacing):
    """Integer lattice offset (x, y, z) of each fragment."""
    gorigin = np.asarray(global_origin, dtype=float)
    gspacing = np.asarray(global_spacing, dtype=float)
    return [
        tuple(
            np.rint((np.asarray(origin, dtype=float) - gorigin) / gspacing)
            .astype(int)
        )
        for origin, _dims, _payload in fragments
    ]


def _slab(vol: np.ndarray, direction) -> np.ndarray:
    """Min-side slab of a [z, y, x] volume along +`direction` axes."""
    gx, gy, gz = direction
    return vol[
        slice(0, 1) if gz else slice(None),
        slice(0, 1) if gy else slice(None),
        slice(0, 1) if gx else slice(None),
    ]


def _region(dims, direction):
    """Slices placing a +`direction` ghost slab in an extended volume."""
    dx, dy, dz = dims
    gx, gy, gz = direction
    return (
        slice(dz, dz + 1) if gz else slice(0, dz),
        slice(dy, dy + 1) if gy else slice(0, dy),
        slice(dx, dx + 1) if gx else slice(0, dx),
    )


def exchange_ghost_layers(
    comm: Communicator,
    fragments,
    offsets,
    arrays,
    arena=None,
):
    """Extend each fragment with its +x/+y/+z neighbor ghost layers.

    Fragments tile the global lattice disjointly, so the cell layer
    between two fragments belongs to neither; marching tetrahedra over
    a fragment alone would drop its triangles.  Each rank sends the
    min-side planes/edges/corner of every local fragment to the owners
    of the negative-direction neighbors in one ``alltoall``
    (sender-driven: the *receiving* fragment sees them as +direction
    ghosts), then builds ``(s+1)``-sized extended volumes.  All
    fragments must share one dims (per-element uniform resampling);
    lattice positions with no neighbor (domain boundary) stay NaN,
    which marching tetrahedra skips.

    Returns ``(ext_fragments, scratch)`` where ``ext_fragments`` is a
    list of ``(offset, dims, ext_dims, {name: ext_volume})`` and
    ``scratch`` the arena-borrowed arrays the caller must release.
    """
    # global directory: lattice offset -> owning rank
    local_entries = [(off, i) for i, off in enumerate(offsets)]
    all_entries = comm.allgather(local_entries)
    directory = {
        off: rank
        for rank, entries in enumerate(all_entries)
        for off, _idx in entries
    }

    # sender side: route min-side slabs to negative-neighbor owners
    outgoing: list[list] = [[] for _ in range(comm.size)]
    for (origin, dims, payload), off in zip(fragments, offsets):
        d = np.asarray(dims, dtype=int)
        for direction in _GHOST_DIRS:
            target = tuple(np.asarray(off) - np.asarray(direction) * d)
            owner = directory.get(target)
            if owner is None:
                continue
            outgoing[owner].append(
                (target, direction,
                 {name: _slab(payload[name], direction) for name in arrays})
            )
    incoming = comm.alltoall(outgoing) if comm.size > 1 else outgoing

    # receiver side: build extended volumes
    if arena is None:
        arena = get_arena()
    scratch: list[np.ndarray] = []
    by_offset: dict[tuple, int] = {off: i for i, off in enumerate(offsets)}
    ext_frags = []
    for (origin, dims, payload), off in zip(fragments, offsets):
        d = np.asarray(dims, dtype=int)
        halo = np.array([
            1 if tuple(off + d * np.asarray(e)) in directory else 0
            for e in ((1, 0, 0), (0, 1, 0), (0, 0, 1))
        ])
        ex, ey, ez = d + halo
        vols = {}
        for name in arrays:
            ext = arena.borrow((ez, ey, ex), np.float64)
            scratch.append(ext)
            ext.fill(np.nan)
            ext[0 : d[2], 0 : d[1], 0 : d[0]] = payload[name]
            vols[name] = ext
        ext_frags.append((off, tuple(int(x) for x in d), (ex, ey, ez), vols))

    for row in incoming:
        for target, direction, pieces in row:
            idx = by_offset.get(target)
            if idx is None:
                continue
            _off, dims, _ext_dims, vols = ext_frags[idx]
            reg = _region(dims, direction)
            for name, piece in pieces.items():
                vols[name][reg] = piece
    return ext_frags, scratch


# -- distributed pipeline rendering ------------------------------------

def _global_bounds(global_dims, global_origin, global_spacing) -> np.ndarray:
    dims = np.asarray(global_dims, dtype=float)
    org = np.asarray(global_origin, dtype=float)
    sp = np.asarray(global_spacing, dtype=float)
    return np.stack([org, org + (dims - 1) * sp], axis=1)


def _threshold_band(spec) -> tuple[float, float]:
    lo = spec.threshold_min if spec.threshold_min is not None else -np.inf
    hi = spec.threshold_max if spec.threshold_max is not None else np.inf
    return lo, hi


def _local_extrema(values_iter) -> tuple[float, float]:
    """(nanmin, nanmax) over an iterable of arrays; ±inf when empty."""
    lo, hi = np.inf, -np.inf
    for values in values_iter:
        if values.size == 0:
            continue
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            vlo = np.nanmin(values)
            vhi = np.nanmax(values)
        if not np.isnan(vlo):
            lo = min(lo, float(vlo))
            hi = max(hi, float(vhi))
    return lo, hi


def render_composited(
    comm: Communicator,
    pipeline: RenderPipeline,
    fragments,
    global_dims,
    global_origin,
    global_spacing,
    step: int,
    time: float,
    method: str = "binary_swap",
    depth_dtype=np.float32,
    device=None,
):
    """Distributed :meth:`RenderPipeline.render`: composited at root.

    Every rank contributes its local `fragments` (``(origin, dims,
    {name: volume})`` as produced for the gather path); the root
    returns the same ``[(name, rgb), ...]`` list the serial pipeline
    produces from the assembled volume — pixel-identical for opaque
    surfaces — and every other rank returns ``None``.  Collective: all
    ranks must call with identical pipeline/spec state.

    With `device` set, the pipeline runs device-resident: fragment
    payloads may be :class:`~repro.occa.device.DeviceMemory`, every
    stage routes through the registered ``catalyst.*`` kernels
    (``repro.occa.kernels``), scratch comes from the device arena, and
    the root's frames come back as ``DeviceMemory`` tiles — the caller
    performs the single metered D2H.  Inter-rank ghost/composite
    traffic moves device buffers rank-to-rank directly (modeled
    GPUDirect: metered on the network channel, never on PCIe).  The
    kernel bodies are the host implementations, so the device path is
    byte-identical to the host path.
    """
    tel = get_telemetry()
    gorigin = tuple(float(x) for x in np.asarray(global_origin, dtype=float))
    gspacing = tuple(float(x) for x in np.asarray(global_spacing, dtype=float))
    gdims = tuple(int(x) for x in global_dims)
    bounds = _global_bounds(gdims, gorigin, gspacing)
    if device is not None:
        from repro.occa.device import DeviceMemory
        from repro.occa.kernels import install_render_kernels

        kern = install_render_kernels(device)
        # device-side views of the fragment payloads: stage kernels and
        # rank-to-rank exchanges work on raw device arrays throughout
        fragments = [
            (
                origin,
                dims,
                {
                    name: vol._raw() if isinstance(vol, DeviceMemory) else vol
                    for name, vol in payload.items()
                },
            )
            for origin, dims, payload in fragments
        ]
        arena = device.arena.raw_view()
    else:
        kern = None
        arena = get_arena()
    offsets = _fragment_offsets(fragments, gorigin, gspacing)
    contours = [s for s in pipeline.specs if s.kind == "contour"]
    slices = [s for s in pipeline.specs if s.kind == "slice"]

    composited = None
    if contours:
        camera = Camera.fit_bounds(
            bounds,
            direction=pipeline.view_direction,
            width=pipeline.width,
            height=pipeline.height,
        )
        ghost_arrays = sorted({
            name
            for spec in contours
            for name in (
                spec.array,
                (spec.threshold_array or spec.array) if spec.has_threshold
                else spec.array,
                spec.color_array or spec.array,
            )
        })
        with tel.tracer.span("catalyst.ghost_exchange", step=step):
            ext_frags, scratch = exchange_ghost_layers(
                comm, fragments, offsets, ghost_arrays, arena=arena
            )
        if device is not None:
            from repro.catalyst.rasterizer import DeviceRasterizer

            raster = DeviceRasterizer(device, pipeline.width, pipeline.height)
        else:
            raster = Rasterizer(pipeline.width, pipeline.height, from_arena=True)
        try:
            with tel.tracer.span("catalyst.render_local", step=step):
                for spec in contours:
                    pieces = []
                    for off, _dims, _ext_dims, vols in ext_frags:
                        vol = vols[spec.array]
                        if spec.has_threshold:
                            selector = vols[spec.threshold_array or spec.array]
                            tlo, thi = _threshold_band(spec)
                            if kern is not None:
                                vol = kern.threshold(
                                    vol, selector, vmin=tlo, vmax=thi
                                )
                            else:
                                vol = threshold_by(
                                    vol, selector, vmin=tlo, vmax=thi
                                )
                        aux = (
                            vols[spec.color_array]
                            if spec.color_array and spec.color_array != spec.array
                            else None
                        )
                        if kern is not None:
                            verts, faces, vals = kern.contour(
                                vol, spec.isovalue, gorigin, gspacing,
                                aux, off,
                            )
                        else:
                            verts, faces, vals = marching_tetrahedra(
                                vol,
                                spec.isovalue,
                                origin=gorigin,
                                spacing=gspacing,
                                aux=aux,
                                index_offset=off,
                            )
                        if len(faces):
                            pieces.append((verts, faces, vals))
                    # global colormap range: min of mins is bitwise the
                    # global nanmin the serial pipeline computes
                    vmin, vmax = spec.vmin, spec.vmax
                    if vmin is None or vmax is None:
                        lo, hi = _local_extrema(p[2] for p in pieces)
                        glo = comm.allreduce(lo, ReduceOp.MIN)
                        ghi = comm.allreduce(hi, ReduceOp.MAX)
                        if vmin is None:
                            vmin = glo if np.isfinite(glo) else None
                        if vmax is None:
                            vmax = ghi if np.isfinite(ghi) else None
                    for verts, faces, vals in pieces:
                        if device is not None:
                            # fused colormap + rasterize launch
                            raster.shade_draw(
                                camera, verts, faces, vals,
                                vmin, vmax, spec.colormap,
                            )
                        else:
                            colors = apply_colormap(
                                vals, vmin, vmax, spec.colormap
                            )
                            raster.draw_mesh(camera, verts, faces, colors)
            composited = composite(
                comm,
                raster.image(),
                raster.depth_image(depth_dtype),
                method=method,
                arena=arena,
            )
            if composited is not None and composited[0] is raster.image():
                # single-rank identity: detach from the (recyclable)
                # rasterizer buffers before closing
                composited = (composited[0].copy(), composited[1].copy())
        finally:
            raster.close()
            arena.release(*scratch)

    # annotation ranges: the serial pipeline scans the full color
    # array; fragments tile it disjointly, so reduced local extrema
    # match bitwise (collective — computed on every rank)
    ann_range: dict[str, tuple[float, float]] = {}
    if pipeline.annotate:
        ann_specs = (contours[:1] if contours else []) + slices
        for spec in ann_specs:
            name = spec.color_array or spec.array
            if name in ann_range:
                continue
            if spec.vmin is not None and spec.vmax is not None:
                ann_range[name] = (spec.vmin, spec.vmax)
                continue
            lo, hi = _local_extrema(
                payload[name] for _o, _d, payload in fragments
            )
            glo = comm.allreduce(lo, ReduceOp.MIN)
            ghi = comm.allreduce(hi, ReduceOp.MAX)
            ann_range[name] = (glo, ghi)

    # slices: ship only the two contributing lattice planes to root
    slice_planes = []
    for spec in slices:
        world_axis = {"x": 0, "y": 1, "z": 2}[spec.axis]
        vax = 2 - world_axis  # volume is [z, y, x]
        position = (
            spec.position
            if spec.position is not None
            else float(bounds[world_axis].mean())
        )
        n = gdims[world_axis]
        i0, i1, t = slice_plan(n, spec.axis, position, gorigin, gspacing)
        rem = [a for a in (0, 1, 2) if a != vax]  # volume axes of the plane
        patches = []
        for (origin, dims, payload), off in zip(fragments, offsets):
            d = np.asarray(dims, dtype=int)
            vol = payload[spec.array]
            if spec.has_threshold:
                selector = payload[spec.threshold_array or spec.array]
                tlo, thi = _threshold_band(spec)
                vol = threshold_by(vol, selector, vmin=tlo, vmax=thi)
            row_off = int(off[2 - rem[0]])
            col_off = int(off[2 - rem[1]])
            for which, ip in ((0, i0), (1, i1)):
                local = ip - int(off[world_axis])
                if 0 <= local < d[world_axis]:
                    patches.append(
                        (which, row_off, col_off, np.take(vol, local, axis=vax))
                    )
        gathered = comm.gather(patches)
        if gathered is None:
            slice_planes.append(None)
            continue
        vol_shape = (gdims[2], gdims[1], gdims[0])
        plane_shape = (vol_shape[rem[0]], vol_shape[rem[1]])
        lo_plane = np.full(plane_shape, np.nan)
        hi_plane = np.full(plane_shape, np.nan)
        with tel.tracer.span("catalyst.slice_assemble", step=step):
            for chunk in gathered:
                for which, row_off, col_off, patch in chunk:
                    target = lo_plane if which == 0 else hi_plane
                    target[
                        row_off : row_off + patch.shape[0],
                        col_off : col_off + patch.shape[1],
                    ] = patch
        if kern is not None:
            slice_planes.append(kern.plane_blend(lo_plane, hi_plane, t))
        else:
            slice_planes.append((1.0 - t) * lo_plane + t * hi_plane)

    if not comm.is_root:
        return None

    outputs: list[tuple[str, np.ndarray]] = []
    if contours:
        frame, depth = composited
        if kern is not None:
            kern.background(frame, depth)
        else:
            apply_background_gradient(frame, depth)
        if pipeline.annotate:
            spec = contours[0]
            vmin, vmax = ann_range[spec.color_array or spec.array]
            vmin = spec.vmin if spec.vmin is not None else vmin
            vmax = spec.vmax if spec.vmax is not None else vmax
            if kern is not None:
                kern.annotate(frame, spec, vmin, vmax, step, time)
            else:
                draw_annotations(frame, spec, vmin, vmax, step, time)
        if device is not None:
            # composited tile stays device-resident; the adaptor does
            # the one metered D2H when it encodes the frame
            frame = DeviceMemory(device, frame)
        outputs.append((f"{pipeline.name}_surface", frame))
    for i, (spec, plane) in enumerate(zip(slices, slice_planes)):
        if kern is not None:
            # fused colormap + orient + resize launch
            frame = kern.slice_frame(
                plane, spec.vmin, spec.vmax, spec.colormap,
                pipeline.height, pipeline.width,
            )
        else:
            rgb = apply_colormap(plane, spec.vmin, spec.vmax, spec.colormap)
            rgb = rgb[::-1]
            frame = _resize_nearest(rgb, pipeline.height, pipeline.width)
        if pipeline.annotate:
            vmin, vmax = ann_range[spec.color_array or spec.array]
            vmin = spec.vmin if spec.vmin is not None else vmin
            vmax = spec.vmax if spec.vmax is not None else vmax
            if kern is not None:
                kern.annotate(frame, spec, vmin, vmax, step, time)
            else:
                draw_annotations(frame, spec, vmin, vmax, step, time)
        if device is not None:
            frame = DeviceMemory(device, frame)
        outputs.append((f"{pipeline.name}_slice{i}_{spec.array}", frame))
    return outputs
