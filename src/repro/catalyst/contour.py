"""Isosurface extraction via marching tetrahedra.

Each cube of the volume lattice splits into six tetrahedra; a
tetrahedron crossed by the isovalue yields one or two triangles with
vertices linearly interpolated along its edges.  Marching tetrahedra
trades slightly more triangles than marching cubes for a tiny,
unambiguous case table — the right call for a from-scratch renderer.

The volume is indexed ``[k, j, i]`` (z slowest) like all grid data in
this stack; world coordinates come from origin/spacing.
"""

from __future__ import annotations

import numpy as np

# Six tetrahedra per cube, as indices into the cube's 8 corners
# (corner order: bit 0 = x, bit 1 = y, bit 2 = z).
_TETS = np.array(
    [
        [0, 1, 3, 7],
        [0, 1, 7, 5],
        [0, 5, 7, 4],
        [0, 3, 2, 7],
        [0, 2, 6, 7],
        [0, 6, 4, 7],
    ],
    dtype=np.int64,
)

_CORNER_OFFSETS = np.array(
    [[(c >> 0) & 1, (c >> 1) & 1, (c >> 2) & 1] for c in range(8)], dtype=np.int64
)  # (8, 3) in (i, j, k) order

# Edges of a tetrahedron as vertex-index pairs
_TET_EDGES = np.array(
    [[0, 1], [0, 2], [0, 3], [1, 2], [1, 3], [2, 3]], dtype=np.int64
)

# For each of the 16 inside/outside sign cases, the edges (by index
# into _TET_EDGES) forming the crossing triangles.  Case key: bit v set
# when vertex v is above the isovalue.
_CASES: dict[int, list[tuple[int, int, int]]] = {
    0b0000: [],
    0b1111: [],
    0b0001: [(0, 1, 2)],
    0b1110: [(0, 2, 1)],
    0b0010: [(0, 3, 4)],
    0b1101: [(0, 4, 3)],
    0b0100: [(1, 5, 3)],
    0b1011: [(1, 3, 5)],
    0b1000: [(2, 4, 5)],
    0b0111: [(2, 5, 4)],
    0b0011: [(1, 2, 3), (3, 2, 4)],
    0b1100: [(1, 3, 2), (3, 4, 2)],
    # v0,v2 above: the crossing quad is edges 0 (0-1), 3 (1-2),
    # 5 (2-3), 2 (3-0); triangulated along the 0-5 diagonal
    0b0101: [(0, 3, 5), (0, 5, 2)],
    0b1010: [(0, 5, 3), (0, 2, 5)],
    0b0110: [(0, 1, 5), (0, 5, 4)],
    0b1001: [(0, 5, 1), (0, 4, 5)],
}


def marching_tetrahedra(
    volume: np.ndarray,
    isovalue: float,
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
    spacing: tuple[float, float, float] = (1.0, 1.0, 1.0),
    aux: np.ndarray | None = None,
    index_offset: tuple[int, int, int] = (0, 0, 0),
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Extract the isosurface of `volume` at `isovalue`.

    Returns ``(vertices (V, 3), faces (F, 3), values (V,))`` where
    `values` interpolates `aux` (or the volume itself) onto the surface
    — used to pseudocolor an isosurface of one field by another.

    `index_offset` (i, j, k) places the volume at a lattice offset of a
    larger global grid: vertex positions are computed as
    ``origin + (local_index + index_offset) * spacing``, so a fragment
    of a global volume yields *bitwise identical* vertex coordinates to
    contouring the whole — integer lattice indices add exactly, whereas
    pre-shifting the origin by ``index_offset * spacing`` would round
    differently.  The sort-last compositor depends on this.
    """
    vol = np.asarray(volume, dtype=float)
    if vol.ndim != 3:
        raise ValueError(f"volume must be 3-D, got {vol.ndim}-D")
    nz, ny, nx = vol.shape
    if min(nx, ny, nz) < 2:
        return np.zeros((0, 3)), np.zeros((0, 3), np.int64), np.zeros(0)
    aux_vol = vol if aux is None else np.asarray(aux, dtype=float)
    if aux_vol.shape != vol.shape:
        raise ValueError("aux volume must match the scalar volume shape")

    above = vol > isovalue
    # candidate cubes: those whose 2x2x2 corners are not all on one side
    corner_above = above[:-1, :-1, :-1].astype(np.int8)
    total = np.zeros((nz - 1, ny - 1, nx - 1), dtype=np.int8)
    for di, dj, dk in _CORNER_OFFSETS:
        total += above[dk : dk + nz - 1, dj : dj + ny - 1, di : di + nx - 1]
    ks, js, is_ = np.nonzero((total > 0) & (total < 8))

    verts: list[np.ndarray] = []
    vals: list[float] = []
    faces: list[tuple[int, int, int]] = []
    sp = np.asarray(spacing, dtype=float)
    org = np.asarray(origin, dtype=float)
    offset = np.asarray(index_offset, dtype=np.int64)

    for k, j, i in zip(ks, js, is_):
        corner_idx = np.array([i, j, k]) + _CORNER_OFFSETS  # (8, 3) (i,j,k)
        cv = vol[corner_idx[:, 2], corner_idx[:, 1], corner_idx[:, 0]]
        if not np.isfinite(cv).all():
            # thresholded/blanked region: no surface through this cube
            continue
        ca = aux_vol[corner_idx[:, 2], corner_idx[:, 1], corner_idx[:, 0]]
        cpos = org + (corner_idx + offset) * sp
        for tet in _TETS:
            case = 0
            for v in range(4):
                if cv[tet[v]] > isovalue:
                    case |= 1 << v
            tris = _CASES[case]
            if not tris:
                continue
            # interpolated crossing point per tet edge (lazy per edge)
            edge_pts: dict[int, int] = {}

            def edge_vertex(eidx: int) -> int:
                cached = edge_pts.get(eidx)
                if cached is not None:
                    return cached
                a, b = _TET_EDGES[eidx]
                va, vb = cv[tet[a]], cv[tet[b]]
                denom = vb - va
                t = 0.5 if denom == 0 else np.clip((isovalue - va) / denom, 0.0, 1.0)
                p = cpos[tet[a]] * (1 - t) + cpos[tet[b]] * t
                val = ca[tet[a]] * (1 - t) + ca[tet[b]] * t
                verts.append(p)
                vals.append(float(val))
                idx = len(verts) - 1
                edge_pts[eidx] = idx
                return idx

            for tri in tris:
                faces.append(tuple(edge_vertex(e) for e in tri))

    if not verts:
        return np.zeros((0, 3)), np.zeros((0, 3), np.int64), np.zeros(0)
    return (
        np.asarray(verts),
        np.asarray(faces, dtype=np.int64),
        np.asarray(vals),
    )


def marching_tetrahedra_device(
    device,
    volume,
    isovalue: float,
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
    spacing: tuple[float, float, float] = (1.0, 1.0, 1.0),
    aux=None,
    index_offset: tuple[int, int, int] = (0, 0, 0),
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Device twin: contour a :class:`DeviceMemory` volume via the
    registered ``catalyst.mtet`` kernel — identical triangles, no
    device→host transfer (the launch unwraps the buffer device-side)."""
    from repro.occa.kernels import install_render_kernels

    return install_render_kernels(device).contour(
        volume, isovalue, origin, spacing, aux, index_offset
    )
