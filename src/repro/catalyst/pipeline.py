"""Render pipelines and the "pythonscript" hook.

ParaView Catalyst drives rendering from a user-supplied Python script;
``load_pipeline_script`` reproduces that: the script either defines a
``render(image_data, step, time) -> [(name, rgb_array), ...]``
function, or assigns a :class:`RenderPipeline` to a module-level
``PIPELINE`` variable.  :class:`RenderPipeline` is the declarative
path: a list of :class:`RenderSpec` passes (isosurfaces and slices)
composited into one image per spec group.
"""

from __future__ import annotations

import runpy
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.catalyst.camera import Camera
from repro.catalyst.colormaps import apply_colormap
from repro.catalyst.contour import marching_tetrahedra
from repro.catalyst.rasterizer import Rasterizer
from repro.catalyst.slicefilter import axis_slice
from repro.vtkdata.dataset import ImageData


@dataclass(frozen=True)
class RenderSpec:
    """One visualization pass.

    kind "contour": isosurface of `array` at `isovalue`, colored by
    `color_array` (default: the same array).
    kind "slice": axis-aligned plane `axis` = `position`, pseudocolored.

    Optional threshold pre-filter: restrict the pass to where
    `threshold_array` (default: `array`) lies in
    [threshold_min, threshold_max]; everything else is blanked before
    contouring/slicing.
    """

    kind: str
    array: str
    isovalue: float | None = None
    axis: str = "y"
    position: float | None = None
    color_array: str | None = None
    colormap: str = "viridis"
    vmin: float | None = None
    vmax: float | None = None
    threshold_array: str | None = None
    threshold_min: float | None = None
    threshold_max: float | None = None

    def __post_init__(self):
        if self.kind not in ("contour", "slice"):
            raise ValueError(f"RenderSpec kind must be contour|slice, got {self.kind}")
        if self.kind == "contour" and self.isovalue is None:
            raise ValueError("contour spec requires an isovalue")
        if self.threshold_array is not None and (
            self.threshold_min is None and self.threshold_max is None
        ):
            raise ValueError("threshold_array without any threshold bound")

    @property
    def has_threshold(self) -> bool:
        return self.threshold_min is not None or self.threshold_max is not None

    def apply_threshold(self, volume, image) -> "np.ndarray":
        """Blank the volume outside the configured threshold band."""
        if not self.has_threshold:
            return volume
        from repro.catalyst.threshold import threshold_by

        selector_name = self.threshold_array or self.array
        selector = image.as_volume(selector_name)
        lo = self.threshold_min if self.threshold_min is not None else -np.inf
        hi = self.threshold_max if self.threshold_max is not None else np.inf
        return threshold_by(volume, selector, vmin=lo, vmax=hi)


@dataclass
class RenderPipeline:
    """Declarative multi-pass renderer for ImageData volumes."""

    specs: list[RenderSpec]
    width: int = 512
    height: int = 512
    view_direction: tuple[float, float, float] = (1.0, -1.6, 0.9)
    name: str = "render"
    #: burn step/time labels and a colorbar into each frame, as
    #: production in situ imagery does (the state is gone afterwards)
    annotate: bool = True

    def render(self, image: ImageData, step: int, time: float) -> list[tuple[str, np.ndarray]]:
        """Produce [(image_name, (H, W, 3) uint8), ...] for this state."""
        outputs: list[tuple[str, np.ndarray]] = []
        contours = [s for s in self.specs if s.kind == "contour"]
        slices = [s for s in self.specs if s.kind == "slice"]
        if contours:
            frame = self._render_contours(image, contours)
            self._annotate(frame, image, contours[0], step, time)
            outputs.append((f"{self.name}_surface", frame))
        for i, spec in enumerate(slices):
            frame = self._render_slice(image, spec)
            self._annotate(frame, image, spec, step, time)
            outputs.append((f"{self.name}_slice{i}_{spec.array}", frame))
        return outputs

    def _annotate(
        self,
        frame: np.ndarray,
        image: ImageData,
        spec: RenderSpec,
        step: int,
        time: float,
    ) -> None:
        if not self.annotate:
            return
        color_array = spec.color_array or spec.array
        values = image.point_data[color_array].values
        vmin = spec.vmin if spec.vmin is not None else float(np.nanmin(values))
        vmax = spec.vmax if spec.vmax is not None else float(np.nanmax(values))
        draw_annotations(frame, spec, vmin, vmax, step, time)

    # -- passes -------------------------------------------------------------
    def _bounds(self, image: ImageData) -> np.ndarray:
        dims = np.asarray(image.dims, dtype=float)
        org = np.asarray(image.origin, dtype=float)
        sp = np.asarray(image.spacing, dtype=float)
        hi = org + (dims - 1) * sp
        return np.stack([org, hi], axis=1)

    def _render_contours(self, image: ImageData, specs: list[RenderSpec]) -> np.ndarray:
        camera = Camera.fit_bounds(
            self._bounds(image),
            direction=self.view_direction,
            width=self.width,
            height=self.height,
        )
        raster = Rasterizer(self.width, self.height, from_arena=True)
        for spec in specs:
            vol = spec.apply_threshold(image.as_volume(spec.array), image)
            aux = (
                image.as_volume(spec.color_array)
                if spec.color_array and spec.color_array != spec.array
                else None
            )
            verts, faces, vals = marching_tetrahedra(
                vol,
                spec.isovalue,
                origin=image.origin,
                spacing=image.spacing,
                aux=aux,
            )
            if len(faces) == 0:
                continue
            colors = apply_colormap(vals, spec.vmin, spec.vmax, spec.colormap)
            raster.draw_mesh(camera, verts, faces, colors)
        raster.draw_background_gradient()
        # the frame escapes with the caller; the z-buffer goes back to
        # the arena pool (no full-frame copy)
        frame = raster.image()
        raster.close(keep_image=True)
        return frame

    def _render_slice(self, image: ImageData, spec: RenderSpec) -> np.ndarray:
        bounds = self._bounds(image)
        world_axis = {"x": 0, "y": 1, "z": 2}[spec.axis]
        position = (
            spec.position
            if spec.position is not None
            else float(bounds[world_axis].mean())
        )
        plane = axis_slice(
            spec.apply_threshold(image.as_volume(spec.array), image),
            spec.axis,
            position,
            origin=image.origin,
            spacing=image.spacing,
        )
        rgb = apply_colormap(plane, spec.vmin, spec.vmax, spec.colormap)
        # orient: rows are the slower world axis (z for x/y slices);
        # flip so "up" in the image is +axis
        rgb = rgb[::-1]
        return _resize_nearest(rgb, self.height, self.width)


def draw_annotations(
    frame: np.ndarray,
    spec: RenderSpec,
    vmin: float,
    vmax: float,
    step: int,
    time: float,
) -> None:
    """Burn the step label and colorbar into a finished frame.

    The value range is passed in explicitly so distributed renderers
    (``repro.catalyst.compositor``) can supply globally reduced bounds
    and still produce byte-identical annotations.
    """
    from repro.catalyst.annotations import draw_colorbar, draw_step_label

    draw_step_label(frame, step, time)
    if frame.shape[1] >= 64:
        draw_colorbar(frame, vmin, vmax, spec.colormap)


def _resize_nearest(img: np.ndarray, height: int, width: int) -> np.ndarray:
    """Nearest-neighbor resize to the pipeline's output resolution."""
    h, w = img.shape[:2]
    rows = np.clip((np.arange(height) * h) // height, 0, h - 1)
    cols = np.clip((np.arange(width) * w) // width, 0, w - 1)
    # one fused take instead of two chained fancy indexes (the first
    # of which materialized a full intermediate copy)
    return img[np.ix_(rows, cols)]


def load_pipeline_script(path):
    """Load a Catalyst "pythonscript" pipeline.

    The script must define ``render(image_data, step, time)`` or a
    module-level ``PIPELINE`` RenderPipeline.  Returns a callable with
    the ``render`` signature.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"pipeline script not found: {path}")
    namespace = runpy.run_path(str(path))
    if "render" in namespace and callable(namespace["render"]):
        return namespace["render"]
    pipeline = namespace.get("PIPELINE")
    if isinstance(pipeline, RenderPipeline):
        return pipeline.render
    raise ValueError(
        f"{path} must define render(image_data, step, time) or PIPELINE"
    )
