"""Z-buffered triangle rasterizer with Gouraud shading.

A deliberately small software renderer: triangles are filled with
barycentric interpolation inside their screen bounding boxes, depth
tested against a z-buffer, and shaded with a Lambertian term from a
single directional light.  NumPy does the per-pixel math per triangle,
which at the image sizes in situ rendering uses (a few hundred pixels
square) keeps rendering well under solver-step cost — the same balance
the paper's Catalyst endpoint targets.
"""

from __future__ import annotations

import numpy as np

from repro.catalyst.camera import Camera


class Rasterizer:
    def __init__(
        self,
        width: int,
        height: int,
        background: tuple[int, int, int] = (18, 22, 30),
    ):
        if width < 1 or height < 1:
            raise ValueError("image dimensions must be positive")
        self.width = width
        self.height = height
        self.color = np.empty((height, width, 3), dtype=np.uint8)
        self.color[:] = np.asarray(background, dtype=np.uint8)
        self.depth = np.full((height, width), np.inf)
        self.triangles_drawn = 0

    def image(self) -> np.ndarray:
        """The current framebuffer (H, W, 3) uint8."""
        return self.color

    def draw_mesh(
        self,
        camera: Camera,
        vertices: np.ndarray,
        faces: np.ndarray,
        vertex_colors: np.ndarray,
        light_direction: tuple[float, float, float] = (0.4, -0.6, 0.8),
        ambient: float = 0.35,
    ) -> int:
        """Render a triangle mesh; returns triangles actually drawn.

        `vertices` (V, 3) world coords, `faces` (F, 3) indices,
        `vertex_colors` (V, 3) uint8.
        """
        vertices = np.asarray(vertices, dtype=float)
        faces = np.asarray(faces, dtype=np.int64)
        vertex_colors = np.asarray(vertex_colors)
        if len(faces) == 0 or len(vertices) == 0:
            return 0
        if vertex_colors.shape != (len(vertices), 3):
            raise ValueError("vertex_colors must be (V, 3)")

        screen = camera.project(vertices)
        # face normals in world space for lighting
        v0 = vertices[faces[:, 0]]
        v1 = vertices[faces[:, 1]]
        v2 = vertices[faces[:, 2]]
        n = np.cross(v1 - v0, v2 - v0)
        norms = np.linalg.norm(n, axis=1)
        norms[norms == 0] = 1.0
        n /= norms[:, None]
        light = np.asarray(light_direction, dtype=float)
        light = light / np.linalg.norm(light)
        intensity = ambient + (1.0 - ambient) * np.abs(n @ light)

        drawn = 0
        for f in range(len(faces)):
            if self._raster_triangle(
                screen[faces[f]], vertex_colors[faces[f]].astype(float), intensity[f]
            ):
                drawn += 1
        self.triangles_drawn += drawn
        return drawn

    def _raster_triangle(
        self, tri: np.ndarray, colors: np.ndarray, intensity: float
    ) -> bool:
        """Fill one screen-space triangle; returns True if any pixel hit."""
        if not np.all(np.isfinite(tri)):
            return False
        if np.any(tri[:, 2] <= 0):          # behind the camera
            return False
        xs, ys = tri[:, 0], tri[:, 1]
        x0 = max(int(np.floor(xs.min())), 0)
        x1 = min(int(np.ceil(xs.max())) + 1, self.width)
        y0 = max(int(np.floor(ys.min())), 0)
        y1 = min(int(np.ceil(ys.max())) + 1, self.height)
        if x0 >= x1 or y0 >= y1:
            return False

        ax, ay = tri[0, 0], tri[0, 1]
        bx, by = tri[1, 0], tri[1, 1]
        cx, cy = tri[2, 0], tri[2, 1]
        area = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
        if abs(area) < 1e-12:
            return False

        px, py = np.meshgrid(
            np.arange(x0, x1) + 0.5, np.arange(y0, y1) + 0.5
        )
        w0 = ((bx - px) * (cy - py) - (by - py) * (cx - px)) / area
        w1 = ((cx - px) * (ay - py) - (cy - py) * (ax - px)) / area
        w2 = 1.0 - w0 - w1
        inside = (w0 >= 0) & (w1 >= 0) & (w2 >= 0)
        if not inside.any():
            return False

        z = w0 * tri[0, 2] + w1 * tri[1, 2] + w2 * tri[2, 2]
        tile = self.depth[y0:y1, x0:x1]
        visible = inside & (z < tile)
        if not visible.any():
            return False
        tile[visible] = z[visible]

        rgb = (
            w0[..., None] * colors[0]
            + w1[..., None] * colors[1]
            + w2[..., None] * colors[2]
        ) * intensity
        np.clip(rgb, 0.0, 255.0, out=rgb)
        self.color[y0:y1, x0:x1][visible] = rgb[visible].astype(np.uint8)
        return True

    def draw_background_gradient(
        self,
        top: tuple[int, int, int] = (30, 36, 48),
        bottom: tuple[int, int, int] = (8, 10, 14),
    ) -> None:
        """Vertical gradient backdrop (drawn only where nothing rendered)."""
        t = np.linspace(0.0, 1.0, self.height)[:, None, None]
        grad = (1 - t) * np.asarray(top, float) + t * np.asarray(bottom, float)
        untouched = ~np.isfinite(self.depth)
        self.color[untouched] = np.broadcast_to(
            grad, (self.height, self.width, 3)
        )[untouched].astype(np.uint8)
