"""Z-buffered triangle rasterizer with Gouraud shading.

A deliberately small software renderer: triangles are filled with
barycentric interpolation inside their screen bounding boxes, depth
tested against a z-buffer, and shaded with a Lambertian term from a
single directional light — the same balance the paper's Catalyst
endpoint targets (rendering well under solver-step cost).

Two fill paths share the exact same per-pixel math:

- the *batched* default expands every triangle's bounding box into one
  flat candidate-pixel array and resolves the z-buffer with a grouped
  prefix-minimum scan, so a whole mesh rasterizes in a handful of
  vectorized passes instead of a Python loop per triangle;
- the original per-triangle loop is kept as the reference
  (``repro.perf.naive_mode``); the two are bit-for-bit identical —
  including ``triangles_drawn``, which counts a triangle as drawn if
  it won the depth test *at its own draw time* even if a later
  triangle occludes it.
"""

from __future__ import annotations

import numpy as np

from repro.catalyst.camera import Camera
from repro.perf import config

#: max candidate pixels resolved per batched pass; chunks are split on
#: triangle boundaries in submission order, so chunking cannot change
#: the sequential z-buffer semantics
_CHUNK_PIXELS = 1 << 19


class Rasterizer:
    def __init__(
        self,
        width: int,
        height: int,
        background: tuple[int, int, int] = (18, 22, 30),
        from_arena: bool = False,
    ):
        if width < 1 or height < 1:
            raise ValueError("image dimensions must be positive")
        self.width = width
        self.height = height
        if from_arena and config.enabled():
            from repro.perf.arena import get_arena

            arena = get_arena()
            self.color = arena.borrow((height, width, 3), np.uint8)
            self.depth = arena.borrow((height, width), np.float64)
            self.depth.fill(np.inf)
            self._arena = arena
        else:
            self.color = np.empty((height, width, 3), dtype=np.uint8)
            self.depth = np.full((height, width), np.inf)
            self._arena = None
        self.color[:] = np.asarray(background, dtype=np.uint8)
        self.triangles_drawn = 0

    @classmethod
    def wrap(
        cls,
        color: np.ndarray,
        depth: np.ndarray,
        background: tuple[int, int, int] = (18, 22, 30),
    ) -> "Rasterizer":
        """Rasterizer over caller-owned framebuffers.

        Initializes `color`/`depth` exactly as the constructor does
        (background fill, ``inf`` depth) but allocates nothing — the
        device-resident path hands in raw views of device-arena
        buffers, so every fill and depth test runs on device memory.
        """
        if color.shape[:2] != depth.shape or color.shape[2:] != (3,):
            raise ValueError("color must be (H, W, 3) matching depth (H, W)")
        raster = cls.__new__(cls)
        raster.height, raster.width = depth.shape
        raster.color = color
        raster.depth = depth
        raster._arena = None
        raster.depth.fill(np.inf)
        raster.color[:] = np.asarray(background, dtype=np.uint8)
        raster.triangles_drawn = 0
        return raster

    def image(self) -> np.ndarray:
        """The current framebuffer (H, W, 3) uint8.

        For an arena-backed rasterizer this is the live (borrowed)
        buffer; callers that keep the frame past the rasterizer's life
        must pair it with ``close(keep_image=True)``, which adopts the
        buffer out of the arena instead of recycling it.
        """
        return self.color

    def depth_image(self, dtype=np.float32) -> np.ndarray:
        """The z-buffer (H, W); ``inf`` where nothing was drawn.

        Returns the live float64 buffer when `dtype` matches, otherwise
        a converted copy — the sort-last compositor exchanges float32
        depths to halve compositing traffic.
        """
        dtype = np.dtype(dtype)
        if dtype == self.depth.dtype:
            return self.depth
        return self.depth.astype(dtype)

    def close(self, keep_image: bool = False) -> None:
        """Return arena-backed buffers to the pool.

        With `keep_image` the color buffer escapes with the caller
        (arena stops tracking it without recycling it); the depth
        buffer is always recycled.  No-op for plain rasterizers and on
        repeated calls.
        """
        arena, self._arena = self._arena, None
        if arena is None:
            return
        if keep_image:
            arena.adopt(self.color)
        else:
            arena.release(self.color)
        arena.release(self.depth)

    def draw_mesh(
        self,
        camera: Camera,
        vertices: np.ndarray,
        faces: np.ndarray,
        vertex_colors: np.ndarray,
        light_direction: tuple[float, float, float] = (0.4, -0.6, 0.8),
        ambient: float = 0.35,
    ) -> int:
        """Render a triangle mesh; returns triangles actually drawn.

        `vertices` (V, 3) world coords, `faces` (F, 3) indices,
        `vertex_colors` (V, 3) uint8.
        """
        vertices = np.asarray(vertices, dtype=float)
        faces = np.asarray(faces, dtype=np.int64)
        vertex_colors = np.asarray(vertex_colors)
        if len(faces) == 0 or len(vertices) == 0:
            return 0
        if vertex_colors.shape != (len(vertices), 3):
            raise ValueError("vertex_colors must be (V, 3)")

        screen = camera.project(vertices)
        # face normals in world space for lighting
        v0 = vertices[faces[:, 0]]
        v1 = vertices[faces[:, 1]]
        v2 = vertices[faces[:, 2]]
        n = np.cross(v1 - v0, v2 - v0)
        norms = np.linalg.norm(n, axis=1)
        norms[norms == 0] = 1.0
        n /= norms[:, None]
        light = np.asarray(light_direction, dtype=float)
        light = light / np.linalg.norm(light)
        intensity = ambient + (1.0 - ambient) * np.abs(n @ light)

        if config.enabled():
            drawn = self._raster_batched(
                screen[faces], vertex_colors[faces].astype(float), intensity
            )
        else:
            drawn = 0
            for f in range(len(faces)):
                if self._raster_triangle(
                    screen[faces[f]], vertex_colors[faces[f]].astype(float),
                    intensity[f],
                ):
                    drawn += 1
        self.triangles_drawn += drawn
        return drawn

    # -- batched fill --------------------------------------------------
    def _raster_batched(
        self, tris: np.ndarray, colors: np.ndarray, intensity: np.ndarray
    ) -> int:
        """Fill (F, 3, 3) screen-space triangles in submission order.

        Replays the per-triangle loop's z-buffer exactly: a candidate
        pixel passes iff its z beats the depth buffer *and* every
        earlier candidate at that pixel (strict ``<``), which is what
        the sequential loop's read-modify-write sequence computes.
        """
        with np.errstate(over="ignore", invalid="ignore"):
            return self._raster_batched_impl(tris, colors, intensity)

    def _raster_batched_impl(self, tris, colors, intensity) -> int:
        width, height = self.width, self.height
        # cull exactly what _raster_triangle rejects up front
        ok = np.isfinite(tris).all(axis=(1, 2)) & (tris[:, :, 2] > 0).all(axis=1)
        fidx = np.flatnonzero(ok)
        if fidx.size == 0:
            return 0
        t = tris[fidx]
        ax, ay = t[:, 0, 0], t[:, 0, 1]
        bx, by = t[:, 1, 0], t[:, 1, 1]
        cx, cy = t[:, 2, 0], t[:, 2, 1]
        area = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
        keep = np.abs(area) >= 1e-12
        # clipped integer bounding boxes (clamp in float first so huge
        # finite coordinates cannot overflow the int cast; out-of-range
        # boxes collapse to empty exactly as max/min clamping does)
        xs, ys = t[:, :, 0], t[:, :, 1]
        x0 = np.clip(np.floor(xs.min(axis=1)), 0, width).astype(np.int64)
        x1 = np.clip(np.ceil(xs.max(axis=1)) + 1.0, 0, width).astype(np.int64)
        y0 = np.clip(np.floor(ys.min(axis=1)), 0, height).astype(np.int64)
        y1 = np.clip(np.ceil(ys.max(axis=1)) + 1.0, 0, height).astype(np.int64)
        bw, bh = x1 - x0, y1 - y0
        keep &= (bw > 0) & (bh > 0)
        if not keep.any():
            return 0
        sel = np.flatnonzero(keep)
        t, area = t[sel], area[sel]
        ax, ay, bx, by, cx, cy = ax[sel], ay[sel], bx[sel], by[sel], cx[sel], cy[sel]
        x0, y0, bw, bh = x0[sel], y0[sel], bw[sel], bh[sel]
        colors = colors[fidx[sel]]
        intensity = intensity[fidx[sel]]
        counts = bw * bh

        drawn = 0
        start = 0
        nf = len(t)
        while start < nf:
            end = start + 1
            total = int(counts[start])
            while end < nf and total + counts[end] <= _CHUNK_PIXELS:
                total += int(counts[end])
                end += 1
            s = slice(start, end)
            drawn += self._raster_chunk(
                (ax[s], ay[s], bx[s], by[s], cx[s], cy[s]),
                t[s, :, 2], area[s], x0[s], y0[s], bw[s], counts[s],
                colors[s], intensity[s],
            )
            start = end
        return drawn

    def _raster_chunk(
        self, corners, zvert, area, x0, y0, bw, counts, colors, intensity
    ) -> int:
        """One batched pass; returns triangles drawn in this chunk."""
        ax, ay, bx, by, cx, cy = corners
        n = len(area)
        reps = counts
        tot = int(reps.sum())
        tri_id = np.repeat(np.arange(n), reps)
        starts = np.concatenate(([0], np.cumsum(reps)[:-1]))
        local = np.arange(tot) - np.repeat(starts, reps)
        wrep = np.repeat(bw, reps)
        col = np.repeat(x0, reps) + local % wrep
        row = np.repeat(y0, reps) + local // wrep
        # identical formulas to _raster_triangle, gathered per candidate
        px = col + 0.5
        py = row + 0.5
        a = area[tri_id]
        w0 = ((bx[tri_id] - px) * (cy[tri_id] - py)
              - (by[tri_id] - py) * (cx[tri_id] - px)) / a
        w1 = ((cx[tri_id] - px) * (ay[tri_id] - py)
              - (cy[tri_id] - py) * (ax[tri_id] - px)) / a
        w2 = 1.0 - w0 - w1
        inside = (w0 >= 0) & (w1 >= 0) & (w2 >= 0)
        if not inside.any():
            return 0
        tri_id, col, row = tri_id[inside], col[inside], row[inside]
        w0, w1, w2 = w0[inside], w1[inside], w2[inside]
        z = (w0 * zvert[tri_id, 0] + w1 * zvert[tri_id, 1]
             + w2 * zvert[tri_id, 2])

        # group candidates by pixel; the stable sort keeps submission
        # order inside each group
        pix = row * self.width + col
        order = np.argsort(pix, kind="stable")
        pixs, zs, tids = pix[order], z[order], tri_id[order]
        w0, w1, w2 = w0[order], w1[order], w2[order]
        m = len(pixs)
        seg = np.empty(m, dtype=bool)
        seg[0] = True
        seg[1:] = pixs[1:] != pixs[:-1]
        pos = np.arange(m)
        segpos = np.maximum.accumulate(np.where(seg, pos, 0))

        # a candidate passes iff z < min(buffer depth, all earlier
        # candidates' z at the pixel): failing candidates never lower
        # the buffer, so the all-candidates prefix min gives the same
        # strict comparison as the sequential passing-only min.
        depth_flat = self.depth.reshape(-1)
        seed = depth_flat[pixs]
        q = zs.copy()  # in-segment inclusive prefix min (doubling scan)
        d = 1
        while d < m:
            idx = np.flatnonzero(pos - segpos >= d)
            if idx.size == 0:
                break
            q[idx] = np.minimum(q[idx], q[idx - d])
            d *= 2
        prev = seed.copy()
        np.minimum(prev[1:], np.where(seg[1:], np.inf, q[:-1]), out=prev[1:])
        passes = zs < prev

        flags = np.zeros(n, dtype=bool)
        flags[tids[passes]] = True
        if not passes.any():
            return 0
        # final owner of a pixel = last passing candidate (the running
        # strict minimum makes passing z strictly decreasing)
        winner = np.maximum.reduceat(np.where(passes, pos, -1), np.flatnonzero(seg))
        winner = winner[winner >= 0]
        pixw = pixs[winner]
        depth_flat[pixw] = zs[winner]
        f = tids[winner]
        rgb = (
            w0[winner, None] * colors[f, 0]
            + w1[winner, None] * colors[f, 1]
            + w2[winner, None] * colors[f, 2]
        ) * intensity[f][:, None]
        np.clip(rgb, 0.0, 255.0, out=rgb)
        self.color.reshape(-1, 3)[pixw] = rgb.astype(np.uint8)
        return int(flags.sum())

    def _raster_triangle(
        self, tri: np.ndarray, colors: np.ndarray, intensity: float
    ) -> bool:
        """Fill one screen-space triangle; returns True if any pixel hit."""
        if not np.all(np.isfinite(tri)):
            return False
        if np.any(tri[:, 2] <= 0):          # behind the camera
            return False
        xs, ys = tri[:, 0], tri[:, 1]
        x0 = max(int(np.floor(xs.min())), 0)
        x1 = min(int(np.ceil(xs.max())) + 1, self.width)
        y0 = max(int(np.floor(ys.min())), 0)
        y1 = min(int(np.ceil(ys.max())) + 1, self.height)
        if x0 >= x1 or y0 >= y1:
            return False

        ax, ay = tri[0, 0], tri[0, 1]
        bx, by = tri[1, 0], tri[1, 1]
        cx, cy = tri[2, 0], tri[2, 1]
        area = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
        if abs(area) < 1e-12:
            return False

        px, py = np.meshgrid(
            np.arange(x0, x1) + 0.5, np.arange(y0, y1) + 0.5
        )
        w0 = ((bx - px) * (cy - py) - (by - py) * (cx - px)) / area
        w1 = ((cx - px) * (ay - py) - (cy - py) * (ax - px)) / area
        w2 = 1.0 - w0 - w1
        inside = (w0 >= 0) & (w1 >= 0) & (w2 >= 0)
        if not inside.any():
            return False

        z = w0 * tri[0, 2] + w1 * tri[1, 2] + w2 * tri[2, 2]
        tile = self.depth[y0:y1, x0:x1]
        visible = inside & (z < tile)
        if not visible.any():
            return False
        tile[visible] = z[visible]

        rgb = (
            w0[..., None] * colors[0]
            + w1[..., None] * colors[1]
            + w2[..., None] * colors[2]
        ) * intensity
        np.clip(rgb, 0.0, 255.0, out=rgb)
        self.color[y0:y1, x0:x1][visible] = rgb[visible].astype(np.uint8)
        return True

    def draw_background_gradient(
        self,
        top: tuple[int, int, int] = (30, 36, 48),
        bottom: tuple[int, int, int] = (8, 10, 14),
    ) -> None:
        """Vertical gradient backdrop (drawn only where nothing rendered)."""
        apply_background_gradient(self.color, self.depth, top, bottom)


class DeviceRasterizer:
    """Device twin of :class:`Rasterizer`: framebuffers stay on device.

    Color and depth buffers come from the device scratch arena
    (:class:`~repro.occa.arena.DeviceArena`) and every draw is a
    registered-kernel launch over the raw device buffers — the same
    per-pixel math as the host rasterizer, so the composited image is
    bitwise identical; only the residency of the working set changes.
    ``close`` recycles the buffers; nothing here touches the transfer
    ledger.
    """

    def __init__(
        self,
        device,
        width: int,
        height: int,
        background: tuple[int, int, int] = (18, 22, 30),
    ):
        from repro.occa.kernels import install_render_kernels

        self.device = device
        self.width = width
        self.height = height
        self._kernels = install_render_kernels(device)
        arena = device.arena
        self.color_mem = arena.borrow((height, width, 3), np.uint8)
        self.depth_mem = arena.borrow((height, width), np.float64)
        self._core = Rasterizer.wrap(
            self.color_mem._raw(), self.depth_mem._raw(), background
        )

    @property
    def triangles_drawn(self) -> int:
        return self._core.triangles_drawn

    def draw_mesh(self, camera, vertices, faces, vertex_colors) -> int:
        return self._kernels.raster_mesh(
            self._core, camera, vertices, faces, vertex_colors
        )

    def shade_draw(self, camera, vertices, faces, values, vmin, vmax,
                   colormap) -> int:
        """Fused colormap + draw launch (one kernel per contour piece)."""
        return self._kernels.shade_draw(
            self._core, camera, vertices, faces, values, vmin, vmax, colormap
        )

    def image(self) -> np.ndarray:
        """Raw device view of the framebuffer (kernel-side use only)."""
        return self._core.image()

    def depth_image(self, dtype=np.float32) -> np.ndarray:
        return self._core.depth_image(dtype)

    def draw_background_gradient(self, *args, **kwargs) -> None:
        self._kernels.background(
            self.color_mem, self.depth_mem, *args, **kwargs
        )

    def close(self) -> None:
        """Return the device framebuffers to the arena pool."""
        mems, self.color_mem, self.depth_mem = (
            (self.color_mem, self.depth_mem), None, None,
        )
        if mems[0] is not None:
            self.device.arena.release(*mems)


def apply_background_gradient(
    color: np.ndarray,
    depth: np.ndarray,
    top: tuple[int, int, int] = (30, 36, 48),
    bottom: tuple[int, int, int] = (8, 10, 14),
) -> None:
    """Gradient-fill `color` wherever `depth` says nothing rendered.

    Shared by :meth:`Rasterizer.draw_background_gradient` and the
    sort-last compositor, which must apply the identical backdrop to a
    *composited* framebuffer on the root rank.
    """
    height, width = depth.shape
    t = np.linspace(0.0, 1.0, height)[:, None, None]
    grad = (1 - t) * np.asarray(top, float) + t * np.asarray(bottom, float)
    untouched = ~np.isfinite(depth)
    color[untouched] = np.broadcast_to(
        grad, (height, width, 3)
    )[untouched].astype(np.uint8)
