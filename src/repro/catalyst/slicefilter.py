"""Plane slices through volumes.

``axis_slice`` pulls an axis-aligned plane out of a volume (with linear
interpolation between lattice planes) — this is how the RBC "side
view" (paper Fig. 4) is rendered.  ``plane_sample`` samples an
arbitrary plane by trilinear interpolation, for oblique cut planes.
"""

from __future__ import annotations

import numpy as np

_AXES = {"x": 2, "y": 1, "z": 0}   # volume is [k, j, i] = [z, y, x]


def slice_plan(
    n: int,
    axis: str,
    position: float,
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
    spacing: tuple[float, float, float] = (1.0, 1.0, 1.0),
) -> tuple[int, int, float]:
    """Lattice interpolation plan ``(i0, i1, t)`` for `axis` = `position`.

    The plane interpolates between lattice planes ``i0`` and ``i1`` of
    an `n`-sample axis with weight ``t``: ``(1 - t) * lo + t * hi``.
    Factored out of :func:`axis_slice` so the sort-last compositor can
    compute the identical plan against global grid metadata and gather
    only the two contributing lattice planes from the rank fragments.
    """
    if axis not in _AXES:
        raise ValueError(f"axis must be x|y|z, got {axis!r}")
    world_axis = {"x": 0, "y": 1, "z": 2}[axis]
    coord = (position - origin[world_axis]) / spacing[world_axis]
    if not -0.5 <= coord <= n - 0.5:
        raise ValueError(
            f"slice position {position} outside the volume along {axis}"
        )
    coord = float(np.clip(coord, 0.0, n - 1))
    i0 = int(np.floor(coord))
    i1 = min(i0 + 1, n - 1)
    return i0, i1, coord - i0


def axis_slice(
    volume: np.ndarray,
    axis: str,
    position: float,
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
    spacing: tuple[float, float, float] = (1.0, 1.0, 1.0),
) -> np.ndarray:
    """Extract the plane `axis = position` (world units) as a 2-D array.

    The result keeps the remaining two axes in (slow, fast) order, e.g.
    slicing ``y`` returns an array indexed [z, x].
    """
    if axis not in _AXES:
        raise ValueError(f"axis must be x|y|z, got {axis!r}")
    vol = np.asarray(volume, dtype=float)
    if vol.ndim != 3:
        raise ValueError("volume must be 3-D")
    vax = _AXES[axis]
    i0, i1, t = slice_plan(vol.shape[vax], axis, position, origin, spacing)
    lo = np.take(vol, i0, axis=vax)
    hi = np.take(vol, i1, axis=vax)
    return (1.0 - t) * lo + t * hi


def plane_sample(
    volume: np.ndarray,
    origin: tuple[float, float, float],
    spacing: tuple[float, float, float],
    plane_point: np.ndarray,
    plane_u: np.ndarray,
    plane_v: np.ndarray,
    resolution: tuple[int, int],
    fill: float = np.nan,
) -> np.ndarray:
    """Sample the volume on a parametric plane patch.

    The patch is ``plane_point + s*plane_u + t*plane_v`` for s, t in
    [0, 1]; `resolution` = (nt, ns) output samples.  Points outside the
    volume get `fill`.  Trilinear interpolation.
    """
    vol = np.asarray(volume, dtype=float)
    nt, ns = resolution
    if nt < 1 or ns < 1:
        raise ValueError("resolution must be positive")
    s = np.linspace(0.0, 1.0, ns)
    t = np.linspace(0.0, 1.0, nt)
    S, T = np.meshgrid(s, t)
    pts = (
        np.asarray(plane_point, dtype=float)[None, None, :]
        + S[..., None] * np.asarray(plane_u, dtype=float)
        + T[..., None] * np.asarray(plane_v, dtype=float)
    )
    return trilinear_sample(vol, origin, spacing, pts.reshape(-1, 3), fill).reshape(nt, ns)


def trilinear_sample(
    volume: np.ndarray,
    origin: tuple[float, float, float],
    spacing: tuple[float, float, float],
    points: np.ndarray,
    fill: float = np.nan,
) -> np.ndarray:
    """Trilinear interpolation of the volume at arbitrary world points."""
    vol = np.asarray(volume, dtype=float)
    nz, ny, nx = vol.shape
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    gx = (pts[:, 0] - origin[0]) / spacing[0]
    gy = (pts[:, 1] - origin[1]) / spacing[1]
    gz = (pts[:, 2] - origin[2]) / spacing[2]
    valid = (
        (gx >= 0) & (gx <= nx - 1)
        & (gy >= 0) & (gy <= ny - 1)
        & (gz >= 0) & (gz <= nz - 1)
    )
    out = np.full(len(pts), fill, dtype=float)
    if not valid.any():
        return out
    gx, gy, gz = gx[valid], gy[valid], gz[valid]
    x0 = np.clip(np.floor(gx).astype(int), 0, nx - 2) if nx > 1 else np.zeros(len(gx), int)
    y0 = np.clip(np.floor(gy).astype(int), 0, ny - 2) if ny > 1 else np.zeros(len(gy), int)
    z0 = np.clip(np.floor(gz).astype(int), 0, nz - 2) if nz > 1 else np.zeros(len(gz), int)
    fx = gx - x0
    fy = gy - y0
    fz = gz - z0
    x1 = np.minimum(x0 + 1, nx - 1)
    y1 = np.minimum(y0 + 1, ny - 1)
    z1 = np.minimum(z0 + 1, nz - 1)
    c000 = vol[z0, y0, x0]
    c100 = vol[z0, y0, x1]
    c010 = vol[z0, y1, x0]
    c110 = vol[z0, y1, x1]
    c001 = vol[z1, y0, x0]
    c101 = vol[z1, y0, x1]
    c011 = vol[z1, y1, x0]
    c111 = vol[z1, y1, x1]
    c00 = c000 * (1 - fx) + c100 * fx
    c10 = c010 * (1 - fx) + c110 * fx
    c01 = c001 * (1 - fx) + c101 * fx
    c11 = c011 * (1 - fx) + c111 * fx
    c0 = c00 * (1 - fy) + c10 * fy
    c1 = c01 * (1 - fy) + c11 * fy
    out[valid] = c0 * (1 - fz) + c1 * fz
    return out


def axis_slice_device(
    device,
    volume,
    axis: str,
    position: float,
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
    spacing: tuple[float, float, float] = (1.0, 1.0, 1.0),
) -> np.ndarray:
    """Device twin: slice a :class:`DeviceMemory` volume through the
    registered ``catalyst.slice`` kernel — same blend, no transfer."""
    from repro.occa.kernels import install_render_kernels

    return install_render_kernels(device).slice(
        volume, axis, position, origin=origin, spacing=spacing
    )
