"""Threshold and clip filters on volumes.

``threshold`` masks a volume outside a value range (NaN fill — the
colormap renders NaN as neutral gray and marching tetrahedra never
crosses through NaN cells), and ``clip_box`` blanks everything outside
an axis-aligned world-space box.  Both are the standard "show me only
the interesting part" pre-filters in front of slice/contour passes.
"""

from __future__ import annotations

import numpy as np


def threshold(
    volume: np.ndarray,
    vmin: float = -np.inf,
    vmax: float = np.inf,
    fill: float = np.nan,
) -> np.ndarray:
    """Keep values in [vmin, vmax]; replace the rest with `fill`."""
    if vmax < vmin:
        raise ValueError(f"empty threshold range [{vmin}, {vmax}]")
    vol = np.asarray(volume, dtype=float)
    out = vol.copy()
    out[(vol < vmin) | (vol > vmax)] = fill
    return out


def threshold_by(
    volume: np.ndarray,
    selector: np.ndarray,
    vmin: float = -np.inf,
    vmax: float = np.inf,
    fill: float = np.nan,
) -> np.ndarray:
    """Keep `volume` where a *different* field is in range.

    E.g. show temperature only where velocity magnitude is significant.
    """
    vol = np.asarray(volume, dtype=float)
    sel = np.asarray(selector, dtype=float)
    if sel.shape != vol.shape:
        raise ValueError(
            f"selector shape {sel.shape} does not match volume {vol.shape}"
        )
    out = vol.copy()
    out[(sel < vmin) | (sel > vmax)] = fill
    return out


def clip_box(
    volume: np.ndarray,
    origin: tuple[float, float, float],
    spacing: tuple[float, float, float],
    box_lo: tuple[float, float, float],
    box_hi: tuple[float, float, float],
    fill: float = np.nan,
) -> np.ndarray:
    """Blank everything outside the world-space box [box_lo, box_hi]."""
    vol = np.asarray(volume, dtype=float)
    nz, ny, nx = vol.shape
    xs = origin[0] + np.arange(nx) * spacing[0]
    ys = origin[1] + np.arange(ny) * spacing[1]
    zs = origin[2] + np.arange(nz) * spacing[2]
    keep = (
        ((xs >= box_lo[0]) & (xs <= box_hi[0]))[None, None, :]
        & ((ys >= box_lo[1]) & (ys <= box_hi[1]))[None, :, None]
        & ((zs >= box_lo[2]) & (zs <= box_hi[2]))[:, None, None]
    )
    out = vol.copy()
    out[~keep] = fill
    return out
