"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

``info``
    Print the modeled machine specifications (Polaris, JUWELS Booster).
``run``
    Run a built-in case with an optional SENSEI XML configuration —
    the whole paper workflow from one command.
``render``
    Posthoc-render a ``.fld`` checkpoint into PNG images (the offline
    complement to the in situ pipeline).
``intransit``
    Run the in transit topology: simulation ranks stream to SENSEI
    endpoint ranks — a static split, or ``--fleet`` for the elastic
    endpoint fleet (mid-run join/leave, rebalance, work stealing,
    optional autoscaling).
``bench``
    Regenerate a paper figure/table.
``serve``
    Run a case with the live serving layer attached: frames stream to
    connected clients while the simulation advances, and steering
    commands flow back (see docs/serving.md).
"""

from __future__ import annotations

import argparse
import sys
import threading
from pathlib import Path

from repro.util.sizes import format_bytes

_CASES = ("cavity", "pebble", "rbc")
_FIGURES = ("fig2", "fig3", "fig5", "fig6", "storage", "ablations", "telemetry",
            "fleet", "compression", "device_render", "report")


def _build_case(name: str, steps: int | None, order: int | None, par: str | None):
    from repro.nekrs.cases import (
        lid_cavity_case,
        pebble_bed_case,
        rayleigh_benard_case,
    )

    if name == "cavity":
        case = lid_cavity_case()
    elif name == "pebble":
        case = pebble_bed_case(num_pebbles=5, elements_per_unit=3, order=4,
                               num_steps=30)
    elif name == "rbc":
        case = rayleigh_benard_case(aspect=(2, 1), elements_per_unit=3,
                                    num_steps=50)
    else:
        raise SystemExit(f"unknown case {name!r}; choose from {_CASES}")
    overrides = {}
    if par:
        from repro.nekrs.parfile import par_to_overrides, read_par

        overrides.update(par_to_overrides(read_par(par)))
    if steps is not None:
        overrides["num_steps"] = steps
    if order is not None:
        overrides["order"] = order
    return case.with_overrides(**overrides) if overrides else case


def cmd_info(args) -> int:
    from repro.machine import JUWELS_BOOSTER, POLARIS

    for spec in (POLARIS, JUWELS_BOOSTER):
        node = spec.node
        print(f"{spec.name}")
        print(f"  nodes            : {spec.num_nodes}")
        print(f"  node             : {node.cpu_sockets}x {node.cores_per_socket}c CPU, "
              f"{format_bytes(node.mem_bytes)} RAM")
        print(f"  GPUs/node        : {node.gpus_per_node}x {node.gpu.name}")
        print(f"  NICs/node        : {node.nics_per_node}x {node.nic.name} "
              f"({node.nic.bw_gbs:g} GB/s, {node.nic.latency_s * 1e6:g} us)")
        print(f"  filesystem       : {spec.fs.name} "
              f"({spec.fs.aggregate_write_gbs:g} GB/s aggregate)")
        print(f"  total ranks      : {spec.total_ranks} (1 per GPU)")
        print()
    return 0


def _inject_compositing(config_xml: str, compositing: str) -> str:
    """Force ``compositing=`` onto every catalyst analysis element."""
    import xml.etree.ElementTree as ET

    root = ET.fromstring(config_xml)
    for el in root.iter("analysis"):
        if el.get("type") == "catalyst":
            el.set("compositing", compositing)
    return ET.tostring(root, encoding="unicode")


def _inject_residency(config_xml: str, residency: str) -> str:
    """Force ``residency=`` onto every catalyst analysis element."""
    import xml.etree.ElementTree as ET

    root = ET.fromstring(config_xml)
    for el in root.iter("analysis"):
        if el.get("type") == "catalyst":
            el.set("residency", residency)
    return ET.tostring(root, encoding="unicode")


def cmd_run(args) -> int:
    from repro.insitu import Bridge
    from repro.nekrs import NekRSSolver
    from repro.occa import Device
    from repro.parallel import run_spmd

    case = _build_case(args.case, args.steps, args.order, args.par)
    config_xml = (
        Path(args.config).read_text() if args.config else "<sensei></sensei>"
    )
    if args.compositing:
        config_xml = _inject_compositing(config_xml, args.compositing)
    if args.residency:
        config_xml = _inject_residency(config_xml, args.residency)
    outdir = Path(args.output)
    outdir.mkdir(parents=True, exist_ok=True)

    def body(comm):
        device = Device(args.device)
        solver = NekRSSolver(case, comm, device)
        bridge = Bridge(solver, config_xml=config_xml, output_dir=outdir)
        reports = solver.run(observer=bridge.observer)
        bridge.finalize()
        return {
            "steps": len(reports),
            "time": solver.time,
            "cfl": reports[-1].cfl if reports else 0.0,
            "insitu_s": bridge.insitu_seconds,
            "d2h": device.transfers.d2h_bytes,
        }

    results = run_spmd(args.ranks, body)
    print(f"case {case.name}: {results[0]['steps']} steps to t={results[0]['time']:.4g}")
    for rank, r in enumerate(results):
        print(
            f"  rank {rank}: CFL={r['cfl']:.3f} in-situ={r['insitu_s']:.3f}s "
            f"GPU->CPU={format_bytes(r['d2h'])}"
        )
    artifacts = [p for p in sorted(outdir.rglob("*")) if p.is_file()]
    if artifacts:
        print(f"artifacts under {outdir}/: {len(artifacts)} files, "
              f"{format_bytes(sum(p.stat().st_size for p in artifacts))}")
    return 0


def cmd_render(args) -> int:
    from repro.catalyst import RenderPipeline, RenderSpec
    from repro.nekrs.checkpoint import read_checkpoint
    from repro.nekrs import NekRSSolver
    from repro.parallel import SerialCommunicator
    from repro.insitu import NekDataAdaptor
    from repro.sensei.analyses.catalyst_adaptor import gather_uniform_volume
    from repro.util.png import write_png

    header, fields = read_checkpoint(args.checkpoint)
    if header.size != 1:
        raise SystemExit(
            "render expects a single-rank checkpoint; re-dump with --ranks 1"
        )
    case = _build_case(args.case, None, None, args.par)
    comm = SerialCommunicator()
    solver = NekRSSolver(case, comm)
    if solver.mesh.field_shape() != header.field_shape:
        raise SystemExit(
            f"checkpoint shape {header.field_shape} does not match case "
            f"{args.case!r} mesh {solver.mesh.field_shape()}; pass the same "
            "case/order/par the run used"
        )
    for name, arr in fields.items():
        target = {
            "velocity_x": solver.u, "velocity_y": solver.v,
            "velocity_z": solver.w, "pressure": solver.p,
            "temperature": solver.T,
        }.get(name)
        if target is not None:
            target[:] = arr

    adaptor = NekDataAdaptor(solver)
    adaptor.set_data_time_step(header.step)
    adaptor.set_data_time(header.time)
    image = gather_uniform_volume(comm, adaptor, "uniform", (args.array,))
    specs = [RenderSpec(kind="slice", array=args.array, axis=args.slice_axis)]
    if args.isovalue is not None:
        specs.insert(
            0, RenderSpec(kind="contour", array=args.array, isovalue=args.isovalue)
        )
    pipe = RenderPipeline(specs=specs, width=args.size, height=args.size,
                          name=Path(args.checkpoint).stem)
    outdir = Path(args.output)
    outdir.mkdir(parents=True, exist_ok=True)
    for name, frame in pipe.render(image, header.step, header.time):
        path = outdir / f"{name}.png"
        nbytes = write_png(path, frame)
        print(f"wrote {path} ({format_bytes(nbytes)})")
    return 0


def cmd_trace(args) -> int:
    from repro.bench.measure import measure_insitu_profile, measure_intransit_profiles
    from repro.bench.workloads import weak_scaled_rbc_case
    from repro.observe import TelemetrySession

    case = _build_case(args.case, args.steps, args.order, None)
    steps = args.steps or min(case.num_steps, 4)
    session = TelemetrySession(label=f"{args.case}-{args.mode}")
    outdir = Path(args.output)

    if args.intransit:
        def case_builder(nsim):
            return weak_scaled_rbc_case(
                nsim, elements_per_rank=4, order=3, num_steps=steps
            )

        mode = "none" if args.mode == "original" else args.mode
        measure_intransit_profiles(
            case_builder,
            mode,
            total_ranks=args.ranks,
            steps=steps,
            stream_interval=args.interval,
            ratio=2,
            output_dir=outdir / "artifacts",
            session=session,
        )
    else:
        measure_insitu_profile(
            case,
            args.mode,
            ranks=args.ranks,
            steps=steps - steps % args.interval or args.interval,
            interval=args.interval,
            output_dir=outdir / "artifacts",
            color_array="pressure" if args.case == "cavity" else "temperature",
            session=session,
        )

    trace_path = session.write_chrome_trace(outdir / "trace.json")
    prom_path = session.write_prometheus(outdir / "metrics.prom")
    json_path = session.write_json(outdir / "telemetry.json")
    print(session.flame_summary())
    print()
    mem = session.memory_aggregate()
    if mem:
        print("memory high-water marks (summed over ranks):")
        for category in sorted(mem):
            print(f"  {category:<22} {format_bytes(mem[category])}")
        print()
    for path in (trace_path, prom_path, json_path):
        print(f"wrote {path}")
    print("open trace.json in https://ui.perfetto.dev or chrome://tracing")
    return 0


#: default serving pipeline: a colormapped slice of the case's most
#: interesting array, rendered every step so the stream stays live
_SERVE_XML = """\
<sensei>
  <analysis type="catalyst" array="{array}" slice_axis="y"
            width="256" height="256" frequency="1" name="{name}"/>
</sensei>
"""


def cmd_serve(args) -> int:
    from repro.insitu import Bridge
    from repro.nekrs import NekRSSolver
    from repro.parallel import run_spmd
    from repro.serve import (
        FrameHub,
        HttpFrameServer,
        LoopbackClient,
        ServeMesh,
        SteeringBus,
        attach_serving,
    )

    from repro.codec import CodecContext, CodecSpec

    case = _build_case(args.case, args.steps, args.order, None)
    if args.config:
        config_xml = Path(args.config).read_text()
    else:
        config_xml = _SERVE_XML.format(
            array="pressure" if args.case == "cavity" else "temperature",
            name=case.name,
        )
    outdir = Path(args.output)
    outdir.mkdir(parents=True, exist_ok=True)

    codec = CodecSpec.from_cli(args.codec, args.error_budget)
    router = None
    if args.route != "intransit":
        from repro.insitu.router import HybridRouter, RouterPolicy

        policy = (
            RouterPolicy(wire_budget_bytes=args.wire_budget * 2**20)
            if args.wire_budget else RouterPolicy()
        )
        router = HybridRouter(policy, mode=args.route)

    # hub and bus are shared-memory singletons across the rank threads,
    # exactly like the SST broker in the in-transit topology; --relays
    # swaps in the sharded serving mesh (edge caches, relay placement)
    if args.relays:
        hub = ServeMesh(relays=args.relays, history=args.history,
                        max_clients=args.max_clients)
    else:
        hub = FrameHub(history=args.history, max_clients=args.max_clients)
    bus = SteeringBus()
    server = None
    client = None
    if args.port is not None:
        server = HttpFrameServer(hub, bus, port=args.port, router=router)
        port = server.start()
        print(f"serving on http://127.0.0.1:{port}")
        print("  GET /status, /frame/<stream>, /stream/<stream>, "
              "/replay/<stream>; POST /steer"
              + ("; GET /routes" if router is not None else ""))
    else:
        client = LoopbackClient(hub, bus, depth=args.history,
                                label="cli-loopback")

    def publish(stream, step, time, data, **kw):
        """hub.publish, gated by the router when one is configured."""
        if router is not None:
            decision = router.decide(step, kw.get("raw_nbytes") or len(data))
            if decision.route != "intransit":
                return None
        frame = hub.publish(stream, step, time, data, **kw)
        if router is not None:
            router.observe(kw.get("raw_nbytes") or len(data), len(data))
        return frame

    def body(comm):
        from repro.adios.marshal import StepPayload, marshal_step

        solver = NekRSSolver(case, comm)
        bridge = Bridge(solver, config_xml=config_xml, output_dir=outdir)
        attach_serving(bridge.analysis, hub, bus, comm=comm)
        if router is not None:
            # replace the straight hub hook with the routed one
            for _spec, adaptor in bridge.analysis.adaptors:
                if getattr(adaptor, "publisher", None) is not None:
                    adaptor.publisher = publish
        codec_ctx = CodecContext()

        def observer(s, report):
            keep = bridge.observer(s, report)
            if codec is not None and comm.rank == 0:
                # compress-and-stream the raw fields next to the rendered
                # frames: rank 0's block on the "fields" hub stream
                variables = {"pressure": solver.p}
                if solver.T is not None:
                    variables["temperature"] = solver.T
                payload = StepPayload(
                    step=report.step, time=report.time, rank=0,
                    variables=variables,
                )
                raw = sum(a.nbytes for a in variables.values())
                data = bytes(marshal_step(payload, codec=codec,
                                          context=codec_ctx))
                publish(
                    "fields", report.step, report.time, data,
                    encoding="rbp3" if codec.active else "rbp2",
                    raw_nbytes=raw,
                )
            return keep

        reports = solver.run(observer=observer)
        bridge.finalize()
        return {"steps": len(reports), "stopped": bridge.stop_requested}

    try:
        results = run_spmd(args.ranks, body)
    finally:
        if server is not None:
            server.stop()
        if args.relays:
            hub.close()     # stop the relay pump threads
    print(
        f"case {case.name}: {results[0]['steps']} steps"
        + (" (stopped by steering)" if results[0]["stopped"] else "")
    )
    if client is not None:
        client.drain()
        print(f"loopback client received {len(client.frames)} frames "
              f"(steps {client.steps[:3]}...{client.steps[-3:]})"
              if client.frames else "loopback client received 0 frames")
        client.close()
    stats = hub.stats()
    print(f"hub: {stats['frames_published']} frames published, "
          f"peak {stats['peak_clients']} client(s), {stats['stalls']} stalls")
    store = stats.get("store", {})
    if store.get("codec_raw_bytes"):
        print(f"codec: {format_bytes(store['codec_raw_bytes'])} raw -> "
              f"{format_bytes(store['codec_wire_bytes'])} stored "
              f"({format_bytes(store['codec_bytes_saved'])} saved)")
    if router is not None:
        counts = router.route_counts
        print("routes: " + ", ".join(f"{k}={v}" for k, v in counts.items()))
    hub.close()
    return 0


def cmd_intransit(args) -> int:
    from repro.fleet import FleetConfig
    from repro.insitu import InTransitRunner
    from repro.nekrs.cases import weak_scaled_rbc_case
    from repro.parallel import run_spmd

    def case_builder(nsim):
        case = weak_scaled_rbc_case(
            nsim, elements_per_rank=args.elements, order=args.order
        )
        return case.with_overrides(num_steps=args.steps)

    fleet = None
    if args.fleet:
        fleet = FleetConfig(
            lease_timeout=args.lease_timeout,
            initial_active=args.initial_active,
            autoscale=args.autoscale,
        )
    from repro.codec import CodecSpec

    router_policy = None
    if args.wire_budget:
        from repro.insitu.router import RouterPolicy

        router_policy = RouterPolicy(wire_budget_bytes=args.wire_budget * 2**20)
    runner = InTransitRunner(
        case_builder,
        mode=args.mode,
        ratio=args.ratio,
        num_steps=args.steps,
        stream_interval=args.interval,
        arrays=("temperature", "velocity_magnitude"),
        output_dir=args.output,
        image_size=args.size,
        fleet=fleet,
        codec=CodecSpec.from_cli(args.codec, args.error_budget),
        route=args.route,
        router_policy=router_policy,
    )
    results = run_spmd(args.ranks, runner.run)
    sims = [r for r in results if r.role == "simulation"]
    ends = [r for r in results if r.role == "endpoint"]
    print(
        f"in transit ({'fleet' if fleet else 'static split'}): "
        f"{len(sims)} sim ranks + {len(ends)} endpoint ranks, mode={args.mode}"
    )
    for r in sims:
        print(f"  sim {r.rank}: {r.steps} steps, "
              f"streamed {format_bytes(r.stream_bytes)}")
    codec_stats = sims[0].extra.get("codec") if sims else None
    if codec_stats and codec_stats["wire_bytes"]:
        print(f"codec: {format_bytes(codec_stats['raw_bytes'])} raw -> "
              f"{format_bytes(codec_stats['wire_bytes'])} on the wire "
              f"({codec_stats['ratio']:.2f}x)")
    routes = sims[0].extra.get("routes") if sims else None
    if routes:
        print("routes: " + ", ".join(f"{k}={v}" for k, v in routes.items()))
    for r in ends:
        print(f"  endpoint {r.rank}: {r.steps} steps, "
              f"received {format_bytes(r.stream_bytes)}, "
              f"wrote {format_bytes(r.files_bytes)}")
    coordinator = runner.last_coordinator
    if coordinator is not None:
        stats = coordinator.stats()
        print(
            f"fleet: epoch {stats['epoch']}, {stats['committed']} steps "
            f"committed, {stats['stolen']} stolen, "
            f"{stats['rebalances']} rebalance(s), "
            f"{stats['crashes_detected']} crash(es) detected"
        )
        for rec in stats["recoveries"]:
            kind = "planned" if rec["planned"] else "unplanned"
            print(
                f"  {kind} loss of endpoint {rec['eid']}: "
                f"{rec['streams_moved']} stream(s) moved, "
                f"{rec['tasks_requeued']} task(s) replayed in "
                f"{rec['recovery_seconds']:.3f}s"
            )
    return 0


def cmd_observe(args) -> int:
    import time as _time

    from repro.observe.live.export import render_remote_top, render_top

    if args.url:
        import json as _json
        from urllib.request import urlopen

        base = args.url.rstrip("/")

        def fetch(path):
            with urlopen(base + path, timeout=5.0) as resp:
                return _json.loads(resp.read().decode())

        frames = 1 if args.once else args.frames
        for i in range(frames):
            health = fetch("/healthz")
            slo = fetch("/slo")
            try:
                timeline = fetch("/timeline")
            except Exception:
                timeline = None       # no steps retained yet (404)
            print(render_remote_top(health, slo, timeline))
            if i + 1 < frames:
                print()
                _time.sleep(args.interval)
        return 0

    # no --url: drive a small in-process fleet run and watch it live
    from repro.fleet import FleetConfig
    from repro.insitu import InTransitRunner
    from repro.nekrs.cases import weak_scaled_rbc_case
    from repro.observe import TelemetrySession
    from repro.observe.live import LivePlane
    from repro.parallel import run_spmd

    def case_builder(nsim):
        case = weak_scaled_rbc_case(
            nsim, elements_per_rank=2, order=3, dt=1e-3
        )
        return case.with_overrides(num_steps=args.steps)

    session = TelemetrySession("observe-top")
    plane = LivePlane(session)
    runner = InTransitRunner(
        case_builder,
        mode="catalyst",
        ratio=2,
        num_steps=args.steps,
        stream_interval=1,
        arrays=("temperature",),
        output_dir=args.output,
        image_size=48,
        session=session,
        fleet=FleetConfig(),
    )
    if args.once:
        run_spmd(args.ranks, runner.run)
        print(render_top(plane))
        return 0
    worker = threading.Thread(
        target=run_spmd, args=(args.ranks, runner.run), daemon=True
    )
    worker.start()
    while worker.is_alive():
        print(render_top(plane))
        print()
        worker.join(args.interval)
    worker.join()
    print(render_top(plane))
    return 0


def cmd_bench(args) -> int:
    import importlib

    if args.gate or args.update_baseline:
        from repro.perf.gate import run_gate

        report = run_gate(update_baseline=args.update_baseline)
        print(report.render())
        return 0 if report.ok else 1
    if args.figure is None:
        raise SystemExit("bench: provide a figure name or --gate")
    if args.figure == "report":
        from repro.bench.report import build_report

        print(build_report(quick=True))
        return 0
    if args.figure == "ablations":
        from repro.bench import ablations

        print(ablations.insitu_frequency().render())
        print()
        print(ablations.sst_queue().render())
        print()
        print(ablations.endpoint_ratio().render())
        return 0
    module = importlib.import_module(f"repro.bench.{args.figure}")
    kwargs = {}
    if args.quick:
        if args.figure in ("fig5", "fig6"):
            kwargs["measure_kwargs"] = dict(
                total_ranks=3, steps=4, stream_interval=2, ratio=2, order=3,
                elements_per_rank=4,
            )
        elif args.figure == "compression":
            kwargs["measure_kwargs"] = dict(
                rbc_ranks=4, rbc_order=3, pebble_count=3, pebble_order=3,
                steps=4,
            )
        else:
            kwargs["measure_kwargs"] = dict(
                ranks=2, steps=4, interval=2, num_pebbles=3, order=3
            )
    print(module.run(**kwargs).render())
    return 0


def _add_codec_args(parser) -> None:
    """The shared --codec / --error-budget / --route flag family."""
    parser.add_argument(
        "--codec",
        choices=("none", "lossless", "delta-rle", "bitplane-rle"),
        default=None,
        help="compress streamed field payloads (RBP3 wire frames); "
             "'lossless' keeps frames byte-identical to an uncompressed run",
    )
    parser.add_argument(
        "--error-budget", default=None,
        help="per-field bound for lossy codecs: '1e-3' or 'rel:1e-3' "
             "(range-relative), 'abs:0.05' (absolute); default rel:1e-3",
    )
    parser.add_argument(
        "--route", choices=("insitu", "intransit", "hybrid"),
        default="intransit",
        help="visualization routing: stream everything (intransit, the "
             "default), render on the simulation side (insitu), or let "
             "the bandwidth-aware router pick per step (hybrid)",
    )
    parser.add_argument(
        "--wire-budget", type=float, default=None, metavar="MIB",
        help="hybrid route's per-step wire budget in MiB "
             "(default: the router's built-in budget)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NekRS x SENSEI in situ visualization reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print modeled machine specs").set_defaults(
        fn=cmd_info
    )

    run = sub.add_parser(
        "run", aliases=["insitu"], help="run a case with in situ analysis"
    )
    run.add_argument("--case", choices=_CASES, default="cavity")
    run.add_argument("--ranks", type=int, default=2)
    run.add_argument("--steps", type=int, default=None)
    run.add_argument("--order", type=int, default=None)
    run.add_argument("--par", help="NekRS-style .par override file")
    run.add_argument("--config", help="SENSEI XML configuration file")
    run.add_argument("--output", default="repro_output")
    run.add_argument("--device", choices=("serial", "cuda-sim"), default="cuda-sim")
    run.add_argument("--compositing",
                     choices=("gather", "binary_swap", "direct_send"),
                     default=None,
                     help="override the parallel-rendering scheme of every "
                          "catalyst analysis (sort-last depth compositing "
                          "instead of gathering the volume to rank 0)")
    run.add_argument("--residency", choices=("host", "device"), default=None,
                     help="where every catalyst analysis keeps its working "
                          "set: host copies fields over PCIe each step; "
                          "device renders on the GPU and ships only the "
                          "composited tile")
    run.set_defaults(fn=cmd_run)

    render = sub.add_parser("render", help="posthoc-render a .fld checkpoint")
    render.add_argument("checkpoint")
    render.add_argument("--case", choices=_CASES, required=True)
    render.add_argument("--par", help=".par file the run used")
    render.add_argument("--array", default="pressure")
    render.add_argument("--isovalue", type=float, default=None)
    render.add_argument("--slice-axis", choices=("x", "y", "z"), default="y")
    render.add_argument("--size", type=int, default=512)
    render.add_argument("--output", default="render_output")
    render.set_defaults(fn=cmd_render)

    trace = sub.add_parser(
        "trace",
        help="run a traced workload; export Chrome trace + Prometheus metrics",
    )
    trace.add_argument("--case", choices=_CASES, default="pebble")
    trace.add_argument("--mode", choices=("original", "checkpoint", "catalyst"),
                       default="catalyst")
    trace.add_argument("--ranks", type=int, default=2)
    trace.add_argument("--steps", type=int, default=4)
    trace.add_argument("--order", type=int, default=3)
    trace.add_argument("--interval", type=int, default=2)
    trace.add_argument("--intransit", action="store_true",
                       help="trace the in transit (SST) topology instead")
    trace.add_argument("--output", default="trace_output")
    trace.set_defaults(fn=cmd_trace)

    serve = sub.add_parser(
        "serve", help="run a case with live frame streaming and steering"
    )
    serve.add_argument("--case", choices=_CASES, default="cavity")
    serve.add_argument("--ranks", type=int, default=2)
    serve.add_argument("--steps", type=int, default=None)
    serve.add_argument("--order", type=int, default=None)
    serve.add_argument("--config", help="SENSEI XML configuration file "
                       "(default: a single catalyst slice pipeline)")
    serve.add_argument("--port", type=int, default=None,
                       help="serve HTTP on this port (0 picks a free one); "
                            "omit for in-process loopback mode")
    serve.add_argument("--history", type=int, default=32,
                       help="frames kept per stream for /replay")
    serve.add_argument("--relays", type=int, default=0,
                       help="serve through a ServeMesh with this many relay "
                            "hubs (0 = the flat single-hub path); /status "
                            "then reports the relay shard map")
    serve.add_argument("--max-clients", type=int, default=None,
                       help="refuse connections beyond this many clients")
    serve.add_argument("--output", default="serve_output")
    _add_codec_args(serve)
    serve.set_defaults(fn=cmd_serve)

    intransit = sub.add_parser(
        "intransit",
        help="run the in transit topology (static split or --fleet elastic)",
    )
    intransit.add_argument("--mode", choices=("checkpoint", "catalyst"),
                           default="catalyst")
    intransit.add_argument("--ranks", type=int, default=6)
    intransit.add_argument("--ratio", type=int, default=2,
                           help="sim ranks per endpoint rank (static split "
                                "and fleet pool sizing)")
    intransit.add_argument("--steps", type=int, default=4)
    intransit.add_argument("--interval", type=int, default=1)
    intransit.add_argument("--order", type=int, default=3)
    intransit.add_argument("--elements", type=int, default=4,
                           help="mesh elements per simulation rank")
    intransit.add_argument("--size", type=int, default=128)
    intransit.add_argument("--fleet", action="store_true",
                           help="elastic endpoint fleet (join/leave, "
                                "rebalance, work stealing) instead of the "
                                "static block split")
    intransit.add_argument("--lease-timeout", type=float, default=0.25,
                           help="seconds without a heartbeat before an "
                                "endpoint is declared dead")
    intransit.add_argument("--initial-active", type=int, default=None,
                           help="endpoints active at start (rest parked as "
                                "autoscaler reserve)")
    intransit.add_argument("--autoscale", action="store_true",
                           help="let the queue-depth autoscaler vary the "
                                "sim:endpoint ratio (2:1..16:1)")
    intransit.add_argument("--output", default="intransit_output")
    _add_codec_args(intransit)
    intransit.set_defaults(fn=cmd_intransit)

    observe = sub.add_parser(
        "observe", help="live telemetry tools (dashboard, SLO watch)"
    )
    obs_sub = observe.add_subparsers(dest="observe_command", required=True)
    top = obs_sub.add_parser(
        "top",
        help="terminal dashboard: stage latencies, SLO burn, timelines",
    )
    top.add_argument("--url", default=None,
                     help="poll a running server's /healthz + /slo + "
                          "/timeline instead of launching a demo run")
    top.add_argument("--once", action="store_true",
                     help="render a single dashboard frame and exit")
    top.add_argument("--interval", type=float, default=1.0,
                     help="seconds between dashboard frames")
    top.add_argument("--frames", type=int, default=10,
                     help="frames to render in --url mode (without --once)")
    top.add_argument("--ranks", type=int, default=3,
                     help="ranks for the in-process demo run (no --url)")
    top.add_argument("--steps", type=int, default=3,
                     help="steps for the in-process demo run (no --url)")
    top.add_argument("--output", default="observe_output")
    top.set_defaults(fn=cmd_observe)

    bench = sub.add_parser(
        "bench", help="regenerate a paper figure/table, or run the perf gate"
    )
    bench.add_argument("figure", nargs="?", choices=_FIGURES)
    bench.add_argument("--quick", action="store_true",
                       help="use the smallest measurement workload")
    bench.add_argument("--gate", action="store_true",
                       help="run the perf regression gate against BENCH_10.json "
                            "(includes the compositing, collectives, recovery, "
                            "live-telemetry, compression, and device-render "
                            "rows)")
    bench.add_argument("--update-baseline", action="store_true",
                       help="refresh the gate baselines with current timings")
    bench.set_defaults(fn=cmd_bench)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
