"""repro.codec: pluggable, NumPy-only compression for RBP payloads.

The wire layer (`repro.adios.marshal`) calls :func:`encode_field` /
:func:`decode_field` per payload variable when a :class:`CodecSpec`
is active, emitting the self-describing ``RBP3`` frame; everything
else (broker, fleet replay, serve, bench) just moves the smaller
bytes.  See docs/compression.md for the pipeline and budget design.
"""

from repro.codec.pipeline import (
    CODEC_NAMES,
    CodecContext,
    CodecSpec,
    CodecStats,
    ErrorBudget,
    FieldCodecConfig,
    decode_field,
    encode_field,
)
from repro.codec.stages import CodecError, MissingReferenceError

__all__ = [
    "CODEC_NAMES",
    "CodecContext",
    "CodecError",
    "CodecSpec",
    "CodecStats",
    "ErrorBudget",
    "FieldCodecConfig",
    "MissingReferenceError",
    "decode_field",
    "encode_field",
]
