"""Per-field codec pipelines: budgets, specs, contexts, stats.

A :class:`CodecSpec` names, per field (with a float-field default),
which pipeline to run and under what :class:`ErrorBudget`.  The
pipelines compose the :mod:`repro.codec.stages` primitives:

``delta-rle``
    quantize under the budget -> delta (spatial along the fastest
    axis, or temporal vs. the previous step's quanta when enabled and
    a compatible reference exists) -> zero-gap RLE/varint.
``bitplane-rle``
    truncate float mantissas to the budget's precision -> byte-plane
    shuffle -> zero-gap RLE/varint.  Pointwise-relative, no quantizer
    overflow to worry about.
``raw``
    verbatim bytes — the lossless path, and the automatic fallback
    whenever a lossy pipeline cannot honor its bound (non-finite
    values, quantizer overflow) or would not actually shrink the
    field.

Every encode is self-describing: the per-field params that went into
the wire block are all a decoder needs (plus, for temporal deltas
only, the previous step's quanta from a :class:`CodecContext`).
:func:`decode_field` dispatches to the stages' reference decoders
under :func:`repro.perf.naive_mode`, so the whole decode side has a
naive-mode twin.
"""

from __future__ import annotations

import fnmatch
import struct
import threading
import time as _time
from dataclasses import dataclass, field

import numpy as np

from repro.codec.stages import (
    CodecError,
    MissingReferenceError,
    byte_shuffle,
    byte_unshuffle,
    delta_decode,
    delta_encode,
    dequantize,
    mantissa_bits,
    quantize,
    rle_decode,
    rle_encode,
    truncate_mantissa,
)

__all__ = [
    "ErrorBudget",
    "FieldCodecConfig",
    "CodecSpec",
    "CodecContext",
    "CodecStats",
    "encode_field",
    "decode_field",
    "CODEC_NAMES",
]

#: wire codec ids (u8 in the RBP3 field block)
RAW, CONSTANT, DELTA_RLE, BITPLANE_RLE = 0, 1, 2, 3
CODEC_NAMES = {RAW: "raw", CONSTANT: "constant", DELTA_RLE: "delta-rle",
               BITPLANE_RLE: "bitplane-rle"}
_CODEC_IDS = {v: k for k, v in CODEC_NAMES.items()}

_FLOAT_DTYPES = (np.dtype("<f4"), np.dtype("<f8"))

#: variable families that define the mesh itself (see the ADIOS
#: analysis adaptor's put() names); always lossless under from_cli
_GEOMETRY_GLOBS = ("*/geom", "*/points", "*/cells", "geom", "points", "cells")


@dataclass(frozen=True)
class ErrorBudget:
    """Per-field error bound: absolute, range-relative, or both.

    The effective absolute bound for an array is the tighter of
    ``absolute`` and ``relative * (max - min)``; with neither set the
    budget is lossless and fields pass through raw.
    """

    absolute: float | None = None
    relative: float | None = None

    def __post_init__(self):
        for name in ("absolute", "relative"):
            v = getattr(self, name)
            if v is not None and (v <= 0 or not np.isfinite(v)):
                raise ValueError(f"{name} error bound must be positive, got {v!r}")

    @property
    def lossless(self) -> bool:
        return self.absolute is None and self.relative is None

    def bound_for(self, arr: np.ndarray) -> float | None:
        """Effective absolute bound for `arr`; None means lossless."""
        if self.lossless:
            return None
        bounds = []
        if self.absolute is not None:
            bounds.append(self.absolute)
        if self.relative is not None:
            finite = arr[np.isfinite(arr)] if arr.size else arr
            vrange = float(finite.max() - finite.min()) if finite.size else 0.0
            bounds.append(self.relative * vrange)
        return min(bounds)


@dataclass(frozen=True)
class FieldCodecConfig:
    """How one field is encoded."""

    codec: str = "delta-rle"
    budget: ErrorBudget = field(default_factory=ErrorBudget)
    temporal: bool = False      # delta vs previous step when possible

    def __post_init__(self):
        if self.codec not in _CODEC_IDS:
            raise ValueError(
                f"unknown codec {self.codec!r}; choose from {sorted(_CODEC_IDS)}"
            )


class CodecSpec:
    """Which pipeline each payload field runs through.

    ``default`` applies to float fields without an explicit entry;
    integer/uint fields always pass through raw (they are ids and
    connectivity — never lossy).  A spec whose default and field table
    are all lossless is *inactive*: :func:`repro.adios.marshal.
    marshal_step` then emits the plain ``RBP2`` frame, byte-identical
    to an uncompressed run.
    """

    def __init__(
        self,
        default: FieldCodecConfig | None = None,
        fields: dict[str, FieldCodecConfig] | None = None,
        name: str = "custom",
    ):
        self.default = default
        self.fields = dict(fields or {})
        self.name = name

    @property
    def active(self) -> bool:
        """False when every field would pass through losslessly raw."""
        configs = list(self.fields.values())
        if self.default is not None:
            configs.append(self.default)
        return any(
            c.codec != "raw" and not c.budget.lossless for c in configs
        )

    def config_for(self, name: str, dtype) -> FieldCodecConfig | None:
        """The pipeline for one field; None means raw passthrough.

        `fields` keys match exactly first, then as glob patterns in
        insertion order, so ``*/geom``-style entries can pin whole
        variable families (geometry!) to the raw path.
        """
        cfg = self.fields.get(name)
        if cfg is None:
            for pattern, pcfg in self.fields.items():
                if fnmatch.fnmatchcase(name, pattern):
                    cfg = pcfg
                    break
        if cfg is None:
            cfg = self.default
        if cfg is None or np.dtype(dtype) not in _FLOAT_DTYPES:
            return None
        return cfg

    @classmethod
    def lossless(cls) -> "CodecSpec":
        """The identity spec: marshal emits byte-identical RBP2."""
        return cls(default=None, name="lossless")

    @classmethod
    def from_cli(
        cls, codec: str | None, error_budget: str | float | None = None,
        temporal: bool = False,
    ) -> "CodecSpec | None":
        """Build a spec from ``--codec`` / ``--error-budget`` strings.

        ``--error-budget`` accepts ``1e-3`` (relative), ``rel:1e-3``
        or ``abs:0.05``; the default is relative 1e-3.
        """
        if codec is None or codec == "none":
            return None
        if codec == "lossless":
            return cls.lossless()
        if codec not in _CODEC_IDS or codec in ("constant",):
            raise ValueError(
                f"unknown codec {codec!r}; choose from "
                "lossless, delta-rle, bitplane-rle"
            )
        budget = ErrorBudget(relative=1e-3)
        if error_budget is not None:
            text = str(error_budget)
            if text.startswith("abs:"):
                budget = ErrorBudget(absolute=float(text[4:]))
            elif text.startswith("rel:"):
                budget = ErrorBudget(relative=float(text[4:]))
            else:
                budget = ErrorBudget(relative=float(text))
        return cls(
            default=FieldCodecConfig(codec=codec, budget=budget,
                                     temporal=temporal),
            # geometry defines where every sample lives — a lossy mesh
            # is a different mesh, so these channels always go raw
            fields={p: FieldCodecConfig(codec="raw") for p in _GEOMETRY_GLOBS},
            name=codec,
        )


@dataclass
class CodecStats:
    """Raw-vs-wire accounting, aggregated and per field."""

    raw_bytes: int = 0
    wire_bytes: int = 0
    encode_seconds: float = 0.0
    decode_seconds: float = 0.0
    fields: dict[str, dict] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        return self.raw_bytes / self.wire_bytes if self.wire_bytes else 1.0

    def record(self, name: str, raw: int, wire: int, seconds: float,
               kind: str, codec_id: int) -> None:
        if kind == "encode":
            self.raw_bytes += raw
            self.wire_bytes += wire
            self.encode_seconds += seconds
        else:
            self.decode_seconds += seconds
        entry = self.fields.setdefault(
            name,
            {"raw_bytes": 0, "wire_bytes": 0, "encode_seconds": 0.0,
             "decode_seconds": 0.0, "codec": CODEC_NAMES[codec_id]},
        )
        entry["codec"] = CODEC_NAMES[codec_id]
        if kind == "encode":
            entry["raw_bytes"] += raw
            entry["wire_bytes"] += wire
            entry["encode_seconds"] += seconds
        else:
            entry["decode_seconds"] += seconds

    def as_dict(self) -> dict:
        return {
            "raw_bytes": self.raw_bytes,
            "wire_bytes": self.wire_bytes,
            "ratio": self.ratio,
            "encode_seconds": self.encode_seconds,
            "decode_seconds": self.decode_seconds,
            "fields": {k: dict(v) for k, v in self.fields.items()},
        }


class CodecContext:
    """Per-stream codec state: temporal references plus stats.

    One context per directed stream (one per writer engine, one per
    writer rank on the reader side).  Thread-safe so a broker-shared
    decode context survives concurrent pollers, though the fleet
    decodes each writer's stream in ingest order anyway.
    """

    def __init__(self):
        self.stats = CodecStats()
        self._prev: dict[str, tuple[int, float, np.ndarray]] = {}
        self._lock = threading.Lock()

    def remember(self, name: str, step: int, qstep: float, q: np.ndarray) -> None:
        with self._lock:
            self._prev[name] = (step, qstep, q)

    def reference(self, name: str) -> tuple[int, float, np.ndarray] | None:
        with self._lock:
            return self._prev.get(name)

    def reset(self) -> None:
        with self._lock:
            self._prev.clear()


def _keep_bits_for(budget: ErrorBudget, arr: np.ndarray) -> int:
    """Mantissa bits to keep so truncation honors the budget.

    Truncating to k bits bounds pointwise relative error by ``2**-k``.
    A relative budget maps directly; an absolute budget maps through
    the field's max magnitude (|err| <= 2**-k * max|x|).  With both
    set, the effective bound is the tighter of the two, mirroring
    :meth:`ErrorBudget.bound_for`.
    """
    rels = []
    if budget.relative is not None:
        rels.append(budget.relative)
    if budget.absolute is not None:
        finite = np.abs(arr[np.isfinite(arr)]) if arr.size else arr
        vmax = float(finite.max()) if np.size(finite) else 0.0
        if vmax > 0.0:
            rels.append(budget.absolute / vmax)
    if not rels:
        return mantissa_bits(arr.dtype)
    rel = min(rels)
    if rel >= 1.0:
        return 1
    return int(np.ceil(np.log2(1.0 / rel)))


def _encode_raw(arr: np.ndarray) -> tuple[int, dict, bytes]:
    return RAW, {}, np.ascontiguousarray(arr).tobytes()


#: per-plane storage tags in the bit-plane stream
_PLANE_ZERO, _PLANE_RAW, _PLANE_RLE = 0, 1, 2


def _bitplane_encode(truncated: np.ndarray) -> bytes:
    """Shuffle to byte planes, then store each plane as cheaply as it goes.

    Mantissa truncation zeroes whole low-order byte planes, which cost
    one tag byte here; the surviving planes are kept raw unless their
    zero-gap RLE is strictly smaller.  Layout: one tag byte per plane
    (itemsize of them), then each kept plane's block — RLE blocks are
    preceded by their ``<q`` length, raw blocks are exactly ``n`` bytes.
    """
    shuffled = np.frombuffer(byte_shuffle(truncated), dtype=np.uint8)
    n = truncated.size
    itemsize = truncated.dtype.itemsize
    tags = bytearray(itemsize)
    blob = bytearray()
    for i in range(itemsize):
        plane = shuffled[i * n:(i + 1) * n]
        if not plane.any():
            tags[i] = _PLANE_ZERO
            continue
        packed = rle_encode(plane.astype(np.int64))
        if len(packed) + 8 < n:
            tags[i] = _PLANE_RLE
            blob += struct.pack("<q", len(packed)) + packed
        else:
            tags[i] = _PLANE_RAW
            blob += plane.tobytes()
    return bytes(tags) + bytes(blob)


def _bitplane_decode(data: bytes, dtype: np.dtype, count: int) -> np.ndarray:
    """Reassemble byte planes written by :func:`_bitplane_encode`."""
    itemsize = dtype.itemsize
    if len(data) < itemsize:
        raise CodecError("bit-plane stream shorter than its tag header")
    tags = data[:itemsize]
    off = itemsize
    planes = np.zeros(itemsize * count, dtype=np.uint8)
    for i, tag in enumerate(tags):
        if tag == _PLANE_ZERO:
            continue
        if tag == _PLANE_RAW:
            if off + count > len(data):
                raise CodecError("raw byte plane truncated")
            planes[i * count:(i + 1) * count] = np.frombuffer(
                data, dtype=np.uint8, count=count, offset=off
            )
            off += count
        elif tag == _PLANE_RLE:
            if off + 8 > len(data):
                raise CodecError("RLE byte plane truncated")
            (plen,) = struct.unpack_from("<q", data, off)
            off += 8
            if plen < 0 or off + plen > len(data):
                raise CodecError("RLE byte plane truncated")
            vals = rle_decode(data[off:off + plen])
            off += plen
            if vals.size != count or (
                vals.size and (vals.min() < 0 or vals.max() > 0xFF)
            ):
                raise CodecError("RLE byte plane holds non-byte values")
            planes[i * count:(i + 1) * count] = vals.astype(np.uint8)
        else:
            raise CodecError(f"unknown byte-plane tag {tag}")
    if off != len(data):
        raise CodecError("bit-plane stream has trailing bytes")
    return byte_unshuffle(planes.tobytes(), dtype, count)


def encode_field(
    name: str,
    arr: np.ndarray,
    cfg: FieldCodecConfig | None,
    step: int,
    context: CodecContext | None = None,
) -> tuple[int, dict, bytes]:
    """Encode one field; returns ``(codec_id, params, wire_bytes)``.

    Falls back to the raw (lossless) block whenever the configured
    pipeline cannot honor its bound or would not shrink the field, so
    a decoded payload is never worse than its budget *and* never
    larger than ~its raw size.
    """
    t0 = _time.perf_counter()
    arr = np.ascontiguousarray(arr)
    codec_id, params, data = _encode_field(name, arr, cfg, step, context)
    if context is not None:
        context.stats.record(
            name, arr.nbytes, len(data), _time.perf_counter() - t0,
            "encode", codec_id,
        )
    return codec_id, params, data


def _encode_field(name, arr, cfg, step, context):
    if cfg is None or cfg.codec == "raw" or cfg.budget.lossless:
        return _encode_raw(arr)
    if arr.size == 0:
        return _encode_raw(arr)
    if not np.isfinite(arr).all():
        return _encode_raw(arr)        # NaN/Inf: only raw is exact
    bound = cfg.budget.bound_for(arr)
    if bound is None:
        return _encode_raw(arr)
    vmin = float(arr.min())
    if vmin == float(arr.max()):
        # constant field: one value reconstructs it exactly
        return CONSTANT, {"v": vmin}, b""
    if bound <= 0:
        return _encode_raw(arr)

    if cfg.codec == "bitplane-rle":
        keep = _keep_bits_for(cfg.budget, arr)
        if keep >= mantissa_bits(arr.dtype):
            return _encode_raw(arr)
        truncated = truncate_mantissa(arr, keep)
        data = _bitplane_encode(truncated)
        if len(data) >= arr.nbytes:
            return _encode_raw(arr)
        return BITPLANE_RLE, {"k": keep}, data

    # delta-rle: quantize under the bound, then the cheapest valid delta
    qstep = 2.0 * bound
    mode, ref_step, ref = "s", None, None
    if cfg.temporal and context is not None:
        ref = context.reference(name)
        # reuse the reference's step when it is at least as tight as the
        # one this step needs — the bound still holds and the temporal
        # chain survives small per-step drifts in the field's range.
        # But not *arbitrarily* tighter: a spin-up field whose range has
        # since grown (pebble-bed pressure) would drag a uselessly fine
        # early-step qstep through the whole run and quantize itself out
        # of compressibility, so a reference finer than a quarter of
        # today's step re-seeds the chain spatially instead.
        if ref is not None and 0.25 * qstep <= ref[1] <= qstep \
                and ref[2].shape == arr.shape:
            qstep = ref[1]
            mode, ref_step = "t", ref[0]
    try:
        q = quantize(arr, qstep)
    except CodecError:
        return _encode_raw(arr)
    if mode == "t":
        deltas = (q - ref[2]).ravel()
    else:
        deltas = delta_encode(q)
    data = rle_encode(deltas)
    if len(data) >= arr.nbytes:
        # raw fallback: the decoder never sees this step's quanta, so
        # the encoder must not reference them later either — keep the
        # last *shipped* reference on both sides, in lockstep.
        return _encode_raw(arr)
    if context is not None:
        context.remember(name, step, qstep, q)
    params = {"q": qstep, "m": mode}
    if ref_step is not None:
        params["ref"] = ref_step
    return DELTA_RLE, params, data


def decode_field(
    name: str,
    codec_id: int,
    params: dict,
    data: bytes,
    dtype,
    shape: tuple[int, ...],
    step: int,
    context: CodecContext | None = None,
) -> np.ndarray:
    """Invert :func:`encode_field` for one wire block.

    Raw blocks return a zero-copy view of `data` when possible; lossy
    blocks return freshly materialized arrays.  Temporal deltas need
    `context` to hold the reference step's quanta and raise
    :class:`MissingReferenceError` otherwise.  All stage decoders
    dispatch to their pure-Python references under ``naive_mode``.
    """
    t0 = _time.perf_counter()
    dtype = np.dtype(dtype)
    count = int(np.prod(shape, dtype=np.int64)) if shape else 1
    if codec_id == RAW:
        arr = np.frombuffer(data, dtype=dtype)
        if arr.size != count:
            raise CodecError("raw block has the wrong length")
        arr = arr.reshape(shape)
    elif codec_id == CONSTANT:
        arr = np.full(shape, params["v"], dtype=dtype)
    elif codec_id == BITPLANE_RLE:
        arr = _bitplane_decode(data, dtype, count).reshape(shape)
    elif codec_id == DELTA_RLE:
        deltas = rle_decode(data)
        if deltas.size != count:
            raise CodecError("delta block has the wrong length")
        qstep = float(params["q"])
        if params.get("m") == "t":
            if context is None:
                raise MissingReferenceError(
                    f"temporal delta for {name!r} needs a decode context"
                )
            ref = context.reference(name)
            if ref is None or ref[0] != params.get("ref") or ref[1] != qstep \
                    or ref[2].size != count:
                raise MissingReferenceError(
                    f"temporal delta for {name!r} references step "
                    f"{params.get('ref')} which this context has not decoded"
                )
            q = (ref[2].ravel() + deltas).reshape(shape)
        else:
            q = delta_decode(deltas).reshape(shape)
        if context is not None:
            context.remember(name, step, qstep, q)
        arr = dequantize(q, qstep, dtype)
    else:
        raise CodecError(f"unknown codec id {codec_id}")
    if context is not None:
        context.stats.record(
            name, arr.nbytes, len(data), _time.perf_counter() - t0,
            "decode", codec_id,
        )
    return arr
