"""Codec stages: the NumPy-only primitives field pipelines compose.

Every stage is a pure function over arrays/bytes with an exact inverse
(delta, varint, RLE, byte-plane shuffle) or a bounded-error inverse
(quantization, mantissa truncation).  The *decoders* carry two
implementations, the gate's idiom: a vectorized NumPy path and a
retained pure-Python ``*_reference`` path dispatched through
``repro.perf.config`` — under :func:`repro.perf.naive_mode` every
decode below runs the reference code, and the equivalence tests assert
the outputs match bit for bit.

Wire conventions (all little-endian):

- *varint*: LEB128 — 7 value bits per byte, high bit = continuation.
- *zigzag*: signed->unsigned fold (0,-1,1,-2,... -> 0,1,2,3,...), so
  small-magnitude deltas stay short varints.
- *RLE*: zero-gap coding — ``varint(n) varint(k) varint(gaps[k])
  varint(zigzag(values[k]))`` where `gaps` counts the zeros before
  each nonzero.  Quantized-delta fields are mostly zero, which is the
  entire entropy win.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.perf import config

__all__ = [
    "CodecError",
    "MissingReferenceError",
    "varint_encode",
    "varint_decode",
    "zigzag_encode",
    "zigzag_decode",
    "rle_encode",
    "rle_decode",
    "delta_encode",
    "delta_decode",
    "quantize",
    "dequantize",
    "truncate_mantissa",
    "byte_shuffle",
    "byte_unshuffle",
]

_U64 = np.uint64
_MAX_VARINT_BYTES = 10  # ceil(64 / 7)


class CodecError(ValueError):
    """A codec stage cannot encode/decode the given data."""


class MissingReferenceError(CodecError):
    """A temporal-delta payload arrived without its reference step."""


# -- zigzag --------------------------------------------------------------

def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Fold int64 into uint64 so small magnitudes become small values."""
    v = np.asarray(values, dtype=np.int64)
    return ((v << 1) ^ (v >> 63)).astype(_U64)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    u = np.asarray(values, dtype=_U64)
    return ((u >> _U64(1)) ^ (-(u & _U64(1)).astype(np.int64)).astype(_U64)).astype(
        np.int64
    )


# -- varint --------------------------------------------------------------

def varint_encode(values: np.ndarray) -> bytes:
    """LEB128-encode a uint64 array (vectorized byte scatter)."""
    u = np.ascontiguousarray(values, dtype=_U64)
    if u.size == 0:
        return b""
    nbytes = np.ones(u.shape, dtype=np.int64)
    for k in range(1, _MAX_VARINT_BYTES):
        nbytes += (u >= _U64(1 << (7 * k))).astype(np.int64)
    ends = np.cumsum(nbytes)
    out = np.zeros(int(ends[-1]), dtype=np.uint8)
    starts = ends - nbytes
    rem = u.copy()
    for k in range(_MAX_VARINT_BYTES):
        mask = nbytes > k
        if not mask.any():
            break
        idx = starts[mask] + k
        byte = (rem[mask] & _U64(0x7F)).astype(np.uint8)
        cont = (nbytes[mask] > k + 1).astype(np.uint8)
        out[idx] = byte | (cont << 7)
        rem[mask] >>= _U64(7)
    return out.tobytes()


def varint_decode(data: bytes, count: int) -> np.ndarray:
    """Decode exactly `count` LEB128 values; returns uint64."""
    if not config.enabled():
        return varint_decode_reference(data, count)
    if count == 0:
        if len(data):
            raise CodecError("trailing bytes after varint stream")
        return np.zeros(0, dtype=_U64)
    b = np.frombuffer(data, dtype=np.uint8)
    if b.size == 0:
        raise CodecError("varint stream truncated")
    cont = (b & 0x80) != 0
    if cont[-1]:
        raise CodecError("varint stream truncated")
    ends = np.flatnonzero(~cont)
    if ends.size != count:
        raise CodecError(
            f"varint stream holds {ends.size} values, expected {count}"
        )
    gid = np.zeros(b.size, dtype=np.int64)
    gid[1:] = np.cumsum(~cont)[:-1]
    starts = np.empty(count, dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    shift = np.arange(b.size, dtype=np.int64) - starts[gid]
    if int(shift.max(initial=0)) >= _MAX_VARINT_BYTES:
        raise CodecError("varint value exceeds 64 bits")
    vals = np.zeros(count, dtype=_U64)
    np.bitwise_or.at(
        vals, gid, (b & 0x7F).astype(_U64) << (shift * 7).astype(_U64)
    )
    return vals


def varint_decode_reference(data: bytes, count: int) -> np.ndarray:
    """Reference decoder: the textbook byte-at-a-time LEB128 loop."""
    vals = []
    acc = 0
    shift = 0
    for byte in data:
        acc |= (byte & 0x7F) << shift
        shift += 7
        if shift > 7 * _MAX_VARINT_BYTES:
            raise CodecError("varint value exceeds 64 bits")
        if not byte & 0x80:
            vals.append(acc & 0xFFFFFFFFFFFFFFFF)
            acc = 0
            shift = 0
    if shift:
        raise CodecError("varint stream truncated")
    if len(vals) != count:
        raise CodecError(
            f"varint stream holds {len(vals)} values, expected {count}"
        )
    return np.array(vals, dtype=_U64)


# -- zero-run RLE --------------------------------------------------------

def rle_encode(values: np.ndarray) -> bytes:
    """Zero-gap-code an int64 array (gaps + zigzag values, varint'd)."""
    v = np.ascontiguousarray(values, dtype=np.int64).ravel()
    nz = np.flatnonzero(v)
    gaps = np.diff(np.concatenate((np.array([-1], dtype=np.int64), nz))) - 1
    head = varint_encode(np.array([v.size, nz.size], dtype=_U64))
    return (
        head
        + varint_encode(gaps.astype(_U64))
        + varint_encode(zigzag_encode(v[nz]))
    )


def _rle_split(data: bytes) -> tuple[int, int, bytes]:
    """Parse the two-varint RLE header; returns (n, k, rest)."""
    off = 0
    out = []
    for _ in range(2):
        acc = 0
        shift = 0
        while True:
            if off >= len(data):
                raise CodecError("RLE header truncated")
            byte = data[off]
            off += 1
            acc |= (byte & 0x7F) << shift
            shift += 7
            if not byte & 0x80:
                break
        out.append(acc)
    return out[0], out[1], data[off:]


def rle_decode(data: bytes) -> np.ndarray:
    """Invert :func:`rle_encode`; returns a flat int64 array."""
    if not config.enabled():
        return rle_decode_reference(data)
    n, k, rest = _rle_split(data)
    if k > n:
        raise CodecError("RLE nonzero count exceeds length")
    # gaps and values interleave in the stream as two varint blocks; we
    # must split them by walking k terminators of the first block
    b = np.frombuffer(rest, dtype=np.uint8)
    terminators = np.flatnonzero((b & 0x80) == 0)
    if terminators.size < 2 * k:
        raise CodecError("RLE stream truncated")
    split = int(terminators[k - 1]) + 1 if k else 0
    gaps = varint_decode(rest[:split], k)
    vals = zigzag_decode(varint_decode(rest[split:], k))
    out = np.zeros(n, dtype=np.int64)
    if k:
        # each (still-uint64) gap must fit inside the array; this also
        # rejects values >= 2**63 that the int64 cast below would fold
        # negative (and turn out[pos] into wrap-around writes) — same
        # CodecError the reference decoder raises on such streams.
        if int(gaps.max()) >= n:
            raise CodecError("RLE gap runs past the array")
        pos = np.cumsum(gaps.astype(np.int64) + 1) - 1
        if int(pos[-1]) >= n:
            raise CodecError("RLE gap runs past the array")
        out[pos] = vals
    return out


def rle_decode_reference(data: bytes) -> np.ndarray:
    """Reference decoder: scalar gap walk."""
    n, k, rest = _rle_split(data)
    if k > n:
        raise CodecError("RLE nonzero count exceeds length")
    stream = varint_decode_reference(rest, 2 * k)
    gaps = stream[:k]
    vals = zigzag_decode(stream[k:])
    out = np.zeros(n, dtype=np.int64)
    pos = -1
    for i in range(k):
        pos += int(gaps[i]) + 1
        if pos >= n:
            raise CodecError("RLE gap runs past the array")
        out[pos] = vals[i]
    return out


# -- delta ---------------------------------------------------------------

def delta_encode(values: np.ndarray) -> np.ndarray:
    """First-order difference along the fastest (C-contiguous) axis."""
    v = np.ascontiguousarray(values, dtype=np.int64).ravel()
    out = np.empty_like(v)
    if v.size:
        out[0] = v[0]
        np.subtract(v[1:], v[:-1], out=out[1:])
    return out


def delta_decode(deltas: np.ndarray) -> np.ndarray:
    """Invert :func:`delta_encode` (prefix sum)."""
    if not config.enabled():
        return delta_decode_reference(deltas)
    return np.cumsum(np.asarray(deltas, dtype=np.int64), dtype=np.int64)


def delta_decode_reference(deltas: np.ndarray) -> np.ndarray:
    """Reference decoder: scalar running sum."""
    d = np.asarray(deltas, dtype=np.int64)
    out = np.empty_like(d)
    acc = 0
    for i, v in enumerate(d.tolist()):
        acc = (acc + v) & 0xFFFFFFFFFFFFFFFF
        if acc >= 1 << 63:
            acc -= 1 << 64
        out[i] = acc
    return out


# -- quantization --------------------------------------------------------

_QMAX = float(1 << 62)


def quantize(arr: np.ndarray, step: float) -> np.ndarray:
    """Uniform scalar quantization: round(arr / step) as int64.

    Raises :class:`CodecError` on non-finite input or when a quantum
    index would overflow — callers fall back to the lossless path.
    """
    if step <= 0 or not np.isfinite(step):
        raise CodecError(f"quantization step must be positive, got {step!r}")
    a = np.asarray(arr, dtype=np.float64)
    if not np.isfinite(a).all():
        raise CodecError("cannot quantize non-finite values")
    q = np.rint(a / step)
    if q.size and float(np.abs(q).max()) >= _QMAX:
        raise CodecError("quantization overflow (step too small for range)")
    return q.astype(np.int64)


def dequantize(q: np.ndarray, step: float, dtype=np.float64) -> np.ndarray:
    """Invert :func:`quantize` up to step/2 absolute error."""
    if not config.enabled():
        return dequantize_reference(q, step, dtype)
    return (np.asarray(q, dtype=np.float64) * step).astype(dtype)


def dequantize_reference(q: np.ndarray, step: float, dtype=np.float64) -> np.ndarray:
    """Reference decoder: scalar multiply-accumulate loop."""
    flat = [float(v) * step for v in np.asarray(q).ravel().tolist()]
    return np.array(flat, dtype=dtype).reshape(np.asarray(q).shape)


# -- bit-plane truncation ------------------------------------------------

_FLOAT_LAYOUT = {
    np.dtype("<f4"): (np.uint32, 23),
    np.dtype("<f8"): (np.uint64, 52),
}


def mantissa_bits(dtype) -> int:
    layout = _FLOAT_LAYOUT.get(np.dtype(dtype))
    if layout is None:
        raise CodecError(f"bit-plane truncation needs f4/f8, got {dtype}")
    return layout[1]


def truncate_mantissa(arr: np.ndarray, keep_bits: int) -> np.ndarray:
    """Zero the low mantissa bits, keeping `keep_bits` of precision.

    Pointwise relative error is bounded by ``2**-keep_bits`` (for
    ``keep_bits >= 1``); sign, exponent, NaN and Inf survive intact.
    """
    a = np.ascontiguousarray(arr)
    uint_t, mant = _FLOAT_LAYOUT.get(a.dtype, (None, None))
    if uint_t is None:
        raise CodecError(f"bit-plane truncation needs f4/f8, got {a.dtype}")
    keep = int(np.clip(keep_bits, 0, mant))
    drop = mant - keep
    if drop == 0:
        return a.copy()
    bits = a.view(uint_t)
    mask = uint_t(~((1 << drop) - 1) & ((1 << (8 * a.dtype.itemsize)) - 1))
    return (bits & mask).view(a.dtype)


def byte_shuffle(arr: np.ndarray) -> bytes:
    """Transpose an array's bytes into planes (all byte-0s, then 1s...).

    After mantissa truncation the low planes are mostly zero, which
    turns the RLE stage's zero-gap coding into the actual size win.
    """
    a = np.ascontiguousarray(arr)
    raw = a.view(np.uint8).reshape(-1, a.dtype.itemsize)
    return np.ascontiguousarray(raw.T).tobytes()


def byte_unshuffle(data: bytes, dtype, count: int) -> np.ndarray:
    """Invert :func:`byte_shuffle` for `count` items of `dtype`."""
    if not config.enabled():
        return byte_unshuffle_reference(data, dtype, count)
    dtype = np.dtype(dtype)
    if len(data) != count * dtype.itemsize:
        raise CodecError("byte-plane stream has the wrong length")
    planes = np.frombuffer(data, dtype=np.uint8).reshape(dtype.itemsize, count)
    return np.ascontiguousarray(planes.T).reshape(-1).view(dtype)[:count].copy()


def byte_unshuffle_reference(data: bytes, dtype, count: int) -> np.ndarray:
    """Reference decoder: per-item byte gather."""
    dtype = np.dtype(dtype)
    size = dtype.itemsize
    if len(data) != count * size:
        raise CodecError("byte-plane stream has the wrong length")
    out = bytearray(count * size)
    for i in range(count):
        for plane in range(size):
            out[i * size + plane] = data[plane * count + i]
    return np.frombuffer(bytes(out), dtype=dtype).copy()


def pack_f64(value: float) -> bytes:
    """Eight little-endian bytes for one float (constant-field codec)."""
    return struct.pack("<d", float(value))


def unpack_f64(data: bytes) -> float:
    (v,) = struct.unpack("<d", data)
    return v
