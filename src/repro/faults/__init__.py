"""Fault injection and fault tolerance for the in-transit pipeline.

The paper's in-transit workflow couples the simulation to a separate
SENSEI endpoint over SST; production viability hinges on surviving a
slow or dead endpoint, a full staging queue, a corrupted payload, or
a stalled rank *without* costing the solver its run.  This package
supplies the three pieces the transport and runtime layers thread
through:

- :mod:`repro.faults.errors` — the typed failure taxonomy
  (`TransportError` and friends) replacing bare builtins;
- :mod:`repro.faults.injector` — `FaultInjector` (seeded,
  interleaving-independent fault schedules) and `FaultLog` (the
  injected/detected/recovered/degraded ledger the bench report
  surfaces);
- :mod:`repro.faults.retry` — `RetryPolicy`, bounded retry with
  exponential backoff and deterministic jitter.

See ``docs/fault_tolerance.md`` for the injection sites, knobs, and
degradation modes.
"""

from repro.faults.errors import (
    CorruptPayloadError,
    EndpointDownError,
    RankStallError,
    StreamTimeout,
    TransportError,
)
from repro.faults.injector import FAULT_KINDS, FaultEvent, FaultInjector, FaultLog
from repro.faults.retry import RetryPolicy

__all__ = [
    "TransportError",
    "StreamTimeout",
    "EndpointDownError",
    "CorruptPayloadError",
    "RankStallError",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultLog",
    "RetryPolicy",
]
