"""Typed error taxonomy for the in-transit transport.

The seed raised bare ``TimeoutError`` / ``RuntimeError`` / ``ValueError``
from deep inside the SST broker and the marshaling layer, which made
"endpoint died" indistinguishable from "programming error" at the
degradation sites.  These types carry the distinction:

- :class:`TransportError` — base for anything the transport can throw
  at the simulation; the graceful-degradation layer catches exactly
  this and nothing else.
- :class:`StreamTimeout` — a blocking put/get exceeded its (per
  attempt) timeout.  Subclasses :class:`TimeoutError` so pre-existing
  callers keep working.
- :class:`EndpointDownError` — the retry budget is spent (or the
  broker was marked down); the consumer side is considered dead.
- :class:`CorruptPayloadError` — a BP payload failed its CRC32 check
  or is structurally unreadable.  Subclasses :class:`ValueError` for
  compatibility with the seed's marshaling errors.
- :class:`RankStallError` — a rank missed a collective barrier: the
  typed form of ``threading.BrokenBarrierError`` escaping a
  thread-SPMD collective.  Subclasses :class:`TimeoutError` so the
  SPMD driver's "prefer the root-cause exception" logic still holds.
"""

from __future__ import annotations


class TransportError(RuntimeError):
    """Base class for in-transit transport failures."""


class StreamTimeout(TransportError, TimeoutError):
    """A blocking stream operation exceeded its timeout."""


class EndpointDownError(TransportError):
    """The consumer endpoint is unreachable past the retry budget."""


class CorruptPayloadError(TransportError, ValueError):
    """A step payload failed integrity verification."""


class RankStallError(TimeoutError):
    """A rank failed to reach a collective within the stall timeout."""

    def __init__(self, rank: int, channel: str, timeout: float, detail: str = ""):
        self.rank = rank
        self.channel = channel
        self.timeout = timeout
        msg = (
            f"rank {rank} (channel {channel!r}) stalled at a collective "
            f"past {timeout:g}s"
        )
        if detail:
            msg += f": {detail}"
        super().__init__(msg)
