"""Deterministic fault injection for the in-transit pipeline.

A :class:`FaultInjector` decides — reproducibly — whether a fault
fires at a given *site* (e.g. ``broker.put``) for a given *step* and
*key* (usually the writer rank).  Decisions are derived from a
stateless seeded draw over ``(seed, kind, site, step, key)`` rather
than a shared sequential RNG, so the schedule is identical no matter
how the SPMD threads interleave their calls — the property the
determinism tests pin down.

Faults it knows how to inject (``FAULT_KINDS``):

- ``endpoint_crash``  — the consumer endpoint dies mid-run;
- ``slow_consumer``   — the endpoint's get is delayed;
- ``corrupt_payload`` — a payload byte is flipped in flight (detected
  by the CRC32 check in :mod:`repro.adios.marshal`);
- ``drop_step``       — a staged step vanishes from the transport;
- ``writer_stall``    — the writer's put is delayed.

Every injected fault is recorded in a :class:`FaultLog`, and every
fault must eventually be *resolved* into exactly one of three
outcomes — ``detected`` (seen and skipped), ``recovered`` (survived,
possibly after retries), or ``degraded`` (the pipeline fell back).
:meth:`FaultLog.try_resolve` clamps resolutions at the injected count
per kind, so the accounting identity ``injected == detected +
recovered + degraded`` holds whenever each fault gets at least one
resolution attempt.
"""

from __future__ import annotations

import math
import random
import threading
import time
from collections import Counter
from dataclasses import dataclass, field

FAULT_KINDS = (
    "endpoint_crash",
    "slow_consumer",
    "corrupt_payload",
    "drop_step",
    "writer_stall",
)

_OUTCOMES = ("detected", "recovered", "degraded")

#: default injected delay per delaying fault kind [s]
_DEFAULT_DELAYS = {"slow_consumer": 0.02, "writer_stall": 0.02}


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault occurrence."""

    kind: str
    site: str
    step: int
    key: int = 0
    delay: float = 0.0


@dataclass
class FaultLog:
    """Thread-safe ledger of injected faults and their outcomes."""

    injected: Counter = field(default_factory=Counter)
    detected: Counter = field(default_factory=Counter)
    recovered: Counter = field(default_factory=Counter)
    degraded: Counter = field(default_factory=Counter)
    retries: int = 0
    events: list = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_injected(self, event: FaultEvent) -> None:
        with self._lock:
            self.injected[event.kind] += 1
            self.events.append(event)

    def record_retry(self, n: int = 1) -> None:
        with self._lock:
            self.retries += n

    def try_resolve(self, kind: str, outcome: str) -> bool:
        """Resolve one outstanding fault of `kind` into `outcome`.

        Returns False (and records nothing) when every injected fault
        of that kind already has an outcome — callers may attempt a
        resolution opportunistically without double counting.
        """
        if outcome not in _OUTCOMES:
            raise ValueError(f"outcome must be one of {_OUTCOMES}, got {outcome!r}")
        with self._lock:
            resolved = (
                self.detected[kind] + self.recovered[kind] + self.degraded[kind]
            )
            if resolved >= self.injected[kind]:
                return False
            getattr(self, outcome)[kind] += 1
            return True

    def unresolved(self, kind: str) -> int:
        with self._lock:
            return self.injected[kind] - (
                self.detected[kind] + self.recovered[kind] + self.degraded[kind]
            )

    @property
    def total_injected(self) -> int:
        with self._lock:
            return sum(self.injected.values())

    @property
    def accounted(self) -> bool:
        """injected == detected + recovered + degraded, per kind."""
        with self._lock:
            return all(
                self.injected[k]
                == self.detected[k] + self.recovered[k] + self.degraded[k]
                for k in set(self.injected) | set(self.detected)
                | set(self.recovered) | set(self.degraded)
            )

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "injected": dict(self.injected),
                "detected": dict(self.detected),
                "recovered": dict(self.recovered),
                "degraded": dict(self.degraded),
                "retries": self.retries,
            }


class FaultInjector:
    """Seeded, per-site fault decisions plus the shared :class:`FaultLog`.

    `probabilities` maps fault kind -> per-call firing probability;
    `schedule` maps fault kind -> collection of entries at which the
    fault fires unconditionally — either bare step indices (``3``:
    fire at step 3 for every key) or ``(step, key)`` pairs (``(3, 1)``:
    fire at step 3 only for key 1 — "kill endpoint 1, and only 1, at
    its third step", the form the fleet recovery tests use).  Both may
    be combined with probabilities.
    """

    def __init__(
        self,
        seed: int = 0,
        probabilities: dict[str, float] | None = None,
        schedule: dict[str, tuple[int, ...]] | None = None,
        delays: dict[str, float] | None = None,
        log: FaultLog | None = None,
    ):
        for kind in (probabilities or {}):
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        for kind in (schedule or {}):
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        self.seed = seed
        self.probabilities = dict(probabilities or {})
        self.schedule = {k: frozenset(v) for k, v in (schedule or {}).items()}
        self.delays = {**_DEFAULT_DELAYS, **(delays or {})}
        self.log = log if log is not None else FaultLog()

    # -- decisions ---------------------------------------------------------
    def _rng(self, kind: str, site: str, step: int, key: int) -> random.Random:
        # string seeding is deterministic across processes (sha512 path)
        return random.Random(f"{self.seed}|{kind}|{site}|{step}|{key}")

    def fires(self, kind: str, site: str, step: int, key: int = 0) -> bool:
        """Would `kind` fire here?  Pure function of (seed, args)."""
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        scheduled = self.schedule.get(kind, ())
        if step in scheduled or (step, key) in scheduled:
            return True
        prob = self.probabilities.get(kind, 0.0)
        if prob <= 0.0:
            return False
        return self._rng(kind, site, step, key).random() < prob

    def fires_grid(
        self, kind: str, site: str, steps, keys
    ) -> dict[int, frozenset]:
        """Bulk decisions over a (steps x keys) grid: key -> firing steps.

        Calling :meth:`fires` per cell costs a fresh string-seeded RNG
        each time (~10us) — prohibitive for the serving mesh bench's
        100k-client churn grid.  This draws one geometric-gap stream
        per key instead (expected cost ``len(steps) * prob`` draws, not
        ``len(steps)`` draws), so a sparse grid is close to free.

        Still a pure function of ``(seed, kind, site, steps, keys)``
        and independent of thread interleaving, but a *different*
        deterministic stream than per-call :meth:`fires` — pick one
        form per experiment.  Scheduled entries (bare steps and
        ``(step, key)`` pairs) fire unconditionally, same as `fires`.
        """
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        steps = list(steps)
        scheduled = self.schedule.get(kind, ())
        prob = self.probabilities.get(kind, 0.0)
        log1mp = math.log1p(-prob) if 0.0 < prob < 1.0 else None
        out: dict[int, frozenset] = {}
        for key in keys:
            fired: set = set()
            if prob >= 1.0:
                fired.update(steps)
            elif log1mp is not None and steps:
                rng = random.Random(f"{self.seed}|{kind}|{site}|grid|{key}")
                index = -1
                while True:
                    u = rng.random()
                    gap = int(math.log(u) / log1mp) + 1 if u > 0.0 else 1
                    index += gap
                    if index >= len(steps):
                        break
                    fired.add(steps[index])
            for step in steps:
                if step in scheduled or (step, key) in scheduled:
                    fired.add(step)
            out[key] = frozenset(fired)
        return out

    def maybe(
        self, kind: str, site: str, step: int, key: int = 0
    ) -> FaultEvent | None:
        """Fire-and-record: returns the event if the fault fires."""
        if not self.fires(kind, site, step, key):
            return None
        event = FaultEvent(
            kind=kind, site=site, step=step, key=key,
            delay=self.delays.get(kind, 0.0),
        )
        self.log.record_injected(event)
        return event

    # -- effect helpers ----------------------------------------------------
    def sleep(self, event: FaultEvent) -> None:
        if event.delay > 0.0:
            time.sleep(event.delay)

    def corrupt(self, data: bytes, event: FaultEvent) -> bytes:
        """Flip one byte at a seed-determined position (never a no-op)."""
        if not data:
            return data
        rng = self._rng(event.kind, event.site, event.step, event.key)
        pos = rng.randrange(len(data))
        flip = rng.randrange(1, 256)
        out = bytearray(data)
        out[pos] ^= flip
        return bytes(out)
