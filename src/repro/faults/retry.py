"""Retry with exponential backoff and deterministic jitter.

The seed's transport did single-shot blocking operations: one
``queue`` timeout and the whole SPMD world deadlocked or died.  A
:class:`RetryPolicy` turns those into bounded retry loops — per
attempt timeout, exponential backoff, seeded jitter, and an optional
**total deadline** (``max_elapsed_s``) that caps the whole loop so a
retry storm cannot outlive its caller's latency budget — and converts
exhaustion into a typed :class:`~repro.faults.errors.EndpointDownError`
that the degradation layer can catch.

Jitter is derived from ``(seed, attempt)`` rather than global RNG
state so a given policy produces the same backoff sequence every run
(the same determinism contract as the injector).

Every attempt increments ``repro_retry_attempts_total`` and every
exhaustion ``repro_retry_exhausted_total`` through
:func:`repro.observe.get_telemetry`, so retry pressure shows up next
to the transport gauges it explains.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.faults.errors import EndpointDownError, StreamTimeout


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for a bounded retry loop around a transport operation."""

    max_attempts: int = 4
    base_delay: float = 0.02       # backoff before attempt 2 [s]
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.25           # +/- fraction of the backoff
    attempt_timeout: float | None = None  # per-attempt blocking timeout [s]
    max_elapsed_s: float | None = None    # total deadline across attempts [s]
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.max_elapsed_s is not None and self.max_elapsed_s <= 0:
            raise ValueError("max_elapsed_s must be > 0")

    def backoff(self, attempt: int) -> float:
        """Sleep before retry number `attempt` (1-based, deterministic)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter:
            rng = random.Random(f"{self.seed}|backoff|{attempt}")
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay

    def call(
        self,
        fn,
        retry_on: tuple[type[BaseException], ...] = (StreamTimeout,),
        on_retry=None,
        describe: str = "transport operation",
    ):
        """Run ``fn(attempt)`` until it succeeds or the budget is spent.

        Exceptions in `retry_on` trigger backoff-and-retry (calling
        ``on_retry(attempt, exc)`` before each sleep); anything else
        propagates immediately.  The budget is both `max_attempts` and,
        when set, `max_elapsed_s` measured from the first attempt — a
        retry whose backoff would land past the deadline is not taken.
        Exhaustion raises :class:`EndpointDownError` chained to the
        last failure.
        """
        from repro.observe.session import get_telemetry

        tel = get_telemetry()
        started = time.monotonic()
        deadline = (
            None if self.max_elapsed_s is None else started + self.max_elapsed_s
        )
        last: BaseException | None = None
        exhausted_by = f"{self.max_attempts} attempts"
        for attempt in range(1, self.max_attempts + 1):
            if tel.enabled:
                tel.metrics.counter(
                    "repro_retry_attempts_total",
                    "Transport operation attempts made under a RetryPolicy",
                ).inc()
            try:
                return fn(attempt)
            except retry_on as exc:
                last = exc
                if attempt == self.max_attempts:
                    break
                delay = self.backoff(attempt)
                if deadline is not None and time.monotonic() + delay >= deadline:
                    exhausted_by = f"deadline of {self.max_elapsed_s:g}s"
                    break
                if on_retry is not None:
                    on_retry(attempt, exc)
                time.sleep(delay)
        if tel.enabled:
            tel.metrics.counter(
                "repro_retry_exhausted_total",
                "Retry loops that exhausted their attempt or deadline budget",
            ).inc()
        tel.live.event("retry_exhausted")
        raise EndpointDownError(
            f"{describe} failed after {attempt} attempt(s), exhausting "
            f"{exhausted_by} (last error: {last})"
        ) from last
