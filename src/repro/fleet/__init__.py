"""repro.fleet: elastic endpoint fleets for in transit visualization.

The paper's in transit topology fixes a 4:1 sim:endpoint node split at
launch.  This package makes the endpoint side *elastic*: endpoints
join and leave mid-run, producer streams rebalance over a consistent-
hash ring with bounded disruption, idle endpoints steal queued render
steps, and an autoscaler driven by the transport's queue-depth gauges
picks the sim:endpoint ratio inside a 2:1..16:1 clamp.

Pieces (all in-process, mirroring the repo's threaded-SPMD transport):

- :class:`~repro.fleet.ring.HashRing` — deterministic stream routing;
- :class:`~repro.fleet.membership.FleetMembership` — heartbeat leases
  over mailbox queues; unplanned loss is detected by whichever peer
  polls next, no monitor thread;
- :class:`~repro.fleet.work.WorkQueues` — per-endpoint render queues
  with deterministic work stealing;
- :class:`~repro.fleet.autoscaler.Autoscaler` — queue-depth policy;
- :class:`~repro.fleet.coordinator.FleetCoordinator` — ties the above
  into the poll/commit protocol endpoints drive;
- :class:`~repro.fleet.endpoint.FleetEndpoint` — one endpoint rank's
  loop with its private single-rank SENSEI sink.

Entry point: ``InTransitRunner(..., fleet=FleetConfig(...))`` — see
:mod:`repro.insitu.intransit`.  The static split survives as the
``naive_mode()`` reference path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fleet.autoscaler import Autoscaler, AutoscalerConfig
from repro.fleet.coordinator import Directive, FleetCoordinator, RecoveryRecord
from repro.fleet.endpoint import AnalysisSink, EndpointReport, FleetEndpoint
from repro.fleet.membership import EndpointState, FleetMembership
from repro.fleet.ring import HashRing
from repro.fleet.work import RenderTask, WorkQueues


@dataclass(frozen=True)
class FleetConfig:
    """Tuning knobs for an elastic in transit endpoint fleet.

    ``initial_active=None`` starts every pooled endpoint active;
    setting it lower parks the remainder as the autoscaler's reserve.
    ``autoscale=False`` keeps membership fixed unless faults or an
    explicit ``depart`` change it.
    """

    lease_timeout: float = 0.25     # seconds before a silent member is dead
    poll_interval: float = 0.002    # endpoint sleep when idle/parked
    initial_active: int | None = None
    autoscale: bool = False
    autoscaler: AutoscalerConfig | None = None
    autoscale_every: int = 8        # polls between autoscaler observations
    seed: int = 0

    def __post_init__(self):
        if self.lease_timeout <= 0:
            raise ValueError("lease_timeout must be > 0")
        if self.poll_interval < 0:
            raise ValueError("poll_interval must be >= 0")
        if self.initial_active is not None and self.initial_active < 1:
            raise ValueError("initial_active must be >= 1")


__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "AnalysisSink",
    "Directive",
    "EndpointReport",
    "EndpointState",
    "FleetConfig",
    "FleetCoordinator",
    "FleetEndpoint",
    "FleetMembership",
    "HashRing",
    "RecoveryRecord",
    "RenderTask",
    "WorkQueues",
]
