"""Autoscaler: pick the sim:endpoint ratio from queue-depth gauges.

The paper fixes 4:1 sim:endpoint nodes; this picks the ratio *live*.
Input signals are the ones :mod:`repro.observe` already meters for the
transport — staged stream steps per endpoint (queue depth) and writer
stalls (blocked puts / retries).  The policy is deliberately boring:

- queue depth per active endpoint above ``high_water`` (or any new
  stalls) for ``patience`` consecutive observations -> scale **up**
  (activate a parked endpoint, ratio decreases);
- depth below ``low_water`` for ``patience`` observations -> scale
  **down** (planned leave, ratio increases);
- the resulting ratio is clamped to ``[min_ratio, max_ratio]``
  (2:1 .. 16:1 by default) and decisions are rate-limited by a
  ``cooldown`` observation count so membership never flaps.

Every observation publishes ``repro_fleet_queue_depth`` /
``repro_fleet_ratio`` gauges and scale decisions increment
``repro_fleet_scale_{up,down}_total`` counters through
:func:`repro.observe.get_telemetry`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.observe.session import get_telemetry


@dataclass(frozen=True)
class AutoscalerConfig:
    min_ratio: float = 2.0      # never more endpoints than num_sim / 2
    max_ratio: float = 16.0     # never fewer endpoints than num_sim / 16
    high_water: float = 2.0     # staged steps per endpoint that mean "hot"
    low_water: float = 0.25     # staged steps per endpoint that mean "idle"
    patience: int = 2           # consecutive observations before acting
    cooldown: int = 4           # observations to hold after a decision

    def __post_init__(self):
        if not 1.0 <= self.min_ratio <= self.max_ratio:
            raise ValueError("need 1 <= min_ratio <= max_ratio")
        if self.low_water >= self.high_water:
            raise ValueError("low_water must be < high_water")


class Autoscaler:
    """Queue-depth-driven endpoint count controller."""

    def __init__(self, num_sim: int, config: AutoscalerConfig | None = None):
        if num_sim < 1:
            raise ValueError("num_sim must be >= 1")
        self.num_sim = num_sim
        self.config = config or AutoscalerConfig()
        self._hot_streak = 0
        self._cold_streak = 0
        self._cooldown = 0
        self._last_stalls = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self.decisions: list[tuple[int, int]] = []   # (before, after) counts

    # -- bounds ------------------------------------------------------------
    def bounds(self, pool_size: int) -> tuple[int, int]:
        """(min_active, max_active) honoring the ratio clamp and the pool."""
        lo = max(1, -(-self.num_sim // int(self.config.max_ratio)))  # ceil div
        hi = max(lo, int(self.num_sim // self.config.min_ratio) or 1)
        return lo, min(hi, pool_size)

    def clamp(self, active: int, pool_size: int) -> int:
        lo, hi = self.bounds(pool_size)
        return min(max(active, lo), hi)

    def ratio(self, active: int) -> float:
        return self.num_sim / max(active, 1)

    # -- policy ------------------------------------------------------------
    def observe(
        self,
        staged_steps: int,
        active: int,
        pool_size: int,
        stalls: int = 0,
    ) -> int:
        """Feed one observation; return the target active endpoint count.

        `staged_steps` is the fleet-wide staged/queued step count,
        `stalls` a monotonically increasing writer-stall counter.  The
        return value equals `active` when no change is warranted.
        """
        cfg = self.config
        depth = staged_steps / max(active, 1)
        new_stalls = max(0, stalls - self._last_stalls)
        self._last_stalls = max(stalls, self._last_stalls)

        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.gauge(
                "repro_fleet_queue_depth",
                "Staged stream steps per active endpoint", agg="max",
            ).set(depth)
            tel.metrics.gauge(
                "repro_fleet_ratio", "Current sim:endpoint ratio", agg="last",
            ).set(self.ratio(active))

        if depth > cfg.high_water or new_stalls:
            self._hot_streak += 1
            self._cold_streak = 0
        elif depth < cfg.low_water:
            self._cold_streak += 1
            self._hot_streak = 0
        else:
            self._hot_streak = self._cold_streak = 0

        if self._cooldown > 0:
            self._cooldown -= 1
            return active

        target = active
        if self._hot_streak >= cfg.patience:
            target = self.clamp(active + 1, pool_size)
        elif self._cold_streak >= cfg.patience:
            target = self.clamp(active - 1, pool_size)
        else:
            return self.clamp(active, pool_size)

        if target != active:
            self._cooldown = cfg.cooldown
            self._hot_streak = self._cold_streak = 0
            self.decisions.append((active, target))
            if target > active:
                self.scale_ups += 1
            else:
                self.scale_downs += 1
            if tel.enabled:
                name = ("repro_fleet_scale_up_total" if target > active
                        else "repro_fleet_scale_down_total")
                tel.metrics.counter(name, "Autoscaler membership changes").inc()
                tel.tracer.instant(
                    "fleet.autoscale", before=active, after=target,
                    depth=round(depth, 3),
                )
        return target
