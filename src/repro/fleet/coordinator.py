"""FleetCoordinator: membership + routing + recovery for elastic endpoints.

The coordinator is the shared-memory control plane of the elastic
in-transit fleet (one instance per run, handed to every endpoint rank,
exactly like the :class:`~repro.adios.engine.SSTBroker` it routes
for).  It composes the fleet pieces:

- **membership** — heartbeat leases (:mod:`repro.fleet.membership`);
  an endpoint that stops polling is declared dead when its lease
  lapses, with no dedicated monitor thread;
- **routing** — producer streams (writer ranks) are assigned to
  endpoints through a consistent-hash ring
  (:mod:`repro.fleet.ring`), so membership changes move only the
  departed member's streams (bounded disruption);
- **assembly** — ingested payloads are CRC-checked (``RBP2``) and
  grouped by simulation step; a step whose every live writer has
  delivered (or provably never will: later step seen, or stream
  ended) becomes a :class:`~repro.fleet.work.RenderTask`;
- **work stealing** — idle endpoints steal queued render steps from
  the hottest peer (:class:`~repro.fleet.work.WorkQueues`);
- **recovery** — a dead endpoint's queued *and in-flight* tasks are
  requeued to survivors (replay from the retained CRC-checked
  payloads), its streams rebalance, and the injected
  ``endpoint_crash`` resolves as ``recovered`` in the
  :class:`~repro.faults.injector.FaultLog`; planned scale-down reuses
  the same retirement path without the fault accounting;
- **autoscaling** — a queue-depth-driven
  :class:`~repro.fleet.autoscaler.Autoscaler` activates parked
  endpoints or parks active ones, keeping the sim:endpoint ratio
  inside its 2:1..16:1 clamp.

Delivery is at-least-once: a "dead" endpoint that was merely slow may
still commit a task that has already been requeued.  Sinks are
idempotent per step (same file bytes rewritten), and the committed-step
ledger deduplicates, so the zero-lost-committed-steps invariant the
acceptance tests assert is unaffected.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum

from repro.adios.engine import EndOfStream, SSTBroker
from repro.adios.marshal import unmarshal_step
from repro.codec import CodecContext
from repro.faults.errors import CorruptPayloadError, EndpointDownError
from repro.fleet.autoscaler import Autoscaler
from repro.fleet.membership import EndpointState, FleetMembership
from repro.fleet.ring import HashRing
from repro.fleet.work import RenderTask, WorkQueues
from repro.observe.session import get_telemetry


class Directive(Enum):
    """Non-task poll outcomes."""

    IDLE = "idle"       # nothing to do right now; poll again
    PARK = "park"       # endpoint is parked (autoscaler reserve)
    STOP = "stop"       # run complete; endpoint may finalize and exit


@dataclass
class RecoveryRecord:
    """One endpoint loss and the replay that healed it."""

    eid: int
    planned: bool
    detected_at: float
    streams_moved: int
    tasks_requeued: int
    steps_backlogged: int
    commits_at_detect: int
    completed_at: float | None = None
    commits_at_complete: int | None = None
    _pending: set = field(default_factory=set, repr=False)
    _pending_steps: set = field(default_factory=set, repr=False)

    @property
    def recovery_seconds(self) -> float | None:
        if self.completed_at is None:
            return None
        return self.completed_at - self.detected_at

    @property
    def steps_to_recover(self) -> int | None:
        """Fleet-wide commits between detection and replay completion."""
        if self.commits_at_complete is None:
            return None
        return self.commits_at_complete - self.commits_at_detect


class FleetCoordinator:
    """Control plane shared by every endpoint of one elastic fleet."""

    def __init__(
        self,
        broker: SSTBroker,
        num_writers: int,
        pool_size: int,
        initial_active: int | None = None,
        lease_timeout: float = 0.25,
        seed: int = 0,
        autoscaler: Autoscaler | None = None,
        autoscale_every: int = 8,
        clock=time.monotonic,
        live=None,
    ):
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if initial_active is not None and not 1 <= initial_active <= pool_size:
            raise ValueError("initial_active must be in [1, pool_size]")
        self.broker = broker
        self.num_writers = num_writers
        self.pool = tuple(range(pool_size))
        self.initial_active = pool_size if initial_active is None else initial_active
        self.clock = clock
        self.membership = FleetMembership(lease_timeout, clock=clock)
        self.ring = HashRing(seed=seed)
        self.queues = WorkQueues(self.pool)
        self.autoscaler = autoscaler
        self.autoscale_every = autoscale_every
        #: attached :class:`~repro.observe.live.plane.LivePlane`, if any;
        #: gets crash/recovery events, and its SLO alert pressure is
        #: accumulated into the autoscaler's stall signal
        self.live = live
        self._pressure_accum = 0
        self._lock = threading.RLock()
        # per-writer stream progress
        self._got: dict[int, int] = {}           # delivered payload ordinal
        self._highwater: dict[int, int] = {}     # newest sim step seen
        self._ended: set[int] = set()
        self._geometry: dict[int, object] = {}   # writer -> first payload
        # per-writer codec state for temporal-delta RBP3 streams; _ingest
        # decodes each writer's queue in FIFO order, so references stay valid
        self._codec_ctx: dict[int, CodecContext] = {}
        # step assembly + ledgers
        self._assembly: dict[int, dict] = {}     # sim step -> {writer: payload}
        self.assembled: set[int] = set()
        self.committed: set[int] = set()
        self.commits = 0
        self.corrupt_steps = 0
        self._inflight: dict[int, list[RenderTask]] = {}
        # recovery bookkeeping
        self.recoveries: list[RecoveryRecord] = []
        self.rebalances = 0
        self.crashes_detected = 0
        self.planned_retirements = 0
        self._ticks = 0

    # -- membership entry points -------------------------------------------
    def join(self, eid: int) -> None:
        """Register an endpoint; the first `initial_active` ids run, the
        rest park as the autoscaler's reserve."""
        if eid not in self.pool:
            raise ValueError(f"endpoint {eid} is not in the fleet pool")
        with self._lock:
            parked = eid >= self.initial_active
            self.membership.register(eid, parked=parked)
            if not parked:
                self.ring.add(eid)

    def depart(self, eid: int) -> None:
        """Planned, graceful exit (end of run)."""
        with self._lock:
            if self.membership.state(eid) is EndpointState.ACTIVE:
                self._retire(eid, planned=True)
            self.membership.leave(eid)

    # -- the endpoint's main call ------------------------------------------
    def poll(self, eid: int):
        """Heartbeat, reap, ingest, and hand out one unit of work.

        Returns a :class:`RenderTask`, or a :class:`Directive`.
        """
        self.membership.heartbeat(eid)
        self._reap(eid)
        self._flush_if_abandoned(eid)
        state = self.membership.state(eid)
        if state in (EndpointState.DEAD, EndpointState.LEFT):
            # a zombie: declared dead while merely slow.  Its work was
            # requeued; let it exit instead of double-processing.
            return Directive.STOP
        if self.done():
            return Directive.STOP
        if state is EndpointState.PARKED:
            return Directive.PARK
        self._autoscale_tick()
        if self.membership.state(eid) is not EndpointState.ACTIVE:
            return Directive.PARK     # the tick just parked us
        self._ingest(eid)
        task = self.queues.pop(eid)
        if task is None:
            stolen = self.queues.steal(eid, candidates=self.membership.active_ids())
            if stolen is not None:
                task, victim = stolen
                tel = get_telemetry()
                if tel.enabled:
                    tel.tracer.instant(
                        "fleet.steal", thief=eid, victim=victim, step=task.step
                    )
                    tel.metrics.counter(
                        "repro_fleet_steals_total",
                        "Render steps stolen by idle endpoints",
                    ).inc()
        if task is None:
            return Directive.IDLE
        with self._lock:
            self._inflight.setdefault(eid, []).append(task)
        return task

    def commit(self, eid: int, task: RenderTask) -> None:
        """Mark a render task done (idempotent per step)."""
        now = self.clock()
        healed: list[RecoveryRecord] = []
        with self._lock:
            inflight = self._inflight.get(eid, [])
            if task in inflight:
                inflight.remove(task)
            self.committed.add(task.step)
            self.commits += 1
            for record in self.recoveries:
                if record.completed_at is not None:
                    continue
                record._pending.discard(id(task))
                record._pending_steps.discard(task.step)
                if not record._pending and not record._pending_steps:
                    record.completed_at = now
                    record.commits_at_complete = self.commits
                    healed.append(record)
        if self.live is not None:
            for record in healed:
                self.live.recovery_complete(record.eid, record.recovery_seconds)
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter(
                "repro_fleet_commits_total", "Render steps committed by the fleet"
            ).inc()

    # -- geometry replay ----------------------------------------------------
    def geometry(self, writer: int):
        """Writer `writer`'s retained first-step (geometry) payload.

        A stream that rebalances mid-run lands on an endpoint that
        never saw its geometry step; the coordinator replays it from
        this cache (the payload is CRC-checked ``RBP2`` data retained
        verbatim from ingest).
        """
        with self._lock:
            return self._geometry.get(writer)

    # -- progress / completion ---------------------------------------------
    def done(self) -> bool:
        with self._lock:
            return (
                len(self._ended) == self.num_writers
                and not self._assembly
                and self.queues.total_depth() == 0
                and not any(self._inflight.values())
            )

    def assignment(self) -> dict[int, int]:
        """writer -> endpoint under the current ring membership."""
        with self._lock:
            if not len(self.ring):
                return {}
            return {
                w: self.ring.assign(("writer", w))
                for w in range(self.num_writers)
            }

    def staged_depth(self) -> int:
        """Fleet-wide backlog: staged stream steps + queued render tasks."""
        staged = sum(q.qsize() for q in self.broker.queues)
        return staged + self.queues.total_depth()

    def stats(self) -> dict:
        with self._lock:
            return {
                "epoch": self.membership.epoch,
                "active": len(self.membership.active_ids()),
                "parked": len(self.membership.parked_ids()),
                "dead": len(self.membership.dead_ids()),
                "assembled": len(self.assembled),
                "committed": len(self.committed),
                "commits": self.commits,
                "corrupt_steps": self.corrupt_steps,
                "stolen": self.queues.stolen,
                "rebalances": self.rebalances,
                "crashes_detected": self.crashes_detected,
                "planned_retirements": self.planned_retirements,
                "recoveries": [
                    {
                        "eid": r.eid,
                        "planned": r.planned,
                        "streams_moved": r.streams_moved,
                        "tasks_requeued": r.tasks_requeued,
                        "steps_backlogged": r.steps_backlogged,
                        "recovery_seconds": r.recovery_seconds,
                        "steps_to_recover": r.steps_to_recover,
                    }
                    for r in self.recoveries
                ],
            }

    # -- internals ----------------------------------------------------------
    def _reap(self, reaper: int) -> None:
        """Expire lapsed leases; retire the newly dead."""
        for eid in self.membership.expire():
            self._retire(eid, planned=False)
            tel = get_telemetry()
            if tel.enabled:
                tel.tracer.instant("fleet.endpoint_dead", endpoint=eid,
                                   reaper=reaper)

    def _flush_if_abandoned(self, eid: int) -> None:
        """End all streams once the producer side has given up.

        When every writer's retries exhausted (``mark_endpoint_down``),
        the sim degrades its remaining steps locally and closes engines
        *without* sentinels.  Treat drained streams as ended so pending
        assemblies flush and ``done()`` can come true — otherwise the
        fleet would poll forever.
        """
        if not self.broker.endpoint_down.is_set():
            return
        if not all(q.empty() for q in self.broker.queues):
            return
        with self._lock:
            if len(self._ended) == self.num_writers:
                return
            self._ended = set(range(self.num_writers))
            # `eid` may be parked, and parked queues are never stolen
            # from — flush pending assemblies toward an active member
            active = self.membership.active_ids()
            self._complete_assemblies(active[0] if active else eid)

    def _retire(self, eid: int, planned: bool) -> None:
        """Remove `eid` from routing; requeue its work onto survivors.

        Unplanned loss additionally requeues the in-flight tasks (the
        member will never commit them) and records the recovery for the
        SLO bench.  Planned retirement leaves in-flight tasks alone —
        the member is alive and finishes what it holds.
        """
        with self._lock:
            before = self.assignment()
            self.ring.remove(eid)
            orphans = self.queues.drain(eid)
            if not planned:
                orphans += self._inflight.pop(eid, [])
            survivors = self.membership.active_ids()
            survivors = tuple(s for s in survivors if s != eid)
            if not survivors and self.membership.parked_ids():
                # never strand work: promote the lowest parked member
                promoted = self.membership.parked_ids()[0]
                self.membership.activate(promoted)
                self.ring.add(promoted)
                survivors = (promoted,)
            for task in orphans:
                task.attempts += 1
                if len(self.ring):
                    self.queues.push(self.ring.assign(("task", task.step)), task)
            moved = len(HashRing.moved(before, self.assignment()))
            self.rebalances += 1
            if planned:
                self.planned_retirements += 1
                return
            self.crashes_detected += 1
            # the recovery is complete once the replay drains: the
            # requeued tasks commit AND every assembly that was stuck
            # waiting on the dead member's streams at detection time
            # commits (those steps can only proceed via the reroute)
            record = RecoveryRecord(
                eid=eid,
                planned=planned,
                detected_at=self.clock(),
                streams_moved=moved,
                tasks_requeued=len(orphans),
                steps_backlogged=len(self._assembly),
                commits_at_detect=self.commits,
                _pending={id(t) for t in orphans},
                _pending_steps=set(self._assembly),
            )
            if not record._pending and not record._pending_steps:
                # nothing to replay: rerouting the streams IS the recovery
                record.completed_at = record.detected_at
                record.commits_at_complete = self.commits
            self.recoveries.append(record)
            self.broker.stats.faults.try_resolve("endpoint_crash", "recovered")
            if self.live is not None:
                # fire the recovery-time SLO at detection and close the
                # dead member's trace track (global rank = writers + eid)
                self.live.crash_detected(
                    eid, rank_hint=self.num_writers + eid
                )
                if record.completed_at is not None:
                    self.live.recovery_complete(eid, record.recovery_seconds)

    def _autoscale_tick(self) -> None:
        if self.autoscaler is None:
            return
        with self._lock:
            self._ticks += 1
            if self._ticks % self.autoscale_every:
                return
            active = self.membership.active_ids()
            parked = self.membership.parked_ids()
            slo_pressure = 0
            if self.live is not None:
                # accumulate: the autoscaler reacts to stall *deltas*,
                # so a persistently firing alert must keep adding to
                # the signal to sustain scale-up pressure
                slo_pressure = self.live.pressure()
                self._pressure_accum += slo_pressure
            target = self.autoscaler.observe(
                staged_steps=self.staged_depth(),
                active=len(active),
                pool_size=len(active) + len(parked),
                stalls=self.broker.stats.faults.retries + self._pressure_accum,
            )
            if self.live is not None:
                self.live.note_autoscaler_pressure(slo_pressure)
            if target > len(active) and parked:
                promoted = parked[0]
                self.membership.activate(promoted)
                self.ring.add(promoted)
                self.rebalances += 1
            elif target < len(active) and len(active) > 1:
                victim = active[-1]
                self._retire(victim, planned=True)
                self.membership.park(victim)

    def _ingest(self, eid: int) -> None:
        """Drain the broker queues of every stream `eid` currently owns."""
        owned = [
            w for w, owner in self.assignment().items()
            if owner == eid and w not in self._ended
        ]
        for w in owned:
            while True:
                with self._lock:
                    ordinal = self._got.get(w, 0)
                try:
                    raw = self.broker.try_get(w, step=ordinal)
                except EndOfStream:
                    with self._lock:
                        self._ended.add(w)
                        self._complete_assemblies(eid)
                    break
                except EndpointDownError:
                    # producer side died; whatever it staged was drained
                    with self._lock:
                        self._ended.add(w)
                        self._complete_assemblies(eid)
                    break
                if raw is None:
                    break
                with self._lock:
                    self._got[w] = ordinal + 1
                with self._lock:
                    ctx = self._codec_ctx.setdefault(w, CodecContext())
                try:
                    payload = unmarshal_step(raw, context=ctx)
                except CorruptPayloadError:
                    self.broker.stats.record_corrupt()
                    self.broker.stats.faults.try_resolve(
                        "corrupt_payload", "detected"
                    )
                    with self._lock:
                        self.corrupt_steps += 1
                    continue
                live = get_telemetry().live
                if live.enabled:
                    live.wire_mark(
                        "got", payload.step, w, time.perf_counter(), len(raw)
                    )
                with self._lock:
                    if payload.attributes.get("has_geometry") == "1":
                        self._geometry.setdefault(w, payload)
                    self._highwater[w] = max(
                        self._highwater.get(w, -1), payload.step
                    )
                    self._assembly.setdefault(payload.step, {})[w] = payload
                    self._complete_assemblies(eid)

    def _complete_assemblies(self, completer: int) -> None:
        """Promote every provably complete assembly to a render task.

        A step is complete when every writer has delivered it, will
        never deliver it (a newer step arrived on its FIFO stream, so
        this one was dropped or corrupted), or has ended its stream.
        Caller holds the lock.
        """
        for step in sorted(self._assembly):
            ready = all(
                w in self._ended or self._highwater.get(w, -1) >= step
                for w in range(self.num_writers)
            )
            if not ready:
                continue
            payloads = self._assembly.pop(step)
            self.assembled.add(step)
            self.queues.push(completer, RenderTask(step=step, payloads=payloads))
