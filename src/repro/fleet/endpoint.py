"""FleetEndpoint: one elastic endpoint rank's poll/render loop.

The static endpoint (:meth:`repro.insitu.intransit.InTransitRunner.
_run_endpoint`) owns a fixed `block_range` slice of writer streams
for the whole run.  A fleet endpoint owns nothing statically: every
loop iteration it heartbeats, polls the shared
:class:`~repro.fleet.coordinator.FleetCoordinator` for a directive or
a fully assembled :class:`~repro.fleet.work.RenderTask`, and feeds the
task through its private sink.

Each endpoint gets its **own** :class:`~repro.parallel.comm.
SerialCommunicator`-backed analysis (no collectives across the
endpoint group), so a crashed member cannot strand peers inside a
barrier — the property that makes mid-run joins and leaves safe.
Output stays byte-identical to the static split because every
artifact is keyed by (step, block) or (name, step), never by the rank
that produced it.

Crash injection mirrors the static site: the loop consults the
injector *before* each poll and, when ``endpoint_crash`` fires, simply
stops — no leave, no drain — so the lease lapses and peers must
detect the loss the hard way.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

from repro.fleet.coordinator import Directive, FleetCoordinator
from repro.fleet.work import RenderTask
from repro.observe.session import get_telemetry
from repro.parallel.comm import SerialCommunicator


@dataclass
class EndpointReport:
    """Per-endpoint outcome of a fleet run."""

    eid: int
    steps: int = 0               # tasks committed by this endpoint
    crashed: bool = False
    idle_polls: int = 0
    parked_polls: int = 0
    wall_seconds: float = 0.0
    recv_bytes: int = 0
    staging_peak: int = 0
    files_bytes: int = 0
    images: int = 0
    empty_tasks: int = 0
    extra: dict = field(default_factory=dict)


class AnalysisSink:
    """Feeds assembled render tasks through one SENSEI analysis.

    The sink owns a single-rank adaptor + analysis pair.  Streams
    rebalance between endpoints mid-run, so before consuming a task it
    installs the geometry payload of any writer this sink has not seen
    yet (replayed from the coordinator's CRC-checked cache).
    """

    def __init__(self, analysis_factory):
        # deferred: repro.insitu imports repro.fleet for the runner's
        # fleet mode, so a module-level import here would be circular
        from repro.insitu.streamed import StreamedDataAdaptor

        self.comm = SerialCommunicator(channel="fleet")
        self.adaptor = StreamedDataAdaptor(self.comm)
        self.analysis = analysis_factory(self.comm)
        self._seen_writers: set[int] = set()
        self.recv_bytes = 0
        self.staging_peak = 0
        self.steps = 0

    def process(self, task: RenderTask, coordinator: FleetCoordinator) -> bool:
        for writer in task.payloads:
            if writer in self._seen_writers:
                continue
            geometry = coordinator.geometry(writer)
            if geometry is not None:
                self.adaptor.install_geometry(geometry)
            self._seen_writers.add(writer)
        ordered = dict(sorted(task.payloads.items()))
        if not self.adaptor.consume(ordered):
            return False
        self.staging_peak = max(self.staging_peak, self.adaptor.staged_bytes)
        self.recv_bytes += self.adaptor.staged_bytes
        self.analysis.execute(self.adaptor)
        self.adaptor.release_data()
        self.steps += 1
        return True

    def finalize(self) -> None:
        self.analysis.finalize()


class FleetEndpoint:
    """The loop one endpoint rank runs for the whole fleet session."""

    def __init__(
        self,
        eid: int,
        coordinator: FleetCoordinator,
        sink: AnalysisSink,
        injector=None,
        poll_interval: float = 0.001,
    ):
        self.eid = eid
        self.coordinator = coordinator
        self.sink = sink
        self.injector = injector
        self.poll_interval = poll_interval

    def run(self) -> EndpointReport:
        coord = self.coordinator
        report = EndpointReport(eid=self.eid)
        t0 = _time.perf_counter()
        coord.join(self.eid)
        while True:
            if self.injector is not None:
                crash = self.injector.maybe(
                    "endpoint_crash", "fleet.loop", report.steps, key=self.eid
                )
                if crash is not None:
                    # die in place: no depart(), no drain — the lease
                    # lapses and a peer's poll declares us dead
                    get_telemetry().tracer.instant(
                        "fault.endpoint_crash", step=report.steps,
                        endpoint=self.eid,
                    )
                    report.crashed = True
                    break
            out = coord.poll(self.eid)
            if out is Directive.STOP:
                break
            if out is Directive.PARK:
                report.parked_polls += 1
                _time.sleep(self.poll_interval)
                continue
            if out is Directive.IDLE:
                report.idle_polls += 1
                _time.sleep(self.poll_interval)
                continue
            if self.sink.process(out, coord):
                report.steps += 1
            else:
                report.empty_tasks += 1
            coord.commit(self.eid, out)
        if not report.crashed:
            coord.depart(self.eid)
            self.sink.finalize()
        report.wall_seconds = _time.perf_counter() - t0
        report.recv_bytes = self.sink.recv_bytes
        report.staging_peak = self.sink.staging_peak
        return report
