"""Fleet membership: heartbeat leases over mailbox queues.

Endpoints announce liveness by posting heartbeats into a per-endpoint
mailbox (the same bounded-queue shape the ``ThreadCommunicator``
mailboxes use); any caller of :meth:`FleetMembership.expire` drains
the mailboxes, renews the corresponding leases, and declares members
whose lease has lapsed **dead**.  That split — cheap enqueue on the
hot endpoint loop, detection folded into whoever polls next — is what
lets an *unplanned* loss (a crashed endpoint thread simply stops
heartbeating) surface without any dedicated monitor thread.

States: ``ACTIVE`` (owns streams, processes work), ``PARKED`` (alive
but idle — the autoscaler's reserve pool), ``LEFT`` (planned
departure), ``DEAD`` (lease expired).  Every transition bumps the
membership ``epoch``; the coordinator rebalances when it observes an
epoch it has not seen.
"""

from __future__ import annotations

import queue
import threading
import time
from enum import Enum


class EndpointState(Enum):
    ACTIVE = "active"
    PARKED = "parked"
    LEFT = "left"
    DEAD = "dead"


class FleetMembership:
    """Thread-safe membership table with heartbeat leases."""

    def __init__(self, lease_timeout: float = 0.25, clock=time.monotonic):
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be > 0")
        self.lease_timeout = lease_timeout
        self.clock = clock
        self._lock = threading.Lock()
        self._state: dict[int, EndpointState] = {}
        self._lease: dict[int, float] = {}
        self._mailbox: dict[int, queue.Queue] = {}
        self._epoch = 0
        self.heartbeats = 0

    # -- registration ------------------------------------------------------
    def register(self, eid: int, parked: bool = False) -> int:
        """Add a member (idempotent); returns the new epoch."""
        with self._lock:
            if eid not in self._state:
                self._state[eid] = (
                    EndpointState.PARKED if parked else EndpointState.ACTIVE
                )
                self._lease[eid] = self.clock() + self.lease_timeout
                self._mailbox[eid] = queue.Queue()
                self._epoch += 1
            return self._epoch

    # -- liveness ----------------------------------------------------------
    def heartbeat(self, eid: int) -> None:
        """Post a heartbeat into `eid`'s mailbox (non-blocking)."""
        mailbox = self._mailbox.get(eid)
        if mailbox is None:
            raise KeyError(f"endpoint {eid} is not a member")
        mailbox.put((eid, self.clock()))
        self.heartbeats += 1

    def expire(self, now: float | None = None) -> list[int]:
        """Drain heartbeat mailboxes, then return newly dead members."""
        now = self.clock() if now is None else now
        dead: list[int] = []
        with self._lock:
            for eid, mailbox in self._mailbox.items():
                latest = None
                while True:
                    try:
                        _, stamp = mailbox.get_nowait()
                    except queue.Empty:
                        break
                    latest = stamp
                if latest is not None and self._state[eid] in (
                    EndpointState.ACTIVE, EndpointState.PARKED
                ):
                    self._lease[eid] = latest + self.lease_timeout
            for eid, state in self._state.items():
                if state is EndpointState.ACTIVE and self._lease[eid] < now:
                    self._state[eid] = EndpointState.DEAD
                    self._epoch += 1
                    dead.append(eid)
        return dead

    # -- planned transitions ----------------------------------------------
    def activate(self, eid: int) -> None:
        self._transition(eid, EndpointState.PARKED, EndpointState.ACTIVE)

    def park(self, eid: int) -> None:
        self._transition(eid, EndpointState.ACTIVE, EndpointState.PARKED)

    def leave(self, eid: int) -> None:
        """Planned departure (scale-down or shutdown)."""
        with self._lock:
            if self._state.get(eid) in (EndpointState.ACTIVE, EndpointState.PARKED):
                self._state[eid] = EndpointState.LEFT
                self._epoch += 1

    def _transition(self, eid: int, expected: EndpointState, to: EndpointState):
        with self._lock:
            if self._state.get(eid) is expected:
                self._state[eid] = to
                self._lease[eid] = self.clock() + self.lease_timeout
                self._epoch += 1

    # -- views -------------------------------------------------------------
    @property
    def epoch(self) -> int:
        with self._lock:
            return self._epoch

    def state(self, eid: int) -> EndpointState | None:
        with self._lock:
            return self._state.get(eid)

    def active_ids(self) -> tuple[int, ...]:
        return self._ids(EndpointState.ACTIVE)

    def parked_ids(self) -> tuple[int, ...]:
        return self._ids(EndpointState.PARKED)

    def dead_ids(self) -> tuple[int, ...]:
        return self._ids(EndpointState.DEAD)

    def _ids(self, state: EndpointState) -> tuple[int, ...]:
        with self._lock:
            return tuple(sorted(e for e, s in self._state.items() if s is state))

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "epoch": self._epoch,
                "states": {e: s.value for e, s in sorted(self._state.items())},
                "heartbeats": self.heartbeats,
            }
