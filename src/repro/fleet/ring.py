"""Consistent-hash ring: stream -> endpoint assignment with bounded churn.

The static in-transit split (``block_range`` over writer ranks) moves
*every* stream when the endpoint count changes.  A consistent-hash
ring moves only the streams that hashed onto the departed (or newly
arrived) member: each endpoint owns ``vnodes`` points on a 32-bit
ring, a key is owned by the first point clockwise of its hash, and
removing a member hands exactly that member's arcs to its clockwise
successors — the bounded-disruption property
:class:`tests.test_fleet.TestHashRing` pins down.

Hashing is CRC32 over seed-salted strings — deterministic across
processes and interpreter runs (``hash()`` randomization would break
the fleet's replay determinism).
"""

from __future__ import annotations

import bisect
import zlib


def _h32(text: str) -> int:
    return zlib.crc32(text.encode()) & 0xFFFFFFFF


class HashRing:
    """Deterministic consistent-hash ring over hashable member ids."""

    def __init__(self, members=(), vnodes: int = 64, seed: int = 0):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self.seed = seed
        self._members: set = set()
        self._points: list[int] = []      # sorted vnode hashes
        self._owners: list = []           # owner of self._points[i]
        for member in members:
            self.add(member)

    # -- membership --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member) -> bool:
        return member in self._members

    @property
    def members(self) -> tuple:
        return tuple(sorted(self._members))

    def add(self, member) -> None:
        if member in self._members:
            return
        self._members.add(member)
        for v in range(self.vnodes):
            point = _h32(f"{self.seed}|node|{member}|{v}")
            index = bisect.bisect(self._points, point)
            # extremely unlikely CRC collision: perturb deterministically
            while index < len(self._points) and self._points[index] == point:
                point = (point + 1) & 0xFFFFFFFF
                index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, member)

    def remove(self, member) -> None:
        if member not in self._members:
            return
        self._members.discard(member)
        keep = [i for i, owner in enumerate(self._owners) if owner != member]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    # -- lookup ------------------------------------------------------------
    def assign(self, key):
        """The member owning `key` (first vnode clockwise of its hash)."""
        if not self._members:
            raise LookupError("hash ring has no members")
        point = _h32(f"{self.seed}|key|{key}")
        index = bisect.bisect(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def assignment(self, keys) -> dict:
        """key -> member for a batch of keys."""
        return {key: self.assign(key) for key in keys}

    @staticmethod
    def moved(before: dict, after: dict) -> set:
        """Keys whose owner changed between two assignment snapshots."""
        return {
            key for key in set(before) | set(after)
            if before.get(key) != after.get(key)
        }
