"""Render-step work queues with deterministic work stealing.

A :class:`RenderTask` is one fully assembled stream step — every live
writer's CRC-checked payload for that step — ready to be rendered (or
checkpointed) by exactly one endpoint.  Tasks are queued per endpoint;
an idle endpoint *steals* from the hottest peer using a deterministic
victim-selection protocol (deepest queue, ties broken by lowest
endpoint id; the **oldest** task is taken so per-step completion order
stays close to FIFO).  Determinism matters: the chaos tests replay a
seeded fault schedule and expect the same steal decisions every run
for a given interleaving of queue depths.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field


@dataclass
class RenderTask:
    """One assembled stream step, the unit of endpoint work."""

    step: int
    payloads: dict = field(default_factory=dict)   # writer -> StepPayload
    attempts: int = 0                              # delivery attempts (replay)

    @property
    def nbytes(self) -> int:
        return sum(p.nbytes for p in self.payloads.values())


class WorkQueues:
    """Per-endpoint task queues plus the stealing protocol."""

    def __init__(self, endpoint_ids):
        self._lock = threading.Lock()
        self._queues: dict[int, deque] = {eid: deque() for eid in endpoint_ids}
        self.stolen = 0
        self.pushed = 0

    def push(self, eid: int, task: RenderTask) -> None:
        with self._lock:
            self._queues[eid].append(task)
            self.pushed += 1

    def pop(self, eid: int) -> RenderTask | None:
        """This endpoint's own oldest task, or None."""
        with self._lock:
            q = self._queues[eid]
            return q.popleft() if q else None

    def steal(self, thief: int, candidates=None) -> tuple[RenderTask, int] | None:
        """Steal the oldest task from the deterministically chosen victim.

        Victim selection: among `candidates` (default: every other
        endpoint) with a non-empty queue, the one with the deepest
        queue; ties break toward the lowest endpoint id.  Returns
        ``(task, victim)`` or None when there is nothing to steal.
        """
        with self._lock:
            pool = self._queues if candidates is None else {
                eid: self._queues[eid] for eid in candidates if eid in self._queues
            }
            victim = None
            depth = 0
            for eid in sorted(pool):
                if eid == thief:
                    continue
                if len(pool[eid]) > depth:
                    victim, depth = eid, len(pool[eid])
            if victim is None:
                return None
            task = self._queues[victim].popleft()
            self.stolen += 1
            return task, victim

    def drain(self, eid: int) -> list[RenderTask]:
        """Remove and return everything queued for `eid` (its requeue set)."""
        with self._lock:
            q = self._queues[eid]
            tasks = list(q)
            q.clear()
            return tasks

    def depth(self, eid: int) -> int:
        with self._lock:
            return len(self._queues[eid])

    def depths(self) -> dict[int, int]:
        with self._lock:
            return {eid: len(q) for eid, q in self._queues.items()}

    def total_depth(self) -> int:
        with self._lock:
            return sum(len(q) for q in self._queues.values())
