"""The NekRS <-> SENSEI coupling — the paper's contribution proper.

- :class:`NekDataAdaptor` (Listing 2): presents solver state as VTK
  model meshes — the SEM grid as an unstructured-hex mesh and a
  spectrally resampled uniform mesh — copying fields across the
  OCCA device boundary on demand and caching the host mirror per step.
- :mod:`repro.insitu.bridge` (Listing 3): the thin glue embedding
  SENSEI into the simulation: initialize / update-per-step / finalize.
- :class:`StreamedDataAdaptor`: the endpoint-side DataAdaptor that
  reconstructs meshes from ADIOS step payloads (the "SENSEI data
  consumer" of the in transit workflow).
- :class:`InTransitRunner`: splits a rank group into simulation and
  endpoint subgroups at the paper's 4:1 ratio and wires the SST stream
  between them.
- :mod:`repro.insitu.instrumentation`: run profiles (time, bytes,
  memory) that the benchmark drivers feed to the machine model.
"""

from repro.insitu.adaptor import NekDataAdaptor
from repro.insitu.bridge import Bridge
from repro.insitu.streamed import StreamedDataAdaptor
from repro.insitu.intransit import InTransitRunner, InTransitResult
from repro.insitu.instrumentation import RunProfile, MemoryModel
from repro.insitu.adaptive import AdaptiveTrigger

__all__ = [
    "NekDataAdaptor",
    "Bridge",
    "StreamedDataAdaptor",
    "InTransitRunner",
    "InTransitResult",
    "RunProfile",
    "MemoryModel",
    "AdaptiveTrigger",
]
