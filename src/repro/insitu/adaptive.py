"""Adaptive in situ triggering.

Fixed-interval in situ actions (the paper's every-100-steps) either
waste renders on quiescent stretches or miss fast transients.  An
adaptive trigger runs its child analysis only when the solution has
*changed enough* since the last firing — the "trigger-based in situ"
idea from the in situ literature, implemented here as a transparent
AnalysisAdaptor wrapper, so any XML-configurable analysis becomes
adaptive without modification.

Change metric: relative L2 distance of one monitor array between the
last-fired state and now, reduced across ranks.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.comm import Communicator, ReduceOp
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.analyses.steering import record_trip
from repro.sensei.data_adaptor import DataAdaptor


class AdaptiveTrigger(AnalysisAdaptor):
    def __init__(
        self,
        comm: Communicator,
        child: AnalysisAdaptor,
        monitor_array: str = "velocity_magnitude",
        change_threshold: float = 0.05,
        mesh_name: str = "mesh",
        max_interval: int | None = None,
    ):
        """Fire `child` when the monitor array changed by
        `change_threshold` (relative L2) since the last firing, or
        unconditionally after `max_interval` offers (a safety net so
        a frozen flow still gets occasional frames)."""
        if change_threshold <= 0:
            raise ValueError("change_threshold must be positive")
        if max_interval is not None and max_interval < 1:
            raise ValueError("max_interval must be >= 1")
        self.comm = comm
        self.child = child
        self.monitor_array = monitor_array
        self.change_threshold = change_threshold
        self.mesh_name = mesh_name
        self.max_interval = max_interval
        self._reference: np.ndarray | None = None
        self._since_fired = 0
        self.fired_steps: list[int] = []
        self.suppressed = 0

    def _current_values(self, data: DataAdaptor) -> np.ndarray:
        mesh = data.get_mesh(self.mesh_name)
        data.add_array(mesh, self.mesh_name, "point", self.monitor_array)
        chunks = [
            b.point_data[self.monitor_array].values.ravel()
            for b in mesh.local_blocks()
        ]
        return np.concatenate(chunks) if chunks else np.empty(0)

    def _relative_change(self, current: np.ndarray) -> float:
        assert self._reference is not None
        diff2 = float(np.sum((current - self._reference) ** 2))
        norm2 = float(np.sum(self._reference**2))
        diff2 = self.comm.allreduce(diff2, ReduceOp.SUM)
        norm2 = self.comm.allreduce(norm2, ReduceOp.SUM)
        if norm2 == 0.0:
            return np.inf if diff2 > 0 else 0.0
        return float(np.sqrt(diff2 / norm2))

    def execute(self, data: DataAdaptor) -> bool:
        current = self._current_values(data)
        fire = False
        if self._reference is None:
            fire = True          # always render the first offered state
        elif (
            self.max_interval is not None
            and self._since_fired + 1 >= self.max_interval
        ):
            fire = True
        elif self._relative_change(current) >= self.change_threshold:
            fire = True

        if fire:
            self._reference = current.copy()
            self._since_fired = 0
            step = data.get_data_time_step()
            self.fired_steps.append(step)
            record_trip(self.comm, "trigger", step, monitor=self.monitor_array)
            return self.child.execute(data)
        self._since_fired += 1
        self.suppressed += 1
        return True

    def finalize(self) -> None:
        self.child.finalize()

    @property
    def firing_rate(self) -> float:
        total = len(self.fired_steps) + self.suppressed
        return len(self.fired_steps) / total if total else 0.0
