"""NekDataAdaptor: the simulation-side DataAdaptor (paper Listing 2).

Serves two meshes:

``mesh``
    The SEM grid as an unstructured mesh: every GLL node is a point,
    every order^3 sub-cell of every element a linear hexahedron — the
    standard way Nek data is presented to VTK-model consumers.
``uniform``
    Per-element uniform resamplings (spectral interpolation) packaged
    as ImageData fragments, which renderers and slice filters assemble
    into a global volume.

Field arrays live on the OCCA device: ``add_array`` triggers the
device->host copy (metered by the device's transfer ledger) exactly
once per field per step — the GPU->CPU movement the paper identifies
as the cost of coupling VTK-model tools to a GPU code.
"""

from __future__ import annotations

import numpy as np

from repro.nekrs.solver import NekRSSolver
from repro.sem.interp import grid_dims, resample_field
from repro.sensei.data_adaptor import DataAdaptor
from repro.sensei.metadata import ArrayMetadata, MeshMetadata
from repro.vtkdata.arrays import DataArray
from repro.vtkdata.dataset import ImageData, MultiBlockDataSet, UnstructuredGrid


def _subcell_connectivity(num_elements: int, nq: int) -> np.ndarray:
    """(E * (nq-1)^3, 8) hexes over the GLL lattice of each element."""
    n = nq - 1
    k, j, i = np.meshgrid(np.arange(n), np.arange(n), np.arange(n), indexing="ij")
    k, j, i = k.ravel(), j.ravel(), i.ravel()

    def node(kk, jj, ii):
        return (kk * nq + jj) * nq + ii

    corners = np.stack(
        [
            node(k, j, i),
            node(k, j, i + 1),
            node(k, j + 1, i + 1),
            node(k, j + 1, i),
            node(k + 1, j, i),
            node(k + 1, j, i + 1),
            node(k + 1, j + 1, i + 1),
            node(k + 1, j + 1, i),
        ],
        axis=1,
    )
    per_elem = nq**3
    offsets = (np.arange(num_elements) * per_elem)[:, None, None]
    return (corners[None, :, :] + offsets).reshape(-1, 8)


class NekDataAdaptor(DataAdaptor):
    MESH = "mesh"
    UNIFORM = "uniform"

    def __init__(self, solver: NekRSSolver, samples_per_element: int | None = None):
        super().__init__(solver.comm)
        self.solver = solver
        mesh = solver.mesh
        self.samples = samples_per_element or mesh.nq
        if self.samples < 1:
            raise ValueError("samples_per_element must be >= 1")

        # static unstructured structure
        x, y, z = mesh.coords()
        self._points = np.stack([x.ravel(), y.ravel(), z.ravel()], axis=1)
        self._cells = _subcell_connectivity(mesh.num_elements, mesh.nq)

        # static uniform-fragment structure
        self._frag_spacing = tuple(mesh.elem_sizes / self.samples)
        self._frag_origins = (
            mesh.elem_origins + np.asarray(self._frag_spacing) / 2.0
        )
        self._global_origin = tuple(
            np.asarray(mesh.extent.lo) + np.asarray(self._frag_spacing) / 2.0
        )
        self._global_dims = grid_dims(mesh, self.samples)

        self._host_cache: dict[str, np.ndarray] = {}
        self._resample_cache: dict[str, np.ndarray] = {}
        from repro.perf.arena import WorkspaceArena

        #: adaptor-private scratch pool for host mirrors of device
        #: fields — step-scoped borrows (released in release_data) that
        #: must not count against the shared per-thread arena
        self.scratch_arena = WorkspaceArena()
        self._host_borrowed: list[np.ndarray] = []
        self._device_cache: dict[str, object] = {}
        self._device_resample_cache: dict[str, object] = {}
        self._device_borrowed: list[object] = []
        self.staging_bytes_current = 0
        self.staging_bytes_peak = 0

    # -- structure ---------------------------------------------------------
    def get_number_of_meshes(self) -> int:
        return 2

    def _array_metadata(self) -> tuple[ArrayMetadata, ...]:
        names = list(self.solver.device_fields)
        arrays = [ArrayMetadata(n, "point", 1) for n in names]
        arrays.append(ArrayMetadata("velocity_magnitude", "point", 1))
        arrays.append(ArrayMetadata("vorticity_magnitude", "point", 1))
        arrays.append(ArrayMetadata("q_criterion", "point", 1))
        arrays.append(ArrayMetadata("velocity", "point", 3))
        return tuple(arrays)

    def get_mesh_metadata(self, index: int) -> MeshMetadata:
        mesh = self.solver.mesh
        bounds = tuple(
            (lo, hi) for lo, hi in zip(mesh.extent.lo, mesh.extent.hi)
        )
        if index == 0:
            return MeshMetadata(
                name=self.MESH,
                num_blocks=self.comm.size,
                local_block_ids=(self.comm.rank,),
                num_points_local=len(self._points),
                num_cells_local=len(self._cells),
                arrays=self._array_metadata(),
                bounds=bounds,
                step=self._step,
                time=self._time,
            )
        if index == 1:
            s = self.samples
            return MeshMetadata(
                name=self.UNIFORM,
                num_blocks=mesh.num_global_elements,
                local_block_ids=tuple(int(e) for e in mesh.elem_ids),
                num_points_local=mesh.num_elements * s**3,
                num_cells_local=mesh.num_elements * max(s - 1, 1) ** 3,
                arrays=self._array_metadata(),
                bounds=bounds,
                step=self._step,
                time=self._time,
                extra={
                    "global_dims": list(self._global_dims),
                    "origin": list(self._global_origin),
                    "spacing": list(self._frag_spacing),
                    "samples": s,
                },
            )
        raise IndexError(f"mesh index {index} out of range (0..1)")

    def get_mesh(self, name: str, structure_only: bool = False) -> MultiBlockDataSet:
        mesh = self.solver.mesh
        mb = MultiBlockDataSet()
        if name == self.MESH:
            mb.set_block(self.comm.size - 1, None)  # size the block list
            if not structure_only:
                grid = UnstructuredGrid(self._points, self._cells)
                self._charge_staging(grid.points.nbytes + grid.cells.nbytes)
                mb.set_block(self.comm.rank, grid)
            return mb
        if name == self.UNIFORM:
            mb.set_block(mesh.num_global_elements - 1, None)
            if not structure_only:
                s = self.samples
                for e in range(mesh.num_elements):
                    frag = ImageData(
                        dims=(s, s, s),
                        origin=tuple(self._frag_origins[e]),
                        spacing=self._frag_spacing,
                    )
                    mb.set_block(int(mesh.elem_ids[e]), frag)
            return mb
        raise KeyError(f"unknown mesh {name!r} (have: mesh, uniform)")

    # -- data --------------------------------------------------------------
    def _host_field(self, name: str) -> np.ndarray:
        """Host mirror of a device field, one D2H copy per step."""
        cached = self._host_cache.get(name)
        if cached is not None:
            return cached
        if name == "velocity_magnitude":
            u = self._host_field("velocity_x")
            v = self._host_field("velocity_y")
            w = self._host_field("velocity_z")
            out = np.sqrt(u * u + v * v + w * w)
        elif name == "vorticity_magnitude":
            from repro.nekrs.diagnostics import vorticity_magnitude

            out = vorticity_magnitude(
                self.solver.ops,
                self._host_field("velocity_x"),
                self._host_field("velocity_y"),
                self._host_field("velocity_z"),
            )
        elif name == "q_criterion":
            from repro.nekrs.diagnostics import q_criterion

            out = q_criterion(
                self.solver.ops,
                self._host_field("velocity_x"),
                self._host_field("velocity_y"),
                self._host_field("velocity_z"),
            )
        elif name == "velocity":
            out = np.stack(
                [
                    self._host_field("velocity_x").ravel(),
                    self._host_field("velocity_y").ravel(),
                    self._host_field("velocity_z").ravel(),
                ],
                axis=1,
            )
        else:
            try:
                device_mem = self.solver.device_fields[name]
            except KeyError:
                raise KeyError(
                    f"simulation provides no array {name!r}; have "
                    f"{sorted(self.solver.device_fields)}"
                ) from None
            # D2H lands in recycled arena scratch: the gather path's
            # steady-state loop allocates no fresh host mirrors.  The
            # pool is adaptor-private, not the shared per-thread arena:
            # these borrows live until release_data(), and callers that
            # drive add_array outside a bridge step (tools, tests) must
            # not leave the global arena's outstanding count nonzero.
            out = self.scratch_arena.borrow(device_mem.shape, device_mem.dtype)
            self._host_borrowed.append(out)
            device_mem.copy_to_host(out=out)
        self._host_cache[name] = out
        self._charge_staging(out.nbytes)
        return out

    def add_array(
        self,
        mesh: MultiBlockDataSet,
        mesh_name: str,
        association: str,
        array_name: str,
    ) -> None:
        if association != "point":
            raise ValueError("NekRS fields are point-centered")
        if mesh_name == self.MESH:
            block = mesh.get_block(self.comm.rank)
            if block is None:
                raise ValueError("mesh block missing (structure_only mesh?)")
            host = self._host_field(array_name)
            values = host if array_name == "velocity" else host.ravel()
            block.add_array(DataArray(array_name, values))
            return
        if mesh_name == self.UNIFORM:
            if array_name == "velocity":
                raise ValueError("uniform mesh serves scalar arrays only")
            res = self._resample_cache.get(array_name)
            if res is None:
                host = self._host_field(array_name)
                res = resample_field(self.solver.mesh, host, self.samples)
                self._resample_cache[array_name] = res
                self._charge_staging(res.nbytes)
            for e in range(self.solver.mesh.num_elements):
                frag = mesh.get_block(int(self.solver.mesh.elem_ids[e]))
                if frag is None:
                    raise ValueError("uniform fragment missing")
                frag.add_array(DataArray(array_name, res[e].ravel()))
            return
        raise KeyError(f"unknown mesh {mesh_name!r}")

    # -- device residency ----------------------------------------------------
    @property
    def device(self):
        """The solver's OCCA device (device-resident render path)."""
        return self.solver.device

    def _device_field(self, name: str):
        """:class:`DeviceMemory` of a GLL field; derived fields are
        computed by registered kernels into device-arena scratch —
        nothing crosses PCIe."""
        cached = self._device_cache.get(name)
        if cached is not None:
            return cached
        from repro.occa.kernels import install_field_kernels

        fields = install_field_kernels(self.device)
        base = self.solver.device_fields.get(name)
        if base is not None:
            mem = base
        elif name in ("velocity_magnitude", "vorticity_magnitude", "q_criterion"):
            u = self._device_field("velocity_x")
            v = self._device_field("velocity_y")
            w = self._device_field("velocity_z")
            mem = self.device.arena.borrow(u.shape, u.dtype)
            self._device_borrowed.append(mem)
            if name == "velocity_magnitude":
                fields.magnitude(u, v, w, mem)
            elif name == "vorticity_magnitude":
                fields.vorticity_magnitude(self.solver.ops, u, v, w, mem)
            else:
                fields.q_criterion(self.solver.ops, u, v, w, mem)
        else:
            raise KeyError(
                f"simulation provides no device array {name!r}; have "
                f"{sorted(self.solver.device_fields)}"
            )
        self._device_cache[name] = mem
        return mem

    def _device_resample(self, name: str):
        """Per-element uniform resampling, device-resident (E, s, s, s)."""
        res = self._device_resample_cache.get(name)
        if res is not None:
            return res
        from repro.occa.kernels import install_field_kernels

        fields = install_field_kernels(self.device)
        field = self._device_field(name)
        s = self.samples
        res = self.device.arena.borrow(
            (self.solver.mesh.num_elements, s, s, s), np.float64
        )
        self._device_borrowed.append(res)
        fields.resample(self.solver.mesh, field, s, res)
        self._device_resample_cache[name] = res
        return res

    def device_uniform_fragments(self, arrays: tuple[str, ...]):
        """Device twin of the uniform-mesh fragment walk.

        Returns ``(global_dims, global_origin, global_spacing,
        fragments)`` exactly like
        :func:`repro.sensei.analyses.catalyst_adaptor.local_uniform_fragments`,
        except every payload volume is a
        :class:`~repro.occa.device.DeviceMemory` view — the resampled
        working set never leaves the device, so the transfer ledger
        records no per-field D2H for ``residency="device"``.
        """
        from repro.occa.device import DeviceMemory

        s = self.samples
        resampled = {name: self._device_resample(name) for name in arrays}
        fragments = []
        for e in range(self.solver.mesh.num_elements):
            payload = {
                name: DeviceMemory(self.device, resampled[name]._raw()[e])
                for name in arrays
            }
            fragments.append(
                (tuple(self._frag_origins[e]), (s, s, s), payload)
            )
        return (
            self._global_dims,
            np.asarray(self._global_origin, dtype=float),
            np.asarray(self._frag_spacing, dtype=float),
            fragments,
        )

    def release_data(self) -> None:
        from repro.observe.session import get_telemetry

        self._host_cache.clear()
        self._resample_cache.clear()
        if self._host_borrowed:
            self.scratch_arena.release(*self._host_borrowed)
            self._host_borrowed.clear()
        self._device_cache.clear()
        self._device_resample_cache.clear()
        if self._device_borrowed:
            self.device.arena.release(*self._device_borrowed)
            self._device_borrowed.clear()
        self.staging_bytes_current = 0
        get_telemetry().memory.observe("sensei.staging", 0)

    # -- accounting ----------------------------------------------------------
    def _charge_staging(self, nbytes: int) -> None:
        from repro.observe.session import get_telemetry

        self.staging_bytes_current += nbytes
        self.staging_bytes_peak = max(
            self.staging_bytes_peak, self.staging_bytes_current
        )
        get_telemetry().memory.observe("sensei.staging", self.staging_bytes_current)
