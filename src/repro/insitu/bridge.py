"""The bridge: embedding SENSEI into the simulation (paper Listing 3).

The bridge owns the DataAdaptor and the ConfigurableAnalysis, stamps
time/step onto the adaptor each timestep, invokes the analyses, and
releases per-step staging afterwards.  Attach :meth:`Bridge.observer`
to :meth:`NekRSSolver.run` and the simulation is instrumented — the
entire integration surface, as in the paper.

A module-level functional facade (initialize / update / finalize)
mirrors the C bridge's shape for readers following the paper listing.

Fault tolerance: when the analysis side is an in-transit transport and
it fails past the retry budget (:class:`TransportError`), the bridge
*degrades* instead of crashing the solver — configurable via
``fallback``: ``"raise"`` (seed behavior), ``"checkpoint"`` (write the
raw state locally, the paper's file-staged degraded mode), or
``"drop"`` (skip the analysis step).  The simulation keeps
time-stepping either way — in situ must never cost the solver its run.
"""

from __future__ import annotations

from pathlib import Path

from repro.faults.errors import TransportError
from repro.faults.injector import FaultLog
from repro.insitu.adaptor import NekDataAdaptor
from repro.nekrs.solver import NekRSSolver, StepReport
from repro.observe.session import get_telemetry
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.configurable import ConfigurableAnalysis
from repro.util.logging import get_logger
from repro.util.timing import StopWatch

_FALLBACKS = ("raise", "checkpoint", "drop")


class Bridge:
    def __init__(
        self,
        solver: NekRSSolver,
        analysis: AnalysisAdaptor | None = None,
        config_xml: str | None = None,
        output_dir: str | Path = ".",
        samples_per_element: int | None = None,
        extra_factories: dict | None = None,
        fallback: str = "raise",
        fallback_dir: str | Path | None = None,
        fault_log: FaultLog | None = None,
    ):
        if (analysis is None) == (config_xml is None):
            raise ValueError("provide exactly one of analysis= or config_xml=")
        if fallback not in _FALLBACKS:
            raise ValueError(f"fallback must be one of {_FALLBACKS}, got {fallback!r}")
        self.solver = solver
        self.adaptor = NekDataAdaptor(solver, samples_per_element)
        if analysis is None:
            analysis = ConfigurableAnalysis(
                solver.comm, config_xml, output_dir, extra_factories
            )
        self.analysis = analysis
        self.watch = StopWatch()
        self.invocations = 0
        self.stop_requested = False
        self.fallback = fallback
        self.fallback_dir = Path(fallback_dir) if fallback_dir is not None else Path(
            output_dir
        ) / "fallback"
        if fault_log is None:
            fault_log = getattr(analysis, "fault_log", None) or FaultLog()
        self.fault_log = fault_log
        self.degraded_steps = 0
        self.fallback_bytes = 0
        self.transport_down = False
        self._log = get_logger("repro.insitu.bridge", solver.comm)

    def update(self, step: int, time: float) -> bool:
        """Offer the current state to the analyses; False = stop."""
        self.adaptor.set_data_time_step(step)
        self.adaptor.set_data_time(time)
        tel = get_telemetry()
        with self.watch.phase("insitu"), tel.tracer.span("bridge.execute", step=step):
            try:
                keep_going = self.analysis.execute(self.adaptor)
            except TransportError as exc:
                keep_going = self._degrade(step, time, exc)
            finally:
                self.adaptor.release_data()
        self.invocations += 1
        if tel.enabled:
            tel.metrics.counter(
                "repro_bridge_invocations_total", "Bridge analysis invocations"
            ).inc()
        if not keep_going:
            self.stop_requested = True
        return keep_going

    def _degrade(self, step: int, time: float, exc: TransportError) -> bool:
        """Handle a transport failure past the retry budget."""
        if self.fallback == "raise":
            raise exc
        if not self.transport_down:
            self.transport_down = True
            self._log.warning(
                "transport failed at step %d (%s: %s); degrading to %r",
                step, type(exc).__name__, exc, self.fallback,
            )
            # stop peers from burning their retry budgets on a dead endpoint
            mark_down = getattr(self.analysis, "mark_transport_down", None)
            if mark_down is not None:
                mark_down()
        # the endpoint crash (if one was injected) resolves as "degraded"
        # exactly once; later degraded steps are clamped to no-ops
        self.fault_log.try_resolve("endpoint_crash", "degraded")
        self.degraded_steps += 1
        tel = get_telemetry()
        if tel.enabled:
            tel.tracer.instant(
                "bridge.degraded", step=step, fallback=self.fallback,
                error=type(exc).__name__,
            )
            tel.metrics.counter(
                "repro_bridge_degraded_steps_total",
                "Steps served by the degraded fallback path",
            ).inc()
        if self.fallback == "checkpoint":
            self._write_fallback_checkpoint(step, time)
        return True

    def _write_fallback_checkpoint(self, step: int, time: float) -> None:
        from repro.nekrs.checkpoint import write_checkpoint

        solver = self.solver
        fields = {
            "pressure": solver.p,
            "velocity_x": solver.u,
            "velocity_y": solver.v,
            "velocity_z": solver.w,
        }
        _, nbytes = write_checkpoint(
            self.fallback_dir,
            solver.case.name,
            step,
            time,
            solver.comm.rank,
            solver.comm.size,
            fields,
        )
        self.fallback_bytes += nbytes

    def observer(self, solver: NekRSSolver, report: StepReport) -> bool:
        """Adapter for ``NekRSSolver.run(observer=...)``.

        Propagates the analyses' keep-going verdict, so a stop request
        (guard trip, steering command) halts the solver loop at this
        step boundary on every rank.
        """
        return self.update(report.step, report.time)

    def finalize(self) -> None:
        with self.watch.phase("finalize"):
            try:
                self.analysis.finalize()
            except TransportError as exc:
                if self.fallback == "raise":
                    raise
                self._log.warning("transport failed during finalize: %s", exc)

    @property
    def insitu_seconds(self) -> float:
        return self.watch.total("insitu")


# -- functional facade mirroring the C bridge of Listing 3 -------------------

_active_bridge: Bridge | None = None


def initialize(solver: NekRSSolver, config_xml: str, output_dir: str | Path = ".") -> Bridge:
    """Create and register the process-wide bridge (Listing 3 style)."""
    global _active_bridge
    if _active_bridge is not None:
        raise RuntimeError("bridge already initialized; call finalize() first")
    _active_bridge = Bridge(solver, config_xml=config_xml, output_dir=output_dir)
    return _active_bridge


def update(step: int, time: float) -> bool:
    if _active_bridge is None:
        raise RuntimeError("bridge not initialized")
    return _active_bridge.update(step, time)


def finalize() -> None:
    global _active_bridge
    if _active_bridge is None:
        raise RuntimeError("bridge not initialized")
    _active_bridge.finalize()
    _active_bridge = None
