"""The bridge: embedding SENSEI into the simulation (paper Listing 3).

The bridge owns the DataAdaptor and the ConfigurableAnalysis, stamps
time/step onto the adaptor each timestep, invokes the analyses, and
releases per-step staging afterwards.  Attach :meth:`Bridge.observer`
to :meth:`NekRSSolver.run` and the simulation is instrumented — the
entire integration surface, as in the paper.

A module-level functional facade (initialize / update / finalize)
mirrors the C bridge's shape for readers following the paper listing.
"""

from __future__ import annotations

from pathlib import Path

from repro.insitu.adaptor import NekDataAdaptor
from repro.nekrs.solver import NekRSSolver, StepReport
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.configurable import ConfigurableAnalysis
from repro.util.timing import StopWatch


class Bridge:
    def __init__(
        self,
        solver: NekRSSolver,
        analysis: AnalysisAdaptor | None = None,
        config_xml: str | None = None,
        output_dir: str | Path = ".",
        samples_per_element: int | None = None,
        extra_factories: dict | None = None,
    ):
        if (analysis is None) == (config_xml is None):
            raise ValueError("provide exactly one of analysis= or config_xml=")
        self.solver = solver
        self.adaptor = NekDataAdaptor(solver, samples_per_element)
        if analysis is None:
            analysis = ConfigurableAnalysis(
                solver.comm, config_xml, output_dir, extra_factories
            )
        self.analysis = analysis
        self.watch = StopWatch()
        self.invocations = 0
        self.stop_requested = False

    def update(self, step: int, time: float) -> bool:
        """Offer the current state to the analyses; False = stop."""
        self.adaptor.set_data_time_step(step)
        self.adaptor.set_data_time(time)
        with self.watch.phase("insitu"):
            keep_going = self.analysis.execute(self.adaptor)
            self.adaptor.release_data()
        self.invocations += 1
        if not keep_going:
            self.stop_requested = True
        return keep_going

    def observer(self, solver: NekRSSolver, report: StepReport) -> None:
        """Adapter for ``NekRSSolver.run(observer=...)``."""
        self.update(report.step, report.time)

    def finalize(self) -> None:
        with self.watch.phase("finalize"):
            self.analysis.finalize()

    @property
    def insitu_seconds(self) -> float:
        return self.watch.total("insitu")


# -- functional facade mirroring the C bridge of Listing 3 -------------------

_active_bridge: Bridge | None = None


def initialize(solver: NekRSSolver, config_xml: str, output_dir: str | Path = ".") -> Bridge:
    """Create and register the process-wide bridge (Listing 3 style)."""
    global _active_bridge
    if _active_bridge is not None:
        raise RuntimeError("bridge already initialized; call finalize() first")
    _active_bridge = Bridge(solver, config_xml=config_xml, output_dir=output_dir)
    return _active_bridge


def update(step: int, time: float) -> bool:
    if _active_bridge is None:
        raise RuntimeError("bridge not initialized")
    return _active_bridge.update(step, time)


def finalize() -> None:
    global _active_bridge
    if _active_bridge is None:
        raise RuntimeError("bridge not initialized")
    _active_bridge.finalize()
    _active_bridge = None
