"""Run profiles: the measured quantities the benchmarks replay at scale.

A :class:`RunProfile` captures, from a real scaled-down instrumented
run, everything the machine model needs to predict leadership-scale
behavior: per-step compute seconds, per-invocation in situ seconds,
bytes moved per channel (device->host, checkpoint, stream, images) and
per-rank memory.  :class:`MemoryModel` decomposes the memory
high-water mark the way Figures 3 and 6 report it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RunProfile:
    """Measured per-rank/per-step quantities from an instrumented run."""

    case: str
    mode: str                      # "original" | "checkpoint" | "catalyst" | ...
    ranks: int
    steps: int
    insitu_interval: int
    gridpoints_per_rank: float
    num_fields: int

    solver_seconds_per_step: float = 0.0
    insitu_seconds_per_invocation: float = 0.0
    d2h_bytes_per_invocation_per_rank: int = 0
    checkpoint_bytes_per_dump_per_rank: int = 0
    stream_bytes_per_step_per_rank: int = 0
    image_bytes_per_invocation: int = 0
    render_seconds_per_invocation: float = 0.0

    solver_memory_bytes_per_rank: int = 0
    staging_memory_bytes_per_rank: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def invocations(self) -> int:
        """In situ / checkpoint invocations over the whole run."""
        if self.insitu_interval <= 0:
            return 0
        return self.steps // self.insitu_interval

    def scaled_gridpoints(self, target_ranks: int, weak: bool) -> float:
        """Total gridpoints when re-run on `target_ranks` ranks.

        weak scaling: per-rank load constant; strong scaling: the total
        problem of the measured run is held fixed.
        """
        if weak:
            return self.gridpoints_per_rank * target_ranks
        return self.gridpoints_per_rank * self.ranks


@dataclass
class MemoryModel:
    """Decomposed per-rank memory high-water mark (bytes)."""

    solver: int
    staging: int = 0        # SENSEI/VTK host mirrors + resample buffers
    transport: int = 0      # SST queue occupancy / write buffers
    render: int = 0         # gathered volume + framebuffer (root rank)

    @property
    def total(self) -> int:
        return self.solver + self.staging + self.transport + self.render

    def per_node(self, ranks_per_node: int) -> int:
        return self.total * ranks_per_node

    def aggregate(self, num_ranks: int) -> int:
        """Sum over ranks, the way Figure 3 reports memory."""
        return self.total * num_ranks
