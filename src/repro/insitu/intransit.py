"""In transit orchestration: simulation group + SENSEI endpoint group.

Reproduces the paper's Section 4.2 topology: the rank group splits
into simulation ranks and endpoint ranks at a configurable ratio (the
paper uses 4:1), an SST stream connects them, and the endpoint runs a
SENSEI data consumer in one of three measurement modes:

- ``none``        — No Transport: SENSEI runtime loaded, no analysis
                    adaptor enabled, nothing streamed;
- ``checkpoint``  — the endpoint writes pressure+velocity as VTU files;
- ``catalyst``    — the endpoint renders two images per received step.

The key property the paper highlights — simulation memory independent
of visualization resources — holds by construction here too: the
simulation side stages at most ``queue_limit`` marshaled steps.
"""

from __future__ import annotations

import time as _time
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path

from repro.adios.engine import SSTBroker, SSTReaderEngine, SSTWriterEngine, StepStatus
from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryPolicy
from repro.fleet import (
    AnalysisSink,
    Autoscaler,
    FleetConfig,
    FleetCoordinator,
    FleetEndpoint,
)
from repro.codec import CodecSpec
from repro.insitu.adaptor import NekDataAdaptor
from repro.insitu.bridge import Bridge
from repro.insitu.router import HybridRouter, RoutedAnalysis, RouterPolicy
from repro.insitu.streamed import StreamedDataAdaptor
from repro.nekrs.config import CaseDefinition
from repro.nekrs.solver import NekRSSolver
from repro.observe.session import TelemetrySession, get_telemetry
from repro.occa import Device
from repro.parallel.comm import Communicator
from repro.parallel.partition import block_range
from repro.perf import config as perf_config
from repro.sensei.analyses.catalyst_adaptor import CatalystAnalysisAdaptor
from repro.sensei.analyses.adios_adaptor import ADIOSAnalysisAdaptor
from repro.sensei.analyses.posthoc_io import VTKPosthocIO
from repro.catalyst.pipeline import RenderPipeline, RenderSpec

_MODES = ("none", "checkpoint", "catalyst")
_ROUTES = ("insitu", "intransit", "hybrid")


@dataclass
class InTransitResult:
    """Per-rank outcome of an in transit run."""

    role: str                  # "simulation" | "endpoint"
    rank: int                  # rank within its subgroup
    steps: int = 0
    wall_seconds: float = 0.0
    mean_step_seconds: float = 0.0
    stream_bytes: int = 0
    memory_bytes: int = 0
    staging_bytes: int = 0
    files_bytes: int = 0       # endpoint VTU/PNG output
    images: int = 0
    extra: dict = field(default_factory=dict)


class InTransitRunner:
    """Drives one full in transit run inside an SPMD group.

    Use as the body of :func:`repro.parallel.run_spmd`::

        runner = InTransitRunner(case_builder, mode="catalyst", ...)
        results = run_spmd(10, runner.run)
    """

    def __init__(
        self,
        case_builder,                  # fn(num_sim_ranks) -> CaseDefinition
        mode: str = "catalyst",
        ratio: int = 4,                # sim ranks per endpoint rank
        num_steps: int | None = None,
        stream_interval: int = 1,
        arrays: tuple[str, ...] = ("pressure", "velocity_magnitude"),
        queue_limit: int = 2,
        queue_full_policy: str = "Block",
        output_dir: str | Path = "intransit_out",
        samples_per_element: int | None = None,
        device_mode: str = "cuda-sim",
        image_size: int = 256,
        contour_isovalue: float = 0.0,
        injector: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        fallback: str = "checkpoint",
        session: TelemetrySession | None = None,
        fleet: FleetConfig | None = None,
        codec: CodecSpec | None = None,
        route: str = "intransit",
        router_policy: RouterPolicy | None = None,
    ):
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if ratio < 1:
            raise ValueError("ratio must be >= 1")
        if stream_interval < 1:
            raise ValueError("stream_interval must be >= 1")
        if route not in _ROUTES:
            raise ValueError(f"route must be one of {_ROUTES}, got {route!r}")
        self.case_builder = case_builder
        self.mode = mode
        self.ratio = ratio
        self.num_steps = num_steps
        self.stream_interval = stream_interval
        self.arrays = tuple(arrays)
        self.queue_limit = queue_limit
        self.queue_full_policy = queue_full_policy
        self.output_dir = Path(output_dir)
        self.samples_per_element = samples_per_element
        self.device_mode = device_mode
        self.image_size = image_size
        self.contour_isovalue = contour_isovalue
        self.injector = injector
        if retry is None and injector is not None:
            # fault runs need the writer to discover a dead endpoint in
            # test-scale time, not after the 120s default broker timeout
            retry = RetryPolicy(max_attempts=3, base_delay=0.01, attempt_timeout=0.1)
        self.retry = retry
        self.fallback = fallback
        self.session = session
        self.fleet = fleet
        self.codec = codec
        self.route = route
        self.router_policy = router_policy
        # rank bodies run in fresh threads where the thread-local perf
        # flag resets to enabled, so the naive_mode() dispatch decision
        # is captured here, at construction (the gate's idiom)
        self._use_fleet = fleet is not None and perf_config.enabled()
        self.last_broker: SSTBroker | None = None
        self.last_coordinator: FleetCoordinator | None = None

    # -- layout -----------------------------------------------------------
    def split_counts(self, total_ranks: int) -> tuple[int, int]:
        """(num_sim, num_endpoint) for a total group size."""
        if total_ranks < 2:
            raise ValueError("in transit needs at least 2 ranks (sim + endpoint)")
        num_end = max(1, round(total_ranks / (self.ratio + 1)))
        num_sim = total_ranks - num_end
        return num_sim, num_end

    # -- body ----------------------------------------------------------------
    def run(self, comm: Communicator) -> InTransitResult:
        num_sim, num_end = self.split_counts(comm.size)
        is_sim = comm.rank < num_sim

        broker = None
        coordinator = None
        if self.mode != "none":
            if comm.rank == 0:
                broker = SSTBroker(
                    num_writers=num_sim,
                    queue_limit=self.queue_limit,
                    queue_full_policy=self.queue_full_policy,
                    injector=self.injector,
                )
                if self._use_fleet:
                    coordinator = self._build_coordinator(broker, num_sim, num_end)
            broker = comm.bcast(broker, root=0)
            self.last_broker = broker
            if self._use_fleet:
                coordinator = comm.bcast(coordinator, root=0)
                self.last_coordinator = coordinator

        sub = comm.split(0 if is_sim else 1)
        # telemetry tracks stay keyed by the *global* rank, so one
        # merged trace shows simulation and endpoint groups side by side
        scope = (
            self.session.activate(comm.rank) if self.session is not None
            else nullcontext()
        )
        try:
            with scope:
                if is_sim:
                    return self._run_simulation(sub, broker, num_sim)
                if coordinator is not None:
                    return self._run_endpoint_fleet(sub, broker, coordinator)
                return self._run_endpoint(sub, broker, num_sim, num_end)
        finally:
            # drain this rank's pending live-telemetry delta so timelines
            # are complete the instant the run body returns
            if self.session is not None:
                tel = self.session.rank(comm.rank)
                tel.live.flush()

    def _build_coordinator(
        self, broker: SSTBroker, num_sim: int, num_end: int
    ) -> FleetCoordinator:
        cfg = self.fleet
        autoscaler = (
            Autoscaler(num_sim, cfg.autoscaler) if cfg.autoscale else None
        )
        initial = cfg.initial_active
        if initial is not None:
            initial = min(initial, num_end)
        return FleetCoordinator(
            broker,
            num_writers=num_sim,
            pool_size=num_end,
            initial_active=initial,
            lease_timeout=cfg.lease_timeout,
            seed=cfg.seed,
            autoscaler=autoscaler,
            autoscale_every=cfg.autoscale_every,
            live=getattr(self.session, "live", None),
        )

    # -- simulation side ---------------------------------------------------
    def _run_simulation(
        self, comm: Communicator, broker: SSTBroker | None, num_sim: int
    ) -> InTransitResult:
        case = self.case_builder(num_sim)
        device = Device(self.device_mode)
        solver = NekRSSolver(case, comm, device)
        steps = self.num_steps or case.num_steps

        bridge = None
        adios = None
        router = None
        routed = None
        mesh_name = "uniform" if self.mode == "catalyst" else "mesh"
        if broker is not None:
            engine = SSTWriterEngine(
                "nekrs-sensei", broker, writer_rank=comm.rank,
                retry=self.retry, codec=self.codec,
            )
            adios = ADIOSAnalysisAdaptor(
                comm, engine, mesh_name=mesh_name, arrays=self.arrays
            )
            analysis = adios
            if self.route != "intransit":
                # hybrid/in situ routing: each rank holds an identical
                # router fed with allreduced byte counts, so every rank
                # streams (or skips) the same steps — see insitu.router
                router = HybridRouter(self.router_policy, mode=self.route)
                insitu_analysis = (
                    self._endpoint_analysis(
                        comm, out=self.output_dir / f"{self.mode}_insitu"
                    )
                    if self.mode == "catalyst" else None
                )
                analysis = routed = RoutedAnalysis(
                    comm, adios, router, insitu=insitu_analysis
                )
            bridge = Bridge(
                solver,
                analysis=analysis,
                samples_per_element=self.samples_per_element,
                fallback=self.fallback,
                fallback_dir=self.output_dir / "fallback",
            )
        else:
            # No Transport: SENSEI is still in the loop (empty config).
            bridge = Bridge(solver, config_xml="<sensei></sensei>")

        step_seconds = []
        t0 = _time.perf_counter()
        for i in range(steps):
            ts = _time.perf_counter()
            report = solver.step()
            if report.step % self.stream_interval == 0:
                bridge.update(report.step, report.time)
            step_seconds.append(_time.perf_counter() - ts)
        bridge.finalize()
        wall = _time.perf_counter() - t0

        stream_bytes = adios.bytes_sent if adios is not None else 0
        staging = bridge.adaptor.staging_bytes_peak
        # staged SST payloads bound simulation-side transport memory
        transport = (
            self.queue_limit * (stream_bytes // max(adios.steps_sent, 1))
            if adios is not None and adios.steps_sent
            else 0
        )
        result = InTransitResult(
            role="simulation",
            rank=comm.rank,
            steps=steps,
            wall_seconds=wall,
            mean_step_seconds=sum(step_seconds) / len(step_seconds),
            stream_bytes=stream_bytes,
            memory_bytes=solver.memory_bytes() + staging + transport,
            staging_bytes=staging,
            extra={
                "insitu_seconds": bridge.insitu_seconds,
                "degraded_steps": bridge.degraded_steps,
                "fallback_bytes": bridge.fallback_bytes,
                "transport_down": bridge.transport_down,
            },
        )
        if adios is not None and engine.codec_context is not None:
            result.extra["codec"] = engine.codec_context.stats.as_dict()
        if router is not None:
            result.extra["router"] = router.stats()
            result.extra["routes"] = dict(router.route_counts)
        if routed is not None:
            result.extra["streamed_steps"] = routed.streamed_steps
            result.extra["insitu_steps"] = routed.insitu_steps
            result.extra["dropped_steps"] = routed.dropped_steps
        return result

    # -- endpoint side ----------------------------------------------------------
    def _endpoint_analysis(self, comm: Communicator, out: Path | None = None):
        if out is None:
            out = self.output_dir / self.mode
        if self.mode == "checkpoint":
            return VTKPosthocIO(
                comm,
                output_dir=out,
                mesh_name="mesh",
                arrays=self.arrays,
            )
        pipeline = RenderPipeline(
            specs=[
                RenderSpec(
                    kind="contour",
                    array=self.arrays[0],
                    isovalue=self.contour_isovalue,
                    color_array=self.arrays[-1],
                ),
                RenderSpec(kind="slice", array=self.arrays[0], axis="y"),
            ],
            width=self.image_size,
            height=self.image_size,
            name="intransit",
        )
        return CatalystAnalysisAdaptor(
            comm,
            pipeline.render,
            arrays=self.arrays,
            mesh_name="uniform",
            output_dir=out,
        )

    def _run_endpoint(
        self,
        comm: Communicator,
        broker: SSTBroker | None,
        num_sim: int,
        num_end: int,
    ) -> InTransitResult:
        t0 = _time.perf_counter()
        result = InTransitResult(role="endpoint", rank=comm.rank)
        if broker is None:  # No Transport: endpoint idles
            result.wall_seconds = _time.perf_counter() - t0
            return result

        lo, hi = block_range(num_sim, num_end, comm.rank)
        reader = SSTReaderEngine("nekrs-sensei", broker, writer_ranks=list(range(lo, hi)))
        adaptor = StreamedDataAdaptor(comm)
        analysis = self._endpoint_analysis(comm)

        staging_peak = 0
        recv_bytes = 0
        steps = 0
        crashed = False
        while True:
            if self.injector is not None:
                crash = self.injector.maybe(
                    "endpoint_crash", "endpoint.loop", steps, key=comm.rank
                )
                if crash is not None:
                    # simulate the endpoint dying: stop consuming without
                    # draining or closing; writers discover via timeouts
                    get_telemetry().tracer.instant(
                        "fault.endpoint_crash", step=steps, endpoint=comm.rank
                    )
                    crashed = True
                    break
            status = reader.begin_step()
            if status is StepStatus.END_OF_STREAM:
                break
            payloads = reader.payloads()
            if not adaptor.consume(payloads):
                # every payload of this stream step was dropped or
                # corrupted — skip analysis, keep consuming
                reader.end_step()
                continue
            staging_peak = max(staging_peak, adaptor.staged_bytes)
            recv_bytes += adaptor.staged_bytes
            analysis.execute(adaptor)
            adaptor.release_data()
            reader.end_step()
            steps += 1
        if not crashed:
            analysis.finalize()

        result.steps = steps
        result.wall_seconds = _time.perf_counter() - t0
        result.mean_step_seconds = result.wall_seconds / steps if steps else 0.0
        result.stream_bytes = recv_bytes
        result.staging_bytes = staging_peak
        result.memory_bytes = staging_peak
        result.extra.update(
            crashed=crashed,
            empty_steps=adaptor.empty_steps,
            corrupt_steps=reader.corrupt_steps,
        )
        if isinstance(analysis, VTKPosthocIO):
            result.files_bytes = analysis.bytes_written
        elif isinstance(analysis, CatalystAnalysisAdaptor):
            result.files_bytes = analysis.image_bytes
            result.images = analysis.images_written
            result.memory_bytes += analysis.peak_staging_bytes
        return result

    def _run_endpoint_fleet(
        self,
        comm: Communicator,
        broker: SSTBroker,
        coordinator: FleetCoordinator,
    ) -> InTransitResult:
        """One elastic endpoint: poll the fleet coordinator for work.

        Every endpoint renders through a private single-rank sink (no
        collectives across the endpoint group), so membership changes
        never strand a peer in a barrier.  Output files are keyed by
        (step, block) / (name, step) only — byte-identical to the
        static ``_run_endpoint`` split when no faults fire.
        """
        t0 = _time.perf_counter()
        sink = AnalysisSink(self._endpoint_analysis)
        endpoint = FleetEndpoint(
            comm.rank,
            coordinator,
            sink,
            injector=self.injector,
            poll_interval=self.fleet.poll_interval,
        )
        report = endpoint.run()

        result = InTransitResult(role="endpoint", rank=comm.rank)
        result.steps = report.steps
        result.wall_seconds = _time.perf_counter() - t0
        result.mean_step_seconds = (
            result.wall_seconds / report.steps if report.steps else 0.0
        )
        result.stream_bytes = report.recv_bytes
        result.staging_bytes = report.staging_peak
        result.memory_bytes = report.staging_peak
        result.extra.update(
            fleet=True,
            crashed=report.crashed,
            idle_polls=report.idle_polls,
            parked_polls=report.parked_polls,
            empty_steps=sink.adaptor.empty_steps,
            corrupt_steps=coordinator.corrupt_steps,
        )
        analysis = sink.analysis
        if isinstance(analysis, VTKPosthocIO):
            result.files_bytes = analysis.bytes_written
        elif isinstance(analysis, CatalystAnalysisAdaptor):
            result.files_bytes = analysis.image_bytes
            result.images = analysis.images_written
            result.memory_bytes += analysis.peak_staging_bytes
        if comm.rank == 0 and not report.crashed:
            result.extra["fleet_stats"] = coordinator.stats()
        return result
