"""Bandwidth-aware hybrid routing: in situ, in transit, or drop.

Each step, the :class:`HybridRouter` estimates the bytes the transport
would put on the wire (raw payload bytes over the EWMA-smoothed
compression ratio it has observed so far) and compares them to the
per-step wire budget in its :class:`RouterPolicy`:

- within budget           -> ``intransit``: compress and stream to
                             the endpoint group (the paper's path);
- over budget             -> ``insitu``: render on the simulation
                             ranks this step, keep the wire clear;
- far over budget, or no  -> ``drop``: record the decision and skip
  in situ pipeline wired     visualization for the step entirely.

Transitions are hysteretic: the router leaves the streaming route
only after ``hysteresis`` consecutive over-budget estimates and
returns only after the estimate has stayed under
``reentry_margin * budget`` just as long, so a single noisy step
cannot flap the fleet between routes.

Decisions must be *uniform across simulation ranks*: the SST reader
side pairs one payload per writer per stream step, so a partial put
(some ranks streaming a step that others skipped) would mis-assemble
every later step.  :class:`RoutedAnalysis` therefore allreduces the
measured byte counts and feeds every rank's router the same numbers —
identical inputs, identical EWMA state, identical route.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.observe.session import get_telemetry
from repro.parallel.comm import Communicator
from repro.sensei.analysis_adaptor import AnalysisAdaptor

__all__ = ["RouterPolicy", "RouteDecision", "HybridRouter", "RoutedAnalysis"]

ROUTES = ("insitu", "intransit", "drop")


@dataclass(frozen=True)
class RouterPolicy:
    """What the wire can take, and how reluctantly to switch routes.

    ``wire_budget_bytes`` is the group-aggregate compressed bytes one
    step may put on the wire.  ``drop_factor`` scales the budget to
    the point where even rendering in situ is abandoned for the step.
    """

    wire_budget_bytes: float = 32 * 2**20
    hysteresis: int = 2              # consecutive steps before switching
    reentry_margin: float = 0.8      # re-enter streaming below this x budget
    drop_factor: float = 8.0         # drop when estimate exceeds budget x this
    ratio_smoothing: float = 0.5     # EWMA weight of the newest observed ratio
    probe_interval: int = 16         # stream one step per this many parked ones

    def __post_init__(self):
        if self.wire_budget_bytes <= 0:
            raise ValueError("wire_budget_bytes must be positive")
        if self.hysteresis < 1:
            raise ValueError("hysteresis must be >= 1")
        if not 0 < self.reentry_margin <= 1:
            raise ValueError("reentry_margin must be in (0, 1]")
        if self.drop_factor < 1:
            raise ValueError("drop_factor must be >= 1")
        if not 0 < self.ratio_smoothing <= 1:
            raise ValueError("ratio_smoothing must be in (0, 1]")
        if self.probe_interval < 1:
            raise ValueError("probe_interval must be >= 1")

    @classmethod
    def for_cluster(
        cls,
        cluster,
        num_sim_ranks: int,
        step_seconds: float,
        stream_fraction: float = 0.25,
        **kwargs,
    ) -> "RouterPolicy":
        """Budget from a machine model: the bytes `num_sim_ranks` can
        stream in `stream_fraction` of one `step_seconds` solver step
        without the wire becoming the bottleneck."""
        from repro.machine.netmodel import NetworkModel

        net = NetworkModel(cluster)
        budget = (
            num_sim_ranks * net.per_rank_bw_gbs * 1e9
            * step_seconds * stream_fraction
        )
        return cls(wire_budget_bytes=budget, **kwargs)


@dataclass(frozen=True)
class RouteDecision:
    """One step's routing verdict, as recorded and served at /routes."""

    step: int
    route: str
    raw_bytes: int
    est_wire_bytes: float
    ratio: float
    reason: str

    def as_dict(self) -> dict:
        return {
            "step": self.step,
            "route": self.route,
            "raw_bytes": self.raw_bytes,
            "est_wire_bytes": self.est_wire_bytes,
            "ratio": self.ratio,
            "reason": self.reason,
        }


class HybridRouter:
    """Per-step route chooser with hysteresis and live byte feedback.

    ``mode`` forces a route (``"insitu"`` / ``"intransit"``) or lets
    the budget decide (``"hybrid"``).  Feed :meth:`observe` the
    *allreduced* raw and wire byte counts after each streamed step so
    the compression-ratio estimate tracks the run; every rank must see
    the same numbers (see the module docstring).
    """

    def __init__(self, policy: RouterPolicy | None = None,
                 mode: str = "hybrid", insitu_available: bool = True):
        if mode not in ("hybrid", "insitu", "intransit"):
            raise ValueError(
                f"route mode must be hybrid, insitu or intransit, got {mode!r}"
            )
        self.policy = policy or RouterPolicy()
        self.mode = mode
        self.insitu_available = insitu_available
        self.ratio_ewma = 1.0        # until observed, assume incompressible
        self._ratio_observed = False
        self.raw_bytes_ewma = 0.0
        self._streaming = True       # current steady-state route
        self._over_streak = 0
        self._under_streak = 0
        self._parked_steps = 0       # steps since last streamed (for probes)
        self.route_counts = {r: 0 for r in ROUTES}
        self.decisions: deque[RouteDecision] = deque(maxlen=128)

    # -- feedback ------------------------------------------------------
    def observe(self, raw_bytes: int, wire_bytes: int) -> None:
        """Fold one streamed step's measured raw/wire bytes into the
        ratio estimate.  Call with group-aggregate (allreduced) counts."""
        if wire_bytes <= 0 or raw_bytes <= 0:
            return
        ratio = raw_bytes / wire_bytes
        if not self._ratio_observed:
            # the incompressible prior carries no information — the first
            # measurement replaces it instead of being halved by it
            self._ratio_observed = True
            self.ratio_ewma = ratio
            return
        a = self.policy.ratio_smoothing
        self.ratio_ewma = a * ratio + (1 - a) * self.ratio_ewma

    # -- decisions -----------------------------------------------------
    def decide(self, step: int, raw_bytes: int) -> RouteDecision:
        """Choose this step's route from the estimated wire bytes."""
        a = self.policy.ratio_smoothing
        self.raw_bytes_ewma = (
            a * raw_bytes + (1 - a) * self.raw_bytes_ewma
            if self.raw_bytes_ewma else float(raw_bytes)
        )
        est = raw_bytes / max(self.ratio_ewma, 1e-12)
        if self.mode == "intransit":
            decision = self._record(step, "intransit", raw_bytes, est, "forced")
        elif self.mode == "insitu":
            route = "insitu" if self.insitu_available else "drop"
            decision = self._record(step, route, raw_bytes, est, "forced")
        else:
            decision = self._decide_hybrid(step, raw_bytes, est)
        return decision

    def _decide_hybrid(self, step: int, raw_bytes: int,
                       est: float) -> RouteDecision:
        # the route reflects the state *entering* the step; streak
        # updates below only affect later steps, so a parked router
        # still streamed its first `hysteresis` over-budget steps and
        # learned the real compression ratio before giving up the wire
        budget = self.policy.wire_budget_bytes
        if self._streaming:
            decision = self._record(
                step, "intransit", raw_bytes, est, "within budget"
            )
        else:
            self._parked_steps += 1
            if self._parked_steps >= self.policy.probe_interval:
                # periodic probe: refresh the ratio estimate so a run
                # whose fields became compressible can re-enter streaming
                self._parked_steps = 0
                decision = self._record(step, "intransit", raw_bytes, est, "probe")
            elif est > budget * self.policy.drop_factor:
                decision = self._record(
                    step, "drop", raw_bytes, est, "over drop threshold"
                )
            elif self.insitu_available:
                decision = self._record(step, "insitu", raw_bytes, est, "over budget")
            else:
                decision = self._record(
                    step, "drop", raw_bytes, est, "no in situ pipeline"
                )
        if est > budget:
            self._over_streak += 1
            self._under_streak = 0
        elif est <= budget * self.policy.reentry_margin:
            self._under_streak += 1
            self._over_streak = 0
        else:
            # dead band between reentry margin and budget: hold course
            self._over_streak = 0
            self._under_streak = 0
        if self._streaming and self._over_streak >= self.policy.hysteresis:
            self._streaming = False
        elif not self._streaming and self._under_streak >= self.policy.hysteresis:
            self._streaming = True
            self._parked_steps = 0
        return decision

    def _record(self, step: int, route: str, raw_bytes: int, est: float,
                reason: str) -> RouteDecision:
        decision = RouteDecision(
            step=step, route=route, raw_bytes=int(raw_bytes),
            est_wire_bytes=float(est), ratio=self.ratio_ewma, reason=reason,
        )
        self.route_counts[route] += 1
        self.decisions.append(decision)
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter(
                "repro_router_route_total",
                "Steps sent down each visualization route",
                {"route": route},
            ).inc()
        return decision

    def stats(self) -> dict:
        """Snapshot for result extras and the /routes debug view."""
        return {
            "mode": self.mode,
            "wire_budget_bytes": self.policy.wire_budget_bytes,
            "ratio_ewma": self.ratio_ewma,
            "raw_bytes_ewma": self.raw_bytes_ewma,
            "streaming": self._streaming,
            "routes": dict(self.route_counts),
            "decisions": [d.as_dict() for d in self.decisions],
        }


class RoutedAnalysis(AnalysisAdaptor):
    """Route each bridge invocation through the hybrid router.

    Wraps the in transit transport (an ``ADIOSAnalysisAdaptor``) and,
    optionally, a simulation-side in situ analysis.  Raw byte counts
    are allreduced over `comm` before every decision and wire byte
    counts after every streamed step, keeping the router state — and
    hence the route — identical on every simulation rank.
    """

    def __init__(
        self,
        comm: Communicator,
        transit,                       # ADIOSAnalysisAdaptor
        router: HybridRouter,
        insitu: AnalysisAdaptor | None = None,
    ):
        self.comm = comm
        self.transit = transit
        self.router = router
        self.insitu = insitu
        if insitu is None:
            router.insitu_available = False
        self.streamed_steps = 0
        self.insitu_steps = 0
        self.dropped_steps = 0

    # the bridge's degradation layer reaches these through the wrapper
    @property
    def fault_log(self):
        return self.transit.fault_log

    def mark_transport_down(self) -> None:
        self.transit.mark_transport_down()

    def _raw_bytes(self, data) -> int:
        """Bytes this rank would stream: the requested point arrays."""
        mesh_name = self.transit.mesh_name
        mesh = data.get_mesh(mesh_name)
        total = 0
        for name in self.transit.arrays:
            data.add_array(mesh, mesh_name, "point", name)
        for block in mesh.blocks:
            if block is None:
                continue
            for name in self.transit.arrays:
                total += block.point_data[name].values.nbytes
        return total

    def execute(self, data) -> bool:
        step = data.get_data_time_step()
        raw_local = self._raw_bytes(data)
        raw_global = self.comm.allreduce(raw_local)
        decision = self.router.decide(step, raw_global)
        if decision.route == "intransit":
            # measure the codec's raw-vs-wire bytes for exactly this step;
            # the stats delta excludes frame headers and counts the raw
            # geometry blocks on both sides, so the ratio is never
            # dragged below 1 by the step-0 geometry send
            ctx = getattr(self.transit.engine, "codec_context", None)
            pre = (ctx.stats.raw_bytes, ctx.stats.wire_bytes) if ctx else None
            keep_going = self.transit.execute(data)
            if ctx is not None:
                raw_d = ctx.stats.raw_bytes - pre[0]
                wire_d = ctx.stats.wire_bytes - pre[1]
            else:
                raw_d = raw_local
                wire_d = getattr(self.transit.engine, "last_wire_bytes", 0)
            self.router.observe(
                self.comm.allreduce(raw_d), self.comm.allreduce(wire_d)
            )
            self.streamed_steps += 1
            return keep_going
        if decision.route == "insitu" and self.insitu is not None:
            self.insitu_steps += 1
            return bool(self.insitu.execute(data))
        self.dropped_steps += 1
        tel = get_telemetry()
        if tel.enabled:
            tel.tracer.instant(
                "router.dropped", step=step, raw_bytes=raw_global,
                est_wire_bytes=decision.est_wire_bytes,
            )
        return True

    def finalize(self) -> None:
        # always close the transport: the endpoint group unblocks on the
        # writer-close sentinel even if nothing was ever streamed
        self.transit.finalize()
        if self.insitu is not None:
            self.insitu.finalize()
