"""StreamedDataAdaptor: the endpoint's view of in transit data.

The in transit endpoint is "always a SENSEI data consumer": it
receives ADIOS step payloads from its assigned writer ranks and
presents them through the same DataAdaptor interface the simulation
side uses, so *identical* analysis configurations run in situ or in
transit — the interchangeability the SENSEI design is for.

Geometry arrives once (writers send it on their first step); the
adaptor caches it per writer and reuses it for subsequent steps.
"""

from __future__ import annotations

import json

import numpy as np

from repro.adios.marshal import StepPayload
from repro.parallel.comm import Communicator
from repro.sensei.data_adaptor import DataAdaptor
from repro.sensei.metadata import ArrayMetadata, MeshMetadata
from repro.vtkdata.arrays import DataArray
from repro.vtkdata.dataset import ImageData, MultiBlockDataSet, UnstructuredGrid


class StreamedDataAdaptor(DataAdaptor):
    def __init__(self, comm: Communicator):
        super().__init__(comm)
        self._payloads: dict[int, StepPayload] = {}
        self._mesh_name = "mesh"
        self._arrays: tuple[str, ...] = ()
        self._extra: dict = {}
        self._num_blocks = 0
        #: stream steps that arrived with no payloads (all writers'
        #: payloads dropped or corrupted) and were skipped as no-ops
        self.empty_steps = 0
        # geometry cache: block index -> ('grid', points, cells) or
        # ('image', origin, spacing, dims)
        self._geometry: dict[int, tuple] = {}

    # -- feeding -----------------------------------------------------------
    def consume(self, payloads: dict[int, StepPayload]) -> bool:
        """Install the payloads of one stream step (writer -> payload).

        An empty payload dict is a degraded-but-survivable condition
        mid-stream (every writer's step was dropped or corrupted): it
        is counted and skipped — returns False so the endpoint loop
        can bypass analysis for this step instead of crashing.
        """
        if not payloads:
            self.empty_steps += 1
            return False
        self._payloads = payloads
        first = next(iter(payloads.values()))
        self._mesh_name = first.attributes.get("mesh_name", "mesh")
        self._arrays = tuple(
            a for a in first.attributes.get("arrays", "").split(",") if a
        )
        self._extra = json.loads(first.attributes.get("extra", "{}"))
        self._num_blocks = int(first.attributes.get("num_blocks", "0"))
        self.set_data_time_step(first.step)
        self.set_data_time(first.time)
        for payload in payloads.values():
            if payload.attributes.get("has_geometry") == "1":
                self._cache_geometry(payload)
        return True

    def install_geometry(self, payload: StepPayload) -> None:
        """Cache a writer's geometry from a replayed first-step payload.

        Fleet endpoints acquire streams mid-run (rebalance, steal) and
        may never see a writer's geometry-bearing first step; the
        coordinator retains that payload and replays it here before
        the first :meth:`consume` of the writer's data.
        """
        if payload.attributes.get("has_geometry") == "1":
            self._cache_geometry(payload)

    def _cache_geometry(self, payload: StepPayload) -> None:
        block_ids = payload.variables["block_ids"].astype(int)
        for index in block_ids:
            prefix = f"block{index}"
            if f"{prefix}/points" in payload.variables:
                self._geometry[int(index)] = (
                    "grid",
                    payload.variables[f"{prefix}/points"],
                    payload.variables[f"{prefix}/cells"],
                )
            elif f"{prefix}/geom" in payload.variables:
                geom = payload.variables[f"{prefix}/geom"]
                origin = tuple(geom[0:3])
                spacing = tuple(geom[3:6])
                dims = tuple(int(d) for d in geom[6:9])
                self._geometry[int(index)] = ("image", origin, spacing, dims)

    # -- DataAdaptor interface ------------------------------------------------
    def get_number_of_meshes(self) -> int:
        return 1 if self._payloads else 0

    def get_mesh_metadata(self, index: int) -> MeshMetadata:
        if index != 0 or not self._payloads:
            raise IndexError("no streamed mesh available")
        pts = sum(
            g[1].shape[0] if g[0] == "grid" else int(np.prod(g[3]))
            for g in self._geometry.values()
        )
        cells = sum(
            g[2].shape[0] if g[0] == "grid" else 0 for g in self._geometry.values()
        )
        return MeshMetadata(
            name=self._mesh_name,
            num_blocks=self._num_blocks or len(self._geometry),
            local_block_ids=tuple(sorted(self._geometry)),
            num_points_local=pts,
            num_cells_local=cells,
            arrays=tuple(ArrayMetadata(a, "point", 1) for a in self._arrays),
            step=self._step,
            time=self._time,
            extra=dict(self._extra),
        )

    def get_mesh(self, name: str, structure_only: bool = False) -> MultiBlockDataSet:
        if name != self._mesh_name:
            raise KeyError(
                f"stream carries mesh {self._mesh_name!r}, not {name!r}"
            )
        mb = MultiBlockDataSet()
        top = self._num_blocks or (max(self._geometry) + 1 if self._geometry else 0)
        if top:
            mb.set_block(top - 1, None)
        if structure_only:
            return mb
        for index, geom in self._geometry.items():
            if geom[0] == "grid":
                mb.set_block(index, UnstructuredGrid(geom[1], geom[2]))
            else:
                _, origin, spacing, dims = geom
                mb.set_block(index, ImageData(dims=dims, origin=origin, spacing=spacing))
        return mb

    def add_array(
        self,
        mesh: MultiBlockDataSet,
        mesh_name: str,
        association: str,
        array_name: str,
    ) -> None:
        if association != "point":
            raise ValueError("streamed data is point-centered")
        found = False
        for payload in self._payloads.values():
            block_ids = payload.variables["block_ids"].astype(int)
            for index in block_ids:
                key = f"block{index}/array/{array_name}"
                if key not in payload.variables:
                    continue
                block = mesh.get_block(int(index))
                if block is None:
                    continue
                block.add_array(DataArray(array_name, payload.variables[key]))
                found = True
        if not found:
            raise KeyError(f"stream carries no array {array_name!r}")

    def release_data(self) -> None:
        self._payloads = {}

    @property
    def staged_bytes(self) -> int:
        """Bytes of the currently held step payloads."""
        return sum(p.nbytes for p in self._payloads.values())


def replay_file_staged(
    directory,
    stream_name: str,
    num_writers: int,
    analysis,
    comm: Communicator,
) -> int:
    """Run a SENSEI consumer over *file-staged* in transit data.

    The SST engine streams live; its file-staged sibling writes BP step
    files that a consumer replays later (ADIOS's BPFile workflow, and
    the degraded mode every in transit deployment falls back to when
    the endpoint is not up).  This drives `analysis` over every step
    found on disk, in order; returns the number of steps consumed.
    """
    from repro.adios.engine import BPFileReaderEngine, StepStatus

    readers = [
        BPFileReaderEngine(stream_name, directory, writer_rank=w)
        for w in range(num_writers)
    ]
    adaptor = StreamedDataAdaptor(comm)
    steps = 0
    while True:
        payloads = {}
        done = 0
        for w, reader in enumerate(readers):
            status = reader.begin_step()
            if status is StepStatus.END_OF_STREAM:
                done += 1
                continue
            payloads[w] = reader.get()
        if done == len(readers):
            break
        if done:
            raise ValueError(
                "file-staged series is ragged: writers disagree on step count"
            )
        if adaptor.consume(payloads):
            analysis.execute(adaptor)
            adaptor.release_data()
            steps += 1
        for reader in readers:
            reader.end_step()
    analysis.finalize()
    return steps
