"""Discrete performance model of leadership-class machines.

The paper's figures are produced on Polaris (ALCF) and JUWELS Booster
(JSC) at 280-1120 MPI ranks.  This package models those machines —
node/GPU/NIC specs, a DragonFly+ interconnect, a Lustre-like parallel
filesystem, and PCIe device links — so that communication/IO volumes
measured from real scaled-down runs can be replayed at paper scale.

The model is deliberately first-order (Hockney latency-bandwidth with
topology-dependent hop latency, bandwidth-shared filesystem): the
figures we reproduce are *overhead comparisons and scaling shapes*,
which are governed by byte volumes and bandwidth ratios, not by
microarchitectural detail.
"""

from repro.machine.specs import (
    GpuSpec,
    NicSpec,
    NodeSpec,
    FilesystemSpec,
    ClusterSpec,
    POLARIS,
    JUWELS_BOOSTER,
)
from repro.machine.topology import DragonflyPlusTopology
from repro.machine.netmodel import NetworkModel, PcieModel, CollectiveModel
from repro.machine.fsmodel import FilesystemModel
from repro.machine.clock import SimClock, CostLedger

__all__ = [
    "GpuSpec",
    "NicSpec",
    "NodeSpec",
    "FilesystemSpec",
    "ClusterSpec",
    "POLARIS",
    "JUWELS_BOOSTER",
    "DragonflyPlusTopology",
    "NetworkModel",
    "PcieModel",
    "CollectiveModel",
    "FilesystemModel",
    "SimClock",
    "CostLedger",
]
