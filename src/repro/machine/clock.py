"""Simulated clocks and cost ledgers.

A :class:`SimClock` tracks one rank's modeled wall time; a
:class:`CostLedger` breaks accumulated time and bytes into categories
(compute, device-host copy, checkpoint I/O, network, render, ...) so
benchmark drivers can report the same decomposition the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CostLedger:
    """Accumulated seconds and bytes per category."""

    seconds: dict[str, float] = field(default_factory=dict)
    nbytes: dict[str, int] = field(default_factory=dict)

    def add_time(self, category: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative time for {category}: {seconds}")
        self.seconds[category] = self.seconds.get(category, 0.0) + seconds

    def add_bytes(self, category: str, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"negative bytes for {category}: {nbytes}")
        self.nbytes[category] = self.nbytes.get(category, 0) + nbytes

    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def total_bytes(self) -> int:
        return sum(self.nbytes.values())

    def merge(self, other: "CostLedger") -> "CostLedger":
        for k, v in other.seconds.items():
            self.add_time(k, v)
        for k, v in other.nbytes.items():
            self.add_bytes(k, v)
        return self

    def as_dict(self) -> dict:
        return {"seconds": dict(self.seconds), "nbytes": dict(self.nbytes)}


@dataclass
class SimClock:
    """One rank's simulated wall clock with a category ledger."""

    now: float = 0.0
    ledger: CostLedger = field(default_factory=CostLedger)

    def advance(self, seconds: float, category: str = "compute") -> float:
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self.now += seconds
        self.ledger.add_time(category, seconds)
        return self.now

    def sync_to(self, t: float, category: str = "wait") -> float:
        """Jump forward to absolute time `t` (barrier semantics); time
        spent waiting is charged to `category`.  No-op if already past."""
        if t > self.now:
            self.ledger.add_time(category, t - self.now)
            self.now = t
        return self.now
