"""Parallel-filesystem write model.

Checkpointing in the paper writes ~19 GB of field data per run on a
Lustre-class filesystem.  The dominant effects at scale are (a) a
per-file metadata cost and (b) aggregate bandwidth saturation once
enough nodes write concurrently — a single node cannot exceed its own
link, and the whole job cannot exceed the filesystem's backend.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.specs import FilesystemSpec

_GB = 1e9


@dataclass(frozen=True)
class FilesystemModel:
    spec: FilesystemSpec

    def effective_write_gbs(self, nodes_writing: int) -> float:
        """Sustained aggregate write bandwidth for a concurrent job."""
        if nodes_writing < 1:
            raise ValueError("nodes_writing must be >= 1")
        return min(
            nodes_writing * self.spec.per_node_write_gbs,
            self.spec.aggregate_write_gbs,
        )

    def write_time(
        self, total_bytes: int, nodes_writing: int, num_files: int = 1
    ) -> float:
        """Wall time for a collective write of `total_bytes` spread
        evenly over `nodes_writing` nodes into `num_files` files.

        Three terms: the commit/fsync barrier all writers pay once per
        dump, the metadata burst (file creates pipeline across nodes),
        and the bandwidth term at the job's effective aggregate rate.
        """
        if total_bytes < 0:
            raise ValueError("total_bytes must be non-negative")
        if num_files < 0:
            raise ValueError("num_files must be non-negative")
        bw = self.effective_write_gbs(nodes_writing) * _GB
        meta = self.spec.open_latency_s * max(1.0, num_files / nodes_writing)
        return self.spec.sync_latency_s + meta + total_bytes / bw
