"""Latency-bandwidth (Hockney) cost models for network, PCIe, collectives.

``time = latency(hops) + bytes / bandwidth`` is the standard
first-order model; collectives use the usual tree/butterfly formulas
(Thakur et al., "Optimization of Collective Communication Operations in
MPICH"), which is what MPICH/CrayMPI implement on these machines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machine.specs import ClusterSpec, GpuSpec, NicSpec
from repro.machine.topology import DragonflyPlusTopology

_GB = 1e9


@dataclass(frozen=True)
class PcieModel:
    """Host<->device transfer cost for one GPU."""

    gpu: GpuSpec

    def transfer_time(self, nbytes: int) -> float:
        """One-way device<->host copy time in seconds."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.gpu.pcie_latency_s + nbytes / (self.gpu.pcie_bw_gbs * _GB)


class NetworkModel:
    """Point-to-point message cost over the cluster fabric."""

    def __init__(self, spec: ClusterSpec, topology: DragonflyPlusTopology | None = None):
        self.spec = spec
        self.topology = topology or DragonflyPlusTopology(spec)
        self.nic: NicSpec = spec.node.nic
        # Injection bandwidth is shared by the ranks of a node; with one
        # rank per GPU and nics_per_node NICs, each rank sustains:
        self.per_rank_bw_gbs = (
            spec.node.nics_per_node * self.nic.bw_gbs / spec.node.ranks_per_node
        )

    def latency(self, hops: int) -> float:
        """End-to-end zero-byte latency for a route of `hops` switches."""
        if hops == 0:
            return 0.0   # intra-node: handled by shared memory
        return self.nic.latency_s + hops * self.spec.inter_hop_latency_s

    def p2p_time(self, nbytes: int, hops: int) -> float:
        """Time to move `nbytes` between two ranks `hops` switches apart."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if hops == 0:
            # intra-node via host memory; model as memcpy at GPU PCIe rate
            return nbytes / (self.spec.node.gpu.pcie_bw_gbs * _GB)
        return self.latency(hops) + nbytes / (self.per_rank_bw_gbs * _GB)

    def stream_time(self, nbytes: int, num_streams: int, hops: int) -> float:
        """Time for `num_streams` concurrent same-size streams from one
        node (e.g. SST producers on one node feeding an endpoint)."""
        if num_streams < 1:
            raise ValueError("num_streams must be >= 1")
        node_bw = self.spec.node.nics_per_node * self.nic.bw_gbs * _GB
        return self.latency(hops) + nbytes * num_streams / node_bw


class CollectiveModel:
    """Costs of MPI collectives at a given job size.

    `P` is the number of ranks; `hops` the typical route length within
    the job (use ``topology.mean_hops``).  Formulas follow the
    recursive-doubling / Rabenseifner algorithms used for large
    messages in MPICH derivatives.
    """

    def __init__(self, net: NetworkModel):
        self.net = net

    def _alpha(self, hops: float) -> float:
        return self.net.nic.latency_s + hops * self.net.spec.inter_hop_latency_s

    def _beta(self) -> float:
        """Seconds per byte at per-rank injection bandwidth."""
        return 1.0 / (self.net.per_rank_bw_gbs * _GB)

    def allreduce_time(self, nbytes: int, P: int, hops: float = 3.0) -> float:
        """Rabenseifner: 2 log2(P) latency + 2 (P-1)/P bytes bandwidth."""
        if P < 1:
            raise ValueError("P must be >= 1")
        if P == 1 or nbytes < 0:
            return 0.0
        lg = math.ceil(math.log2(P))
        return 2 * lg * self._alpha(hops) + 2 * nbytes * (P - 1) / P * self._beta()

    def bcast_time(self, nbytes: int, P: int, hops: float = 3.0) -> float:
        """Scatter+allgather broadcast for large messages."""
        if P <= 1:
            return 0.0
        lg = math.ceil(math.log2(P))
        return (lg + P - 1) * self._alpha(hops) / P + 2 * nbytes * (P - 1) / P * self._beta()

    def gather_time(self, nbytes_per_rank: int, P: int, hops: float = 3.0) -> float:
        """Binomial gather; root receives (P-1) payloads."""
        if P <= 1:
            return 0.0
        lg = math.ceil(math.log2(P))
        return lg * self._alpha(hops) + nbytes_per_rank * (P - 1) * self._beta()

    def barrier_time(self, P: int, hops: float = 3.0) -> float:
        if P <= 1:
            return 0.0
        return 2 * math.ceil(math.log2(P)) * self._alpha(hops)

    def halo_exchange_time(
        self, nbytes_per_neighbor: int, num_neighbors: int, hops: float = 3.0
    ) -> float:
        """Nearest-neighbor exchange (gather-scatter): neighbors overlap
        on the NIC, so bandwidth terms serialize but latency is paid
        once per posting round."""
        if num_neighbors < 0:
            raise ValueError("num_neighbors must be non-negative")
        if num_neighbors == 0:
            return 0.0
        return self._alpha(hops) + num_neighbors * nbytes_per_neighbor * self._beta()
