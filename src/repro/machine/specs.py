"""Hardware specifications for the machines used in the paper.

Numbers are public figures for Polaris (ALCF) and JUWELS Booster (JSC):
peak bandwidths are derated by a sustained-fraction factor, which is
how first-order HPC performance models are usually calibrated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.sizes import GIB


@dataclass(frozen=True)
class GpuSpec:
    """One accelerator."""

    name: str
    fp64_tflops: float          # sustained FP64 throughput for SEM kernels
    mem_bytes: int              # device HBM capacity
    mem_bw_gbs: float           # device memory bandwidth (GB/s)
    pcie_bw_gbs: float          # sustained host<->device bandwidth (GB/s)
    pcie_latency_s: float = 10e-6

    def __post_init__(self):
        if self.fp64_tflops <= 0 or self.pcie_bw_gbs <= 0:
            raise ValueError("GPU throughput figures must be positive")


@dataclass(frozen=True)
class NicSpec:
    """One network interface."""

    name: str
    bw_gbs: float               # sustained injection bandwidth (GB/s)
    latency_s: float            # zero-byte one-way latency


@dataclass(frozen=True)
class NodeSpec:
    """One compute node."""

    name: str
    cpu_sockets: int
    cores_per_socket: int
    mem_bytes: int
    gpus_per_node: int
    gpu: GpuSpec
    nics_per_node: int
    nic: NicSpec

    @property
    def ranks_per_node(self) -> int:
        """The paper runs one MPI rank per GPU on both machines."""
        return self.gpus_per_node


@dataclass(frozen=True)
class FilesystemSpec:
    """A parallel filesystem (Lustre-like) shared by all nodes."""

    name: str
    aggregate_write_gbs: float   # sustained aggregate write bandwidth
    per_node_write_gbs: float    # single-node write ceiling
    open_latency_s: float        # metadata cost per file create/open
    #: barrier/fsync cost of committing a collective dump: checkpoint
    #: writers synchronize before resuming the solve, and on production
    #: Lustre/GPFS that commit is tens of milliseconds regardless of size
    sync_latency_s: float = 0.05
    stripe_count: int = 8


@dataclass(frozen=True)
class ClusterSpec:
    """A whole machine: nodes + interconnect topology + filesystem."""

    name: str
    num_nodes: int
    node: NodeSpec
    fs: FilesystemSpec
    # DragonFly+ shape: nodes attach to leaf switches grouped into cells.
    nodes_per_switch: int = 16
    switches_per_group: int = 12
    inter_hop_latency_s: float = 0.4e-6   # added latency per switch hop

    def __post_init__(self):
        if self.num_nodes < 1:
            raise ValueError("cluster must have at least one node")

    @property
    def total_ranks(self) -> int:
        return self.num_nodes * self.node.ranks_per_node

    def nodes_for_ranks(self, ranks: int) -> int:
        """Node count hosting `ranks` ranks at one rank per GPU."""
        rpn = self.node.ranks_per_node
        if ranks < 1:
            raise ValueError("ranks must be >= 1")
        nodes = -(-ranks // rpn)
        if nodes > self.num_nodes:
            raise ValueError(
                f"{ranks} ranks need {nodes} nodes but {self.name} has "
                f"{self.num_nodes}"
            )
        return nodes


# --------------------------------------------------------------------------
# Machine presets used in the paper's evaluation.
# --------------------------------------------------------------------------

_A100_SXM = GpuSpec(
    name="NVIDIA A100-SXM4-40GB",
    fp64_tflops=4.0,            # sustained SEM kernel throughput, not peak 9.7
    mem_bytes=40 * GIB,
    mem_bw_gbs=1400.0,
    pcie_bw_gbs=20.0,           # PCIe gen4 x16 sustained
)

#: Polaris (ALCF): 560 nodes, 1x AMD EPYC 7543P "Milan", 4x A100,
#: Slingshot interconnect in a dragonfly, HPE Cray EX. 44 PF.
POLARIS = ClusterSpec(
    name="Polaris",
    num_nodes=560,
    node=NodeSpec(
        name="polaris-node",
        cpu_sockets=1,
        cores_per_socket=32,
        mem_bytes=512 * GIB,
        gpus_per_node=4,
        gpu=_A100_SXM,
        nics_per_node=2,
        nic=NicSpec(name="Slingshot-10", bw_gbs=20.0, latency_s=2.0e-6),
    ),
    fs=FilesystemSpec(
        name="grand-lustre",
        aggregate_write_gbs=650.0,
        per_node_write_gbs=5.0,
        open_latency_s=2e-3,
    ),
    nodes_per_switch=16,
    switches_per_group=14,
)

#: JUWELS Booster (JSC): 936 nodes, 2x AMD EPYC 7402 "Rome", 4x A100,
#: 4x HDR-200 InfiniBand in a DragonFly+ topology. 71 PF.
JUWELS_BOOSTER = ClusterSpec(
    name="JUWELS Booster",
    num_nodes=936,
    node=NodeSpec(
        name="juwels-booster-node",
        cpu_sockets=2,
        cores_per_socket=24,
        mem_bytes=512 * GIB,
        gpus_per_node=4,
        gpu=_A100_SXM,
        nics_per_node=4,
        nic=NicSpec(name="HDR-200 InfiniBand", bw_gbs=23.0, latency_s=1.5e-6),
    ),
    fs=FilesystemSpec(
        name="just-gpfs",
        aggregate_write_gbs=400.0,
        per_node_write_gbs=4.0,
        open_latency_s=2e-3,
    ),
    nodes_per_switch=24,
    switches_per_group=10,
)
