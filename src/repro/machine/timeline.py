"""Phase timelines and text Gantt charts for predicted runs.

Turns a cost breakdown (category -> seconds) into a proportional text
Gantt so a terminal user can see *where* a configuration spends its
time — the visual the paper's stacked-bar figures give.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Span:
    category: str
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class Timeline:
    """An ordered sequence of non-overlapping phase spans."""

    spans: list[Span] = field(default_factory=list)

    @classmethod
    def from_breakdown(cls, seconds: dict[str, float], order=None) -> "Timeline":
        """Lay the categories out back-to-back (serialized phases)."""
        keys = list(order) if order else sorted(seconds, key=seconds.get, reverse=True)
        spans = []
        t = 0.0
        for key in keys:
            dur = seconds.get(key, 0.0)
            if dur < 0:
                raise ValueError(f"negative duration for {key!r}")
            if dur == 0.0:
                continue
            spans.append(Span(key, t, dur))
            t += dur
        return cls(spans)

    @property
    def total(self) -> float:
        return self.spans[-1].end if self.spans else 0.0

    def share(self, category: str) -> float:
        """Fraction of total time spent in one category."""
        if self.total == 0:
            return 0.0
        return sum(s.duration for s in self.spans if s.category == category) / self.total

    def render(self, width: int = 60) -> str:
        """Proportional text Gantt, one row per span.

        Every nonzero span gets at least one cell so rare-but-present
        phases never disappear from the chart.
        """
        if not self.spans:
            return "(empty timeline)"
        if width < 10:
            raise ValueError("width too small to render")
        label_w = max(len(s.category) for s in self.spans)
        lines = []
        for s in self.spans:
            cells = max(1, round(width * s.duration / self.total))
            offset = round(width * s.start / self.total)
            offset = min(offset, width - 1)
            bar = " " * offset + "#" * min(cells, width - offset)
            pct = 100.0 * s.duration / self.total
            lines.append(
                f"{s.category.ljust(label_w)} |{bar.ljust(width)}| "
                f"{s.duration:.3g}s ({pct:.1f}%)"
            )
        lines.append(f"{'total'.ljust(label_w)}  {self.total:.4g}s")
        return "\n".join(lines)
