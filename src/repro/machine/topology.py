"""DragonFly+ interconnect topology.

JUWELS Booster's network is a DragonFly+ (leaf/spine cells joined
all-to-all by global links); Polaris' Slingshot network is a dragonfly
variant that the same model approximates.  We build the switch graph
with networkx and answer hop counts and path routes between compute
nodes; the network model converts hops into latency.

Topology construction:

- each *cell* (group) contains ``switches_per_group`` leaf switches and
  the same number of spine switches, leaf-spine fully bipartite;
- spines of different cells are connected all-to-all (one global link
  per cell pair per spine, collapsed to a single graph edge — we model
  hop counts, not link contention at the per-link level);
- each leaf switch hosts ``nodes_per_switch`` compute nodes.

Minimal routes are therefore: same switch = 1 switch hop,
same cell = leaf-spine-leaf = 3, different cell = leaf-spine-spine-leaf
= 4 (one global hop).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import networkx as nx

from repro.machine.specs import ClusterSpec


@dataclass(frozen=True)
class NodeLocation:
    """Where a compute node lives in the topology."""

    cell: int
    switch: int     # leaf switch index within the cell
    port: int       # port on that leaf switch


class DragonflyPlusTopology:
    """Switch-level DragonFly+ graph for a :class:`ClusterSpec`."""

    def __init__(self, spec: ClusterSpec):
        self.spec = spec
        per_cell = spec.nodes_per_switch * spec.switches_per_group
        self.num_cells = -(-spec.num_nodes // per_cell)
        self.graph = nx.Graph()
        for cell in range(self.num_cells):
            leaves = [("leaf", cell, s) for s in range(spec.switches_per_group)]
            spines = [("spine", cell, s) for s in range(spec.switches_per_group)]
            self.graph.add_nodes_from(leaves)
            self.graph.add_nodes_from(spines)
            for leaf in leaves:
                for spine in spines:
                    self.graph.add_edge(leaf, spine)
        # global links: all-to-all between cells through spines
        for a in range(self.num_cells):
            for b in range(a + 1, self.num_cells):
                for s in range(spec.switches_per_group):
                    self.graph.add_edge(("spine", a, s), ("spine", b, s))

    def locate(self, node_id: int) -> NodeLocation:
        """Deterministic placement of compute node `node_id`."""
        if not 0 <= node_id < self.spec.num_nodes:
            raise ValueError(
                f"node {node_id} out of range for {self.spec.name} "
                f"({self.spec.num_nodes} nodes)"
            )
        per_switch = self.spec.nodes_per_switch
        per_cell = per_switch * self.spec.switches_per_group
        cell, rem = divmod(node_id, per_cell)
        switch, port = divmod(rem, per_switch)
        return NodeLocation(cell=cell, switch=switch, port=port)

    @lru_cache(maxsize=4096)
    def switch_hops(self, node_a: int, node_b: int) -> int:
        """Number of switches traversed between two compute nodes.

        0 for the same node (intra-node traffic never enters the
        fabric).
        """
        if node_a == node_b:
            return 0
        la, lb = self.locate(node_a), self.locate(node_b)
        if la.cell == lb.cell and la.switch == lb.switch:
            return 1
        src = ("leaf", la.cell, la.switch)
        dst = ("leaf", lb.cell, lb.switch)
        return nx.shortest_path_length(self.graph, src, dst) + 1

    def max_hops(self) -> int:
        """Worst-case minimal route length (diameter in switch hops)."""
        if self.num_cells > 1:
            return 4
        return 3 if self.spec.switches_per_group > 1 or self.spec.nodes_per_switch < self.spec.num_nodes else 1

    def mean_hops(self, num_nodes: int, samples: int = 256, seed: int = 0) -> float:
        """Average hop count between distinct nodes in a job of
        `num_nodes` nodes placed contiguously from node 0."""
        if num_nodes < 2:
            return 0.0
        import numpy as np

        rng = np.random.default_rng(seed)
        total = 0.0
        n = 0
        for _ in range(samples):
            a, b = rng.integers(0, num_nodes, size=2)
            if a == b:
                continue
            total += self.switch_hops(int(a), int(b))
            n += 1
        return total / max(n, 1)
