"""Nek5000 compatibility layer.

The paper emphasizes that Nek5000 and NekRS share a data model, so one
``nek_sensei::DataAdaptor`` (kept in a shared submodule) instruments
both codes.  This package mirrors that: :class:`Nek5000Solver` is the
legacy CPU-resident flavor of the solver — host arrays (``serial``
device, so no device-boundary copies), `.usr`-style per-step user hook
(``userchk``) — and the *same* :class:`repro.insitu.NekDataAdaptor`
instruments it unchanged (see ``tests/test_nek5000.py``).
"""

from repro.nek5000.solver import Nek5000Solver

__all__ = ["Nek5000Solver"]
