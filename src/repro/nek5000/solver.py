"""The legacy-flavored solver: CPU arrays and .usr-style hooks."""

from __future__ import annotations

from typing import Callable

from repro.nekrs.config import CaseDefinition
from repro.nekrs.solver import NekRSSolver, StepReport
from repro.occa import Device
from repro.parallel.comm import Communicator


class Nek5000Solver(NekRSSolver):
    """Nek5000-style driver over the shared SEM/NS core.

    Differences from :class:`NekRSSolver`, mirroring the real codes:

    - fields are host-resident (``serial`` OCCA device): the SENSEI
      adaptor's ``copy_to_host`` becomes free, exactly as coupling
      Nek5000 avoids the GPU->CPU transfer NekRS pays;
    - a ``userchk(solver, report)`` callback runs after every step —
      the `.usr` file hook where Nek5000 users put runtime diagnostics
      and where the original SENSEI instrumentation was invoked from.
    """

    def __init__(
        self,
        case: CaseDefinition,
        comm: Communicator,
        userchk: Callable[["Nek5000Solver", StepReport], None] | None = None,
    ):
        super().__init__(case, comm, Device("serial"))
        self.userchk = userchk

    def step(self) -> StepReport:
        report = super().step()
        if self.userchk is not None:
            self.userchk(self, report)
        return report
