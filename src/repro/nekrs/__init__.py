"""NekRS-analog incompressible thermal-fluid solver.

A faithful scaled-down counterpart of NekRS (Fischer et al. 2022):
spectral-element spatial discretization (``repro.sem``), a
P_N-P_N velocity-pressure splitting with BDF_k/EXT_k time integration,
implicit Helmholtz viscous/thermal solves, explicit extrapolated
advection, Boussinesq buoyancy, and Brinkman penalization for immersed
solid obstacles (how we embed the pebble bed into a box mesh).

The solver keeps its fields resident on a ``repro.occa`` device; in
situ consumers must copy them to the host through the device layer,
reproducing the GPU->CPU boundary the paper instruments.

Public surface:

- :class:`CaseDefinition` / :class:`FieldRegistry` — problem setup,
- :class:`NekRSSolver` — the time stepper,
- :func:`read_par` / :func:`write_par` — NekRS-style .par case files,
- :mod:`repro.nekrs.checkpoint` — .fld-style binary checkpoints,
- :mod:`repro.nekrs.cases` — pb146-analog pebble bed, Rayleigh-Benard,
  lid-driven cavity.
"""

from repro.nekrs.config import CaseDefinition, PassiveScalar, VelocityBC, ScalarBC
from repro.nekrs.solver import NekRSSolver, StepReport
from repro.nekrs.timestepper import bdf_coefficients, ext_coefficients
from repro.nekrs.parfile import read_par, write_par, par_to_overrides

__all__ = [
    "CaseDefinition",
    "PassiveScalar",
    "VelocityBC",
    "ScalarBC",
    "NekRSSolver",
    "StepReport",
    "bdf_coefficients",
    "ext_coefficients",
    "read_par",
    "write_par",
    "par_to_overrides",
]
