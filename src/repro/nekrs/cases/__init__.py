"""Science cases used by the paper's evaluation.

- :mod:`repro.nekrs.cases.pebble_bed` — the in situ test bench: a
  pb146-analog pebble-bed reactor core flow (Section 4.1),
- :mod:`repro.nekrs.cases.rayleigh_benard` — the in transit weak-scaling
  workload: Rayleigh-Benard mesoscale convection (Section 4.2),
- :mod:`repro.nekrs.cases.lid_cavity` — a small verification standard
  (not in the paper; used by tests and the quickstart example).
"""

from repro.nekrs.cases.pebble_bed import pebble_bed_case, pebble_centers
from repro.nekrs.cases.rayleigh_benard import rayleigh_benard_case, weak_scaled_rbc_case
from repro.nekrs.cases.lid_cavity import lid_cavity_case

__all__ = [
    "pebble_bed_case",
    "pebble_centers",
    "rayleigh_benard_case",
    "weak_scaled_rbc_case",
    "lid_cavity_case",
]
