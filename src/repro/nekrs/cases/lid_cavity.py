"""Lid-driven cavity — small verification case (tests + quickstart).

A unit cube of fluid with the top lid (ZMAX) sliding at unit speed in
x and no-slip everywhere else: the classic incompressible benchmark.
The lid velocity is tapered near the edges so the boundary data is
continuous at the lid/wall corners (the standard "regularized cavity"),
which keeps spectral convergence clean.
"""

from __future__ import annotations

import numpy as np

from repro.nekrs.config import CaseDefinition, VelocityBC
from repro.sem.mesh import BoundaryTag


def lid_cavity_case(
    reynolds: float = 100.0,
    elements: int = 3,
    order: int = 5,
    dt: float = 5e-3,
    num_steps: int = 200,
) -> CaseDefinition:
    if reynolds <= 0:
        raise ValueError("Reynolds number must be positive")

    def lid_u(x, y, z, t):
        # quartic taper: 1 in the interior, 0 at the side walls
        return (16.0 * x * (1.0 - x) * y * (1.0 - y)) ** 2

    noslip = VelocityBC()
    return CaseDefinition(
        name=f"cavity-re{reynolds:g}",
        mesh_shape=(elements, elements, elements),
        extent=((0.0, 0.0, 0.0), (1.0, 1.0, 1.0)),
        order=order,
        viscosity=1.0 / reynolds,
        dt=dt,
        num_steps=num_steps,
        time_order=2,
        velocity_bcs={
            BoundaryTag.ZMAX: VelocityBC(u=lid_u),
            BoundaryTag.ZMIN: noslip,
            BoundaryTag.XMIN: noslip,
            BoundaryTag.XMAX: noslip,
            BoundaryTag.YMIN: noslip,
            BoundaryTag.YMAX: noslip,
        },
    )
