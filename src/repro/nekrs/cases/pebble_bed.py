"""Pebble-bed reactor core flow — the pb146 analog (paper Section 4.1).

The paper's in situ test bench is NekRS's ``pb146`` example: coolant
flow through a cylindrical canister packed with 146 spherical fuel
pebbles.  The production mesh is body-fitted around every pebble; a
body-fitted sphere mesh is out of scope for an axis-aligned box-mesh
SEM, so the pebbles are embedded by **Brinkman penalization**: inside a
pebble a large drag ``chi * u`` forces the velocity to zero, a standard
immersed-boundary technique for porous/packed-bed flows.  The solver
path exercised (3-D forced flow + heated obstacles + scalar transport)
matches the production case, and the rendered imagery shows the same
structure: flow channeling between hot spheres.

Geometry: a vertical duct (z up) with inflow at ZMIN, outflow at ZMAX,
no-slip side walls, packed with a body-centered-cubic-ish arrangement
of equal spheres.  ``num_pebbles`` defaults to 146 like pb146; smaller
counts scale the duct length down proportionally so the packing
density stays comparable.
"""

from __future__ import annotations

import numpy as np

from repro.nekrs.config import CaseDefinition, ScalarBC, VelocityBC
from repro.sem.mesh import BoundaryTag


def pebble_centers(num_pebbles: int, duct_width: float = 1.0) -> tuple[np.ndarray, float]:
    """Deterministic packed arrangement of `num_pebbles` sphere centers.

    Returns (centers (P, 3), radius).  Pebbles sit on a staggered
    lattice: square layers of 2x2 alternating with single-center
    layers (a BCC-like column packing), which both packs densely and
    guarantees no overlap.
    """
    if num_pebbles < 1:
        raise ValueError("need at least one pebble")
    w = duct_width
    # in-layer center spacing is 0.4w, so 2r must stay below that
    radius = 0.19 * w
    dz = 0.38 * w  # layer spacing; BCC-like offset keeps spheres apart
    centers = []
    layer = 0
    z = 0.45 * w
    while len(centers) < num_pebbles:
        if layer % 2 == 0:
            pts = [
                (0.3 * w, 0.3 * w),
                (0.7 * w, 0.3 * w),
                (0.3 * w, 0.7 * w),
                (0.7 * w, 0.7 * w),
            ]
        else:
            pts = [(0.5 * w, 0.5 * w)]
        for (cx, cy) in pts:
            if len(centers) >= num_pebbles:
                break
            centers.append((cx, cy, z))
        layer += 1
        z += dz
    return np.array(centers), radius


def _duct_height(num_pebbles: int, duct_width: float) -> float:
    centers, radius = pebble_centers(num_pebbles, duct_width)
    return float(centers[:, 2].max() + radius + 0.45 * duct_width)


def pebble_bed_case(
    num_pebbles: int = 146,
    elements_per_unit: int = 4,
    order: int = 5,
    inflow_velocity: float = 1.0,
    viscosity: float = 2e-2,
    dt: float = 2e-3,
    num_steps: int = 3000,
    brinkman_chi: float = 1e4,
    pebble_temperature: float = 1.0,
) -> CaseDefinition:
    """Build the pb146-analog case.

    `elements_per_unit` controls resolution (elements per duct width);
    the duct height — and so the element count — grows with the pebble
    count, which is how the benchmark harness scales the workload.
    """
    width = 1.0
    height = _duct_height(num_pebbles, width)
    centers, radius = pebble_centers(num_pebbles, width)

    ex = ey = max(2, int(round(elements_per_unit * width)))
    ez = max(2, int(round(elements_per_unit * height)))

    def chi(x, y, z):
        """Brinkman drag: brinkman_chi inside any pebble, 0 in fluid.

        A smooth tanh edge over ~one grid spacing keeps the penalty
        resolvable by the polynomial basis.
        """
        h = width / (ex * order)  # nominal grid spacing
        out = np.zeros_like(x)
        for cx, cy, cz in centers:
            r = np.sqrt((x - cx) ** 2 + (y - cy) ** 2 + (z - cz) ** 2)
            out += 0.5 * (1.0 - np.tanh((r - radius) / h))
        return brinkman_chi * np.clip(out, 0.0, 1.0)

    def pebble_surface_temperature(x, y, z):
        """Initial condition: hot inside pebbles, cold coolant."""
        h = width / (ex * order)
        out = np.zeros_like(x)
        for cx, cy, cz in centers:
            r = np.sqrt((x - cx) ** 2 + (y - cy) ** 2 + (z - cz) ** 2)
            out = np.maximum(out, 0.5 * (1.0 - np.tanh((r - radius) / h)))
        return pebble_temperature * out

    def heat_source(x, y, z, t):
        """Volumetric fission heating inside the pebbles."""
        h = width / (ex * order)
        out = np.zeros_like(x)
        for cx, cy, cz in centers:
            r = np.sqrt((x - cx) ** 2 + (y - cy) ** 2 + (z - cz) ** 2)
            out = np.maximum(out, 0.5 * (1.0 - np.tanh((r - radius) / h)))
        return 5.0 * out

    inflow = VelocityBC(u=0.0, v=0.0, w=inflow_velocity)
    noslip = VelocityBC()

    return CaseDefinition(
        name=f"pb{num_pebbles}",
        mesh_shape=(ex, ey, ez),
        extent=((0.0, 0.0, 0.0), (width, width, height)),
        order=order,
        viscosity=viscosity,
        conductivity=viscosity,   # Pr = 1 coolant
        dt=dt,
        num_steps=num_steps,
        time_order=2,
        velocity_bcs={
            BoundaryTag.ZMIN: inflow,
            BoundaryTag.XMIN: noslip,
            BoundaryTag.XMAX: noslip,
            BoundaryTag.YMIN: noslip,
            BoundaryTag.YMAX: noslip,
        },
        pressure_dirichlet=(BoundaryTag.ZMAX,),
        temperature_bcs={BoundaryTag.ZMIN: ScalarBC(0.0)},
        initial_velocity=lambda x, y, z: (
            np.zeros_like(x),
            np.zeros_like(x),
            np.full_like(x, inflow_velocity),
        ),
        initial_temperature=pebble_surface_temperature,
        brinkman=chi,
        heat_source=heat_source,
    )
