"""Rayleigh-Benard convection — the in transit workload (Section 4.2).

Nondimensionalization: lengths by the layer height H, velocity by the
free-fall speed U = sqrt(g alpha dT H), giving

    du/dt + (u.grad)u = -grad p + sqrt(Pr/Ra) lap u + T e_z
    dT/dt + (u.grad)T =  1/sqrt(Ra Pr)  lap T

with T = +0.5 at the hot bottom plate, T = -0.5 at the cold top,
periodic sidewalls; the initial condition seeds the conductive profile
with a deterministic perturbation so convection cells form quickly.

``weak_scaled_rbc_case`` builds the paper's weak-scaling series: a wide
box whose horizontal extent grows with the rank count so the element
load per rank stays constant — "mesoscale" convection with aspect
ratio growing with the machine, as in the solar-surface RBC runs the
paper cites.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nekrs.config import CaseDefinition, ScalarBC, VelocityBC
from repro.sem.mesh import BoundaryTag
from repro.util.rng import make_rng


def rayleigh_benard_case(
    rayleigh: float = 1e5,
    prandtl: float = 0.7,
    aspect: tuple[int, int] = (2, 2),
    elements_per_unit: int = 4,
    order: int = 5,
    dt: float = 2e-3,
    num_steps: int = 2000,
    seed: int = 2023,
) -> CaseDefinition:
    """Build an RBC case of horizontal aspect `aspect` (in units of H)."""
    if rayleigh <= 0 or prandtl <= 0:
        raise ValueError("Ra and Pr must be positive")
    ax, ay = aspect
    nu = math.sqrt(prandtl / rayleigh)
    kappa = 1.0 / math.sqrt(rayleigh * prandtl)

    ex = max(2, int(round(elements_per_unit * ax)))
    ey = max(2, int(round(elements_per_unit * ay)))
    ez = max(2, elements_per_unit)

    rng = make_rng(seed)
    # deterministic low-wavenumber perturbation amplitudes
    amps = rng.normal(0.0, 1.0, size=(3, 3))
    phases = rng.uniform(0.0, 2.0 * math.pi, size=(3, 3))

    def initial_temperature(x, y, z):
        conductive = 0.5 - z  # +0.5 at z=0, -0.5 at z=1
        pert = np.zeros_like(x)
        for i in range(3):
            for j in range(3):
                kx = 2.0 * math.pi * (i + 1) / ax
                ky = 2.0 * math.pi * (j + 1) / ay
                pert += amps[i, j] * np.sin(kx * x + phases[i, j]) * np.cos(ky * y)
        # vanish at the plates so the Dirichlet BCs hold at t=0
        envelope = np.sin(math.pi * z)
        return conductive + 0.02 * pert * envelope

    def forcing(x, y, z, t, T):
        """Boussinesq buoyancy: T drives vertical momentum."""
        zero = np.zeros_like(x)
        return zero, zero, T

    noslip = VelocityBC()
    return CaseDefinition(
        name=f"rbc-ra{rayleigh:.0e}-a{ax}x{ay}",
        mesh_shape=(ex, ey, ez),
        extent=((0.0, 0.0, 0.0), (float(ax), float(ay), 1.0)),
        order=order,
        periodic=(True, True, False),
        viscosity=nu,
        conductivity=kappa,
        dt=dt,
        num_steps=num_steps,
        time_order=2,
        velocity_bcs={BoundaryTag.ZMIN: noslip, BoundaryTag.ZMAX: noslip},
        temperature_bcs={
            BoundaryTag.ZMIN: ScalarBC(0.5),
            BoundaryTag.ZMAX: ScalarBC(-0.5),
        },
        initial_velocity=lambda x, y, z: (
            np.zeros_like(x),
            np.zeros_like(x),
            np.zeros_like(x),
        ),
        initial_temperature=initial_temperature,
        forcing=forcing,
    )


def weak_scaled_rbc_case(
    num_ranks: int,
    elements_per_rank: int = 8,
    order: int = 5,
    rayleigh: float = 1e5,
    prandtl: float = 0.7,
    **kwargs,
) -> CaseDefinition:
    """RBC case sized so each rank owns ~`elements_per_rank` elements.

    The horizontal aspect grows with the rank count (the vertical
    resolution is fixed by the physics), which is exactly how the
    paper's mesoscale weak scaling is constructed.
    """
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    epu = 2  # elements per unit length horizontally, ez = 2 vertically
    total_elements = num_ranks * elements_per_rank
    columns = max(1, total_elements // (epu * epu * 2))
    ax = max(1, int(round(math.sqrt(columns))))
    ay = max(1, -(-columns // ax))
    case = rayleigh_benard_case(
        rayleigh=rayleigh,
        prandtl=prandtl,
        aspect=(ax, ay),
        elements_per_unit=epu,
        order=order,
        **kwargs,
    )
    return case
