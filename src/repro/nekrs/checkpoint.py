"""NekRS-style ``.fld`` binary checkpoints.

The paper's "Checkpointing" configuration writes the raw simulation
state to disk every *n* steps; that volume (19 GB per pb146 run) is the
storage-economy baseline.  This module implements a binary field-file
format in the spirit of Nek's .fld: a fixed ASCII header describing
shapes/fields/time, followed by little-endian float64 blocks per field,
one file per rank per dump (Nek's one-file-per-rank "multi-file" mode).

Checkpoints round-trip: :func:`read_checkpoint` restores exactly what
:func:`write_checkpoint` stored, and :meth:`NekRSSolver`-compatible
state dicts can restart a run.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path

import numpy as np

_MAGIC = b"#nekfld2"


@dataclass
class CheckpointHeader:
    case: str
    step: int
    time: float
    rank: int
    size: int
    field_shape: tuple[int, int, int, int]
    field_names: tuple[str, ...]

    def encode(self) -> bytes:
        if " " in self.case:
            raise ValueError("case names must not contain spaces")
        shape = "x".join(str(s) for s in self.field_shape)
        names = ",".join(self.field_names)
        line = (
            f"case={self.case} step={self.step} time={self.time!r} "
            f"rank={self.rank} size={self.size} shape={shape} fields={names}\n"
        )
        return _MAGIC + b" " + line.encode()

    @classmethod
    def decode(cls, line: bytes) -> "CheckpointHeader":
        if not line.startswith(_MAGIC):
            raise ValueError("not a repro .fld checkpoint (bad magic)")
        text = line[len(_MAGIC) :].decode().strip()
        kv = {}
        for token in text.split():
            k, _, v = token.partition("=")
            kv[k] = v
        return cls(
            case=kv["case"],
            step=int(kv["step"]),
            time=float(kv["time"]),
            rank=int(kv["rank"]),
            size=int(kv["size"]),
            field_shape=tuple(int(s) for s in kv["shape"].split("x")),
            field_names=tuple(kv["fields"].split(",")),
        )


def checkpoint_filename(case: str, step: int, rank: int) -> str:
    """`<case>0.f<step:05d>.r<rank:04d>` in the Nek multi-file spirit."""
    return f"{case}0.f{step:05d}.r{rank:04d}"


def encode_checkpoint(
    case: str,
    step: int,
    time: float,
    rank: int,
    size: int,
    fields: dict[str, np.ndarray],
) -> bytes:
    """Serialize a set of same-shaped fields to .fld bytes."""
    if not fields:
        raise ValueError("checkpoint needs at least one field")
    names = tuple(fields.keys())
    shapes = {f.shape for f in fields.values()}
    if len(shapes) != 1:
        raise ValueError(f"fields must share a shape, got {shapes}")
    shape = next(iter(shapes))
    if len(shape) != 4:
        raise ValueError(f"expected (E, Nq, Nq, Nq) fields, got shape {shape}")
    header = CheckpointHeader(case, step, time, rank, size, shape, names)
    buf = io.BytesIO()
    buf.write(header.encode())
    for name in names:
        data = np.ascontiguousarray(fields[name], dtype="<f8")
        buf.write(data.tobytes())
    return buf.getvalue()


def write_checkpoint(
    directory,
    case: str,
    step: int,
    time: float,
    rank: int,
    size: int,
    fields: dict[str, np.ndarray],
) -> tuple[Path, int]:
    """Write one rank's dump; returns (path, bytes written)."""
    from repro.observe.session import get_telemetry

    tel = get_telemetry()
    with tel.tracer.span("checkpoint.write", step=step):
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        payload = encode_checkpoint(case, step, time, rank, size, fields)
        path = directory / checkpoint_filename(case, step, rank)
        path.write_bytes(payload)
    if tel.enabled:
        tel.metrics.counter(
            "repro_checkpoint_dumps_total", "Checkpoint files written"
        ).inc()
        tel.metrics.counter(
            "repro_checkpoint_bytes_total", "Checkpoint bytes written"
        ).inc(len(payload))
        tel.memory.observe("checkpoint.buffer", len(payload))
    return path, len(payload)


def read_checkpoint(path) -> tuple[CheckpointHeader, dict[str, np.ndarray]]:
    """Read a dump back into (header, {name: field})."""
    raw = Path(path).read_bytes()
    newline = raw.index(b"\n")
    header = CheckpointHeader.decode(raw[: newline + 1])
    count = int(np.prod(header.field_shape))
    fields = {}
    offset = newline + 1
    for name in header.field_names:
        block = raw[offset : offset + count * 8]
        if len(block) != count * 8:
            raise ValueError(f"truncated checkpoint: field {name!r}")
        fields[name] = np.frombuffer(block, dtype="<f8").reshape(header.field_shape).copy()
        offset += count * 8
    if offset != len(raw):
        raise ValueError("trailing bytes after last field (corrupt checkpoint)")
    return header, fields


def checkpoint_nbytes(field_shape: tuple[int, ...], num_fields: int) -> int:
    """Size of one rank's dump without writing it (for cost models)."""
    count = int(np.prod(field_shape))
    # header is small but nonzero; use a representative figure
    return 128 + num_fields * count * 8
