"""Case definition: everything a solver run needs to know.

A :class:`CaseDefinition` is the in-memory analog of a NekRS case
(.par file + .usr callbacks): mesh geometry, material properties, time
controls, boundary conditions per domain face, initial conditions,
body forces, Brinkman solid masks and heat sources.  Cases in
``repro.nekrs.cases`` construct these; `.par` files can override the
scalar knobs (see ``repro.nekrs.parfile``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.sem.mesh import BoundaryTag

#: signature: fn(x, y, z, t) -> array broadcastable to x.shape
SpaceTimeFn = Callable[..., np.ndarray]


@dataclass(frozen=True)
class VelocityBC:
    """Dirichlet velocity on one boundary face.

    Components may be constants or ``fn(x, y, z, t)`` callables.  A face
    without a VelocityBC is natural (do-nothing / outflow).
    """

    u: float | SpaceTimeFn = 0.0
    v: float | SpaceTimeFn = 0.0
    w: float | SpaceTimeFn = 0.0

    def evaluate(self, x, y, z, t) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        def ev(c):
            if callable(c):
                return np.broadcast_to(np.asarray(c(x, y, z, t), dtype=float), x.shape)
            return np.full_like(x, float(c))

        return ev(self.u), ev(self.v), ev(self.w)


@dataclass(frozen=True)
class ScalarBC:
    """Dirichlet value for a scalar (temperature) on one face.

    Faces without a ScalarBC are insulated (natural/zero-flux).
    """

    value: float | SpaceTimeFn = 0.0

    def evaluate(self, x, y, z, t) -> np.ndarray:
        if callable(self.value):
            return np.broadcast_to(
                np.asarray(self.value(x, y, z, t), dtype=float), x.shape
            )
        return np.full_like(x, float(self.value))


@dataclass(frozen=True)
class PassiveScalar:
    """One additional transported scalar (NekRS's s01, s02, ...).

    Advected by the flow and diffused with its own diffusivity; does
    not feed back into the momentum equation (passive).
    """

    name: str
    diffusivity: float
    bcs: dict[BoundaryTag, ScalarBC] = field(default_factory=dict)
    initial: Callable | None = None       # fn(x, y, z) -> values
    source: Callable | None = None        # fn(x, y, z, t) -> values

    _RESERVED = frozenset(
        {
            "velocity_x", "velocity_y", "velocity_z", "pressure",
            "temperature", "velocity", "velocity_magnitude",
            "vorticity_magnitude", "q_criterion",
        }
    )

    def __post_init__(self):
        if self.diffusivity <= 0:
            raise ValueError(f"scalar {self.name!r} diffusivity must be positive")
        if not self.name or self.name in self._RESERVED:
            raise ValueError(
                f"scalar name {self.name!r} is empty or collides with a "
                "built-in field name"
            )


@dataclass(frozen=True)
class CaseDefinition:
    """Complete specification of a solver run."""

    name: str
    mesh_shape: tuple[int, int, int]
    extent: tuple[tuple[float, float, float], tuple[float, float, float]]
    order: int = 5
    periodic: tuple[bool, bool, bool] = (False, False, False)

    # material / physics
    viscosity: float = 1e-2
    density: float = 1.0
    conductivity: float | None = None       # None disables the energy eq.
    heat_capacity: float = 1.0

    # time controls
    dt: float = 1e-3
    num_steps: int = 100
    time_order: int = 2                     # BDF/EXT target order

    # solver controls
    #: quadrature over-integration (3/2 rule) of advection terms —
    #: NekRS's standard dealiasing for marginally resolved turbulence
    dealias: bool = False
    pressure_tol: float = 1e-6
    velocity_tol: float = 1e-8
    scalar_tol: float = 1e-8
    max_iterations: int = 1000

    # boundary conditions
    velocity_bcs: dict[BoundaryTag, VelocityBC] = field(default_factory=dict)
    temperature_bcs: dict[BoundaryTag, ScalarBC] = field(default_factory=dict)
    #: additional transported scalars (NekRS s01, s02, ...)
    passive_scalars: tuple["PassiveScalar", ...] = ()
    #: faces where pressure is pinned to zero (outflow); empty = pure
    #: Neumann pressure with mean projection.
    pressure_dirichlet: tuple[BoundaryTag, ...] = ()

    # callbacks (all optional)
    initial_velocity: Callable | None = None     # fn(x,y,z) -> (u,v,w)
    initial_temperature: Callable | None = None  # fn(x,y,z) -> T
    forcing: Callable | None = None              # fn(x,y,z,t,T) -> (fx,fy,fz)
    heat_source: Callable | None = None          # fn(x,y,z,t) -> q
    brinkman: Callable | None = None             # fn(x,y,z) -> chi >= 0

    def __post_init__(self):
        if self.viscosity <= 0:
            raise ValueError("viscosity must be positive")
        if self.conductivity is not None and self.conductivity <= 0:
            raise ValueError("conductivity must be positive when set")
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.num_steps < 0:
            raise ValueError("num_steps must be non-negative")
        if self.time_order not in (1, 2, 3):
            raise ValueError("time_order must be 1, 2 or 3")
        for tag in self.pressure_dirichlet:
            if tag in self.velocity_bcs:
                raise ValueError(
                    f"face {tag} cannot be both velocity-Dirichlet and "
                    "pressure-Dirichlet (outflow faces leave velocity free)"
                )
        names = [s.name for s in self.passive_scalars]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate passive scalar names: {names}")

    @property
    def has_temperature(self) -> bool:
        return self.conductivity is not None

    def with_overrides(self, **kwargs) -> "CaseDefinition":
        """Functional update (used by .par file overrides)."""
        return replace(self, **kwargs)

    def total_gridpoints(self) -> int:
        ex, ey, ez = self.mesh_shape
        return ex * ey * ez * (self.order + 1) ** 3
