"""Derived flow diagnostics for analysis and visualization.

In situ pipelines rarely render raw state; they render derived
quantities — vorticity magnitude for turbulent structure, Q-criterion
isosurfaces for vortex cores, wall-normal heat flux for convection.
These are computed with the solver's own spectral operators (so they
carry spectral accuracy) and continuized across element interfaces so
renderers see single-valued fields.
"""

from __future__ import annotations

import numpy as np

from repro.sem.operators import SEMOperators


def vorticity(ops: SEMOperators, u: np.ndarray, v: np.ndarray, w: np.ndarray):
    """Vorticity vector (curl of velocity), continuized per component."""
    ux, uy, uz = ops.grad(u)
    vx, vy, vz = ops.grad(v)
    wx, wy, wz = ops.grad(w)
    om_x = wy - vz
    om_y = uz - wx
    om_z = vx - uy
    return (
        ops.continuize(om_x),
        ops.continuize(om_y),
        ops.continuize(om_z),
    )


def vorticity_magnitude(
    ops: SEMOperators, u: np.ndarray, v: np.ndarray, w: np.ndarray
) -> np.ndarray:
    ox, oy, oz = vorticity(ops, u, v, w)
    return np.sqrt(ox * ox + oy * oy + oz * oz)


def q_criterion(
    ops: SEMOperators, u: np.ndarray, v: np.ndarray, w: np.ndarray
) -> np.ndarray:
    """Q-criterion: Q = (|Omega|^2 - |S|^2) / 2.

    Positive Q marks regions where rotation dominates strain — the
    standard vortex-core indicator rendered as isosurfaces in
    production turbulence visualization.
    """
    ux, uy, uz = ops.grad(u)
    vx, vy, vz = ops.grad(v)
    wx, wy, wz = ops.grad(w)
    # strain-rate tensor S = (G + G^T)/2; rotation tensor O = (G - G^T)/2
    s_offdiag = (
        0.5 * (uy + vx),
        0.5 * (uz + wx),
        0.5 * (vz + wy),
    )
    s_norm2 = ux * ux + vy * vy + wz * wz + 2.0 * sum(t * t for t in s_offdiag)
    o_offdiag = (
        0.5 * (uy - vx),
        0.5 * (uz - wx),
        0.5 * (vz - wy),
    )
    o_norm2 = 2.0 * sum(t * t for t in o_offdiag)
    return ops.continuize(0.5 * (o_norm2 - s_norm2))


def convective_heat_flux(
    ops: SEMOperators, w: np.ndarray, T: np.ndarray
) -> float:
    """Volume-averaged vertical convective heat flux <w T>.

    For Rayleigh-Benard in free-fall units, 1 + sqrt(Ra Pr) <wT> is the
    Nusselt number; the raw <wT> is the quantity the RBC example tracks
    to watch convection onset.
    """
    return ops.integrate(w * T) / ops.volume
