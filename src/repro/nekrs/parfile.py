"""NekRS-style ``.par`` case files.

NekRS configures runs with INI-style files::

    [GENERAL]
    polynomialOrder = 7
    dt = 1e-3
    numSteps = 3000
    writeInterval = 100

    [VELOCITY]
    viscosity = 1e-2

    [TEMPERATURE]
    conductivity = 1e-2

This module reads/writes that dialect and maps the recognized keys
onto :class:`repro.nekrs.config.CaseDefinition` overrides, so a case
built in Python can be re-parameterized from a file exactly the way
NekRS cases are.
"""

from __future__ import annotations

import configparser
from pathlib import Path

def _parse_bool(raw: str) -> bool:
    lowered = raw.strip().lower()
    if lowered in ("true", "yes", "1", "on"):
        return True
    if lowered in ("false", "no", "0", "off"):
        return False
    raise ValueError(f"not a boolean: {raw!r}")


#: (section, key) -> (CaseDefinition field, parser)
_KEYMAP = {
    ("general", "polynomialorder"): ("order", int),
    ("general", "dt"): ("dt", float),
    ("general", "numsteps"): ("num_steps", int),
    ("general", "timeorder"): ("time_order", int),
    ("general", "dealiasing"): ("dealias", _parse_bool),
    ("velocity", "viscosity"): ("viscosity", float),
    ("velocity", "density"): ("density", float),
    ("velocity", "residualtol"): ("velocity_tol", float),
    ("pressure", "residualtol"): ("pressure_tol", float),
    ("temperature", "conductivity"): ("conductivity", float),
    ("temperature", "heatcapacity"): ("heat_capacity", float),
    ("temperature", "residualtol"): ("scalar_tol", float),
}

#: keys recognized but not mapped to CaseDefinition (run-control keys
#: consumed by the in situ layer / benchmark drivers)
_PASSTHROUGH = {
    ("general", "writeinterval"),
    ("general", "writecontrol"),
    ("general", "starttime"),
}


class ParFileError(ValueError):
    """Malformed .par content."""


def read_par(path) -> dict[str, dict[str, str]]:
    """Parse a .par file into {section: {key: raw-string}} (lowercased)."""
    parser = configparser.ConfigParser()
    text = Path(path).read_text()
    try:
        parser.read_string(text)
    except configparser.Error as exc:
        raise ParFileError(f"cannot parse {path}: {exc}") from exc
    return {
        section.lower(): {k.lower(): v for k, v in parser.items(section)}
        for section in parser.sections()
    }


def par_to_overrides(par: dict[str, dict[str, str]]) -> dict:
    """Translate parsed .par content to CaseDefinition override kwargs.

    Unknown keys raise — silent typos in case files are how people lose
    compute allocations.
    """
    overrides: dict = {}
    for section, entries in par.items():
        for key, raw in entries.items():
            if (section, key) in _PASSTHROUGH:
                continue
            mapping = _KEYMAP.get((section, key))
            if mapping is None:
                raise ParFileError(
                    f"unrecognized .par entry [{section.upper()}] {key}"
                )
            field, parse = mapping
            try:
                overrides[field] = parse(raw)
            except ValueError as exc:
                raise ParFileError(
                    f"bad value for [{section.upper()}] {key}: {raw!r}"
                ) from exc
    return overrides


def write_par(path, sections: dict[str, dict[str, object]]) -> None:
    """Write a .par file from {SECTION: {key: value}}."""
    parser = configparser.ConfigParser()
    for section, entries in sections.items():
        parser[section.upper()] = {k: str(v) for k, v in entries.items()}
    with open(path, "w") as f:
        parser.write(f)
