"""Full-state restart: serialize and restore a solver mid-run.

Plain ``.fld`` checkpoints carry only the primary fields (that is what
the paper's "Checkpointing" configuration writes, and what its storage
numbers count).  Restarting a BDF2/3 run bit-exactly additionally needs
the time histories, so restart files extend the same container with
``hist/...`` entries plus step/time bookkeeping.

Round-trip guarantee (tested): run A for n+m steps, versus run B for n
steps -> write_restart -> read_restart -> m steps, produce identical
state to the last bit.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nekrs.checkpoint import read_checkpoint, write_checkpoint
from repro.nekrs.solver import NekRSSolver


def state_dict(solver: NekRSSolver) -> dict[str, np.ndarray]:
    """All persistent per-rank state as named same-shape fields."""
    fields: dict[str, np.ndarray] = {
        "velocity_x": solver.u,
        "velocity_y": solver.v,
        "velocity_z": solver.w,
        "pressure": solver.p,
    }
    if solver.T is not None:
        fields["temperature"] = solver.T
    for j, (u, v, w) in enumerate(solver._hist_u):
        fields[f"hist/u{j}/x"] = u
        fields[f"hist/u{j}/y"] = v
        fields[f"hist/u{j}/z"] = w
    for j, (nx, ny, nz) in enumerate(solver._hist_adv):
        fields[f"hist/adv{j}/x"] = nx
        fields[f"hist/adv{j}/y"] = ny
        fields[f"hist/adv{j}/z"] = nz
    for j, t in enumerate(solver._hist_T):
        fields[f"hist/T{j}"] = t
    for j, t in enumerate(solver._hist_advT):
        fields[f"hist/advT{j}"] = t
    for name, arr in solver.scalars.items():
        fields[f"scalar/{name}"] = arr
        for j, s in enumerate(solver._hist_s[name]):
            fields[f"hist/s.{name}.{j}"] = s
        for j, s in enumerate(solver._hist_advS[name]):
            fields[f"hist/advs.{name}.{j}"] = s
    return fields


def load_state_dict(solver: NekRSSolver, fields: dict[str, np.ndarray]) -> None:
    """Restore state produced by :func:`state_dict` into `solver`."""
    expected = solver.mesh.field_shape()
    for name, arr in fields.items():
        if arr.shape != expected:
            raise ValueError(
                f"restart field {name!r} has shape {arr.shape}, solver "
                f"expects {expected} (mesh/rank-count mismatch?)"
            )
    solver.u[:] = fields["velocity_x"]
    solver.v[:] = fields["velocity_y"]
    solver.w[:] = fields["velocity_z"]
    solver.p[:] = fields["pressure"]
    if solver.T is not None:
        solver.T[:] = fields["temperature"]

    def collect_vectors(prefix: str) -> list[tuple]:
        out = []
        j = 0
        while f"hist/{prefix}{j}/x" in fields:
            out.append(
                tuple(fields[f"hist/{prefix}{j}/{c}"].copy() for c in "xyz")
            )
            j += 1
        return out

    def collect_scalars(prefix: str) -> list[np.ndarray]:
        out = []
        j = 0
        while f"hist/{prefix}{j}" in fields:
            out.append(fields[f"hist/{prefix}{j}"].copy())
            j += 1
        return out

    solver._hist_u = collect_vectors("u")
    solver._hist_adv = collect_vectors("adv")
    solver._hist_T = collect_scalars("T")
    solver._hist_advT = collect_scalars("advT")
    for name, arr in solver.scalars.items():
        arr[:] = fields[f"scalar/{name}"]
        solver._hist_s[name] = collect_scalars(f"s.{name}.")
        solver._hist_advS[name] = collect_scalars(f"advs.{name}.")


def write_restart(directory, solver: NekRSSolver) -> tuple[Path, int]:
    """Write this rank's full restart file; returns (path, bytes)."""
    return write_checkpoint(
        directory,
        f"{solver.case.name}-restart",
        solver.step_index,
        solver.time,
        solver.comm.rank,
        solver.comm.size,
        state_dict(solver),
    )


def read_restart(directory, solver: NekRSSolver) -> None:
    """Restore `solver` from this rank's restart file in `directory`."""
    from repro.nekrs.checkpoint import checkpoint_filename

    directory = Path(directory)
    candidates = sorted(
        directory.glob(f"{solver.case.name}-restart0.f*.r{solver.comm.rank:04d}")
    )
    if not candidates:
        raise FileNotFoundError(
            f"no restart files for case {solver.case.name!r} rank "
            f"{solver.comm.rank} under {directory}"
        )
    header, fields = read_checkpoint(candidates[-1])
    if header.size != solver.comm.size:
        raise ValueError(
            f"restart was written on {header.size} ranks, solver has "
            f"{solver.comm.size}"
        )
    load_state_dict(solver, fields)
    solver.step_index = header.step
    solver.time = header.time
