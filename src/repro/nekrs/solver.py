"""The incompressible Navier-Stokes time stepper (NekRS analog).

Discretization: P_N-P_N spectral elements with the classic splitting —

1. **temperature** (if active): BDF/EXT advection-diffusion solve,
2. **advection**: explicit EXT_k extrapolation of -(u.grad)u + f,
3. **pressure**: Poisson solve enforcing the divergence constraint on
   the extrapolated tentative velocity,
4. **viscous**: implicit Helmholtz solve per velocity component, with
   the Brinkman drag chi(x) u (immersed obstacles) folded into the
   zeroth-order implicit coefficient.

All linear solves are Jacobi-preconditioned CG over gather-scattered,
masked operators; inner products reduce across the communicator.

Fields live in ``repro.occa`` device buffers wrapping the solver's
arrays; the in situ layer must pull them through ``copy_to_host``,
which meters the GPU->CPU traffic the paper discusses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.nekrs.config import CaseDefinition
from repro.nekrs.timestepper import bdf_coefficients, effective_order, ext_coefficients
from repro.observe.session import get_telemetry
from repro.occa import Device, DeviceMemory
from repro.parallel.comm import Communicator, ReduceOp
from repro.perf import publish_stats
from repro.perf.arena import get_arena
from repro.sem.krylov import cg_solve
from repro.sem.mesh import BoxMesh
from repro.sem.operators import SEMOperators
from repro.sem.quadrature import gll_nodes_weights
from repro.util.timing import StopWatch


@dataclass
class StepReport:
    """Diagnostics for one completed timestep."""

    step: int
    time: float
    cfl: float
    pressure_iterations: int
    velocity_iterations: int
    scalar_iterations: int
    divergence_norm: float
    wall_seconds: float


class NekRSSolver:
    """Time integrator for a :class:`CaseDefinition` on one rank group."""

    def __init__(
        self,
        case: CaseDefinition,
        comm: Communicator,
        device: Device | None = None,
    ):
        self.case = case
        self.comm = comm
        self.device = device or Device("serial")
        self.mesh = BoxMesh(
            case.mesh_shape,
            case.extent,
            order=case.order,
            periodic=case.periodic,
            rank=comm.rank,
            size=comm.size,
        )
        self.ops = SEMOperators(self.mesh, comm)
        self.watch = StopWatch()

        shape = self.mesh.field_shape()
        x, y, z = self.mesh.coords()

        # -- persistent state ------------------------------------------------
        self.u = np.zeros(shape)
        self.v = np.zeros(shape)
        self.w = np.zeros(shape)
        self.p = np.zeros(shape)
        self.T = np.zeros(shape) if case.has_temperature else None
        if case.initial_velocity is not None:
            u0, v0, w0 = case.initial_velocity(x, y, z)
            self.u[:] = u0
            self.v[:] = v0
            self.w[:] = w0
        if self.T is not None and case.initial_temperature is not None:
            self.T[:] = case.initial_temperature(x, y, z)
        self.scalars: dict[str, np.ndarray] = {}
        for spec in case.passive_scalars:
            field = np.zeros(shape)
            if spec.initial is not None:
                field[:] = spec.initial(x, y, z)
            self.scalars[spec.name] = field

        # histories for BDF (velocity/temperature/scalars) and EXT
        # (their advection terms)
        k = case.time_order
        self._hist_u: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._hist_T: list[np.ndarray] = []
        self._hist_adv: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._hist_advT: list[np.ndarray] = []
        self._hist_s: dict[str, list[np.ndarray]] = {n: [] for n in self.scalars}
        self._hist_advS: dict[str, list[np.ndarray]] = {n: [] for n in self.scalars}
        self._max_hist = k

        # -- masks & boundary machinery ---------------------------------------
        vel_faces = list(case.velocity_bcs.keys())
        self.velocity_mask = ~self.mesh.boundary_union(vel_faces) if vel_faces else np.ones(shape, dtype=bool)
        self._vel_bc_nodes = ~self.velocity_mask
        self.pressure_mask = (
            ~self.mesh.boundary_union(case.pressure_dirichlet)
            if case.pressure_dirichlet
            else np.ones(shape, dtype=bool)
        )
        self.pressure_needs_mean_fix = len(case.pressure_dirichlet) == 0
        temp_faces = list(case.temperature_bcs.keys())
        self.temperature_mask = (
            ~self.mesh.boundary_union(temp_faces)
            if temp_faces
            else np.ones(shape, dtype=bool)
        )
        self._temp_bc_nodes = ~self.temperature_mask
        self.scalar_masks: dict[str, np.ndarray] = {}
        for spec in case.passive_scalars:
            faces = list(spec.bcs.keys())
            self.scalar_masks[spec.name] = (
                ~self.mesh.boundary_union(faces)
                if faces
                else np.ones(shape, dtype=bool)
            )

        # Brinkman penalty field (zero = fluid)
        if case.brinkman is not None:
            self.chi = np.asarray(case.brinkman(x, y, z), dtype=float)
            if self.chi.shape != shape:
                self.chi = np.broadcast_to(self.chi, shape).copy()
            if (self.chi < 0).any():
                raise ValueError("Brinkman penalty chi must be non-negative")
        else:
            self.chi = None

        # -- preconditioners (depend on dt through h0; built lazily) -------------
        self._pre_cache: dict[tuple, np.ndarray] = {}

        # minimum GLL spacing for CFL
        ref, _ = gll_nodes_weights(case.order)
        min_ref = float(np.diff(ref).min())
        self._min_dx = tuple(h * min_ref / 2.0 for h in self.mesh.elem_sizes)

        self.step_index = 0
        self.time = 0.0
        self._convect = (
            self.ops.convect_dealiased if case.dealias else self.ops.convect
        )

        # -- device residency -----------------------------------------------------
        self.device_fields: dict[str, DeviceMemory] = {
            "velocity_x": DeviceMemory(self.device, self.u),
            "velocity_y": DeviceMemory(self.device, self.v),
            "velocity_z": DeviceMemory(self.device, self.w),
            "pressure": DeviceMemory(self.device, self.p),
        }
        if self.T is not None:
            self.device_fields["temperature"] = DeviceMemory(self.device, self.T)
        for name, field in self.scalars.items():
            self.device_fields[name] = DeviceMemory(self.device, field)

    # ------------------------------------------------------------------
    # boundary conditions
    # ------------------------------------------------------------------
    def _velocity_bc_fields(self, t: float, out=None) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fields holding Dirichlet values at BC nodes, zero elsewhere.

        Pass ``out=(ub, vb, wb)`` to reuse buffers (they are zeroed).
        """
        shape = self.mesh.field_shape()
        if out is None:
            ub = np.zeros(shape)
            vb = np.zeros(shape)
            wb = np.zeros(shape)
        else:
            ub, vb, wb = out
            ub.fill(0.0)
            vb.fill(0.0)
            wb.fill(0.0)
        x, y, z = self.mesh.coords()
        for tag, bc in self.case.velocity_bcs.items():
            nodes = self.mesh.boundary_nodes(tag)
            uu, vv, ww = bc.evaluate(x, y, z, t)
            ub[nodes] = uu[nodes]
            vb[nodes] = vv[nodes]
            wb[nodes] = ww[nodes]
        return ub, vb, wb

    def _temperature_bc_field(self, t: float) -> np.ndarray:
        Tb = np.zeros(self.mesh.field_shape())
        x, y, z = self.mesh.coords()
        for tag, bc in self.case.temperature_bcs.items():
            nodes = self.mesh.boundary_nodes(tag)
            Tb[nodes] = bc.evaluate(x, y, z, t)[nodes]
        return Tb

    # ------------------------------------------------------------------
    # linear solves
    # ------------------------------------------------------------------
    def _jacobi(self, h1: float, h0, mask: np.ndarray, key: str) -> np.ndarray:
        """Inverse diagonal of the masked assembled Helmholtz operator.

        `key` must encode everything that varies (field, h1, the scalar
        part of h0): h0 arrays (Brinkman) are static per run, so a
        well-chosen key makes the cache exact and bounded.
        """
        cache_key = (key, float(h1))
        pre = self._pre_cache.get(cache_key)
        if pre is None:
            diag = self.ops.stiffness_diagonal(h1, h0)
            pre = np.where(diag > 0, 1.0 / np.where(diag > 0, diag, 1.0), 0.0)
            pre *= mask
            self._pre_cache[cache_key] = pre
        return pre

    def _helmholtz_solve(
        self,
        rhs_local: np.ndarray,
        lift: np.ndarray,
        h1: float,
        h0,
        mask: np.ndarray,
        tol: float,
        key: str,
    ):
        """Solve (h1 A + h0 B) x = rhs with Dirichlet values in `lift`."""
        arena = get_arena()

        def apply_masked(f):
            with arena.scratch(f.shape, f.dtype) as hb:
                self.ops.helmholtz_apply(f, h1, h0, out=hb)
                res = self.ops.assemble(hb)  # gs returns a fresh array
            res *= mask
            return res

        with arena.scratch(rhs_local.shape, rhs_local.dtype) as hb:
            self.ops.helmholtz_apply(lift, h1, h0, out=hb)
            np.subtract(rhs_local, hb, out=hb)
            b = self.ops.assemble(hb)
        b *= mask
        pre = self._jacobi(h1, h0, mask, key)
        result = cg_solve(
            apply_masked,
            b,
            self.ops.dot,
            precond=pre,
            tol=tol,
            max_iterations=self.case.max_iterations,
        )
        return result.x + lift, result

    # ------------------------------------------------------------------
    # physics terms
    # ------------------------------------------------------------------
    def _advection_terms(self, t: float):
        """-(u.grad)u + f at the current state (pointwise)."""
        # the terms escape into the EXT history, so they are real
        # allocations; negating in place halves the temporaries
        Nx = self._convect(self.u, self.u, self.v, self.w)
        np.negative(Nx, out=Nx)
        Ny = self._convect(self.v, self.u, self.v, self.w)
        np.negative(Ny, out=Ny)
        Nz = self._convect(self.w, self.u, self.v, self.w)
        np.negative(Nz, out=Nz)
        if self.case.forcing is not None:
            x, y, z = self.mesh.coords()
            fx, fy, fz = self.case.forcing(x, y, z, t, self.T)
            Nx += fx
            Ny += fy
            Nz += fz
        return Nx, Ny, Nz

    def _advection_term_T(self, t: float) -> np.ndarray:
        NT = self._convect(self.T, self.u, self.v, self.w)
        np.negative(NT, out=NT)
        if self.case.heat_source is not None:
            x, y, z = self.mesh.coords()
            NT = NT + self.case.heat_source(x, y, z, t)
        return NT

    def _bdf_sum(self, history: list, b: tuple[float, ...]):
        """sum_j b[j] * history[-1-j] for tuple-of-fields histories."""
        first = history[-1]
        if isinstance(first, tuple):
            n = len(first)
            out = [b[0] * first[i] for i in range(n)]
            for j in range(1, len(b)):
                for i in range(n):
                    out[i] = out[i] + b[j] * history[-1 - j][i]
            return tuple(out)
        out = b[0] * first
        for j in range(1, len(b)):
            out = out + b[j] * history[-1 - j]
        return out

    # ------------------------------------------------------------------
    # main step
    # ------------------------------------------------------------------
    def step(self) -> StepReport:
        """Advance one timestep; returns diagnostics."""
        tel = get_telemetry()
        live = tel.live
        t0 = time.perf_counter() if live.enabled else 0.0
        with tel.tracer.span("solver.step", step=self.step_index):
            report = self._step_impl(tel)
        if live.enabled:
            live.stage(
                "solve", report.step, t0, time.perf_counter(),
                stream=self.comm.rank,
            )
        if tel.enabled:
            tel.metrics.counter(
                "repro_solver_steps_total", "Completed solver timesteps"
            ).inc()
            tel.metrics.histogram(
                "repro_solver_step_seconds", "Wall time per solver timestep"
            ).observe(report.wall_seconds)
            tel.metrics.gauge(
                "repro_solver_cfl", "Advective CFL of the latest step", agg="max"
            ).set(report.cfl)
            tel.memory.observe("solver", self.memory_bytes())
            publish_stats(tel)
        return report

    def _step_impl(self, tel) -> StepReport:
        import time as _time

        t_begin = _time.perf_counter()
        case = self.case
        dt = case.dt
        t_new = self.time + dt

        order = effective_order(case.time_order, self.step_index)
        b0, b = bdf_coefficients(order)
        a = ext_coefficients(order)

        # record current state into histories before overwriting
        self._hist_u.append((self.u.copy(), self.v.copy(), self.w.copy()))
        if self.T is not None:
            self._hist_T.append(self.T.copy())
        for name, field in self.scalars.items():
            self._hist_s[name].append(field.copy())

        # ---- temperature ---------------------------------------------------
        scalar_iters = 0
        if self.T is not None:
            with self.watch.phase("scalar"), tel.tracer.span("solver.scalar"):
                self._hist_advT.append(self._advection_term_T(self.time))
                NT_ext = self._bdf_sum(self._hist_advT[-len(a) :], a)
                T_hat = self._bdf_sum(self._hist_T[-len(b) :], b)
                rho_cp = case.density * case.heat_capacity
                h0 = rho_cp * b0 / dt
                rhs = self.ops.mass_apply(rho_cp * (T_hat / dt + NT_ext))
                Tb = self._temperature_bc_field(t_new)
                Tb *= self._temp_bc_nodes
                Tnew, result = self._helmholtz_solve(
                    rhs,
                    Tb,
                    case.conductivity,
                    h0,
                    self.temperature_mask,
                    case.scalar_tol,
                    f"temperature:h0={h0:.6e}",
                )
                self.T[:] = Tnew
                scalar_iters = result.iterations

        # ---- passive scalars ------------------------------------------------
        for spec in case.passive_scalars:
            with self.watch.phase("scalar"), tel.tracer.span("solver.scalar"):
                name = spec.name
                field = self.scalars[name]
                adv = -self._convect(field, self.u, self.v, self.w)
                if spec.source is not None:
                    x, y, z = self.mesh.coords()
                    adv = adv + spec.source(x, y, z, self.time)
                self._hist_advS[name].append(adv)
                NS_ext = self._bdf_sum(self._hist_advS[name][-len(a) :], a)
                s_hat = self._bdf_sum(self._hist_s[name][-len(b) :], b)
                h0 = b0 / dt
                rhs = self.ops.mass_apply(s_hat / dt + NS_ext)
                sb = np.zeros(self.mesh.field_shape())
                if spec.bcs:
                    x, y, z = self.mesh.coords()
                    for tag, bc in spec.bcs.items():
                        nodes = self.mesh.boundary_nodes(tag)
                        sb[nodes] = bc.evaluate(x, y, z, t_new)[nodes]
                mask = self.scalar_masks[name]
                snew, result = self._helmholtz_solve(
                    rhs,
                    sb * ~mask,
                    spec.diffusivity,
                    h0,
                    mask,
                    case.scalar_tol,
                    f"scalar:{name}:h0={h0:.6e}",
                )
                field[:] = snew
                scalar_iters += result.iterations

        # the tentative velocity and BC fields live only inside this
        # step: borrow them from the per-rank arena
        arena = get_arena()
        shape = self.mesh.field_shape()
        us, vs, ws, ub, vb, wb = (arena.borrow(shape) for _ in range(6))
        try:
            # ---- advection / tentative velocity -----------------------------
            with self.watch.phase("advection"), tel.tracer.span("solver.advection"):
                self._hist_adv.append(self._advection_terms(self.time))
                Nx, Ny, Nz = self._bdf_sum(self._hist_adv[-len(a) :], a)
                uh, vh, wh = self._bdf_sum(self._hist_u[-len(b) :], b)
                for star, hat, adv in ((us, uh, Nx), (vs, vh, Ny), (ws, wh, Nz)):
                    np.multiply(adv, dt, out=star)
                    star += hat
                    star /= b0
                # embed Dirichlet values so the pressure sees inflow flux
                self._velocity_bc_fields(t_new, out=(ub, vb, wb))
                bc_nodes = self._vel_bc_nodes
                np.copyto(us, ub, where=bc_nodes)
                np.copyto(vs, vb, where=bc_nodes)
                np.copyto(ws, wb, where=bc_nodes)

            # ---- pressure Poisson -------------------------------------------
            with self.watch.phase("pressure"), tel.tracer.span("solver.pressure"):
                with arena.scratch(shape) as dtmp:
                    self.ops.div(us, vs, ws, out=dtmp)
                    dtmp *= -(b0 / dt)
                    self.ops.mass_apply(dtmp, out=dtmp)
                    rp = self.ops.assemble(dtmp)  # fresh array from gs
                rp *= self.pressure_mask
                project = (
                    self.ops.project_out_nullspace
                    if self.pressure_needs_mean_fix
                    else None
                )

                def apply_pressure(f):
                    with arena.scratch(f.shape, f.dtype) as sb:
                        self.ops.stiffness_apply(f, out=sb)
                        res = self.ops.assemble(sb)
                    res *= self.pressure_mask
                    return res

                pre_p = self._jacobi(1.0, 0.0, self.pressure_mask, "pressure")
                with arena.scratch(shape) as x0buf:
                    np.multiply(self.p, self.pressure_mask, out=x0buf)
                    pres = cg_solve(
                        apply_pressure,
                        rp,
                        self.ops.dot,
                        precond=pre_p,
                        x0=x0buf,
                        tol=case.pressure_tol,
                        max_iterations=case.max_iterations,
                        project_nullspace=project,
                    )
                self.p[:] = pres.x
                with arena.scratch(shape, n=3) as (px, py, pz):
                    self.ops.grad(self.ops.continuize(self.p), out=(px, py, pz))
                    scale = dt / b0
                    for star, g in ((us, px), (vs, py), (ws, pz)):
                        g *= scale
                        star -= g

            # ---- viscous Helmholtz solves -----------------------------------
            with self.watch.phase("viscous"), tel.tracer.span("solver.viscous"):
                h0_scalar = case.density * b0 / dt
                h0 = h0_scalar if self.chi is None else h0_scalar + self.chi
                vel_iters = 0
                new_vel = []
                vel_key = f"velocity:h0={h0_scalar:.6e}"
                rho_b0_dt = case.density * (b0 / dt)
                with arena.scratch(shape, n=2) as (rhs_buf, lift_buf):
                    for star, lift_field in ((us, ub), (vs, vb), (ws, wb)):
                        np.multiply(star, rho_b0_dt, out=rhs_buf)
                        self.ops.mass_apply(rhs_buf, out=rhs_buf)
                        np.multiply(lift_field, bc_nodes, out=lift_buf)
                        sol, result = self._helmholtz_solve(
                            rhs_buf,
                            lift_buf,
                            case.viscosity,
                            h0,
                            self.velocity_mask,
                            case.velocity_tol,
                            vel_key,
                        )
                        new_vel.append(sol)
                        vel_iters += result.iterations
                self.u[:] = new_vel[0]
                self.v[:] = new_vel[1]
                self.w[:] = new_vel[2]
        finally:
            arena.release(us, vs, ws, ub, vb, wb)

        # ---- bookkeeping -----------------------------------------------------
        all_hists = [self._hist_u, self._hist_T, self._hist_adv, self._hist_advT]
        all_hists.extend(self._hist_s.values())
        all_hists.extend(self._hist_advS.values())
        for hist in all_hists:
            while len(hist) > self._max_hist:
                hist.pop(0)

        self.step_index += 1
        self.time = t_new

        with arena.scratch(shape) as div_now:
            self.ops.div(self.u, self.v, self.w, out=div_now)
            div_norm = self.ops.norm(div_now)
        cfl = self.cfl()
        wall = _time.perf_counter() - t_begin
        self.watch.add_sample("step", wall)
        return StepReport(
            step=self.step_index,
            time=self.time,
            cfl=cfl,
            pressure_iterations=pres.iterations,
            velocity_iterations=vel_iters,
            scalar_iterations=scalar_iters,
            divergence_norm=div_norm,
            wall_seconds=wall,
        )

    def run(self, num_steps: int | None = None, observer=None) -> list[StepReport]:
        """Advance `num_steps` (default: the case's) steps.

        `observer(solver, report)` is called after every step — this is
        the hook the SENSEI bridge attaches to.  An observer returning
        ``False`` (SENSEI's stop protocol: a guard tripped, or a
        steering client commanded stop) halts the run at that step
        boundary; any other return value keeps stepping.
        """
        n = self.case.num_steps if num_steps is None else num_steps
        reports = []
        for _ in range(n):
            report = self.step()
            reports.append(report)
            if observer is not None and observer(self, report) is False:
                break
        return reports

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def cfl(self) -> float:
        """Global advective CFL number of the current state."""
        with get_arena().scratch(self.u.shape, n=2) as (dxi, tmp):
            np.abs(self.u, out=dxi)
            dxi /= self._min_dx[0]
            np.abs(self.v, out=tmp)
            tmp /= self._min_dx[1]
            dxi += tmp
            np.abs(self.w, out=tmp)
            tmp /= self._min_dx[2]
            dxi += tmp
            local = float(dxi.max()) * self.case.dt if dxi.size else 0.0
        return float(self.comm.allreduce(local, ReduceOp.MAX))

    def kinetic_energy(self) -> float:
        """Global volume-integrated kinetic energy."""
        ke = 0.5 * (self.u**2 + self.v**2 + self.w**2)
        return self.ops.integrate(ke)

    def memory_bytes(self) -> int:
        """Bytes held in persistent solver state on this rank."""
        total = sum(
            f.nbytes
            for f in (self.u, self.v, self.w, self.p)
        )
        if self.T is not None:
            total += self.T.nbytes
        for hist in (self._hist_u, self._hist_adv):
            for entry in hist:
                total += sum(f.nbytes for f in entry)
        scalar_hists = [self._hist_T, self._hist_advT]
        scalar_hists.extend(self._hist_s.values())
        scalar_hists.extend(self._hist_advS.values())
        for hist in scalar_hists:
            for entry in hist:
                total += entry.nbytes
        total += sum(f.nbytes for f in self.scalars.values())
        if self.chi is not None:
            total += self.chi.nbytes
        # mesh coordinates + geometric factors + numbering
        total += self.mesh.x.nbytes * 3
        total += self.ops.geom.mass.nbytes * 4  # mass + grr/gss/gtt
        total += self.mesh.global_ids.nbytes
        return total

    def local_gridpoints(self) -> int:
        return int(np.prod(self.mesh.field_shape()))
