"""BDF_k / EXT_k time-integration coefficients.

NekRS advances the Navier-Stokes equations with implicit backward
differentiation (BDF) on the linear terms and explicit extrapolation
(EXT) of the nonlinear/advective terms of matching order.  The first
steps of a run ramp the order up (BDF1 -> BDF2 -> BDF3) because no
history exists yet.

Convention: for d/dt u at t^{n+1},

    du/dt ~ (b0 * u^{n+1} - sum_j b[j] * u^{n-j}) / dt

and the explicit extrapolation of a term N is

    N^{n+1} ~ sum_j a[j] * N^{n-j}.
"""

from __future__ import annotations

_BDF = {
    1: (1.0, (1.0,)),
    2: (1.5, (2.0, -0.5)),
    3: (11.0 / 6.0, (3.0, -1.5, 1.0 / 3.0)),
}

_EXT = {
    1: (1.0,),
    2: (2.0, -1.0),
    3: (3.0, -3.0, 1.0),
}


def bdf_coefficients(order: int) -> tuple[float, tuple[float, ...]]:
    """(b0, (b1..bk)) for BDF of the given order (1..3)."""
    if order not in _BDF:
        raise ValueError(f"BDF order must be 1..3, got {order}")
    return _BDF[order]


def ext_coefficients(order: int) -> tuple[float, ...]:
    """(a1..ak) extrapolation weights for EXT of the given order (1..3)."""
    if order not in _EXT:
        raise ValueError(f"EXT order must be 1..3, got {order}")
    return _EXT[order]


def effective_order(target_order: int, step_index: int) -> int:
    """Order usable at `step_index` (0-based): ramps 1, 2, ..., target."""
    if target_order < 1:
        raise ValueError("target_order must be >= 1")
    return min(target_order, step_index + 1)
