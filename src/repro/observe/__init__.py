"""Unified telemetry: tracing spans, metrics, and memory accounting.

The observability layer the paper's whole evaluation implicitly
depends on (wall time, time per step, memory high-water marks) made
first-class:

- :mod:`repro.observe.tracer` — nested per-rank spans with Chrome
  trace-event JSON export (Perfetto / ``chrome://tracing``) and a
  plain-text flame summary;
- :mod:`repro.observe.metrics` — counters / gauges / fixed-bucket
  histograms, merged across ranks via Communicator reductions,
  exported as Prometheus text or JSON;
- :mod:`repro.observe.memory` — logical allocation high-water marks
  per category (device buffers, SENSEI staging, SST queues, Catalyst
  framebuffers, solver state);
- :mod:`repro.observe.session` — per-rank bundles behind a
  thread-local :func:`get_telemetry`, no-op by default so
  uninstrumented runs are unaffected.

Typical use::

    session = TelemetrySession("my-run")

    def body(comm):
        with session.activate(comm.rank):
            ...  # instrumented stack records into this rank's bundle

    run_spmd(4, body)
    session.write_chrome_trace("trace.json")
    print(session.to_prometheus())

See ``docs/observability.md`` and ``python -m repro trace``.
"""

from repro.observe.memory import MemoryMeter, NullMemoryMeter, aggregate_peaks
from repro.observe.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    naming_violations,
)
from repro.observe.session import (
    Telemetry,
    TelemetrySession,
    active,
    get_telemetry,
    install,
    uninstall,
)
from repro.observe.tracer import (
    InstantEvent,
    NullTracer,
    SpanEvent,
    Tracer,
    chrome_trace,
    flame_summary,
    validate_nesting,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "DEFAULT_BUCKETS",
    "naming_violations",
    "MemoryMeter",
    "NullMemoryMeter",
    "aggregate_peaks",
    "Telemetry",
    "TelemetrySession",
    "active",
    "get_telemetry",
    "install",
    "uninstall",
    "Tracer",
    "NullTracer",
    "SpanEvent",
    "InstantEvent",
    "chrome_trace",
    "flame_summary",
    "validate_nesting",
]
