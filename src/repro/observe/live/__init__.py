"""repro.observe.live — the streaming telemetry plane.

PR 2's :mod:`repro.observe` is post-hoc: spans and metrics merge after
the run.  This package makes the same signals visible *while the run
is in flight* — the regime the elastic fleet (PR 6) and live serving
(PR 5) created — without giving up the overhead guarantee:

- :mod:`~repro.observe.live.correlate` — ``(run_id, step, stream)``
  step tags and the seven-stage :class:`StepTimeline`
  (solve → marshal → wire → render → composite → encode → deliver);
- :mod:`~repro.observe.live.collector` — per-rank ring-buffer
  collectors with delta-snapshot flush, plus the
  :class:`AdaptiveSampler` that degrades detail
  (full → stage → counters) when measured cost blows the 5% budget;
- :mod:`~repro.observe.live.aggregate` — the streaming
  :class:`LiveAggregator`: rolling p50/p99 per stage, wire pairing,
  bytes on wire, windowed counts, retained step events;
- :mod:`~repro.observe.live.slo` — declarative SLO specs with
  burn-rate evaluation; alerts feed the fleet autoscaler as pressure
  and the steering bus as advisories;
- :mod:`~repro.observe.live.export` — payloads for ``/metrics``,
  ``/healthz``, ``/slo``, ``/timeline`` and the ``observe top``
  dashboard;
- :mod:`~repro.observe.live.plane` — :class:`LivePlane`, the facade
  that binds all of it to a :class:`TelemetrySession`.

See ``docs/observability.md`` ("Live telemetry").
"""

from repro.observe.live.aggregate import LiveAggregator, percentile
from repro.observe.live.collector import (
    LEVEL_COUNTERS,
    LEVEL_FULL,
    LEVEL_NAMES,
    LEVEL_STAGE,
    AdaptiveSampler,
    NullLiveCollector,
    RingCollector,
    Snapshot,
    WireMark,
)
from repro.observe.live.correlate import (
    STAGES,
    StageEvent,
    StepTag,
    StepTimeline,
    build_timeline,
    mint_run_id,
)
from repro.observe.live.export import (
    healthz_payload,
    prometheus_text,
    render_top,
    slo_payload,
    timeline_payload,
)
from repro.observe.live.plane import LivePlane
from repro.observe.live.slo import (
    SLO_KINDS,
    Alert,
    SLOSpec,
    SLOWatchdog,
    default_slos,
)

__all__ = [
    "STAGES",
    "StepTag",
    "StageEvent",
    "StepTimeline",
    "build_timeline",
    "mint_run_id",
    "AdaptiveSampler",
    "NullLiveCollector",
    "RingCollector",
    "Snapshot",
    "WireMark",
    "LEVEL_FULL",
    "LEVEL_STAGE",
    "LEVEL_COUNTERS",
    "LEVEL_NAMES",
    "LiveAggregator",
    "percentile",
    "SLO_KINDS",
    "SLOSpec",
    "Alert",
    "SLOWatchdog",
    "default_slos",
    "LivePlane",
    "prometheus_text",
    "healthz_payload",
    "slo_payload",
    "timeline_payload",
    "render_top",
]
