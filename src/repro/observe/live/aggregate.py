"""LiveAggregator: streaming merge of per-rank collector snapshots.

One aggregator per :class:`~repro.observe.live.plane.LivePlane`.
Collectors flush delta :class:`~repro.observe.live.collector.Snapshot`
objects each step; the aggregator folds them into

- **cumulative per-stage histograms** — the same mergeable
  :class:`~repro.observe.metrics.Histogram` (bucket counts + parallel
  Welford :class:`~repro.util.timing.TimingStats`) the post-hoc
  registry uses, so live and post-hoc numbers agree by construction;
- **rolling windows** — the last N durations per stage for exact
  p50/p99 over the recent past;
- **step event groups** — the raw :class:`StageEvent` records keyed by
  simulation step, from which :func:`~repro.observe.live.correlate.
  build_timeline` reconstructs a :class:`StepTimeline` on demand
  (bounded: the oldest step is evicted past ``retain_steps``);
- **wire pairing** — writer ``put`` marks and consumer ``got`` marks
  meet here (the two halves arrive in different ranks' snapshots) and
  become the ``wire`` stage plus the bytes-on-wire gauge;
- **windowed counts** — timestamped count deltas (retries, publish
  stalls, ...) pruned to a horizon, so the SLO watchdog can evaluate
  burn rates over its rolling window.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque

from repro.observe.live.correlate import (
    STAGES,
    StageEvent,
    StepTimeline,
    build_timeline,
)
from repro.observe.metrics import Histogram

__all__ = ["LiveAggregator", "percentile"]

#: stage-latency buckets: sub-ms render hops to multi-second solves
STAGE_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)

_MAX_PENDING_MARKS = 4096


def percentile(values, q: float) -> float:
    """Nearest-rank percentile of a small sample (q in [0, 100])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(int(math.ceil(q / 100.0 * len(ordered))) - 1, 0)
    return ordered[min(rank, len(ordered) - 1)]


class LiveAggregator:
    """Merges rank/endpoint snapshots into rolling live state."""

    def __init__(
        self,
        run_id: str,
        window: int = 256,
        retain_steps: int = 512,
        horizon_s: float = 60.0,
        clock=time.perf_counter,
    ):
        self.run_id = run_id
        self.window = window
        self.retain_steps = retain_steps
        self.horizon_s = horizon_s
        self._clock = clock
        self._lock = threading.Lock()
        self.stage_hist: dict[str, Histogram] = {}
        self._windows: dict[str, deque] = {}
        self._step_events: dict[int, list[StageEvent]] = {}
        self._pending_puts: dict[tuple[int, int], object] = {}
        self._pending_gots: dict[tuple[int, int], object] = {}
        self.counts: dict[str, float] = {}
        self._count_events: dict[str, deque] = {}
        self.bytes_put = 0
        self.bytes_got = 0
        self.last_frame: dict[str, tuple[int, float]] = {}
        self.gauges: dict[str, float] = {}
        self.snapshots = 0
        self.events_seen = 0
        self.dropped_events = 0
        self.ranks_seen: set[int] = set()

    # -- ingest --------------------------------------------------------
    def ingest(self, snapshot) -> None:
        now = self._clock()
        with self._lock:
            self.snapshots += 1
            self.ranks_seen.add(snapshot.rank)
            self.dropped_events += snapshot.dropped
            for stage, durations in snapshot.durations.items():
                hist = self.stage_hist.get(stage)
                if hist is None:
                    hist = self.stage_hist[stage] = Histogram(
                        f"repro_live_stage_{stage}_seconds",
                        buckets=STAGE_BUCKETS,
                    )
                win = self._windows.setdefault(stage, deque(maxlen=self.window))
                for d in durations:
                    hist.observe(d)
                    win.append(d)
            for event in snapshot.events:
                self._add_event_locked(event)
            for mark in snapshot.wire_marks:
                self._pair_wire_locked(mark)
            for name, n in snapshot.counts.items():
                self.counts[name] = self.counts.get(name, 0) + n
                if name == "wire_put_bytes":
                    self.bytes_put += int(n)
                elif name == "wire_got_bytes":
                    self.bytes_got += int(n)
                else:
                    log = self._count_events.setdefault(name, deque())
                    log.append((now, n))
            self._prune_counts_locked(now)

    def _add_event_locked(self, event: StageEvent) -> None:
        self.events_seen += 1
        self._step_events.setdefault(event.step, []).append(event)
        while len(self._step_events) > self.retain_steps:
            self._step_events.pop(min(self._step_events))

    def _pair_wire_locked(self, mark) -> None:
        key = (mark.step, mark.stream)
        if mark.kind == "put":
            other = self._pending_gots.pop(key, None)
            if other is None:
                self._pending_puts[key] = mark
                self._trim_pending_locked(self._pending_puts)
                return
            put, got = mark, other
        else:
            other = self._pending_puts.pop(key, None)
            if other is None:
                self._pending_gots[key] = mark
                self._trim_pending_locked(self._pending_gots)
                return
            put, got = other, mark
        # the shared perf_counter clock makes the cross-rank interval
        # meaningful; attribute it to the consumer rank
        t0, t1 = put.t, max(got.t, put.t)
        self._add_event_locked(
            StageEvent(stage="wire", step=put.step, t0=t0, t1=t1,
                       rank=got.rank, stream=put.stream)
        )
        dur = t1 - t0
        hist = self.stage_hist.get("wire")
        if hist is None:
            hist = self.stage_hist["wire"] = Histogram(
                "repro_live_stage_wire_seconds", buckets=STAGE_BUCKETS
            )
        hist.observe(dur)
        self._windows.setdefault("wire", deque(maxlen=self.window)).append(dur)

    @staticmethod
    def _trim_pending_locked(pending: dict) -> None:
        while len(pending) > _MAX_PENDING_MARKS:
            pending.pop(next(iter(pending)))

    def _prune_counts_locked(self, now: float) -> None:
        cutoff = now - self.horizon_s
        for log in self._count_events.values():
            while log and log[0][0] < cutoff:
                log.popleft()

    # -- direct signals ------------------------------------------------
    def note_frame(self, stream: str, step: int, t: float) -> None:
        with self._lock:
            self.last_frame[stream] = (step, t)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = float(value)

    # -- queries -------------------------------------------------------
    @property
    def bytes_on_wire(self) -> int:
        return max(self.bytes_put - self.bytes_got, 0)

    def window_values(self, stage: str) -> list[float]:
        """The rolling window of recent durations for one stage."""
        with self._lock:
            return list(self._windows.get(stage, ()))

    def window_stats(self, stage: str) -> dict:
        with self._lock:
            values = list(self._windows.get(stage, ()))
            hist = self.stage_hist.get(stage)
            total = hist.stats.count if hist is not None else 0
        return {
            "count": total,
            "window": len(values),
            "p50_s": percentile(values, 50),
            "p99_s": percentile(values, 99),
            "max_s": max(values) if values else 0.0,
        }

    def count_in_window(self, name: str, now: float | None = None,
                        window_s: float = 30.0) -> float:
        now = self._clock() if now is None else now
        with self._lock:
            log = self._count_events.get(name, ())
            return sum(n for t, n in log if t >= now - window_s)

    def rate(self, name: str, now: float | None = None,
             window_s: float = 30.0) -> float:
        """Events per second over the trailing window."""
        return self.count_in_window(name, now, window_s) / window_s

    def frame_staleness(self, now: float | None = None) -> dict[str, float]:
        now = self._clock() if now is None else now
        with self._lock:
            return {s: now - t for s, (_step, t) in self.last_frame.items()}

    def steps(self) -> list[int]:
        with self._lock:
            return sorted(self._step_events)

    def timeline(self, step: int) -> StepTimeline | None:
        with self._lock:
            events = self._step_events.get(step)
            if events is None:
                return None
            events = tuple(events)
        return build_timeline(self.run_id, step, events)

    def latest_timeline(self) -> StepTimeline | None:
        """The newest *complete* timeline (falls back to the newest)."""
        candidates = self.steps()
        newest = None
        for step in reversed(candidates):
            tl = self.timeline(step)
            if newest is None:
                newest = tl
            if tl is not None and tl.complete:
                return tl
        return newest

    def complete_timelines(self) -> list[StepTimeline]:
        out = []
        for step in self.steps():
            tl = self.timeline(step)
            if tl is not None and tl.complete:
                out.append(tl)
        return out

    def summary(self, now: float | None = None) -> dict:
        now = self._clock() if now is None else now
        stages = {
            stage: self.window_stats(stage)
            for stage in STAGES
            if stage in self.stage_hist
        }
        with self._lock:
            counts = dict(self.counts)
            gauges = dict(self.gauges)
            retained = len(self._step_events)
        return {
            "run_id": self.run_id,
            "snapshots": self.snapshots,
            "ranks": sorted(self.ranks_seen),
            "events": self.events_seen,
            "dropped_events": self.dropped_events,
            "steps_retained": retained,
            "stages": stages,
            "counts": counts,
            "gauges": gauges,
            "bytes_on_wire": self.bytes_on_wire,
            "bytes_put": self.bytes_put,
            "bytes_got": self.bytes_got,
            "frame_staleness_s": self.frame_staleness(now),
        }
