"""Per-rank ring-buffer collectors and the adaptive overhead sampler.

Each rank's :class:`~repro.observe.session.Telemetry` bundle carries a
``live`` slot.  By default it holds the shared no-op
:class:`NullLiveCollector`, so uninstrumented runs pay one attribute
load per call site.  When a :class:`~repro.observe.live.plane.
LivePlane` is attached to a session, every rank gets a
:class:`RingCollector`: a bounded event ring plus per-stage duration
buffers and named counts, drained as a delta :class:`Snapshot` at step
boundaries (``solve`` on simulation ranks, ``deliver`` on endpoints)
or when the ring half-fills.  The plane feeds each snapshot to the
streaming aggregator and charges its measured recording cost to the
:class:`AdaptiveSampler`.

The sampler is the overhead governor: it compares recording cost to
wall time per flush window and degrades detail when the ratio blows
the budget —

- level 0 ``full``     — stage events plus free-form detail marks;
- level 1 ``stage``    — only the seven canonical stages (and the
  wire put/got marks that build the ``wire`` stage);
- level 2 ``counters`` — nothing enters the ring; only durations and
  counts flow, so SLO evaluation keeps working while timelines stop.

Recovery is hysteretic: the level steps back up only after `patience`
consecutive calm windows, so a borderline run doesn't flap.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.observe.live.correlate import STAGE_INDEX, StageEvent

__all__ = [
    "AdaptiveSampler",
    "NullLiveCollector",
    "RingCollector",
    "Snapshot",
    "WireMark",
    "LEVEL_FULL",
    "LEVEL_STAGE",
    "LEVEL_COUNTERS",
    "LEVEL_NAMES",
]

LEVEL_FULL = 0
LEVEL_STAGE = 1
LEVEL_COUNTERS = 2
LEVEL_NAMES = ("full", "stage", "counters")

#: max retained durations per stage per flush window (keeps a snapshot
#: bounded even if a rank goes a long time between flushes)
_MAX_DURATIONS = 256


class AdaptiveSampler:
    """Steps span detail down when telemetry cost exceeds its budget."""

    def __init__(
        self,
        budget: float = 0.05,
        min_wall_s: float = 1e-4,
        upgrade_margin: float = 0.25,
        patience: int = 3,
    ):
        if budget < 0:
            raise ValueError("budget must be >= 0")
        self.budget = budget
        self.min_wall_s = min_wall_s
        self.upgrade_margin = upgrade_margin
        self.patience = patience
        self.level = LEVEL_FULL
        self.downgrades = 0
        self.upgrades = 0
        self.last_ratio = 0.0
        self._calm = 0
        self._lock = threading.Lock()

    @property
    def level_name(self) -> str:
        return LEVEL_NAMES[self.level]

    def update(self, cost_s: float, wall_s: float) -> int:
        """Fold one flush window's (cost, wall) in; returns the level."""
        if wall_s < self.min_wall_s:
            return self.level
        ratio = cost_s / wall_s
        with self._lock:
            self.last_ratio = ratio
            if ratio > self.budget:
                self._calm = 0
                if self.level < LEVEL_COUNTERS:
                    self.level += 1
                    self.downgrades += 1
            elif ratio < self.budget * self.upgrade_margin:
                self._calm += 1
                if self._calm >= self.patience and self.level > LEVEL_FULL:
                    self.level -= 1
                    self.upgrades += 1
                    self._calm = 0
            else:
                self._calm = 0
            return self.level

    def as_dict(self) -> dict:
        return {
            "level": self.level,
            "level_name": self.level_name,
            "budget": self.budget,
            "last_ratio": self.last_ratio,
            "downgrades": self.downgrades,
            "upgrades": self.upgrades,
        }


@dataclass(frozen=True)
class WireMark:
    """Half of a cross-rank wire interval (``put`` or ``got``)."""

    kind: str               # "put" | "got"
    step: int
    stream: int
    t: float
    nbytes: int
    rank: int = 0


@dataclass(frozen=True)
class Snapshot:
    """One delta flush from one rank's collector."""

    rank: int
    seq: int
    events: tuple = ()                 # StageEvent (canonical + detail marks)
    wire_marks: tuple = ()             # WireMark
    durations: dict = field(default_factory=dict)   # stage -> [seconds]
    counts: dict = field(default_factory=dict)      # name -> n
    dropped: int = 0                   # events lost to ring overflow

    @property
    def empty(self) -> bool:
        return not (self.events or self.wire_marks or self.durations
                    or self.counts or self.dropped)


class NullLiveCollector:
    """No-op live slot: the default on every Telemetry bundle."""

    __slots__ = ()

    enabled = False
    run_id = ""

    def stage(self, name, step, t0, t1, stream=-1) -> None: ...
    def mark(self, name, step, t0, t1, stream=-1) -> None: ...
    def wire_mark(self, kind, step, stream, t, nbytes=0) -> None: ...
    def event(self, name, n=1) -> None: ...
    def note_frame(self, stream, step, t) -> None: ...
    def flush(self) -> None: ...


class RingCollector:
    """One rank's live recorder: bounded ring + delta-snapshot flush."""

    enabled = True

    def __init__(self, plane, rank: int, capacity: int = 1024,
                 clock=time.perf_counter):
        self._plane = plane
        self.rank = rank
        self.capacity = capacity
        self._clock = clock
        self._lock = threading.Lock()
        self._events: list = []
        self._wire_marks: list = []
        self._durations: dict[str, list[float]] = {}
        self._counts: dict[str, float] = {}
        self._dropped = 0
        self._seq = 0
        self._cost_s = 0.0
        self._last_flush_t = clock()
        self.flushes = 0
        self.dropped_total = 0

    @property
    def run_id(self) -> str:
        return self._plane.run_id

    @property
    def level(self) -> int:
        return self._plane.sampler.level

    # -- recording -----------------------------------------------------
    def _push_locked(self, item, ring: list) -> None:
        if len(self._events) + len(self._wire_marks) >= self.capacity:
            self._dropped += 1
            self.dropped_total += 1
            return
        ring.append(item)

    def stage(self, name: str, step: int, t0: float, t1: float,
              stream: int = -1) -> None:
        """Record one canonical stage interval for (step, stream)."""
        c0 = self._clock()
        with self._lock:
            durs = self._durations.setdefault(name, [])
            if len(durs) < _MAX_DURATIONS:
                durs.append(t1 - t0)
            if self._plane.sampler.level <= LEVEL_STAGE:
                self._push_locked(
                    StageEvent(stage=name, step=step, t0=t0, t1=t1,
                               rank=self.rank, stream=stream),
                    self._events,
                )
            full = len(self._events) + len(self._wire_marks) >= self.capacity // 2
            self._cost_s += self._clock() - c0
        if name in ("solve", "deliver") or full:
            self.flush()

    def mark(self, name: str, step: int, t0: float, t1: float,
             stream: int = -1) -> None:
        """Record a detail span (kept only at the ``full`` level)."""
        if self._plane.sampler.level > LEVEL_FULL:
            return
        c0 = self._clock()
        with self._lock:
            self._push_locked(
                StageEvent(stage=name, step=step, t0=t0, t1=t1,
                           rank=self.rank, stream=stream),
                self._events,
            )
            self._cost_s += self._clock() - c0

    def wire_mark(self, kind: str, step: int, stream: int, t: float,
                  nbytes: int = 0) -> None:
        """Record one wire half; the aggregator pairs put/got."""
        c0 = self._clock()
        with self._lock:
            key = f"wire_{kind}_bytes"
            self._counts[key] = self._counts.get(key, 0) + nbytes
            if self._plane.sampler.level <= LEVEL_STAGE:
                self._push_locked(
                    WireMark(kind=kind, step=step, stream=stream, t=t,
                             nbytes=nbytes, rank=self.rank),
                    self._wire_marks,
                )
            self._cost_s += self._clock() - c0

    def event(self, name: str, n: float = 1) -> None:
        """Bump a named live count (retry, publish_stall, ...)."""
        c0 = self._clock()
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + n
            self._cost_s += self._clock() - c0

    def note_frame(self, stream: str, step: int, t: float) -> None:
        """Freshness signal: a frame for `stream` published at `t`."""
        self._plane.note_frame(stream, step, t)

    # -- flushing ------------------------------------------------------
    def flush(self) -> None:
        """Drain the delta since the last flush into the plane."""
        c0 = self._clock()
        with self._lock:
            if not (self._events or self._wire_marks or self._durations
                    or self._counts or self._dropped):
                return
            snap = Snapshot(
                rank=self.rank,
                seq=self._seq,
                events=tuple(self._events),
                wire_marks=tuple(self._wire_marks),
                durations=self._durations,
                counts=self._counts,
                dropped=self._dropped,
            )
            self._seq += 1
            self._events = []
            self._wire_marks = []
            self._durations = {}
            self._counts = {}
            self._dropped = 0
            now = self._clock()
            cost = self._cost_s + (now - c0)
            self._cost_s = 0.0
            wall = now - self._last_flush_t
            self._last_flush_t = now
            self.flushes += 1
        self._plane.ingest(snap, cost_s=cost, wall_s=wall)
