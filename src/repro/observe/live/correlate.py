"""Step correlation: tags, stage events, and the StepTimeline.

Every in-flight step carries a ``(run_id, step, stream)`` tag.  The
tag is minted where the step is born (:meth:`repro.nekrs.solver.
NekRSSolver.step` records the ``solve`` stage under the active run
id), rides the RBP2 payload header as the ``corr`` attribute through
:class:`~repro.adios.engine.SSTBroker`, and every later hop —
endpoint render, frame publish, client delivery — records its stage
against the same ``(step, stream)`` key.  The
:class:`~repro.observe.live.aggregate.LiveAggregator` groups those
:class:`StageEvent` records per step; :class:`StepTimeline` is the
reconstructed critical path.

The seven canonical stages, in pipeline order::

    solve -> marshal -> wire -> render -> composite -> encode -> deliver

``wire`` is special: no single rank observes it.  The writer records a
``put`` mark when the payload lands in the broker queue, the consumer
records a ``got`` mark when it drains it, and the aggregator pairs the
two into one StageEvent — valid because the threaded SPMD runtime
shares one ``time.perf_counter`` clock across every rank.

Stage seconds are *attributed*: overlapping intervals are swept and
each instant is charged to the most-downstream stage active at that
instant, so ``sum(attributed_seconds.values())`` is exactly the length
of the union of all stage intervals — structurally ``<=`` the step's
wall time.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

__all__ = [
    "STAGES",
    "STAGE_INDEX",
    "StepTag",
    "StageEvent",
    "StepTimeline",
    "build_timeline",
    "mint_run_id",
]

#: the canonical pipeline stages, in order
STAGES = ("solve", "marshal", "wire", "render", "composite", "encode", "deliver")
STAGE_INDEX = {name: i for i, name in enumerate(STAGES)}

_RUN_SEQ = itertools.count(1)
_RUN_SEQ_LOCK = threading.Lock()


def mint_run_id(label: str = "repro") -> str:
    """A process-unique run id, ``<label>-NNNN`` (deterministic order)."""
    with _RUN_SEQ_LOCK:
        return f"{label}-{next(_RUN_SEQ):04d}"


@dataclass(frozen=True)
class StepTag:
    """The correlation tag one step carries end to end."""

    run_id: str
    step: int
    stream: int

    def encode(self) -> str:
        """Wire form for the RBP2 ``corr`` attribute."""
        return f"{self.run_id}:{self.step}:{self.stream}"

    @classmethod
    def decode(cls, text: str) -> "StepTag":
        run_id, step, stream = text.rsplit(":", 2)
        return cls(run_id=run_id, step=int(step), stream=int(stream))


@dataclass(frozen=True)
class StageEvent:
    """One stage interval observed on one rank for one step."""

    stage: str
    step: int
    t0: float
    t1: float
    rank: int = 0
    stream: int = -1

    @property
    def seconds(self) -> float:
        return self.t1 - self.t0

    def as_dict(self) -> dict:
        return {
            "stage": self.stage,
            "step": self.step,
            "t0": self.t0,
            "t1": self.t1,
            "rank": self.rank,
            "stream": self.stream,
        }


def _attribute(events) -> dict[str, float]:
    """Sweep the intervals; charge each instant to the latest active stage.

    Returns per-stage attributed seconds.  Any instant covered by two
    stages (e.g. stream 1 still marshaling while stream 0's payload is
    on the wire) counts once, toward the more downstream stage, so the
    total equals the union length of all intervals.
    """
    bounds = sorted({e.t0 for e in events} | {e.t1 for e in events})
    out = {s: 0.0 for s in STAGES}
    for lo, hi in zip(bounds, bounds[1:]):
        active = [
            STAGE_INDEX[e.stage] for e in events if e.t0 <= lo and e.t1 >= hi
        ]
        if active:
            out[STAGES[max(active)]] += hi - lo
    return {s: v for s, v in out.items() if v > 0.0}


@dataclass
class StepTimeline:
    """The reconstructed critical path of one simulation step."""

    run_id: str
    step: int
    events: tuple[StageEvent, ...] = ()
    _attributed: dict | None = field(default=None, repr=False)

    @property
    def stages(self) -> tuple[str, ...]:
        """Stages with at least one observed event, in pipeline order."""
        present = {e.stage for e in self.events}
        return tuple(s for s in STAGES if s in present)

    @property
    def complete(self) -> bool:
        """True when all seven canonical stages were observed."""
        return len(self.stages) == len(STAGES)

    @property
    def wall_start(self) -> float:
        return min(e.t0 for e in self.events)

    @property
    def wall_end(self) -> float:
        return max(e.t1 for e in self.events)

    @property
    def wall_seconds(self) -> float:
        """Whole-step wall: first solve start to last delivery end."""
        return self.wall_end - self.wall_start

    @property
    def attributed_seconds(self) -> dict[str, float]:
        """Per-stage seconds; sums to the union length (<= wall_seconds)."""
        if self._attributed is None:
            self._attributed = _attribute(self.events)
        return self._attributed

    def stage_events(self, stage: str) -> tuple[StageEvent, ...]:
        return tuple(e for e in self.events if e.stage == stage)

    def to_json(self) -> dict:
        att = self.attributed_seconds
        return {
            "run_id": self.run_id,
            "step": self.step,
            "complete": self.complete,
            "stages": list(self.stages),
            "wall_seconds": self.wall_seconds if self.events else 0.0,
            "attributed_seconds": att,
            "attributed_total": sum(att.values()),
            "events": [e.as_dict() for e in sorted(self.events, key=lambda e: e.t0)],
        }


def build_timeline(run_id: str, step: int, events) -> StepTimeline:
    """Assemble a timeline from this step's stage events (any order)."""
    good = tuple(e for e in events if e.stage in STAGE_INDEX and e.t1 >= e.t0)
    return StepTimeline(run_id=run_id, step=step, events=good)
