"""Live export payloads: HTTP endpoints and the `observe top` screen.

Pure functions from a :class:`~repro.observe.live.plane.LivePlane` to
wire payloads, shared by the :class:`~repro.serve.transport.
HttpFrameServer` routes and the ``python -m repro observe top``
terminal dashboard:

- :func:`prometheus_text` — ``GET /metrics``: the session's per-rank
  registries merged with the plane's ``repro_live_*`` extras, text
  exposition format 0.0.4;
- :func:`healthz_payload` — ``GET /healthz``: liveness + degradation;
- :func:`slo_payload` — ``GET /slo``: specs, burn rates, active and
  historical alerts, autoscaler pressure;
- :func:`timeline_payload` — ``GET /timeline?step=N``: one step's
  reconstructed :class:`StepTimeline` (the newest complete one when
  no step is given) plus the retained step index;
- :func:`render_top` — the one-screen text dashboard.
"""

from __future__ import annotations

from repro.observe.live.correlate import STAGES

__all__ = [
    "prometheus_text",
    "healthz_payload",
    "slo_payload",
    "timeline_payload",
    "render_top",
    "render_remote_top",
]


def prometheus_text(plane) -> str:
    plane.flush_all()
    return plane.prometheus()


def healthz_payload(plane) -> dict:
    return plane.healthz()


def slo_payload(plane) -> dict:
    plane.flush_all()
    payload = plane.watchdog.to_json()
    payload["run_id"] = plane.run_id
    payload["sampler"] = plane.sampler.as_dict()
    payload["autoscaler_pressure_seen"] = plane.autoscaler_pressure_seen
    return payload


def timeline_payload(plane, step: int | None = None) -> tuple[int, dict]:
    """(http_status, payload) for /timeline[?step=N]."""
    plane.flush_all()
    steps = plane.aggregator.steps()
    if step is None:
        timeline = plane.aggregator.latest_timeline()
        if timeline is None:
            return 404, {"error": "no steps observed yet", "steps": steps}
    else:
        timeline = plane.timeline(step)
        if timeline is None:
            return 404, {"error": f"step {step} not retained", "steps": steps}
    payload = timeline.to_json()
    payload["steps"] = steps
    return 200, payload


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}"


def _pcie_line(plane) -> str | None:
    """The modeled PCIe traffic, when any rank has charged the link."""
    from repro.util.sizes import format_bytes

    metrics = plane.merged_metrics()
    h2d = metrics.get("repro_pcie_h2d_bytes_total")
    d2h = metrics.get("repro_pcie_d2h_bytes_total")
    if h2d is None and d2h is None:
        return None
    return (
        f"pcie: h2d {format_bytes(h2d.value if h2d else 0)}  "
        f"d2h {format_bytes(d2h.value if d2h else 0)}"
    )


def _serve_line(plane) -> str | None:
    """The serving mesh, when a hub has mirrored cache/relay metrics."""
    metrics = plane.merged_metrics()
    hits = metrics.get("repro_serve_cache_hits_total")
    misses = metrics.get("repro_serve_cache_misses_total")
    relays = [
        m for m in metrics
        if m.name == "repro_serve_relay_clients"
    ]
    if hits is None and misses is None and not relays:
        return None
    h = int(hits.value) if hits else 0
    m = int(misses.value) if misses else 0
    total = h + m
    rate = f"{h / total:.0%}" if total else "-"
    line = f"serve: cache {h} hit / {m} miss ({rate})"
    if relays:
        per = "  ".join(
            f"{r.const_labels.get('relay', '?')}:{int(r.value)}"
            for r in sorted(
                relays, key=lambda r: r.const_labels.get("relay", "")
            )
        )
        line += f"  relays {per}"
    return line


def render_top(plane, now: float | None = None) -> str:
    """One dashboard frame: stages, SLOs, alerts, the latest timeline."""
    plane.flush_all()
    agg = plane.aggregator
    summary = agg.summary(now)
    sampler = plane.sampler
    health = plane.healthz()
    lines = [
        f"repro observe top — run {plane.run_id}",
        (
            f"status {health['status']}  sampler {sampler.level_name} "
            f"(cost {sampler.last_ratio * 100:.2f}% of "
            f"{sampler.budget * 100:.0f}% budget, "
            f"{sampler.downgrades} downgrades)"
        ),
        (
            f"ranks {summary['ranks']}  snapshots {summary['snapshots']}  "
            f"events {summary['events']}  dropped {summary['dropped_events']}  "
            f"bytes on wire {summary['bytes_on_wire']}"
        ),
    ]
    pcie = _pcie_line(plane)
    if pcie:
        lines.append(pcie)
    serve = _serve_line(plane)
    if serve:
        lines.append(serve)
    lines += [
        "",
        f"{'stage':<10} {'p50 ms':>9} {'p99 ms':>9} {'max ms':>9} {'count':>7}",
    ]
    for stage in STAGES:
        stats = summary["stages"].get(stage)
        if stats is None:
            lines.append(f"{stage:<10} {'-':>9} {'-':>9} {'-':>9} {0:>7}")
            continue
        lines.append(
            f"{stage:<10} {_ms(stats['p50_s']):>9} {_ms(stats['p99_s']):>9} "
            f"{_ms(stats['max_s']):>9} {stats['count']:>7}"
        )
    slo = plane.watchdog.to_json()
    lines += ["", f"{'SLO':<18} {'burn':>7}  state"]
    active_names = {a["slo"] for a in slo["active"]}
    for spec in slo["specs"]:
        burn = slo["burn_rates"].get(spec["name"], 0.0)
        state = "FIRING" if spec["name"] in active_names else "ok"
        lines.append(f"{spec['name']:<18} {burn:>7.2f}  {state}")
    lines.append(
        f"alerts: {len(slo['active'])} active / {slo['fired']} fired, "
        f"autoscaler pressure seen {plane.autoscaler_pressure_seen}"
    )
    for alert in slo["active"][-3:]:
        lines.append(f"  ! {alert['message']}")
    timeline = agg.latest_timeline()
    if timeline is not None and timeline.events:
        att = timeline.attributed_seconds
        parts = " | ".join(
            f"{s} {_ms(att[s])}ms" for s in STAGES if s in att
        )
        lines += [
            "",
            (
                f"step {timeline.step} "
                f"({'complete' if timeline.complete else 'partial'}, "
                f"wall {_ms(timeline.wall_seconds)}ms): {parts}"
            ),
        ]
    staleness = summary["frame_staleness_s"]
    if staleness:
        worst = max(staleness.items(), key=lambda kv: kv[1])
        lines.append(
            f"frames: {len(staleness)} stream(s), stalest "
            f"{worst[0]!r} at {worst[1]:.2f}s"
        )
    return "\n".join(lines)


def render_remote_top(
    health: dict, slo: dict, timeline: dict | None = None
) -> str:
    """Dashboard frame from /healthz + /slo (+ /timeline) payloads.

    The ``--url`` path of ``repro observe top``: same screen shape as
    :func:`render_top`, built from wire payloads instead of a local
    plane.
    """
    sampler = slo.get("sampler", {})
    lines = [
        f"repro observe top — run {health.get('run_id')} "
        f"(remote, uptime {health.get('uptime_s', 0.0):.1f}s)",
        (
            f"status {health.get('status', '?')}  "
            f"sampler {sampler.get('level_name', '?')} "
            f"({sampler.get('downgrades', 0)} downgrades)  "
            f"ranks {health.get('ranks', [])}  "
            f"steps retained {health.get('steps_retained', 0)}"
        ),
        "",
        f"{'SLO':<18} {'burn':>7}  state",
    ]
    active_names = {a["slo"] for a in slo.get("active", [])}
    for spec in slo.get("specs", []):
        burn = slo.get("burn_rates", {}).get(spec["name"], 0.0)
        state = "FIRING" if spec["name"] in active_names else "ok"
        lines.append(f"{spec['name']:<18} {burn:>7.2f}  {state}")
    lines.append(
        f"alerts: {len(slo.get('active', []))} active / "
        f"{slo.get('fired', 0)} fired"
    )
    for alert in slo.get("active", [])[-3:]:
        lines.append(f"  ! {alert['message']}")
    if timeline and "attributed_seconds" in timeline:
        att = timeline["attributed_seconds"]
        parts = " | ".join(
            f"{s} {_ms(att[s])}ms" for s in STAGES if s in att
        )
        lines += [
            "",
            (
                f"step {timeline['step']} "
                f"({'complete' if timeline.get('complete') else 'partial'}, "
                f"wall {_ms(timeline.get('wall_seconds', 0.0))}ms): {parts}"
            ),
        ]
    return "\n".join(lines)
