"""LivePlane: the facade tying collectors, aggregator, SLOs together.

Attach one to a :class:`~repro.observe.session.TelemetrySession` and
every rank the session creates (or has created) gets a
:class:`~repro.observe.live.collector.RingCollector` on its
``Telemetry.live`` slot::

    session = TelemetrySession("fleet-run")
    plane = LivePlane(session, bus=steering_bus)
    runner = InTransitRunner(..., session=session, fleet=FleetConfig())
    run_spmd(ranks, runner.run)
    for tl in plane.timelines():
        print(tl.step, tl.attributed_seconds)

The plane is the single ingest point: each collector flush lands here,
feeds the :class:`~repro.observe.live.aggregate.LiveAggregator`,
charges the measured recording cost to the
:class:`~repro.observe.live.collector.AdaptiveSampler`, runs one
:class:`~repro.observe.live.slo.SLOWatchdog` burn-rate pass, and
maintains the live plane's own ``repro_live_*`` / ``repro_slo_*``
metrics (merged with the session's registries for ``/metrics``).

Fleet integration: the :class:`~repro.fleet.coordinator.
FleetCoordinator` calls :meth:`pressure` from its autoscale tick
(alerts become scale-up pressure alongside broker retry stalls),
:meth:`crash_detected` when an unplanned loss is reaped (fires the
recovery-time alert and finalizes the dead rank's trace track), and
:meth:`recovery_complete` when the replay drains.
"""

from __future__ import annotations

import time

from repro.observe.live.aggregate import LiveAggregator
from repro.observe.live.collector import (
    LEVEL_NAMES,
    AdaptiveSampler,
    RingCollector,
)
from repro.observe.live.correlate import StepTag, StepTimeline, mint_run_id
from repro.observe.live.slo import SLOWatchdog
from repro.observe.metrics import MetricsRegistry

__all__ = ["LivePlane"]


class LivePlane:
    """One run's streaming telemetry plane."""

    def __init__(
        self,
        session,
        run_id: str | None = None,
        slos=None,
        overhead_budget: float = 0.05,
        bus=None,
        window: int = 256,
        retain_steps: int = 512,
        horizon_s: float = 60.0,
        capacity: int = 1024,
        clock=time.perf_counter,
    ):
        self.session = session
        self.run_id = run_id if run_id is not None else mint_run_id(session.label)
        self._clock = clock
        self._capacity = capacity
        self.sampler = AdaptiveSampler(budget=overhead_budget)
        self.aggregator = LiveAggregator(
            self.run_id, window=window, retain_steps=retain_steps,
            horizon_s=horizon_s, clock=clock,
        )
        self.watchdog = SLOWatchdog(specs=slos, bus=bus, clock=clock)
        #: live-plane-only metrics, merged into /metrics alongside the
        #: session's per-rank registries
        self.registry = MetricsRegistry(labels={"plane": "live"})
        self.started_at = clock()
        self.pressure_reads = 0
        self.autoscaler_pressure_seen = 0
        # adopt the session: ranks created from now on bind automatically
        session.live = self
        for tel in session.telemetries():
            self.bind(tel)

    # -- collector lifecycle -------------------------------------------
    def bind(self, tel) -> RingCollector:
        """Give one Telemetry bundle its live collector (idempotent)."""
        live = getattr(tel, "live", None)
        if isinstance(live, RingCollector) and live._plane is self:
            return live
        collector = RingCollector(
            self, tel.rank, capacity=self._capacity, clock=self._clock
        )
        tel.live = collector
        return collector

    def collectors(self) -> list[RingCollector]:
        return [
            tel.live for tel in self.session.telemetries()
            if isinstance(getattr(tel, "live", None), RingCollector)
        ]

    def flush_all(self) -> None:
        """Drain every rank's pending delta (end of run, export time)."""
        for collector in self.collectors():
            collector.flush()

    # -- the ingest point ----------------------------------------------
    def ingest(self, snapshot, cost_s: float = 0.0, wall_s: float = 0.0) -> None:
        self.aggregator.ingest(snapshot)
        self.sampler.update(cost_s, wall_s)
        fired = self.watchdog.evaluate(self.aggregator)
        reg = self.registry
        reg.counter(
            "repro_live_snapshots_total", "Collector snapshots ingested"
        ).inc()
        if snapshot.events:
            reg.counter(
                "repro_live_events_total", "Live stage events ingested"
            ).inc(len(snapshot.events))
        if snapshot.dropped:
            reg.counter(
                "repro_live_dropped_events_total",
                "Live events lost to collector ring overflow",
            ).inc(snapshot.dropped)
        if fired:
            reg.counter(
                "repro_slo_alerts_total", "SLO watchdog alerts fired"
            ).inc(len(fired))
        reg.gauge(
            "repro_live_sampler_level",
            "Adaptive sampler level (0 full, 1 stage, 2 counters)",
        ).set(self.sampler.level)
        reg.gauge(
            "repro_live_overhead_ratio",
            "Measured telemetry cost over wall time, last flush window",
        ).set(self.sampler.last_ratio)
        reg.gauge(
            "repro_live_wire_backlog_bytes",
            "Marshaled step bytes put but not yet drained", agg="max",
        ).set(self.aggregator.bytes_on_wire)

    def note_frame(self, stream: str, step: int, t: float) -> None:
        self.aggregator.note_frame(stream, step, t)

    # -- correlation ---------------------------------------------------
    def tag(self, step: int, stream: int) -> StepTag:
        return StepTag(run_id=self.run_id, step=step, stream=stream)

    def timeline(self, step: int) -> StepTimeline | None:
        return self.aggregator.timeline(step)

    def timelines(self) -> list[StepTimeline]:
        """Every retained step's timeline, complete or not."""
        return [
            tl for tl in (
                self.aggregator.timeline(s) for s in self.aggregator.steps()
            ) if tl is not None
        ]

    # -- fleet hooks ---------------------------------------------------
    def pressure(self) -> int:
        """Active-alert count, read by the coordinator's autoscale tick."""
        self.pressure_reads += 1
        return self.watchdog.pressure()

    def note_autoscaler_pressure(self, pressure: int) -> None:
        """The autoscaler observed `pressure` on its last tick."""
        self.autoscaler_pressure_seen = max(
            self.autoscaler_pressure_seen, pressure
        )
        self.registry.gauge(
            "repro_fleet_slo_pressure",
            "SLO alert pressure fed to the autoscaler", agg="max",
        ).set(pressure)

    def crash_detected(self, eid: int, rank_hint: int | None = None) -> None:
        """Unplanned endpoint loss: fire the recovery SLO, close the track."""
        self.watchdog.recovery_started(eid)
        if rank_hint is not None:
            self.session.finalize_rank(rank_hint)

    def recovery_complete(self, eid: int, seconds: float) -> None:
        self.watchdog.recovery_finished(eid, seconds)

    # -- exports -------------------------------------------------------
    def merged_metrics(self) -> MetricsRegistry:
        merged = self.session.merged_metrics()
        merged.merge(self.registry)
        # the aggregator's per-stage latency histograms live outside any
        # rank registry (they merge cross-rank snapshots); fold them in
        # so /metrics exposes repro_live_stage_*_seconds
        for hist in list(self.aggregator.stage_hist.values()):
            merged.histogram(
                hist.name, hist.help, hist.buckets
            ).merge_from(hist)
        return merged

    def prometheus(self) -> str:
        return self.merged_metrics().to_prometheus()

    def healthz(self) -> dict:
        active = self.watchdog.pressure()
        return {
            "status": "degraded" if active else "ok",
            "run_id": self.run_id,
            "uptime_s": self._clock() - self.started_at,
            "ranks": sorted(self.aggregator.ranks_seen),
            "steps_retained": len(self.aggregator.steps()),
            "alerts_active": active,
            "sampler_level": LEVEL_NAMES[self.sampler.level],
        }

    def to_json(self) -> dict:
        return {
            "run_id": self.run_id,
            "sampler": self.sampler.as_dict(),
            "summary": self.aggregator.summary(),
            "slo": self.watchdog.to_json(),
            "autoscaler_pressure_seen": self.autoscaler_pressure_seen,
        }
