"""Declarative SLO watchdogs with rolling-window burn-rate evaluation.

An :class:`SLOSpec` states an objective the live pipeline must hold
(step latency, publish stalls, frame staleness, recovery time, retry
exhaustion) plus the error budget it may burn.  The
:class:`SLOWatchdog` evaluates every spec against the
:class:`~repro.observe.live.aggregate.LiveAggregator` each time a
snapshot lands, firing typed :class:`Alert` objects when the **burn
rate** — consumed budget over allowed budget in the rolling window —
reaches 1.0.

Alerts feed two consumers:

- the fleet :class:`~repro.fleet.autoscaler.Autoscaler` reads
  :meth:`SLOWatchdog.pressure` (the number of currently-firing
  alerts) through the coordinator's autoscale tick, turning SLO burn
  into scale-up pressure exactly like broker retry stalls;
- a :class:`~repro.serve.steering.SteeringBus`, when attached, gets
  each newly fired alert as an ``advisory`` steer command, so
  connected viewers see operator guidance inline with the stream.

Recovery-time is event-driven rather than windowed: the coordinator
reports detection (`recovery_started`, which fires the alert
immediately — an in-progress recovery *is* the condition operators
must see) and completion (`recovery_finished`, which resolves it, or
escalates when the measured recovery time blew the objective).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["SLOSpec", "Alert", "SLOWatchdog", "default_slos", "SLO_KINDS"]

SLO_KINDS = (
    "step_latency",
    "publish_stall",
    "frame_staleness",
    "recovery_time",
    "retry_exhaustion",
)


@dataclass(frozen=True)
class SLOSpec:
    """One objective + budget over a rolling window.

    `objective` is kind-specific: a latency bound in seconds
    (``step_latency``, ``frame_staleness``, ``recovery_time``) or an
    allowed count in the window (``publish_stall``,
    ``retry_exhaustion``).  `budget` is the tolerated violation
    fraction for windowed latency SLOs (0.1 = 10% of recent steps may
    exceed the objective).
    """

    name: str
    kind: str
    objective: float
    budget: float = 0.1
    window_s: float = 30.0
    min_count: int = 4
    severity: str = "warn"

    def __post_init__(self):
        if self.kind not in SLO_KINDS:
            raise ValueError(
                f"slo kind must be one of {SLO_KINDS}, got {self.kind!r}"
            )
        if self.objective < 0:
            raise ValueError("objective must be >= 0")

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "budget": self.budget,
            "window_s": self.window_s,
            "severity": self.severity,
        }


@dataclass
class Alert:
    """One typed SLO violation."""

    slo: str
    kind: str
    severity: str
    value: float
    objective: float
    burn_rate: float
    message: str
    at: float
    resolved_at: float | None = None
    extra: dict = field(default_factory=dict)

    @property
    def active(self) -> bool:
        return self.resolved_at is None

    def as_dict(self) -> dict:
        return {
            "slo": self.slo,
            "kind": self.kind,
            "severity": self.severity,
            "value": self.value,
            "objective": self.objective,
            "burn_rate": self.burn_rate,
            "message": self.message,
            "at": self.at,
            "resolved_at": self.resolved_at,
            "active": self.active,
            **({"extra": self.extra} if self.extra else {}),
        }


def default_slos(
    step_latency_s: float = 0.5,
    frame_staleness_s: float = 5.0,
    recovery_time_s: float = 1.0,
) -> tuple[SLOSpec, ...]:
    """The stock budget set for an in-transit fleet run."""
    return (
        SLOSpec(name="step_latency", kind="step_latency",
                objective=step_latency_s, budget=0.1),
        SLOSpec(name="publish_stall", kind="publish_stall",
                objective=0.0, severity="page"),
        SLOSpec(name="frame_staleness", kind="frame_staleness",
                objective=frame_staleness_s),
        SLOSpec(name="recovery_time", kind="recovery_time",
                objective=recovery_time_s, severity="page"),
        SLOSpec(name="retry_exhaustion", kind="retry_exhaustion",
                objective=0.0, severity="page"),
    )


#: aggregator count keys per count-kind SLO
_COUNT_KEYS = {
    "publish_stall": "publish_stall",
    "retry_exhaustion": "retry_exhausted",
}


class SLOWatchdog:
    """Evaluates SLO specs against live aggregator state."""

    def __init__(self, specs=None, bus=None, clock=time.perf_counter):
        self.specs = tuple(specs if specs is not None else default_slos())
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            raise ValueError("slo names must be unique")
        self.bus = bus
        self._clock = clock
        self._lock = threading.Lock()
        self.active: dict[str, Alert] = {}
        self.history: list[Alert] = []
        self.fired = 0
        self.evaluations = 0
        self._burn: dict[str, float] = {s.name: 0.0 for s in self.specs}
        self._recovering: dict[int, Alert] = {}

    # -- evaluation ----------------------------------------------------
    def evaluate(self, aggregator, now: float | None = None) -> list[Alert]:
        """One burn-rate pass; returns alerts fired *this* call."""
        now = self._clock() if now is None else now
        fired: list[Alert] = []
        with self._lock:
            self.evaluations += 1
            for spec in self.specs:
                if spec.kind == "recovery_time":
                    continue        # event-driven (recovery_started/finished)
                burn, value, enough = self._measure(spec, aggregator, now)
                self._burn[spec.name] = burn
                alert = self.active.get(spec.name)
                if burn >= 1.0 and enough:
                    if alert is None:
                        alert = Alert(
                            slo=spec.name, kind=spec.kind,
                            severity=spec.severity, value=value,
                            objective=spec.objective, burn_rate=burn,
                            message=self._describe(spec, value, burn), at=now,
                        )
                        self.active[spec.name] = alert
                        self.history.append(alert)
                        self.fired += 1
                        fired.append(alert)
                    else:
                        alert.value = value
                        alert.burn_rate = burn
                elif alert is not None and burn < 1.0:
                    alert.resolved_at = now
                    del self.active[spec.name]
        for alert in fired:
            self._advise(alert)
        return fired

    def _measure(self, spec: SLOSpec, aggregator, now: float):
        """(burn_rate, observed_value, enough_samples) for one spec."""
        if spec.kind == "step_latency":
            stats = aggregator.window_stats("solve")
            window = stats["window"]
            if window == 0:
                return 0.0, 0.0, False
            values = aggregator.window_values("solve")
            violating = sum(1 for v in values if v > spec.objective)
            frac = violating / len(values)
            burn = frac / max(spec.budget, 1e-9)
            return burn, stats["p99_s"], window >= spec.min_count
        if spec.kind == "frame_staleness":
            staleness = aggregator.frame_staleness(now)
            if not staleness:
                return 0.0, 0.0, False
            worst = max(staleness.values())
            return worst / max(spec.objective, 1e-9), worst, True
        count_key = _COUNT_KEYS[spec.kind]
        count = aggregator.count_in_window(count_key, now, spec.window_s)
        if spec.objective <= 0:
            return float(count), count, True   # zero budget: any hit fires
        return count / spec.objective, count, True

    @staticmethod
    def _describe(spec: SLOSpec, value: float, burn: float) -> str:
        if spec.kind in ("step_latency", "frame_staleness"):
            return (f"{spec.name}: {value:.3f}s vs {spec.objective:.3f}s "
                    f"objective (burn {burn:.1f}x)")
        return (f"{spec.name}: {value:.0f} in {spec.window_s:.0f}s window "
                f"(budget {spec.objective:.0f})")

    # -- event-driven recovery SLO -------------------------------------
    def recovery_started(self, eid: int, at: float | None = None) -> Alert:
        """An unplanned endpoint loss was detected; fire immediately."""
        spec = self._spec("recovery_time")
        at = self._clock() if at is None else at
        alert = Alert(
            slo=spec.name, kind=spec.kind, severity=spec.severity,
            value=0.0, objective=spec.objective, burn_rate=1.0,
            message=f"recovery_time: endpoint {eid} lost, replay in flight",
            at=at, extra={"eid": eid, "phase": "in_progress"},
        )
        with self._lock:
            self._recovering[eid] = alert
            self.active[f"{spec.name}:{eid}"] = alert
            self.history.append(alert)
            self.fired += 1
        self._advise(alert)
        return alert

    def recovery_finished(self, eid: int, seconds: float,
                          at: float | None = None) -> Alert | None:
        """Replay drained; resolve, or escalate a blown objective."""
        spec = self._spec("recovery_time")
        at = self._clock() if at is None else at
        with self._lock:
            alert = self._recovering.pop(eid, None)
            if alert is not None:
                alert.value = seconds
                alert.burn_rate = seconds / max(spec.objective, 1e-9)
                alert.extra["phase"] = "complete"
                alert.resolved_at = at
                self.active.pop(f"{spec.name}:{eid}", None)
            if seconds <= spec.objective:
                return None
            breach = Alert(
                slo=spec.name, kind=spec.kind, severity=spec.severity,
                value=seconds, objective=spec.objective,
                burn_rate=seconds / max(spec.objective, 1e-9),
                message=(f"recovery_time: endpoint {eid} took {seconds:.3f}s "
                         f"vs {spec.objective:.3f}s objective"),
                at=at, resolved_at=at,
                extra={"eid": eid, "phase": "breach"},
            )
            self.history.append(breach)
            self.fired += 1
        self._advise(breach)
        return breach

    def _spec(self, name: str) -> SLOSpec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise KeyError(f"no SLO named {name!r}")

    # -- consumers -----------------------------------------------------
    def pressure(self) -> int:
        """Currently-firing alerts, as autoscaler scale-up pressure."""
        with self._lock:
            return len(self.active)

    def _advise(self, alert: Alert) -> None:
        if self.bus is None:
            return
        # deferred: repro.serve.steering imports repro.observe.session,
        # so a module-level import here would be circular
        from repro.serve.steering import SteerCommand

        self.bus.submit(SteerCommand(
            kind="advisory", value=alert.message, client="slo-watchdog"
        ))

    def burn_rates(self) -> dict[str, float]:
        with self._lock:
            return dict(self._burn)

    def to_json(self) -> dict:
        with self._lock:
            return {
                "specs": [s.as_dict() for s in self.specs],
                "burn_rates": dict(self._burn),
                "active": [a.as_dict() for a in self.active.values()],
                "history": [a.as_dict() for a in self.history],
                "fired": self.fired,
                "evaluations": self.evaluations,
                "pressure": len(self.active),
            }
