"""Logical memory accounting: per-category high-water marks.

The paper's memory figures (aggregate HWM, Fig. 3; per-node footprint,
Fig. 6) are *logical* quantities — bytes the pipeline holds at its
choke points — not RSS.  A :class:`MemoryMeter` tracks exactly those:
instrumented allocation sites (``occa`` device buffers, SENSEI staging
mirrors, SST queue payloads, Catalyst framebuffers, solver state)
charge named categories, and the meter keeps the current level, the
per-category peak, and the true high-water mark of the summed total.

Two charging styles:

- ``allocate(cat, n)`` / ``free(cat, n)`` — delta accounting for
  sites with distinct alloc/release events (device buffers, queues);
- ``observe(cat, n)`` — level accounting for sites that already know
  their current occupancy (solver state, staging caches).

One meter per rank (see :mod:`repro.observe.session`); cross-rank
aggregation (the Fig. 3 sum) is a plain sum of per-rank peaks.
"""

from __future__ import annotations

import threading

__all__ = ["MemoryMeter", "NullMemoryMeter", "aggregate_peaks"]


class MemoryMeter:
    """Thread-safe logical-allocation tracker for one rank."""

    enabled = True

    def __init__(self, rank: int = 0):
        self.rank = rank
        self._current: dict[str, int] = {}
        self._peak: dict[str, int] = {}
        self._total_current = 0
        self.total_peak = 0
        self._lock = threading.Lock()

    # -- charging ------------------------------------------------------
    def allocate(self, category: str, nbytes: int) -> None:
        self._charge(category, int(nbytes))

    def free(self, category: str, nbytes: int) -> None:
        self._charge(category, -int(nbytes))

    def observe(self, category: str, nbytes: int) -> None:
        """Set a category's current level to `nbytes` (peak-tracked)."""
        with self._lock:
            delta = int(nbytes) - self._current.get(category, 0)
            self._apply(category, delta)

    def _charge(self, category: str, delta: int) -> None:
        with self._lock:
            self._apply(category, delta)

    def _apply(self, category: str, delta: int) -> None:
        level = self._current.get(category, 0) + delta
        if level < 0:
            # over-freeing is a bookkeeping bug upstream; clamp so the
            # meter stays sane rather than poisoning the totals
            delta -= level
            level = 0
        self._current[category] = level
        if level > self._peak.get(category, 0):
            self._peak[category] = level
        self._total_current += delta
        if self._total_current > self.total_peak:
            self.total_peak = self._total_current

    # -- queries -------------------------------------------------------
    def current(self, category: str) -> int:
        with self._lock:
            return self._current.get(category, 0)

    def peak(self, category: str) -> int:
        with self._lock:
            return self._peak.get(category, 0)

    def peaks(self) -> dict[str, int]:
        with self._lock:
            return dict(self._peak)

    def sum_of_peaks(self) -> int:
        """Sum of per-category peaks — the Fig. 3/6 decomposition total
        (each component reported at its own worst moment)."""
        with self._lock:
            return sum(self._peak.values())

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "rank": self.rank,
                "current": dict(self._current),
                "peak": dict(self._peak),
                "total_peak": self.total_peak,
                "sum_of_peaks": sum(self._peak.values()),
            }


class NullMemoryMeter:
    """No-op meter: the process default when telemetry is off."""

    enabled = False
    rank = 0
    total_peak = 0

    def allocate(self, category: str, nbytes: int) -> None: ...
    def free(self, category: str, nbytes: int) -> None: ...
    def observe(self, category: str, nbytes: int) -> None: ...

    def current(self, category: str) -> int:
        return 0

    def peak(self, category: str) -> int:
        return 0

    def peaks(self) -> dict[str, int]:
        return {}

    def sum_of_peaks(self) -> int:
        return 0

    def as_dict(self) -> dict:
        return {"rank": 0, "current": {}, "peak": {}, "total_peak": 0,
                "sum_of_peaks": 0}


def aggregate_peaks(meters) -> dict[str, int]:
    """Per-category sum of peaks across ranks (Fig. 3 aggregation)."""
    out: dict[str, int] = {}
    for meter in meters:
        for category, peak in meter.peaks().items():
            out[category] = out.get(category, 0) + peak
    return out
