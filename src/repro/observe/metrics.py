"""Metrics registry: counters, gauges, fixed-bucket histograms.

Prometheus-shaped, scoped to one rank: each rank owns a registry (see
:mod:`repro.observe.session`), and registries *merge* — counters add,
gauges combine by their declared aggregation, histograms add their
bucket counts and combine their summary statistics with the parallel
Welford merge already proven out in
:meth:`repro.util.timing.TimingStats.merge` (reused directly here).
:meth:`MetricsRegistry.reduce` runs that merge across an SPMD group
through ``Communicator.allgather``.

Exports: :meth:`MetricsRegistry.to_prometheus` (text exposition
format, one sample per line) and :meth:`MetricsRegistry.to_json`.
"""

from __future__ import annotations

import bisect
import math
import re
import threading

from repro.util.timing import TimingStats

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "DEFAULT_BUCKETS",
    "naming_violations",
]

#: default histogram buckets: seconds, spanning µs-scale broker ops to
#: multi-second solver steps
DEFAULT_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_GAUGE_AGGS = ("max", "min", "sum", "last")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _merge_label_str(labels: str, const_labels: dict[str, str]) -> str:
    """Combine a rendered registry label string with per-metric labels."""
    if not const_labels:
        return labels
    inner = labels[1:-1] if labels else ""
    extra = _render_labels(const_labels)[1:-1]
    merged = ",".join(x for x in (inner, extra) if x)
    return "{" + merged + "}"


class Counter:
    """Monotonically increasing count; merges by summation.

    `const_labels` (e.g. ``{"route": "insitu"}``) distinguish samples
    of the same metric name: each label set is its own registry entry
    and exports its own sample line.
    """

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 const_labels: dict[str, str] | None = None):
        self.name = _check_name(name)
        self.help = help
        self.const_labels = dict(const_labels or {})
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self.value += n

    def merge_from(self, other: "Counter") -> None:
        with self._lock:
            self.value += other.value

    def samples(self, labels: str) -> list[str]:
        labels = _merge_label_str(labels, self.const_labels)
        return [f"{self.name}{labels} {_fmt(self.value)}"]

    def as_dict(self) -> dict:
        out = {"type": self.kind, "help": self.help, "value": self.value}
        if self.const_labels:
            out["labels"] = dict(self.const_labels)
        return out


class Gauge:
    """Point-in-time value; `agg` picks the cross-rank combination.

    Like counters, gauges accept `const_labels` (e.g.
    ``{"relay": "2"}``): each label set is its own registry entry with
    its own sample line — the per-relay client-count gauges of the
    serving mesh use this.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = "", agg: str = "max",
                 const_labels: dict[str, str] | None = None):
        if agg not in _GAUGE_AGGS:
            raise ValueError(f"gauge agg must be one of {_GAUGE_AGGS}, got {agg!r}")
        self.name = _check_name(name)
        self.help = help
        self.agg = agg
        self.const_labels = dict(const_labels or {})
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, v: float) -> None:
        with self._lock:
            self.value = float(v)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.inc(-n)

    def merge_from(self, other: "Gauge") -> None:
        with self._lock:
            if self.agg == "sum":
                self.value += other.value
            elif self.agg == "max":
                self.value = max(self.value, other.value)
            elif self.agg == "min":
                self.value = min(self.value, other.value)
            else:  # "last": the merged-in value wins
                self.value = other.value

    def samples(self, labels: str) -> list[str]:
        labels = _merge_label_str(labels, self.const_labels)
        return [f"{self.name}{labels} {_fmt(self.value)}"]

    def as_dict(self) -> dict:
        out = {"type": self.kind, "help": self.help, "agg": self.agg,
               "value": self.value}
        if self.const_labels:
            out["labels"] = dict(self.const_labels)
        return out


class Histogram:
    """Fixed-bucket histogram plus Welford summary statistics.

    `buckets` are inclusive upper bounds; an implicit ``+Inf`` bucket
    catches the rest, so ``counts`` has ``len(buckets) + 1`` slots.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted, non-empty sequence")
        self.name = _check_name(name)
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.stats = TimingStats()
        self._lock = threading.Lock()

    def observe(self, v: float) -> None:
        with self._lock:
            self.counts[bisect.bisect_left(self.buckets, v)] += 1
            self.stats.add(v)

    def merge_from(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket mismatch "
                f"{self.buckets} vs {other.buckets}"
            )
        with self._lock:
            for i, c in enumerate(other.counts):
                self.counts[i] += c
            self.stats.merge(other.stats)

    def samples(self, labels: str) -> list[str]:
        inner = labels[1:-1] if labels else ""
        lines = []
        cumulative = 0
        for bound, count in zip(self.buckets, self.counts):
            cumulative += count
            le = ",".join(x for x in (inner, f'le="{_fmt(bound)}"') if x)
            lines.append(f"{self.name}_bucket{{{le}}} {cumulative}")
        cumulative += self.counts[-1]
        le = ",".join(x for x in (inner, 'le="+Inf"') if x)
        lines.append(f"{self.name}_bucket{{{le}}} {cumulative}")
        lines.append(f"{self.name}_sum{labels} {_fmt(self.stats.total)}")
        lines.append(f"{self.name}_count{labels} {self.stats.count}")
        return lines

    def as_dict(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "stats": self.stats.as_dict(),
        }


def _fmt(v: float) -> str:
    if v == math.inf:
        return "+Inf"
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


class MetricsRegistry:
    """Get-or-create metric store for one rank (or a merged view).

    `labels` (e.g. ``{"rank": "0"}``) are stamped onto every exported
    sample; a merged cross-rank registry usually carries none.
    """

    enabled = True

    def __init__(self, labels: dict[str, str] | None = None):
        self.labels = dict(labels or {})
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, key: str, name: str, *args, **kwargs):
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = self._metrics[key] = cls(name, *args, **kwargs)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "",
                const_labels: dict[str, str] | None = None) -> Counter:
        # one registry entry per (name, label set): labeled variants of a
        # metric accumulate and export independently
        key = name + _render_labels(const_labels or {})
        return self._get_or_create(Counter, key, name, help, const_labels)

    def gauge(self, name: str, help: str = "", agg: str = "max",
              const_labels: dict[str, str] | None = None) -> Gauge:
        key = name + _render_labels(const_labels or {})
        return self._get_or_create(Gauge, key, name, help, agg, const_labels)

    def histogram(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, name, help, buckets)

    def __iter__(self):
        with self._lock:
            return iter(sorted(
                self._metrics.values(),
                key=lambda m: (m.name,
                               _render_labels(getattr(m, "const_labels", {}))),
            ))

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def get(self, name: str):
        with self._lock:
            return self._metrics.get(name)

    # -- merging -------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold `other`'s metrics into this registry (other is unchanged)."""
        for metric in other:
            if isinstance(metric, Counter):
                mine = self.counter(metric.name, metric.help,
                                    metric.const_labels or None)
            elif isinstance(metric, Gauge):
                mine = self.gauge(metric.name, metric.help, metric.agg,
                                  metric.const_labels or None)
            elif isinstance(metric, Histogram):
                mine = self.histogram(metric.name, metric.help, metric.buckets)
            else:  # pragma: no cover - closed type set
                raise TypeError(f"unknown metric type {type(metric).__name__}")
            mine.merge_from(metric)
        return self

    def reduce(self, comm) -> "MetricsRegistry":
        """Merge registries across a communicator; same result everywhere."""
        merged = MetricsRegistry()
        for registry in comm.allgather(self):
            merged.merge(registry)
        return merged

    # -- export --------------------------------------------------------
    def _label_str(self) -> str:
        if not self.labels:
            return ""
        inner = ",".join(f'{k}="{v}"' for k, v in sorted(self.labels.items()))
        return "{" + inner + "}"

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        labels = self._label_str()
        lines: list[str] = []
        seen: set[str] = set()
        for metric in self:
            if metric.name not in seen:
                # labeled variants of one name share a single HELP/TYPE
                seen.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.samples(labels))
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> dict:
        return {
            "labels": dict(self.labels),
            "metrics": {
                m.name + _render_labels(getattr(m, "const_labels", {})):
                    m.as_dict()
                for m in self
            },
        }


#: unit suffixes a histogram may carry (values are seconds or bytes —
#: anything else belongs in a counter or gauge)
_HISTOGRAM_UNITS = ("_seconds", "_bytes")


def naming_violations(registry) -> list[str]:
    """Audit a registry against the repo's metric-name convention.

    Returns one human-readable complaint per violating metric (empty
    means clean).  The rules, enforced across every registry the test
    suite can reach:

    - every name carries the ``repro_`` prefix (one namespace on a
      shared Prometheus endpoint);
    - counters end in ``_total``;
    - histograms end in a unit suffix (``_seconds`` or ``_bytes``);
    - gauges never end in ``_total`` (that suffix promises a counter),
      and when they carry a unit it is spelled as a suffix the same
      way (``_bytes``, ``_seconds``, ``_ratio``).
    """
    problems = []
    for metric in registry:
        name = metric.name
        if not name.startswith("repro_"):
            problems.append(f"{name}: missing the repro_ prefix")
        if metric.kind == "counter" and not name.endswith("_total"):
            problems.append(f"{name}: counters must end in _total")
        if metric.kind == "histogram" and not name.endswith(_HISTOGRAM_UNITS):
            problems.append(
                f"{name}: histograms must end in a unit suffix "
                f"{_HISTOGRAM_UNITS}"
            )
        if metric.kind == "gauge" and name.endswith("_total"):
            problems.append(
                f"{name}: _total promises a counter; gauges must not use it"
            )
    return problems


class _NullMetric:
    """Accepts any recording call and does nothing."""

    __slots__ = ()

    def inc(self, n: float = 1.0) -> None: ...
    def dec(self, n: float = 1.0) -> None: ...
    def set(self, v: float) -> None: ...
    def observe(self, v: float) -> None: ...


_NULL_METRIC = _NullMetric()


class NullMetricsRegistry:
    """No-op registry: the process default when telemetry is off."""

    enabled = False
    labels: dict = {}

    def counter(self, name: str, help: str = "",
                const_labels: dict[str, str] | None = None) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "", agg: str = "max") -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS) -> _NullMetric:
        return _NULL_METRIC

    def __iter__(self):
        return iter(())

    def __len__(self) -> int:
        return 0

    def to_prometheus(self) -> str:
        return ""

    def to_json(self) -> dict:
        return {"labels": {}, "metrics": {}}
