"""Telemetry wiring: per-rank bundles, thread-local install, sessions.

A :class:`Telemetry` bundles the three instruments (tracer, metrics
registry, memory meter) for one rank.  Instrumented code never takes a
telemetry parameter; it calls :func:`get_telemetry`, which reads a
*thread-local* slot — the natural scope under the threaded SPMD
runtime, where each rank body runs entirely in its own thread.  When
nothing is installed, a process-wide no-op bundle is returned, so
uninstrumented runs pay only a thread-local lookup plus no-op calls.

A :class:`TelemetrySession` owns one :class:`Telemetry` per rank and
the merged exports: Chrome trace JSON across all rank tracks,
cross-rank-merged Prometheus/JSON metrics, per-rank memory peaks and
their Fig. 3-style aggregate, and the flame summary.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path

from repro.observe.live.collector import NullLiveCollector
from repro.observe.memory import MemoryMeter, NullMemoryMeter, aggregate_peaks
from repro.observe.metrics import MetricsRegistry, NullMetricsRegistry
from repro.observe.tracer import NullTracer, Tracer, chrome_trace, flame_summary

__all__ = [
    "Telemetry",
    "TelemetrySession",
    "get_telemetry",
    "install",
    "uninstall",
    "active",
]


#: shared no-op live collector; a LivePlane swaps in a real one per rank
_NULL_LIVE = NullLiveCollector()


class Telemetry:
    """One rank's instrument bundle."""

    def __init__(self, tracer, metrics, memory, rank: int = 0, enabled: bool = True):
        self.tracer = tracer
        self.metrics = metrics
        self.memory = memory
        self.rank = rank
        self.enabled = enabled
        #: live-plane slot (see :mod:`repro.observe.live`); hot paths
        #: gate on ``tel.live.enabled``, so the default costs one load
        self.live = _NULL_LIVE

    @classmethod
    def create(cls, rank: int = 0, clock=time.perf_counter) -> "Telemetry":
        return cls(
            tracer=Tracer(rank=rank, clock=clock),
            metrics=MetricsRegistry(labels={"rank": str(rank)}),
            memory=MemoryMeter(rank=rank),
            rank=rank,
        )

    @classmethod
    def disabled(cls) -> "Telemetry":
        return cls(
            tracer=NullTracer(),
            metrics=NullMetricsRegistry(),
            memory=NullMemoryMeter(),
            enabled=False,
        )


#: process-wide no-op default, shared by every uninstrumented thread
_NULL = Telemetry.disabled()

class _ObserveLocal(threading.local):
    # class attribute = per-thread default; the arena hits this on
    # every borrow/release, so skip getattr(..., default)
    telemetry = None


_tls = _ObserveLocal()


def get_telemetry() -> Telemetry:
    """The calling thread's telemetry (no-op bundle when none installed)."""
    tel = _tls.telemetry
    return tel if tel is not None else _NULL


def install(telemetry: Telemetry) -> Telemetry:
    """Install `telemetry` for the calling thread; returns it."""
    _tls.telemetry = telemetry
    return telemetry


def uninstall() -> None:
    """Restore the no-op default for the calling thread."""
    _tls.telemetry = None


@contextmanager
def active(telemetry: Telemetry):
    """Scope `telemetry` to a with-block (restores the previous one)."""
    previous = getattr(_tls, "telemetry", None)
    _tls.telemetry = telemetry
    try:
        yield telemetry
    finally:
        _tls.telemetry = previous


class TelemetrySession:
    """Per-rank telemetry for one run, plus the merged exports."""

    def __init__(self, label: str = "repro", clock=time.perf_counter):
        self.label = label
        self._clock = clock
        self._by_rank: dict[int, Telemetry] = {}
        self._finalized: dict[int, float] = {}
        self._lock = threading.Lock()
        #: attached :class:`~repro.observe.live.plane.LivePlane`, if any
        #: (set by the plane itself; new ranks bind to it on creation)
        self.live = None

    # -- per-rank handles ----------------------------------------------
    def rank(self, rank: int) -> Telemetry:
        """Get or create the bundle for `rank`.

        Creation is lazy, so a fleet member that joins mid-run gets a
        fresh track whose epoch is its join time — the pre-join gap
        never appears as idle span time in the merged trace.
        """
        with self._lock:
            tel = self._by_rank.get(rank)
            created = tel is None
            if created:
                tel = self._by_rank[rank] = Telemetry.create(rank, clock=self._clock)
            live = self.live
        if created and live is not None:
            live.bind(tel)
        return tel

    @contextmanager
    def activate(self, rank: int):
        """Install rank `rank`'s telemetry for the calling thread."""
        with active(self.rank(rank)) as tel:
            yield tel

    @property
    def ranks(self) -> list[int]:
        with self._lock:
            return sorted(self._by_rank)

    def telemetries(self) -> list[Telemetry]:
        with self._lock:
            return [self._by_rank[r] for r in sorted(self._by_rank)]

    # -- membership churn ----------------------------------------------
    def finalize_rank(self, rank: int, at: float | None = None) -> bool:
        """Close rank `rank`'s track at detection time (dead endpoint).

        Records a ``track.finalized`` instant on the track and pins
        its end time, so the merged trace shows exactly when the
        member was declared lost rather than letting its track dangle.
        Idempotent; returns False for a rank this session never saw.
        """
        with self._lock:
            tel = self._by_rank.get(rank)
            if tel is None:
                return False
            if rank in self._finalized:
                return True
            at = self._clock() if at is None else at
            self._finalized[rank] = at
        tel.tracer.instant("track.finalized", rank=rank)
        return True

    def track_meta(self) -> dict[int, dict]:
        """Per-rank track lifecycle: start epoch and finalize time."""
        with self._lock:
            return {
                rank: {
                    "started": tel.tracer.epoch,
                    "finalized": self._finalized.get(rank),
                }
                for rank, tel in sorted(self._by_rank.items())
            }

    # -- merged views --------------------------------------------------
    def events(self) -> list:
        out = []
        for tel in self.telemetries():
            out.extend(tel.tracer.events)
        return sorted(out, key=lambda e: e.ts)

    def chrome_trace(self) -> dict:
        return chrome_trace(self.events(), process_name=self.label)

    def flame_summary(self) -> str:
        return flame_summary(self.events(), title=f"{self.label} — span summary")

    def merged_metrics(self) -> MetricsRegistry:
        merged = MetricsRegistry()
        for tel in self.telemetries():
            merged.merge(tel.metrics)
        return merged

    def to_prometheus(self, per_rank: bool = False) -> str:
        if not per_rank:
            return self.merged_metrics().to_prometheus()
        return "".join(tel.metrics.to_prometheus() for tel in self.telemetries())

    def memory_by_rank(self) -> dict[int, dict[str, int]]:
        return {tel.rank: tel.memory.peaks() for tel in self.telemetries()}

    def memory_aggregate(self) -> dict[str, int]:
        """Per-category peak bytes summed over ranks (Fig. 3 style)."""
        return aggregate_peaks(tel.memory for tel in self.telemetries())

    def memory_aggregate_total(self) -> int:
        return sum(self.memory_aggregate().values())

    def to_json(self) -> dict:
        return {
            "label": self.label,
            "ranks": self.ranks,
            "metrics": self.merged_metrics().to_json(),
            "memory": {
                "per_rank": {str(r): p for r, p in self.memory_by_rank().items()},
                "aggregate": self.memory_aggregate(),
                "aggregate_total": self.memory_aggregate_total(),
            },
        }

    # -- file exports --------------------------------------------------
    def write_chrome_trace(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.chrome_trace()))
        return path

    def write_prometheus(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_prometheus())
        return path

    def write_json(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2, sort_keys=True))
        return path
