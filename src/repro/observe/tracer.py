"""Per-rank tracing spans with Chrome trace-event export.

A :class:`Tracer` records nested, wall-clock spans::

    with tracer.span("solver.step", step=n):
        with tracer.span("solver.pressure"):
            ...

Each rank owns its own tracer (see :mod:`repro.observe.session`), so
recording is contention-free under the threaded SPMD runtime; the
per-tracer lock only matters when an export runs concurrently with the
run.  All tracers of one process share ``time.perf_counter``, so spans
from different ranks line up on a common timeline when merged.

Exports:

- :func:`chrome_trace` — the Chrome trace-event JSON format (``ph``,
  ``ts``, ``dur``, ``pid``, ``tid``) viewable in Perfetto or
  ``chrome://tracing``; one track (``tid``) per rank;
- :meth:`Tracer.span_totals` / :func:`flame_summary` — a plain-text
  flame view: total/self seconds per nested span path.

The default tracer of an uninstrumented run is :class:`NullTracer`,
whose ``span``/``instant`` are allocation-free no-ops — the overhead
guard test in ``tests/test_observe_integration.py`` pins this down.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "SpanEvent",
    "InstantEvent",
    "Tracer",
    "NullTracer",
    "chrome_trace",
    "flame_summary",
    "validate_nesting",
]


@dataclass(frozen=True)
class SpanEvent:
    """One completed span: a named interval on one rank's track."""

    name: str
    path: str          # "/"-joined ancestry, e.g. "solver.step/solver.pressure"
    ts: float          # start, seconds on the shared perf_counter clock
    dur: float         # duration, seconds
    rank: int
    args: dict = field(default_factory=dict)


@dataclass(frozen=True)
class InstantEvent:
    """A zero-duration marker (fault, retry, degradation, ...)."""

    name: str
    ts: float
    rank: int
    args: dict = field(default_factory=dict)


class _NullSpan:
    """Reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: the process default when tracing is off."""

    enabled = False
    rank = 0

    def span(self, name: str, **args) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, **args) -> None:
        return None

    @property
    def events(self) -> list:
        return []


class _Span:
    """Live span handle; records a :class:`SpanEvent` on exit."""

    __slots__ = ("_tracer", "name", "args", "_t0", "_path")

    def __init__(self, tracer: "Tracer", name: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.args = args
        self._t0 = 0.0
        self._path = name

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        stack = tracer._stack()
        if stack:
            self._path = f"{stack[-1]}/{self.name}"
        stack.append(self._path)
        self._t0 = tracer._clock()
        return self

    def __exit__(self, *exc) -> bool:
        tracer = self._tracer
        now = tracer._clock()
        tracer._stack().pop()
        tracer._record(
            SpanEvent(
                name=self.name,
                path=self._path,
                ts=self._t0,
                dur=now - self._t0,
                rank=tracer.rank,
                args=self.args,
            )
        )
        return False


class Tracer:
    """Collects spans and instants for one rank.

    `clock` is injectable for deterministic tests; it must be
    monotonic and shared by every tracer that will be merged.
    """

    enabled = True

    def __init__(self, rank: int = 0, clock=time.perf_counter):
        self.rank = rank
        self._clock = clock
        self._events: list = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self.epoch = clock()

    # -- recording -----------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, event) -> None:
        with self._lock:
            self._events.append(event)

    def span(self, name: str, **args) -> _Span:
        """Context manager timing a named, nestable region."""
        return _Span(self, name, args)

    def instant(self, name: str, **args) -> None:
        """Record a zero-duration marker at the current time."""
        self._record(InstantEvent(name=name, ts=self._clock(), rank=self.rank, args=args))

    # -- access --------------------------------------------------------
    @property
    def events(self) -> list:
        with self._lock:
            return list(self._events)

    def span_totals(self) -> dict[str, dict]:
        """Aggregate spans by nested path: count / total / self seconds."""
        spans = [e for e in self.events if isinstance(e, SpanEvent)]
        return _aggregate(spans)

    def chrome_trace(self) -> dict:
        return chrome_trace(self.events)


# -- aggregation / export ----------------------------------------------------


def _aggregate(spans: list[SpanEvent]) -> dict[str, dict]:
    totals: dict[str, dict] = {}
    for e in spans:
        agg = totals.setdefault(e.path, {"count": 0, "total": 0.0, "self": 0.0})
        agg["count"] += 1
        agg["total"] += e.dur
        agg["self"] += e.dur
    # self time = total minus direct children's total
    for path, agg in totals.items():
        parent = path.rsplit("/", 1)[0] if "/" in path else None
        if parent is not None and parent in totals:
            totals[parent]["self"] -= agg["total"]
    return totals


def flame_summary(events, title: str = "span summary") -> str:
    """Plain-text flame view of span totals, merged across ranks."""
    spans = [e for e in events if isinstance(e, SpanEvent)]
    totals = _aggregate(spans)
    if not totals:
        return f"{title}: no spans recorded"
    width = max(len(p.rsplit("/", 1)[-1]) + 2 * p.count("/") for p in totals) + 2
    lines = [title, f"{'span':<{width}} {'count':>7} {'total [ms]':>12} {'self [ms]':>12}"]
    # lexicographic sort on path components = depth-first tree order
    for path in sorted(totals, key=lambda p: p.split("/")):
        agg = totals[path]
        depth = path.count("/")
        label = "  " * depth + path.rsplit("/", 1)[-1]
        lines.append(
            f"{label:<{width}} {agg['count']:>7} "
            f"{agg['total'] * 1e3:>12.3f} {agg['self'] * 1e3:>12.3f}"
        )
    return "\n".join(lines)


def chrome_trace(events, process_name: str = "repro") -> dict:
    """Convert events (possibly from many ranks) to Chrome trace JSON.

    One process (``pid`` 0) with one thread track (``tid``) per rank.
    Spans become complete ``"X"`` events with microsecond ``ts``/``dur``
    relative to the earliest event; instants become ``"i"`` events.
    """
    events = list(events)
    ranks = sorted({e.rank for e in events})
    base = min((e.ts for e in events), default=0.0)
    trace_events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for rank in ranks:
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": 0,
                "tid": rank,
                "args": {"sort_index": rank},
            }
        )
    for e in sorted(events, key=lambda e: e.ts):
        if isinstance(e, SpanEvent):
            trace_events.append(
                {
                    "ph": "X",
                    "name": e.name,
                    "cat": "repro",
                    "ts": (e.ts - base) * 1e6,
                    "dur": e.dur * 1e6,
                    "pid": 0,
                    "tid": e.rank,
                    "args": dict(e.args),
                }
            )
        else:
            trace_events.append(
                {
                    "ph": "i",
                    "name": e.name,
                    "cat": "repro",
                    "ts": (e.ts - base) * 1e6,
                    "s": "t",
                    "pid": 0,
                    "tid": e.rank,
                    "args": dict(e.args),
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def validate_nesting(trace: dict) -> None:
    """Raise ValueError unless every track's ``X`` events nest properly.

    Used by the export tests: for each ``tid``, span intervals must
    either be disjoint or fully contained in one another (allowing for
    shared endpoints) — the invariant Perfetto relies on to stack them.
    """
    by_tid: dict[int, list[tuple[float, float, str]]] = {}
    for ev in trace["traceEvents"]:
        if ev.get("ph") != "X":
            continue
        by_tid.setdefault(ev["tid"], []).append(
            (ev["ts"], ev["ts"] + ev["dur"], ev["name"])
        )
    for tid, spans in by_tid.items():
        stack: list[tuple[float, float, str]] = []
        for start, end, name in sorted(spans, key=lambda s: (s[0], -(s[1] - s[0]))):
            while stack and start >= stack[-1][1]:
                stack.pop()
            if stack and end > stack[-1][1]:
                raise ValueError(
                    f"track {tid}: span {name!r} [{start}, {end}] overlaps "
                    f"{stack[-1][2]!r} [{stack[-1][0]}, {stack[-1][1]}] "
                    "without nesting"
                )
            stack.append((start, end, name))
