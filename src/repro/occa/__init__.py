"""OCCA-style portable device abstraction.

NekRS reaches GPUs through OCCA (Medina et al.): a ``Device`` owns
``Memory`` buffers and compiled kernels, and host code explicitly moves
data across the PCIe bus.  The paper's in situ coupling is shaped by
exactly this boundary — "simulation data residing on GPU device memory
must be transferred to the CPU before being relayed to SENSEI".

Two backends are provided:

``serial``
    Buffers alias host NumPy arrays; copies are free.  Used when the
    solver is run host-only.
``cuda-sim``
    Buffers are distinct "device" allocations that host code cannot
    touch directly; every ``copy_to_host``/``copy_from_host`` moves real
    bytes and is charged to the transfer ledger (optionally with
    modeled PCIe time).  This keeps the instrumented code path — and
    its cost accounting — faithful to the GPU production setup.
"""

from repro.occa.arena import DeviceArena
from repro.occa.device import Device, DeviceMemory, KernelError, TransferLedger
from repro.occa.kernels import install_field_kernels, install_render_kernels

__all__ = [
    "Device",
    "DeviceArena",
    "DeviceMemory",
    "KernelError",
    "TransferLedger",
    "install_field_kernels",
    "install_render_kernels",
]
