"""Device-side scratch arena: pooled :class:`DeviceMemory` buffers.

The device-resident render path needs short-lived device buffers every
in situ step — derived fields, resampled volumes, ghost-extended
fragments, framebuffers.  ``cudaMalloc``/``cudaFree`` in a loop is the
GPU equivalent of the host allocation churn ``WorkspaceArena`` removes,
so the :class:`DeviceArena` mirrors its contract on device memory:
shape/dtype-bucketed pools, ``borrow``/``release``/``adopt``, and
hit/miss statistics.  No PCIe traffic is involved anywhere — borrowing
recycles device allocations, which is exactly why the transfer ledger
never sees the render path's working set.

Lifetime rules are the host arena's: borrowed buffers are
uninitialized, every borrow pairs with a release (or an adopt when the
buffer legitimately escapes), and buffers never travel between
devices.  In-use bytes are charged to the rank's memory meter under
``occa.arena``.
"""

from __future__ import annotations

import numpy as np

from repro.occa.device import Device, DeviceMemory

__all__ = ["DeviceArena"]


class DeviceArena:
    """Pool of recycled device buffers for one :class:`Device`."""

    def __init__(self, device: Device) -> None:
        self.device = device
        self._pool: dict[tuple, list[DeviceMemory]] = {}
        self.hits = 0
        self.misses = 0
        self.outstanding = 0
        self.borrowed_bytes = 0
        self.peak_borrowed_bytes = 0

    def borrow(self, shape, dtype=np.float64) -> DeviceMemory:
        """An uninitialized device buffer of `shape`/`dtype`."""
        from repro.observe.session import get_telemetry

        dtype = np.dtype(dtype)
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        bucket = self._pool.get((shape, dtype.char))
        if bucket:
            mem = bucket.pop()
            self.hits += 1
        else:
            mem = DeviceMemory(self.device, np.empty(shape, dtype))
            self.misses += 1
        self.outstanding += 1
        self.borrowed_bytes += mem.nbytes
        if self.borrowed_bytes > self.peak_borrowed_bytes:
            self.peak_borrowed_bytes = self.borrowed_bytes
        get_telemetry().memory.allocate("occa.arena", mem.nbytes)
        return mem

    def release(self, *buffers: DeviceMemory) -> None:
        """Return borrowed device buffers to their buckets."""
        from repro.observe.session import get_telemetry

        mem_meter = get_telemetry().memory
        for mem in buffers:
            self._pool.setdefault((mem.shape, mem.dtype.char), []).append(mem)
            self.outstanding -= 1
            self.borrowed_bytes -= mem.nbytes
            mem_meter.free("occa.arena", mem.nbytes)

    def adopt(self, *buffers: DeviceMemory) -> None:
        """Stop tracking borrowed buffers without pooling them.

        For the rare device buffer that escapes its borrowing scope —
        e.g. a composited tile handed to the adaptor, which copies it
        to the host (the one metered D2H) and then drops it.
        """
        from repro.observe.session import get_telemetry

        mem_meter = get_telemetry().memory
        for mem in buffers:
            self.outstanding -= 1
            self.borrowed_bytes -= mem.nbytes
            mem_meter.free("occa.arena", mem.nbytes)

    def raw_view(self) -> "_RawArenaView":
        """Adapter exposing this arena with a host-array interface.

        Kernel-internal code (the ghost-layer exchange, the compositor
        merge rounds) manipulates raw device arrays; the adapter lets
        that code borrow/release device scratch through the exact
        borrow/release signature of ``WorkspaceArena`` — the arrays it
        hands out are ``_raw()`` views of pooled device buffers, so no
        transfer is ever charged.
        """
        return _RawArenaView(self)

    # -- introspection -------------------------------------------------
    def pooled_buffers(self) -> int:
        return sum(len(bucket) for bucket in self._pool.values())

    def pooled_bytes(self) -> int:
        return sum(
            mem.nbytes for bucket in self._pool.values() for mem in bucket
        )

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "outstanding": self.outstanding,
            "borrowed_bytes": self.borrowed_bytes,
            "peak_borrowed_bytes": self.peak_borrowed_bytes,
            "pooled_buffers": self.pooled_buffers(),
            "pooled_bytes": self.pooled_bytes(),
        }

    def clear(self) -> None:
        self._pool.clear()
        self.hits = self.misses = 0
        self.outstanding = 0
        self.borrowed_bytes = self.peak_borrowed_bytes = 0


class _RawArenaView:
    """Device arena seen through ``WorkspaceArena``'s borrow/release."""

    def __init__(self, arena: DeviceArena) -> None:
        self._arena = arena
        self._by_id: dict[int, DeviceMemory] = {}

    def borrow(self, shape, dtype=np.float64) -> np.ndarray:
        mem = self._arena.borrow(shape, dtype)
        raw = mem._raw()
        self._by_id[id(raw)] = mem
        return raw

    def release(self, *arrays: np.ndarray) -> None:
        self._arena.release(
            *(self._by_id.pop(id(arr)) for arr in arrays)
        )

    def adopt(self, *arrays: np.ndarray) -> None:
        self._arena.adopt(
            *(self._by_id.pop(id(arr)) for arr in arrays)
        )
