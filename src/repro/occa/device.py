"""Device, memory, and kernel objects (see package docstring)."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.machine.netmodel import PcieModel

_VALID_MODES = ("serial", "cuda-sim")


class KernelError(RuntimeError):
    """A kernel launch failed or was misused."""


@dataclass
class TransferLedger:
    """Counts host<->device traffic for one device."""

    h2d_bytes: int = 0
    d2h_bytes: int = 0
    h2d_count: int = 0
    d2h_count: int = 0
    modeled_seconds: float = 0.0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, direction: str, nbytes: int, seconds: float = 0.0) -> None:
        with self._lock:
            if direction == "h2d":
                self.h2d_bytes += nbytes
                self.h2d_count += 1
            elif direction == "d2h":
                self.d2h_bytes += nbytes
                self.d2h_count += 1
            else:
                raise ValueError(f"unknown transfer direction {direction!r}")
            self.modeled_seconds += seconds

    @property
    def total_bytes(self) -> int:
        return self.h2d_bytes + self.d2h_bytes

    def reset(self) -> None:
        with self._lock:
            self.h2d_bytes = self.d2h_bytes = 0
            self.h2d_count = self.d2h_count = 0
            self.modeled_seconds = 0.0


class DeviceMemory:
    """A buffer living on a :class:`Device`.

    In ``cuda-sim`` mode the underlying array is private: host code must
    go through :meth:`copy_to_host` / :meth:`copy_from_host`, which
    debit the device's transfer ledger.  Kernels launched on the same
    device may touch the raw array directly (they run "on the device").
    """

    def __init__(self, device: "Device", array: np.ndarray):
        self._device = device
        self._array = array

    @property
    def device(self) -> "Device":
        return self._device

    @property
    def shape(self) -> tuple:
        return self._array.shape

    @property
    def dtype(self) -> np.dtype:
        return self._array.dtype

    @property
    def nbytes(self) -> int:
        return self._array.nbytes

    def copy_to_host(self, out: np.ndarray | None = None) -> np.ndarray:
        """D2H copy; returns a host array (never an alias in cuda-sim)."""
        self._device._charge("d2h", self._array.nbytes)
        if out is not None:
            if out.shape != self._array.shape or out.dtype != self._array.dtype:
                raise ValueError("output buffer shape/dtype mismatch")
            np.copyto(out, self._array)
            return out
        if self._device.mode == "serial":
            return self._array
        return self._array.copy()

    def copy_from_host(self, src: np.ndarray) -> None:
        """H2D copy from a host array of identical shape/dtype."""
        src = np.asarray(src)
        if src.shape != self._array.shape or src.dtype != self._array.dtype:
            raise ValueError(
                f"cannot copy {src.shape}/{src.dtype} into device buffer "
                f"{self._array.shape}/{self._array.dtype}"
            )
        self._device._charge("h2d", src.nbytes)
        np.copyto(self._array, src)

    def _raw(self) -> np.ndarray:
        """Device-side view; only kernels and the device may call this."""
        return self._array

    def fill(self, value: float) -> None:
        """Device-side fill (runs 'on device', no transfer charged)."""
        self._array.fill(value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DeviceMemory {self.shape} {self.dtype} on "
            f"{self._device.mode}>"
        )


class Device:
    """An OCCA-like device handle.

    Kernels are plain Python callables registered on the device; at
    launch, ``DeviceMemory`` arguments are unwrapped to raw arrays (the
    kernel executes "device side"), everything else passes through.
    """

    def __init__(self, mode: str = "serial", pcie: PcieModel | None = None):
        if mode not in _VALID_MODES:
            raise ValueError(f"unknown device mode {mode!r}; expected {_VALID_MODES}")
        self.mode = mode
        self.pcie = pcie
        self.transfers = TransferLedger()
        self._kernels: dict[str, Callable] = {}
        self._pcie_counters: tuple | None = None
        self.allocated_bytes = 0

    # -- memory ---------------------------------------------------------
    def malloc(self, shape, dtype=np.float64) -> DeviceMemory:
        """Allocate a zero-initialized device buffer."""
        from repro.observe.session import get_telemetry

        arr = np.zeros(shape, dtype=dtype)
        self.allocated_bytes += arr.nbytes
        get_telemetry().memory.allocate("occa.device", arr.nbytes)
        return DeviceMemory(self, arr)

    def to_device(self, host_array: np.ndarray) -> DeviceMemory:
        """Allocate and H2D-copy in one step."""
        host_array = np.ascontiguousarray(host_array)
        mem = self.malloc(host_array.shape, host_array.dtype)
        mem.copy_from_host(host_array)
        return mem

    def _charge(self, direction: str, nbytes: int) -> None:
        if self.mode == "serial":
            return
        seconds = self.pcie.transfer_time(nbytes) if self.pcie else 0.0
        self.transfers.record(direction, nbytes, seconds)
        from repro.observe.session import get_telemetry

        tel = get_telemetry()
        if not tel.enabled:
            return
        # counters cached per telemetry session: _charge is on the
        # per-copy hot path and must not pay a registry lookup each time
        cached = self._pcie_counters
        if cached is None or cached[0] is not tel:
            cached = self._pcie_counters = (
                tel,
                {
                    "h2d": tel.metrics.counter(
                        "repro_pcie_h2d_bytes_total",
                        "bytes moved host->device over the modeled PCIe link",
                    ),
                    "d2h": tel.metrics.counter(
                        "repro_pcie_d2h_bytes_total",
                        "bytes moved device->host over the modeled PCIe link",
                    ),
                },
            )
        cached[1][direction].inc(nbytes)

    @property
    def arena(self):
        """Lazy per-device :class:`~repro.occa.arena.DeviceArena`."""
        arena = getattr(self, "_arena", None)
        if arena is None:
            from repro.occa.arena import DeviceArena

            arena = self._arena = DeviceArena(self)
        return arena

    # -- kernels ----------------------------------------------------------
    def build_kernel(self, name: str, fn: Callable) -> Callable:
        """Register `fn` as kernel `name`; returns a launcher."""
        if name in self._kernels:
            raise KernelError(f"kernel {name!r} already built on this device")
        self._kernels[name] = fn
        return self.kernel(name)

    def ensure_kernel(self, name: str, fn: Callable) -> Callable:
        """Idempotent :meth:`build_kernel`: reuse `name` if present.

        Kernel libraries (``repro.occa.kernels``) install themselves on
        first use and are re-requested every in situ step; rebuilding
        would raise, so they register through this instead.
        """
        if name not in self._kernels:
            self._kernels[name] = fn
        return self.kernel(name)

    def kernel(self, name: str) -> Callable:
        if name not in self._kernels:
            raise KernelError(f"no kernel named {name!r} on this device")
        fn = self._kernels[name]

        def launch(*args, **kwargs):
            unwrapped = [a._raw() if isinstance(a, DeviceMemory) else a for a in args]
            return fn(*unwrapped, **kwargs)

        launch.__name__ = f"kernel:{name}"
        return launch

    @property
    def kernel_names(self) -> list[str]:
        return sorted(self._kernels)
