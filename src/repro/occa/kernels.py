"""Registered render kernels: the device-resident visualization library.

The paper's central cost is the forced device→host copy of full fields
— VTK/Catalyst cannot consume device memory, so every in situ step
ships the working set across PCIe before any filter runs.  This module
is the reproduction's answer: the whole render pipeline (contouring,
slicing, colormapping, rasterization, compositing merges, annotation)
registered as ``repro.occa`` kernels that operate directly on
:class:`~repro.occa.device.DeviceMemory`.  A launch unwraps device
buffers to their raw arrays — the kernel executes "device side" — so
no transfer is ever charged; under ``residency="device"`` only the
composited tile crosses the modeled PCIe link.

Each kernel body *is* the host implementation invoked on raw device
arrays: the host path and the device path run byte-for-byte the same
math, which is what makes the golden-image parity suite
(``tests/test_device_render.py``) exact rather than approximate.  The
host twins stay reachable under ``repro.perf.naive_mode`` exactly as
every other optimized path in this repo.

Two fused launches cut per-step launch counts where stages always
run back-to-back:

- ``catalyst.shade_draw`` — colormap + rasterize one contour piece;
- ``catalyst.slice_frame`` — plane blend + colormap + orient + resize.

``install_render_kernels(device)`` registers everything idempotently
(:meth:`Device.ensure_kernel`) and returns a namespace of launchers;
``install_field_kernels(device)`` covers the simulation-side derived
fields and spectral resampling the data adaptor needs before the
render stages run.
"""

from __future__ import annotations

import numpy as np

from repro.occa.device import Device

__all__ = ["RenderKernels", "FieldKernels", "install_render_kernels",
           "install_field_kernels"]


class RenderKernels:
    """Bound launchers for the catalyst render-stage kernels."""

    def __init__(self, device: Device):
        from repro.catalyst.colormaps import apply_colormap
        from repro.catalyst.pipeline import _resize_nearest, draw_annotations
        from repro.catalyst.rasterizer import apply_background_gradient
        from repro.catalyst.threshold import threshold_by

        self.device = device
        ensure = device.ensure_kernel

        self.contour = ensure("catalyst.mtet", _k_contour)
        self.slice = ensure("catalyst.slice", _k_axis_slice)
        self.threshold = ensure("catalyst.threshold", threshold_by)
        self.colormap = ensure("catalyst.colormap", apply_colormap)
        self.raster_mesh = ensure("catalyst.raster_mesh", _k_raster_mesh)
        self.shade_draw = ensure("catalyst.shade_draw", _k_shade_draw)
        self.background = ensure("catalyst.background", apply_background_gradient)
        self.annotate = ensure("catalyst.annotate", draw_annotations)
        self.plane_blend = ensure("catalyst.plane_blend", _k_plane_blend)
        self.slice_frame = ensure("catalyst.slice_frame", _k_slice_frame)
        self.scatter = ensure("catalyst.scatter", _k_scatter)
        self.render = ensure("catalyst.render", _k_render)
        self._resize = _resize_nearest

    # re-exported so callers need not import the pipeline privates
    @property
    def resize_nearest(self):
        return self._resize


class FieldKernels:
    """Bound launchers for the data-adaptor field kernels."""

    def __init__(self, device: Device):
        self.device = device
        ensure = device.ensure_kernel
        self.magnitude = ensure("nekrs.magnitude", _k_magnitude)
        self.vorticity_magnitude = ensure(
            "nekrs.vorticity_magnitude", _k_vorticity_magnitude
        )
        self.q_criterion = ensure("nekrs.q_criterion", _k_q_criterion)
        self.resample = ensure("catalyst.resample", _k_resample)


def install_render_kernels(device: Device) -> RenderKernels:
    """Register (idempotently) and return the render kernel launchers."""
    kernels = getattr(device, "_render_kernels", None)
    if kernels is None:
        kernels = device._render_kernels = RenderKernels(device)
    return kernels


def install_field_kernels(device: Device) -> FieldKernels:
    """Register (idempotently) and return the field kernel launchers."""
    kernels = getattr(device, "_field_kernels", None)
    if kernels is None:
        kernels = device._field_kernels = FieldKernels(device)
    return kernels


# -- kernel bodies -------------------------------------------------------
# Launched through Device.kernel(): DeviceMemory args arrive as raw
# arrays.  Bodies reuse the host implementations verbatim — identical
# math is the parity invariant, not an optimization shortcut.

def _k_contour(volume, isovalue, origin, spacing, aux=None,
               index_offset=(0, 0, 0)):
    from repro.catalyst.contour import marching_tetrahedra

    return marching_tetrahedra(
        volume, isovalue, origin=origin, spacing=spacing, aux=aux,
        index_offset=index_offset,
    )


def _k_axis_slice(volume, axis, position, origin=(0.0, 0.0, 0.0),
                  spacing=(1.0, 1.0, 1.0)):
    from repro.catalyst.slicefilter import axis_slice

    return axis_slice(volume, axis, position, origin=origin, spacing=spacing)


def _k_raster_mesh(raster_core, camera, vertices, faces, vertex_colors):
    return raster_core.draw_mesh(camera, vertices, faces, vertex_colors)


def _k_shade_draw(raster_core, camera, vertices, faces, values,
                  vmin, vmax, colormap):
    """Fused launch: pseudocolor surface values, then rasterize."""
    from repro.catalyst.colormaps import apply_colormap

    colors = apply_colormap(values, vmin, vmax, colormap)
    return raster_core.draw_mesh(camera, vertices, faces, colors)


def _k_plane_blend(lo_plane, hi_plane, t):
    return (1.0 - t) * lo_plane + t * hi_plane


def _k_slice_frame(plane, vmin, vmax, colormap, height, width):
    """Fused launch: colormap a slice plane, orient it, resize it."""
    from repro.catalyst.colormaps import apply_colormap
    from repro.catalyst.pipeline import _resize_nearest

    rgb = apply_colormap(plane, vmin, vmax, colormap)
    rgb = rgb[::-1]
    return _resize_nearest(rgb, height, width)


def _k_scatter(volume, fragment, offset):
    """Place a fragment into a global volume at lattice `offset`."""
    ox, oy, oz = offset
    fz, fy, fx = fragment.shape
    volume[oz:oz + fz, oy:oy + fy, ox:ox + fx] = fragment


def _k_render(render_callable, image, step, time):
    """Whole-pipeline fused launch for the assembled-volume path."""
    return render_callable(image, step, time)


def _k_magnitude(u, v, w, out):
    out[...] = np.sqrt(u * u + v * v + w * w)


def _k_vorticity_magnitude(ops, u, v, w, out):
    from repro.nekrs.diagnostics import vorticity_magnitude

    out[...] = vorticity_magnitude(ops, u, v, w)


def _k_q_criterion(ops, u, v, w, out):
    from repro.nekrs.diagnostics import q_criterion

    out[...] = q_criterion(ops, u, v, w)


def _k_resample(mesh, field, samples, out):
    from repro.sem.interp import resample_field

    out[...] = resample_field(mesh, field, samples)
