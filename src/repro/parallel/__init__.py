"""In-process SPMD runtime standing in for MPI.

The paper's runs span 280-1120 MPI ranks on Polaris/JUWELS.  Here every
rank is a thread in one process: ``ThreadCommunicator`` provides
MPI-like point-to-point and collective operations with real concurrency
and real synchronization, and ``SerialCommunicator`` covers the
single-rank case.  All traffic flows through a :class:`TrafficMeter`
so the machine model (``repro.machine``) can replay the recorded
communication volume at leadership scale.
"""

from repro.faults.errors import RankStallError
from repro.parallel.comm import (
    Communicator,
    ReduceOp,
    SerialCommunicator,
    TrafficMeter,
    TrafficEvent,
)
from repro.parallel.thread_comm import ThreadCommunicator
from repro.parallel.runtime import run_spmd
from repro.parallel.partition import block_partition, block_range, owner_of

__all__ = [
    "Communicator",
    "ReduceOp",
    "SerialCommunicator",
    "ThreadCommunicator",
    "TrafficMeter",
    "TrafficEvent",
    "RankStallError",
    "run_spmd",
    "block_partition",
    "block_range",
    "owner_of",
]
