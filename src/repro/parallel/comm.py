"""Communicator interface, reduce operations, and traffic metering.

The interface follows mpi4py conventions loosely: lowercase methods
exchange arbitrary Python objects (NumPy arrays are passed by
reference between ranks since everything lives in one address space —
receivers must treat them as read-only or copy).  A few array-aware
helpers (`allreduce_array`) avoid per-call object overhead in solver
hot loops.
"""

from __future__ import annotations

import abc
import enum
import pickle
import threading
from dataclasses import dataclass, field

import numpy as np


class ReduceOp(enum.Enum):
    """Reduction operators supported by reduce/allreduce."""

    SUM = "sum"
    MIN = "min"
    MAX = "max"
    PROD = "prod"
    LAND = "land"
    LOR = "lor"


def _combine(op: ReduceOp, values):
    """Combine a list of values (scalars or same-shape arrays)."""
    if not values:
        raise ValueError("cannot reduce zero values")
    if isinstance(values[0], np.ndarray):
        stack = np.stack(values)
        if op is ReduceOp.SUM:
            return stack.sum(axis=0)
        if op is ReduceOp.MIN:
            return stack.min(axis=0)
        if op is ReduceOp.MAX:
            return stack.max(axis=0)
        if op is ReduceOp.PROD:
            return stack.prod(axis=0)
        if op is ReduceOp.LAND:
            return np.logical_and.reduce(stack, axis=0)
        if op is ReduceOp.LOR:
            return np.logical_or.reduce(stack, axis=0)
    else:
        if op is ReduceOp.SUM:
            return sum(values)
        if op is ReduceOp.MIN:
            return min(values)
        if op is ReduceOp.MAX:
            return max(values)
        if op is ReduceOp.PROD:
            out = values[0]
            for v in values[1:]:
                out = out * v
            return out
        if op is ReduceOp.LAND:
            return all(values)
        if op is ReduceOp.LOR:
            return any(values)
    raise ValueError(f"unsupported reduce op {op}")


def payload_nbytes(obj) -> int:
    """Estimate the wire size of a payload.

    NumPy arrays report their buffer size; other objects are sized by
    their pickle, matching what an MPI pickle-based send would move.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (list, tuple)) and obj and all(
        isinstance(x, np.ndarray) for x in obj
    ):
        return sum(x.nbytes for x in obj)
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 0


@dataclass(frozen=True)
class TrafficEvent:
    """One logical communication operation observed by the meter."""

    op: str          # "send", "bcast", "allreduce", ...
    nbytes: int      # payload bytes per participating message
    size: int        # communicator size at the time of the call
    channel: str     # caller-assigned channel label ("solver", "sst", ...)
    rank: int = -1   # rank the bytes are attributed to (-1: unattributed)


@dataclass
class TrafficMeter:
    """Thread-safe accumulator of communication events.

    The meter records *logical* payloads (what the application handed
    to the communicator); the machine model turns these into modeled
    wire time using per-operation cost formulas.

    Attribution convention: point-to-point ``send`` events carry the
    *sender's* rank and egress bytes; collective events are recorded by
    **every participating rank** with the bytes that rank *receives*
    (ingress).  Ingress accounting is implementation-independent — a
    binomial-tree gather delivers the same logical bytes to the root as
    a flat one — so optimized and reference collectives meter
    identically, and ``peak_rank_bytes`` exposes the hot-spot rank
    (e.g. the root of a gather-to-root rendering pipeline).
    """

    events: list[TrafficEvent] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(
        self,
        op: str,
        nbytes: int,
        size: int,
        channel: str = "default",
        rank: int = -1,
    ) -> None:
        with self._lock:
            self.events.append(TrafficEvent(op, nbytes, size, channel, rank))

    def total_bytes(self, channel: str | None = None) -> int:
        with self._lock:
            return sum(
                e.nbytes for e in self.events if channel is None or e.channel == channel
            )

    def count(self, op: str | None = None) -> int:
        with self._lock:
            return sum(1 for e in self.events if op is None or e.op == op)

    def by_op(self) -> dict[str, int]:
        with self._lock:
            out: dict[str, int] = {}
            for e in self.events:
                out[e.op] = out.get(e.op, 0) + e.nbytes
            return out

    def per_rank_bytes(
        self, op: str | None = None, channel: str | None = None
    ) -> dict[int, int]:
        """Bytes attributed to each rank, optionally filtered by op/channel."""
        with self._lock:
            out: dict[int, int] = {}
            for e in self.events:
                if op is not None and e.op != op:
                    continue
                if channel is not None and e.channel != channel:
                    continue
                out[e.rank] = out.get(e.rank, 0) + e.nbytes
            return out

    def peak_rank_bytes(
        self, op: str | None = None, channel: str | None = None
    ) -> int:
        """Largest per-rank byte total — the congestion hot spot."""
        per_rank = self.per_rank_bytes(op, channel)
        return max(per_rank.values(), default=0)

    def clear(self) -> None:
        with self._lock:
            self.events.clear()


class Communicator(abc.ABC):
    """MPI-like communicator over an in-process rank group."""

    #: label applied to recorded traffic; callers may retarget it
    channel: str = "default"

    @property
    @abc.abstractmethod
    def rank(self) -> int:
        """This rank's index in [0, size)."""

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of ranks in the group."""

    @property
    @abc.abstractmethod
    def meter(self) -> TrafficMeter:
        """Traffic meter shared by the group."""

    # -- point to point ------------------------------------------------
    @abc.abstractmethod
    def send(self, obj, dest: int, tag: int = 0) -> None: ...

    @abc.abstractmethod
    def recv(self, source: int, tag: int = 0): ...

    # -- collectives ---------------------------------------------------
    #
    # The public methods validate, dispatch to an ``_*_impl`` hook, and
    # meter ingress bytes per rank (see TrafficMeter).  The base-class
    # impls below route everything through ``_allgather_impl`` — the
    # textbook-correct but O(N * payload) reference algorithms that
    # ``naive_mode()`` equivalence tests compare the optimized tree
    # collectives in ThreadCommunicator against.

    @abc.abstractmethod
    def barrier(self) -> None: ...

    @abc.abstractmethod
    def _allgather_impl(self, obj) -> list:
        """Unmetered allgather primitive; public wrappers meter it."""

    def _record(self, op: str, nbytes: int) -> None:
        if self.size > 1:
            self.meter.record(op, nbytes, self.size, self.channel, rank=self.rank)

    def allgather(self, obj) -> list:
        values = self._allgather_impl(obj)
        self._record("allgather", sum(
            payload_nbytes(v) for i, v in enumerate(values) if i != self.rank
        ))
        return values

    def bcast(self, obj, root: int = 0):
        out = self._bcast_impl(obj, root)
        self._record("bcast", 0 if self.rank == root else payload_nbytes(out))
        return out

    def _bcast_impl(self, obj, root: int):
        return self._allgather_impl(obj if self.rank == root else None)[root]

    def gather(self, obj, root: int = 0) -> list | None:
        nbytes = payload_nbytes(obj)
        values = self._gather_impl(obj, root)
        if self.rank == root:
            self._record("gather", sum(payload_nbytes(v) for v in values) - nbytes)
        else:
            self._record("gather", 0)
        return values

    def _gather_impl(self, obj, root: int) -> list | None:
        values = self._allgather_impl(obj)
        return values if self.rank == root else None

    def scatter(self, objs, root: int = 0):
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError("scatter needs one object per rank at the root")
        out = self._scatter_impl(objs, root)
        self._record("scatter", 0 if self.rank == root else payload_nbytes(out))
        return out

    def _scatter_impl(self, objs, root: int):
        values = self._allgather_impl(objs if self.rank == root else None)
        return values[root][self.rank]

    def alltoall(self, objs) -> list:
        """Each rank provides a list of `size` objects; returns column `rank`."""
        if len(objs) != self.size:
            raise ValueError("alltoall needs one object per destination rank")
        result = self._alltoall_impl(objs)
        self._record("alltoall", sum(
            payload_nbytes(v) for i, v in enumerate(result) if i != self.rank
        ))
        return result

    def _alltoall_impl(self, objs) -> list:
        matrix = self._allgather_impl(objs)
        return [row[self.rank] for row in matrix]

    def reduce(self, value, op: ReduceOp = ReduceOp.SUM, root: int = 0):
        nbytes = payload_nbytes(value)
        out = self._reduce_impl(value, op, root)
        if self.rank == root:
            # the reduction logically moves every other contribution here
            self._record("reduce", nbytes * (self.size - 1))
        else:
            self._record("reduce", 0)
        return out

    def _reduce_impl(self, value, op: ReduceOp, root: int):
        values = self._allgather_impl(value)
        return _combine(op, values) if self.rank == root else None

    def allreduce(self, value, op: ReduceOp = ReduceOp.SUM):
        out = _combine(op, self._allgather_impl(value))
        self._record("allreduce", payload_nbytes(value) * (self.size - 1))
        return out

    def allreduce_array(self, array: np.ndarray, op: ReduceOp = ReduceOp.SUM) -> np.ndarray:
        """Elementwise allreduce of a NumPy array."""
        return self.allreduce(np.asarray(array), op)

    # -- subgroups -----------------------------------------------------
    @abc.abstractmethod
    def split(self, color: int, key: int | None = None) -> "Communicator":
        """Partition the group into subcommunicators by *color*.

        Ranks with equal color land in the same subgroup, ordered by
        (*key*, rank).  Mirrors ``MPI_Comm_split``.
        """

    # -- convenience ---------------------------------------------------
    @property
    def is_root(self) -> bool:
        return self.rank == 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} rank={self.rank} size={self.size}>"


class SerialCommunicator(Communicator):
    """Single-rank communicator; collectives are identities."""

    def __init__(self, meter: TrafficMeter | None = None, channel: str = "default"):
        self._meter = meter or TrafficMeter()
        self.channel = channel

    @property
    def rank(self) -> int:
        return 0

    @property
    def size(self) -> int:
        return 1

    @property
    def meter(self) -> TrafficMeter:
        return self._meter

    def send(self, obj, dest: int, tag: int = 0) -> None:
        raise RuntimeError("send on a single-rank communicator (no peers)")

    def recv(self, source: int, tag: int = 0):
        raise RuntimeError("recv on a single-rank communicator (no peers)")

    def barrier(self) -> None:
        return None

    def _allgather_impl(self, obj) -> list:
        return [obj]

    def split(self, color: int, key: int | None = None) -> "SerialCommunicator":
        return SerialCommunicator(self._meter, self.channel)
