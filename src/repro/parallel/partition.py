"""Partitioning of elements across ranks.

Two strategies:

- **slab** (block) partitioning of the lexicographic element order —
  Nek's default contiguous distribution; plus the inverse owner lookup,
  with the MPI-standard convention that the first ``n % size`` ranks
  get one extra item.
- **Morton (Z-order) curve** partitioning — block partitioning of the
  space-filling-curve order, which keeps each rank's elements spatially
  compact and therefore shrinks the gather-scatter interface (the same
  role recursive bisection plays in production Nek).
"""

from __future__ import annotations

import numpy as np


def block_range(n: int, size: int, rank: int) -> tuple[int, int]:
    """Half-open index range [lo, hi) owned by `rank` out of `size`.

    >>> [block_range(10, 3, r) for r in range(3)]
    [(0, 4), (4, 7), (7, 10)]
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    if not 0 <= rank < size:
        raise ValueError(f"rank {rank} out of range for size {size}")
    if n < 0:
        raise ValueError("n must be non-negative")
    base, extra = divmod(n, size)
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


def block_partition(n: int, size: int) -> list[tuple[int, int]]:
    """All ranks' [lo, hi) ranges; ranges tile [0, n) exactly."""
    return [block_range(n, size, r) for r in range(size)]


def owner_of(index: int, n: int, size: int) -> int:
    """Rank owning global `index` under block partitioning.

    >>> owner_of(6, 10, 3)
    1
    """
    if not 0 <= index < n:
        raise ValueError(f"index {index} out of range [0, {n})")
    base, extra = divmod(n, size)
    cutoff = extra * (base + 1)
    if index < cutoff:
        return index // (base + 1)
    return extra + (index - cutoff) // base


def _spread_bits(v: np.ndarray) -> np.ndarray:
    """Insert two zero bits between each bit of v (for 3-D interleave)."""
    v = v.astype(np.uint64)
    v = (v | (v << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    v = (v | (v << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    v = (v | (v << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    v = (v | (v << np.uint64(2))) & np.uint64(0x1249249249249249)
    return v


def morton_encode(ix: np.ndarray, iy: np.ndarray, iz: np.ndarray) -> np.ndarray:
    """Morton (Z-order) code of 3-D lattice coordinates (< 2^21 each)."""
    ix = np.asarray(ix, dtype=np.int64)
    iy = np.asarray(iy, dtype=np.int64)
    iz = np.asarray(iz, dtype=np.int64)
    if (ix < 0).any() or (iy < 0).any() or (iz < 0).any():
        raise ValueError("lattice coordinates must be non-negative")
    if max(ix.max(initial=0), iy.max(initial=0), iz.max(initial=0)) >= 2**21:
        raise ValueError("coordinates exceed the 21-bit Morton range")
    return (
        _spread_bits(ix)
        | (_spread_bits(iy) << np.uint64(1))
        | (_spread_bits(iz) << np.uint64(2))
    ).astype(np.uint64)


def morton_order(shape: tuple[int, int, int]) -> np.ndarray:
    """Lexicographic element indices of an Ex x Ey x Ez lattice, sorted
    along the Morton curve (x fastest in the lexicographic order)."""
    ex, ey, ez = shape
    e = np.arange(ex * ey * ez, dtype=np.int64)
    ix = e % ex
    iy = (e // ex) % ey
    iz = e // (ex * ey)
    codes = morton_encode(ix, iy, iz)
    return e[np.argsort(codes, kind="stable")]


def morton_partition(shape: tuple[int, int, int], size: int) -> list[np.ndarray]:
    """Per-rank element-id sets: contiguous chunks of the Morton curve.

    Each rank's ids are returned ascending (the order element-local
    arrays are stored in), but ownership follows the curve, so ranks
    get spatially compact bricks instead of thin slabs.
    """
    order = morton_order(shape)
    n = len(order)
    return [
        np.sort(order[slice(*block_range(n, size, r))]) for r in range(size)
    ]
