"""SPMD driver: launch a rank function across an in-process group.

``run_spmd(nranks, body)`` is the moral equivalent of ``mpiexec -n``:
it builds the communicator group, runs ``body(comm, *args)`` on every
rank (threads for nranks > 1, inline for nranks == 1), propagates the
first exception, and returns the per-rank results.
"""

from __future__ import annotations

import sys
import threading
import traceback
from typing import Callable, Sequence

from repro.parallel.comm import SerialCommunicator, TrafficMeter
from repro.parallel.thread_comm import ThreadCommunicator


def dump_thread_stacks(file=None) -> int:
    """Write every live thread's stack to `file` (default stderr).

    The debugging move for a wedged SPMD world: rank threads are named
    ``spmd-rank-N``, so the dump shows directly which rank is stuck in
    which collective or queue wait.  Returns the number of threads
    dumped.  Used by the test suite's deadlock watchdog before it
    aborts the run.
    """
    out = file if file is not None else sys.stderr
    frames = sys._current_frames()
    threads = threading.enumerate()
    print(f"==== stacks of {len(threads)} live thread(s) ====", file=out)
    for thread in threads:
        frame = frames.get(thread.ident)
        daemon = " daemon" if thread.daemon else ""
        print(f"\n-- {thread.name} (ident {thread.ident}{daemon}) --", file=out)
        if frame is None:
            print("  <no frame: thread finishing>", file=out)
            continue
        for line in traceback.format_stack(frame):
            print(line.rstrip(), file=out)
    print("==== end of thread stacks ====", file=out)
    return len(threads)


def run_spmd(
    nranks: int,
    body: Callable,
    args: Sequence = (),
    meter: TrafficMeter | None = None,
    channel: str = "default",
    timeout: float | None = None,
) -> list:
    """Run `body(comm, *args)` on `nranks` ranks; return per-rank results.

    Exceptions raised by any rank abort the whole group: the barrier is
    broken so peers blocked in collectives fail fast, and the first
    rank's exception (by rank order) is re-raised in the caller.
    """
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    meter = meter or TrafficMeter()
    if nranks == 1:
        comm = SerialCommunicator(meter, channel)
        return [body(comm, *args)]

    comms = ThreadCommunicator.create_group(nranks, meter, channel)
    if timeout is not None:
        for c in comms:
            c.timeout = timeout
    results: list = [None] * nranks
    errors: list = [None] * nranks

    def runner(r: int) -> None:
        try:
            results[r] = body(comms[r], *args)
        except BaseException as exc:  # noqa: BLE001 - must capture rank failures
            errors[r] = exc
            # Break the group barrier so peers blocked in collectives
            # raise instead of hanging until timeout.
            comms[r]._world.barrier.abort()

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"spmd-rank-{r}", daemon=True)
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    for r, err in enumerate(errors):
        if err is not None and not isinstance(err, TimeoutError):
            raise err
    for r, err in enumerate(errors):
        if err is not None:
            raise err
    return results
