"""Threaded SPMD communicator.

Each rank runs in its own thread; all ranks of a group share a
``_World`` object that holds the synchronization state:

- a reusable :class:`threading.Barrier` drives collectives via a
  slot-exchange protocol (write your slot -> barrier -> read all slots
  -> barrier), which is the textbook shared-memory allgather;
- point-to-point messages travel through per-(src, dest, tag) queues
  created lazily under a lock and swept (LRU, empty-only) by the
  barrier action so the mailbox table stays bounded.

Because NumPy releases the GIL for bulk array work, ranks overlap their
compute phases for real, which is what lets instrumented runs measure
realistic contention between solver and in situ phases.

Collectives
-----------
``bcast``/``gather``/``scatter``/``reduce`` run on a **binomial tree**
(log2(N) rounds instead of the O(N)-payload two-barrier allgather) and
``alltoall`` as a **pairwise exchange** (N-1 shifted rounds, each rank
moving only what its peers actually need).  Payloads are passed by
reference between threads, so the trees are zero-copy for NumPy
arrays; ``reduce`` additionally stacks array contributions into
:class:`repro.perf.WorkspaceArena` scratch before combining.  The
allgather-based base-class algorithms in
:class:`repro.parallel.comm.Communicator` remain the reference: under
:func:`repro.perf.naive_mode` every collective routes through them,
which is what the parity suite in ``tests/test_collectives_parity.py``
exploits.

Tree collectives address peers by *virtual rank* ``(rank - root) %
size`` so any root works; a non-root vrank ``v`` has parent
``v - lowbit(v)`` and children ``v + m`` for each power of two
``m < lowbit(v)``.  Internal messages travel through reserved negative
tags (user tags are validated non-negative by ``send``/``recv``
callers by convention) and are *not* metered as sends — each public
collective records its own per-rank ingress bytes (see
:class:`repro.parallel.comm.TrafficMeter`).
"""

from __future__ import annotations

import queue
import threading

import numpy as np

from repro.faults.errors import RankStallError
from repro.observe import get_telemetry
from repro.parallel.comm import (
    Communicator,
    ReduceOp,
    TrafficMeter,
    _combine,
    payload_nbytes,
)
from repro.perf import config as perf_config

#: reserved internal tags for tree-collective hops (distinct per op so
#: overlapping collectives of different kinds can never cross wires;
#: per-(src, dest, tag) FIFO ordering keeps back-to-back collectives of
#: the *same* kind in order)
_TAG_BCAST = -101
_TAG_GATHER = -102
_TAG_SCATTER = -103
_TAG_REDUCE = -104
_TAG_ALLTOALL = -105


class _World:
    """Shared state for one thread-communicator group."""

    #: soft cap on live mailbox queues; crossing it triggers an LRU
    #: sweep of *empty* queues at the next barrier (safe point: every
    #: rank is parked in ``Barrier.wait`` while the action runs)
    mailbox_cap: int = 64

    def __init__(self, size: int, meter: TrafficMeter):
        if size < 1:
            raise ValueError(f"communicator size must be >= 1, got {size}")
        self.size = size
        self.meter = meter
        self.barrier = threading.Barrier(size, action=self._sweep_mailboxes)
        self.slots: list = [None] * size
        self.mailbox_lock = threading.Lock()
        self.mailboxes: dict[tuple[int, int, int], queue.Queue] = {}
        # split() rendezvous: one shared cell per generation
        self.split_lock = threading.Lock()
        self.split_result: dict | None = None

    def mailbox(self, src: int, dest: int, tag: int) -> queue.Queue:
        key = (src, dest, tag)
        with self.mailbox_lock:
            q = self.mailboxes.pop(key, None)
            if q is None:
                q = queue.Queue()
            # reinsert at the end: dict order doubles as LRU recency
            self.mailboxes[key] = q
            return q

    def _sweep_mailboxes(self) -> None:
        """Barrier action: drop cold empty queues once over the cap.

        Runs in exactly one thread while all `size` ranks are blocked
        inside ``Barrier.wait`` — no rank can be mid-``send``/``recv``
        (they would not have reached the barrier), so removing an empty
        queue cannot lose a message.
        """
        if len(self.mailboxes) <= self.mailbox_cap:
            return
        with self.mailbox_lock:
            for key in list(self.mailboxes):
                if len(self.mailboxes) <= self.mailbox_cap:
                    break
                if self.mailboxes[key].empty():
                    del self.mailboxes[key]


class ThreadCommunicator(Communicator):
    """One rank's handle onto a threaded SPMD group.

    Construct a full group with :meth:`create_group`; individual
    handles are then passed to per-rank thread bodies (see
    ``repro.parallel.runtime.run_spmd``).
    """

    #: seconds before a blocked recv/collective raises, guarding tests
    #: against deadlock hangs.
    timeout: float = 120.0

    def __init__(self, world: _World, rank: int, channel: str = "default"):
        if not 0 <= rank < world.size:
            raise ValueError(f"rank {rank} out of range for size {world.size}")
        self._world = world
        self._rank = rank
        self.channel = channel

    # -- construction ----------------------------------------------------
    @classmethod
    def create_group(
        cls,
        size: int,
        meter: TrafficMeter | None = None,
        channel: str = "default",
    ) -> list["ThreadCommunicator"]:
        """Create `size` communicator handles sharing one world."""
        world = _World(size, meter or TrafficMeter())
        return [cls(world, r, channel) for r in range(size)]

    # -- basics ----------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._world.size

    @property
    def meter(self) -> TrafficMeter:
        return self._world.meter

    # -- point to point ----------------------------------------------------
    def send(self, obj, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range")
        if dest == self._rank:
            raise ValueError("send to self would deadlock a blocking recv pair")
        self.meter.record(
            "send", payload_nbytes(obj), self.size, self.channel, rank=self._rank
        )
        self._put(obj, dest, tag)

    def recv(self, source: int, tag: int = 0):
        if not 0 <= source < self.size:
            raise ValueError(f"source {source} out of range")
        return self._take(source, tag)

    def _put(self, obj, dest: int, tag: int) -> None:
        """Unmetered internal enqueue (collective hops meter themselves)."""
        self._world.mailbox(self._rank, dest, tag).put(obj)

    def _take(self, source: int, tag: int):
        try:
            return self._world.mailbox(source, self._rank, tag).get(
                timeout=self.timeout
            )
        except queue.Empty:
            raise TimeoutError(
                f"rank {self._rank} timed out receiving from {source} tag {tag}"
            ) from None

    def sendrecv(self, obj, dest: int, source: int, tag: int = 0):
        """Exchange with two peers without deadlock (send is non-blocking)."""
        self.send(obj, dest, tag)
        return self.recv(source, tag)

    # -- collectives -------------------------------------------------------
    def barrier(self) -> None:
        self._wait(self._world.barrier)

    def _wait(self, barrier: threading.Barrier) -> None:
        try:
            barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError:
            raise RankStallError(
                self._rank,
                self.channel,
                self.timeout,
                detail="another rank likely raised, stalled, or deadlocked",
            ) from None

    def _allgather_impl(self, obj) -> list:
        world = self._world
        world.slots[self._rank] = obj
        self._wait(world.barrier)
        result = list(world.slots)
        self._wait(world.barrier)
        return result

    # -- binomial-tree collectives ---------------------------------------
    #
    # vrank = (rank - root) % size maps the tree onto any root.  lowbit
    # of a non-root vrank names its parent (v - lowbit) and bounds its
    # children (v + m, power-of-two m < lowbit); vrank 0 parents every
    # power of two below the next power of two >= size.

    def _tree_geometry(self, root: int) -> tuple[int, int]:
        """(vrank, lowbit) for this rank in the binomial tree at `root`."""
        vrank = (self._rank - root) % self.size
        if vrank == 0:
            peak = 1
            while peak < self.size:
                peak <<= 1
            return 0, peak
        return vrank, vrank & -vrank

    def _bcast_impl(self, obj, root: int):
        if self.size == 1 or not perf_config.enabled():
            return super()._bcast_impl(obj, root)
        size = self.size
        vrank, lowbit = self._tree_geometry(root)
        with get_telemetry().tracer.span("comm.bcast_tree", root=root):
            if vrank:
                obj = self._take((root + vrank - lowbit) % size, _TAG_BCAST)
            m = lowbit >> 1
            while m:
                if vrank + m < size:
                    self._put(obj, (root + vrank + m) % size, _TAG_BCAST)
                m >>= 1
        return obj

    def _gather_refs(self, obj, root: int, tag: int) -> list | None:
        """Binomial gather of raw references, vrank-ordered sublists.

        Child subtrees span contiguous vrank ranges, so extending in
        ascending child order keeps the bundle sorted; the root ends up
        with ``sub[i]`` holding vrank ``i``'s contribution.
        """
        size = self.size
        vrank, lowbit = self._tree_geometry(root)
        sub = [obj]
        m = 1
        while m < lowbit and vrank + m < size:
            sub.extend(self._take((root + vrank + m) % size, tag))
            m <<= 1
        if vrank:
            self._put(sub, (root + vrank - lowbit) % size, tag)
            return None
        return sub

    def _gather_impl(self, obj, root: int) -> list | None:
        if self.size == 1 or not perf_config.enabled():
            return super()._gather_impl(obj, root)
        with get_telemetry().tracer.span("comm.gather_tree", root=root):
            sub = self._gather_refs(obj, root, _TAG_GATHER)
            if sub is None:
                return None
            # rotate from vrank order back to rank order
            return [sub[(r - root) % self.size] for r in range(self.size)]

    def _scatter_impl(self, objs, root: int):
        if self.size == 1 or not perf_config.enabled():
            return super()._scatter_impl(objs, root)
        size = self.size
        vrank, lowbit = self._tree_geometry(root)
        with get_telemetry().tracer.span("comm.scatter_tree", root=root):
            if self._rank == root:
                bundle = [objs[(root + v) % size] for v in range(size)]
            else:
                bundle = self._take((root + vrank - lowbit) % size, _TAG_SCATTER)
            m = lowbit >> 1
            while m:
                if vrank + m < size:
                    self._put(bundle[m:], (root + vrank + m) % size, _TAG_SCATTER)
                    bundle = bundle[:m]
                m >>= 1
        return bundle[0]

    def _reduce_impl(self, value, op: ReduceOp, root: int):
        if self.size == 1 or not perf_config.enabled():
            return super()._reduce_impl(value, op, root)
        with get_telemetry().tracer.span("comm.reduce_tree", root=root):
            sub = self._gather_refs(value, root, _TAG_REDUCE)
            if sub is None:
                return None
            # combine once at the root in *rank* order so the float
            # summation order matches the allgather-based reference
            # bit for bit
            values = [sub[(r - root) % self.size] for r in range(self.size)]
            return self._combine_fast(op, values)

    def _combine_fast(self, op: ReduceOp, values):
        """`_combine`, staging array stacks in arena scratch.

        Mirrors ``np.stack(values).<op>(axis=0)`` exactly (same layout,
        same reduction order) so results stay bitwise identical to the
        reference; only the temporary stack avoids the allocator.
        """
        first = values[0]
        if (
            isinstance(first, np.ndarray)
            and op in (ReduceOp.SUM, ReduceOp.MIN, ReduceOp.MAX, ReduceOp.PROD)
            and all(
                isinstance(v, np.ndarray)
                and v.shape == first.shape
                and v.dtype == first.dtype
                for v in values[1:]
            )
        ):
            from repro.perf.arena import get_arena

            arena = get_arena()
            with arena.scratch((len(values),) + first.shape, first.dtype) as stk:
                np.stack(values, out=stk)
                if op is ReduceOp.SUM:
                    return stk.sum(axis=0)
                if op is ReduceOp.MIN:
                    return stk.min(axis=0)
                if op is ReduceOp.MAX:
                    return stk.max(axis=0)
                return stk.prod(axis=0)
        return _combine(op, values)

    def _alltoall_impl(self, objs) -> list:
        if self.size == 1 or not perf_config.enabled():
            return super()._alltoall_impl(objs)
        size, rank = self.size, self._rank
        result = [None] * size
        result[rank] = objs[rank]
        with get_telemetry().tracer.span("comm.alltoall_pairwise"):
            for shift in range(1, size):
                dest = (rank + shift) % size
                src = (rank - shift) % size
                self._put(objs[dest], dest, _TAG_ALLTOALL)
                result[src] = self._take(src, _TAG_ALLTOALL)
        return result

    # -- subgroups -----------------------------------------------------
    def split(self, color: int, key: int | None = None) -> "ThreadCommunicator":
        """Collective: partition ranks by color into new thread groups."""
        entries = self.allgather((color, self._rank if key is None else key, self._rank))
        # Build group membership deterministically on every rank.
        groups: dict[int, list[tuple[int, int]]] = {}
        for c, k, r in entries:
            groups.setdefault(c, []).append((k, r))
        members = [r for _, r in sorted(groups[color])]
        new_rank = members.index(self._rank)
        # The lowest old rank of each group creates the shared world and
        # publishes it through the parent world's slot exchange.
        my_world = None
        if new_rank == 0:
            my_world = _World(len(members), self.meter)
        published = self.allgather((color, my_world))
        for c, w in published:
            if c == color and w is not None:
                my_world = w
                break
        assert my_world is not None
        return ThreadCommunicator(my_world, new_rank, self.channel)
