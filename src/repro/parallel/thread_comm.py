"""Threaded SPMD communicator.

Each rank runs in its own thread; all ranks of a group share a
``_World`` object that holds the synchronization state:

- a reusable :class:`threading.Barrier` drives collectives via a
  slot-exchange protocol (write your slot -> barrier -> read all slots
  -> barrier), which is the textbook shared-memory allgather;
- point-to-point messages travel through per-(src, dest, tag) queues
  created lazily under a lock.

Because NumPy releases the GIL for bulk array work, ranks overlap their
compute phases for real, which is what lets instrumented runs measure
realistic contention between solver and in situ phases.
"""

from __future__ import annotations

import queue
import threading

from repro.faults.errors import RankStallError
from repro.parallel.comm import (
    Communicator,
    TrafficMeter,
    payload_nbytes,
)


class _World:
    """Shared state for one thread-communicator group."""

    def __init__(self, size: int, meter: TrafficMeter):
        if size < 1:
            raise ValueError(f"communicator size must be >= 1, got {size}")
        self.size = size
        self.meter = meter
        self.barrier = threading.Barrier(size)
        self.slots: list = [None] * size
        self.mailbox_lock = threading.Lock()
        self.mailboxes: dict[tuple[int, int, int], queue.Queue] = {}
        # split() rendezvous: one shared cell per generation
        self.split_lock = threading.Lock()
        self.split_result: dict | None = None

    def mailbox(self, src: int, dest: int, tag: int) -> queue.Queue:
        key = (src, dest, tag)
        with self.mailbox_lock:
            q = self.mailboxes.get(key)
            if q is None:
                q = self.mailboxes[key] = queue.Queue()
            return q


class ThreadCommunicator(Communicator):
    """One rank's handle onto a threaded SPMD group.

    Construct a full group with :meth:`create_group`; individual
    handles are then passed to per-rank thread bodies (see
    ``repro.parallel.runtime.run_spmd``).
    """

    #: seconds before a blocked recv/collective raises, guarding tests
    #: against deadlock hangs.
    timeout: float = 120.0

    def __init__(self, world: _World, rank: int, channel: str = "default"):
        if not 0 <= rank < world.size:
            raise ValueError(f"rank {rank} out of range for size {world.size}")
        self._world = world
        self._rank = rank
        self.channel = channel

    # -- construction ----------------------------------------------------
    @classmethod
    def create_group(
        cls,
        size: int,
        meter: TrafficMeter | None = None,
        channel: str = "default",
    ) -> list["ThreadCommunicator"]:
        """Create `size` communicator handles sharing one world."""
        world = _World(size, meter or TrafficMeter())
        return [cls(world, r, channel) for r in range(size)]

    # -- basics ----------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._world.size

    @property
    def meter(self) -> TrafficMeter:
        return self._world.meter

    # -- point to point ----------------------------------------------------
    def send(self, obj, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range")
        if dest == self._rank:
            raise ValueError("send to self would deadlock a blocking recv pair")
        self.meter.record("send", payload_nbytes(obj), self.size, self.channel)
        self._world.mailbox(self._rank, dest, tag).put(obj)

    def recv(self, source: int, tag: int = 0):
        if not 0 <= source < self.size:
            raise ValueError(f"source {source} out of range")
        try:
            return self._world.mailbox(source, self._rank, tag).get(
                timeout=self.timeout
            )
        except queue.Empty:
            raise TimeoutError(
                f"rank {self._rank} timed out receiving from {source} tag {tag}"
            ) from None

    def sendrecv(self, obj, dest: int, source: int, tag: int = 0):
        """Exchange with two peers without deadlock (send is non-blocking)."""
        self.send(obj, dest, tag)
        return self.recv(source, tag)

    # -- collectives -------------------------------------------------------
    def barrier(self) -> None:
        self._wait(self._world.barrier)

    def _wait(self, barrier: threading.Barrier) -> None:
        try:
            barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError:
            raise RankStallError(
                self._rank,
                self.channel,
                self.timeout,
                detail="another rank likely raised, stalled, or deadlocked",
            ) from None

    def allgather(self, obj) -> list:
        world = self._world
        world.slots[self._rank] = obj
        self._wait(world.barrier)
        result = list(world.slots)
        self._wait(world.barrier)
        if self._rank == 0:
            self.meter.record(
                "allgather",
                sum(payload_nbytes(o) for o in result),
                self.size,
                self.channel,
            )
        return result

    # -- subgroups -----------------------------------------------------
    def split(self, color: int, key: int | None = None) -> "ThreadCommunicator":
        """Collective: partition ranks by color into new thread groups."""
        entries = self.allgather((color, self._rank if key is None else key, self._rank))
        # Build group membership deterministically on every rank.
        groups: dict[int, list[tuple[int, int]]] = {}
        for c, k, r in entries:
            groups.setdefault(c, []).append((k, r))
        members = [r for _, r in sorted(groups[color])]
        new_rank = members.index(self._rank)
        # The lowest old rank of each group creates the shared world and
        # publishes it through the parent world's slot exchange.
        my_world = None
        if new_rank == 0:
            my_world = _World(len(members), self.meter)
        published = self.allgather((color, my_world))
        for c, w in published:
            if c == color and w is not None:
                my_world = w
                break
        assert my_world is not None
        return ThreadCommunicator(my_world, new_rank, self.channel)
