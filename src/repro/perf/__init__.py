"""``repro.perf`` — allocation-free hot paths.

The perf layer gives every hot kernel three things:

- a per-rank :class:`PlanCache` so tensor contractions skip per-call
  ``np.einsum_path`` planning and reuse BLAS-shaped rewrites;
- a per-rank :class:`WorkspaceArena` so the CG loop, the solver step,
  and the Catalyst gather/render path borrow scratch arrays instead of
  allocating per iteration;
- a :func:`naive_mode` switch that routes the same call sites through
  the retained reference implementations — the equivalence tests and
  the ``python -m repro bench --gate`` regression gate both depend on
  being able to run before/after from one build.

See ``docs/performance.md`` for the lifetime rules and the gate
workflow.  The gate itself lives in :mod:`repro.perf.gate` and is
imported lazily (it pulls in the solver stack).
"""

from __future__ import annotations

from repro.perf.arena import WorkspaceArena, get_arena
from repro.perf.config import enabled, naive_mode, set_enabled
from repro.perf.plans import PlanCache, get_plan_cache

__all__ = [
    "PlanCache",
    "WorkspaceArena",
    "enabled",
    "get_arena",
    "get_plan_cache",
    "naive_mode",
    "publish_stats",
    "set_enabled",
]


def publish_stats(tel=None) -> None:
    """Export this rank's arena/plan-cache stats as observe gauges.

    Called from the solver step when telemetry is active, so
    ``python -m repro trace`` shows allocation behavior per rank.
    """
    if tel is None:
        from repro.observe import get_telemetry

        tel = get_telemetry()
    if not tel.enabled:
        return
    arena = get_arena()
    plans = get_plan_cache()
    m = tel.metrics
    m.gauge("repro_perf_plan_cache_hits",
            "plan cache hits this rank", agg="sum").set(plans.hits)
    m.gauge("repro_perf_plan_cache_misses",
            "plan cache misses (plans built) this rank", agg="sum").set(plans.misses)
    m.gauge("repro_perf_arena_hits",
            "arena borrows served from the pool this rank", agg="sum").set(arena.hits)
    m.gauge("repro_perf_arena_misses",
            "arena borrows that allocated this rank", agg="sum").set(arena.misses)
    m.gauge("repro_perf_arena_peak_borrowed_bytes",
            "peak bytes simultaneously borrowed this rank",
            agg="sum").set(arena.peak_borrowed_bytes)
    m.gauge("repro_perf_arena_pooled_bytes",
            "bytes parked in the arena pool this rank",
            agg="sum").set(arena.pooled_bytes())
