"""Workspace arena: per-rank pooled scratch arrays for the hot paths.

The solver step, the CG loop, and the Catalyst gather/render path all
need short-lived float buffers of a handful of recurring shapes.
Allocating them fresh every step/iteration costs ``np.empty`` + page
faults and churns the allocator; a :class:`WorkspaceArena` keeps
returned buffers in shape/dtype buckets so steady-state borrows are
pop/append on a list.

Lifetime rules (see ``docs/performance.md``):

- ``borrow`` hands out an *uninitialized* array — callers must write
  before reading, exactly as with ``np.empty``;
- every borrow must be paired with a ``release`` on the same rank,
  normally via ``try/finally`` or the ``scratch`` context manager;
- borrowed arrays must never escape the borrowing scope (never store
  one in ``self``, return it, or hand it to another rank).

One arena lives per thread (= per SPMD rank), so there is no lock.
In-use bytes are charged to the rank's :class:`MemoryMeter` under the
``perf.arena`` category, and hit/miss/peak statistics are exported as
gauges by :func:`repro.perf.publish_stats`.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.observe import get_telemetry
from repro.perf import config

__all__ = ["WorkspaceArena", "get_arena"]


class _Scratch:
    """Lightweight ``with``-guard for :meth:`WorkspaceArena.scratch`.

    A dedicated class (not ``@contextmanager``) because the generator
    protocol costs more than the borrow itself at small field sizes.
    """

    __slots__ = ("_arena", "_arrays", "_single")

    def __init__(self, arena, arrays, single):
        self._arena = arena
        self._arrays = arrays
        self._single = single

    def __enter__(self):
        return self._arrays[0] if self._single else self._arrays

    def __exit__(self, exc_type, exc, tb):
        self._arena.release(*self._arrays)
        return False


class WorkspaceArena:
    """Shape/dtype-bucketed pool of scratch arrays for one rank."""

    def __init__(self) -> None:
        self._pool: dict[tuple, list[np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        self.outstanding = 0
        self.borrowed_bytes = 0
        self.peak_borrowed_bytes = 0

    def borrow(self, shape, dtype=np.float64) -> np.ndarray:
        """An uninitialized C-contiguous array of `shape`/`dtype`.

        Pooled when the perf layer is enabled; a plain ``np.empty``
        (so ``release`` is a no-op) under :func:`repro.perf.naive_mode`.
        """
        dtype = np.dtype(dtype)
        if not config.enabled():
            return np.empty(shape, dtype)
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        bucket = self._pool.get((shape, dtype.char))
        if bucket:
            arr = bucket.pop()
            self.hits += 1
        else:
            arr = np.empty(shape, dtype)
            self.misses += 1
        self.outstanding += 1
        self.borrowed_bytes += arr.nbytes
        if self.borrowed_bytes > self.peak_borrowed_bytes:
            self.peak_borrowed_bytes = self.borrowed_bytes
        get_telemetry().memory.allocate("perf.arena", arr.nbytes)
        return arr

    def release(self, *arrays: np.ndarray) -> None:
        """Return borrowed arrays to their buckets (contents discarded)."""
        if not config.enabled():
            return
        mem = get_telemetry().memory
        for arr in arrays:
            self._pool.setdefault((arr.shape, arr.dtype.char), []).append(arr)
            self.outstanding -= 1
            self.borrowed_bytes -= arr.nbytes
            mem.free("perf.arena", arr.nbytes)

    def adopt(self, *arrays: np.ndarray) -> None:
        """Release borrowed arrays *without* pooling them.

        For the rare buffer that legitimately escapes its borrowing
        scope (e.g. a finished framebuffer handed to the PNG writer):
        accounting ends here, but the memory stays with the caller, so
        the pool can never hand out an aliased array.
        """
        if not config.enabled():
            return
        mem = get_telemetry().memory
        for arr in arrays:
            self.outstanding -= 1
            self.borrowed_bytes -= arr.nbytes
            mem.free("perf.arena", arr.nbytes)

    def scratch(self, shape, dtype=np.float64, n: int = 1) -> _Scratch:
        """Borrow `n` arrays for a with-block; released on exit.

        Yields the array itself for ``n == 1``, a list otherwise.
        """
        return _Scratch(
            self, [self.borrow(shape, dtype) for _ in range(n)], n == 1
        )

    # -- introspection -------------------------------------------------
    def pooled_arrays(self) -> int:
        return sum(len(bucket) for bucket in self._pool.values())

    def pooled_bytes(self) -> int:
        return sum(
            arr.nbytes for bucket in self._pool.values() for arr in bucket
        )

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "outstanding": self.outstanding,
            "borrowed_bytes": self.borrowed_bytes,
            "peak_borrowed_bytes": self.peak_borrowed_bytes,
            "pooled_arrays": self.pooled_arrays(),
            "pooled_bytes": self.pooled_bytes(),
        }

    def clear(self) -> None:
        self._pool.clear()
        self.hits = self.misses = 0
        self.outstanding = 0
        self.borrowed_bytes = self.peak_borrowed_bytes = 0


class _ArenaLocal(threading.local):
    arena = None


_tls = _ArenaLocal()


def get_arena() -> WorkspaceArena:
    """The calling thread's (= rank's) workspace arena."""
    arena = _tls.arena
    if arena is None:
        arena = _tls.arena = WorkspaceArena()
    return arena
