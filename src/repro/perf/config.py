"""Per-thread switch between optimized and reference hot paths.

The optimized kernels (plan-cached contractions, workspace arenas, the
batched rasterizer, zero-copy marshaling) are on by default.  The
reference implementations are kept callable behind :func:`naive_mode`
for two reasons: the equivalence tests prove the optimized paths match
them, and the perf gate measures honest before/after numbers from the
same build instead of trusting a historical figure.

The flag is thread-local so one rank of the threaded SPMD runtime can
be flipped without disturbing the others (and so the gate can measure
the naive path while tier-1 tests run optimized elsewhere).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["enabled", "naive_mode", "set_enabled"]

class _PerfLocal(threading.local):
    # class attribute = per-thread default; plain attribute reads are
    # measurably cheaper than getattr(..., default) on the hot paths
    enabled = True


_tls = _PerfLocal()


def enabled() -> bool:
    """True when the optimized hot paths are active for this thread."""
    return _tls.enabled


def set_enabled(value: bool) -> None:
    _tls.enabled = bool(value)


@contextmanager
def naive_mode():
    """Run the body on the reference (pre-optimization) code paths."""
    previous = enabled()
    _tls.enabled = False
    try:
        yield
    finally:
        _tls.enabled = previous
