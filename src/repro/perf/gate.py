"""Perf regression gate: ``python -m repro bench --gate``.

Runs the gated microbenchmarks twice — optimized and, via
``repro.perf.naive_mode``, on the retained reference paths — then
compares the optimized timings against the committed baseline in
``BENCH_10.json``.  A kernel that regresses more than
``THRESHOLD - 1`` (20%) against its recorded baseline fails the gate.

The file keeps three numbers per kernel so the history stays honest:

- ``reference_s`` — the pre-optimization path, measured now;
- ``latest_s`` — the optimized path, measured now;
- ``baseline_s`` — the optimized timing recorded when the baseline was
  last refreshed (``--update-baseline``).

Everything heavyweight is imported inside the kernel builders so that
``import repro.perf`` stays cheap for the hot paths that use it.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.perf.arena import get_arena
from repro.perf.config import naive_mode
from repro.perf.plans import get_plan_cache

SCHEMA = "repro-bench-gate/1"
THRESHOLD = 1.2
BASELINE_FILE = "BENCH_10.json"


# -- gated kernel workloads ---------------------------------------------
# each builder returns a zero-argument callable; the gate times it both
# optimized and under naive_mode (the callables dispatch internally)

def _kernel_gather_scatter_setup():
    from repro.sem.gather_scatter import find_interface_ids

    rng = np.random.default_rng(7)
    pool = np.arange(120_000, dtype=np.int64)
    sets = [
        np.unique(rng.choice(pool, size=60_000, replace=False))
        for _ in range(4)
    ]
    return lambda: find_interface_ids(sets)


def _kernel_stiffness_apply():
    from repro.parallel import SerialCommunicator
    from repro.sem import BoxMesh, SEMOperators

    ops = SEMOperators(BoxMesh((4, 4, 4), order=7), SerialCommunicator())
    rng = np.random.default_rng(0)
    f = rng.normal(size=ops.mesh.field_shape())
    return lambda: ops.stiffness_apply(f)


def _kernel_cg_solve():
    from repro.parallel import SerialCommunicator
    from repro.sem import BoxMesh, SEMOperators
    from repro.sem.krylov import cg_solve

    ops = SEMOperators(BoxMesh((3, 3, 3), order=6), SerialCommunicator())
    rng = np.random.default_rng(1)
    b = ops.assemble(rng.normal(size=ops.mesh.field_shape()))

    def apply_op(f):
        return ops.assemble(ops.helmholtz_apply(f, 1.0, 1.0))

    diag = ops.stiffness_diagonal(1.0, 1.0)
    pre = np.where(diag > 0, 1.0 / np.where(diag > 0, diag, 1.0), 0.0)
    return lambda: cg_solve(apply_op, b, ops.dot, precond=pre, tol=1e-10,
                            max_iterations=60)


def _kernel_solver_step():
    from repro.nekrs import NekRSSolver
    from repro.nekrs.cases import lid_cavity_case
    from repro.parallel import SerialCommunicator

    case = lid_cavity_case(reynolds=100, elements=2, order=5, dt=5e-3)
    solver = NekRSSolver(case, SerialCommunicator())
    solver.run(2)  # warm caches / ramp BDF order
    return solver.step


def _kernel_rasterize_mesh():
    from repro.catalyst.camera import Camera
    from repro.catalyst.rasterizer import Rasterizer

    # thousands of small triangles — the shape marching tetrahedra
    # feeds the Catalyst render path, where the per-triangle Python
    # loop (not the per-pixel math) is the bottleneck
    rng = np.random.default_rng(3)
    nfaces = 4000
    centers = rng.uniform(-1.2, 1.2, size=(nfaces, 1, 3))
    vertices = (centers + rng.normal(scale=0.05, size=(nfaces, 3, 3))).reshape(-1, 3)
    faces = np.arange(3 * nfaces).reshape(nfaces, 3)
    colors = rng.integers(0, 256, size=(3 * nfaces, 3)).astype(np.uint8)
    camera = Camera.fit_bounds(np.array([[-1.5, 1.5]] * 3), width=256, height=256)

    def run():
        r = Rasterizer(256, 256)
        r.draw_mesh(camera, vertices, faces, colors)

    return run


def _kernel_marshal_roundtrip():
    from repro.adios.marshal import StepPayload, marshal_step, unmarshal_step

    rng = np.random.default_rng(0)
    payload = StepPayload(
        step=1, time=0.1, rank=0,
        variables={f"f{i}": rng.normal(size=(64, 6, 6, 6)) for i in range(4)},
    )
    return lambda: unmarshal_step(marshal_step(payload))


def _spmd_seconds(body, nranks: int, modeled: bool):
    """Run an SPMD workload once and return its measured seconds.

    ``perf.config.enabled`` is thread-local, so the gate's
    ``naive_mode()`` (entered in the main thread) is captured here and
    re-applied inside every rank body — otherwise spawned ranks would
    silently run the optimized paths during the reference measurement.

    With `modeled` False the result is aggregate rank CPU time — on
    this container every rank shares one core, so summed thread time is
    what wall-clock pays, minus scheduler noise.  With `modeled` True
    the result is machine-modeled: the slowest rank's CPU seconds plus
    Hockney wire time for its metered ingress bytes on the paper
    machine's fabric (per-rank attribution makes the gather hot spot
    visible, which wall-clock on one shared core never could).
    """
    from repro.machine.netmodel import NetworkModel
    from repro.machine.specs import POLARIS
    from repro.parallel import run_spmd
    from repro.parallel.comm import TrafficMeter
    from repro.perf import config

    flag = config.enabled()
    meter = TrafficMeter()

    def rank_body(comm):
        config.set_enabled(flag)
        t0 = time.thread_time()
        body(comm)
        return time.thread_time() - t0

    cpu = run_spmd(nranks, rank_body, meter=meter)
    if not modeled:
        return float(sum(cpu))
    net = NetworkModel(POLARIS)
    per_rank = meter.per_rank_bytes()
    hops = 3  # typical inter-group route for a multi-node job
    return float(max(
        c + net.p2p_time(per_rank.get(r, 0), hops) for r, c in enumerate(cpu)
    ))


def _kernel_collectives():
    from repro.parallel import ReduceOp

    nranks, rounds = 8, 50
    arr = np.arange(4096, dtype=np.float64)

    def body(comm):
        for _ in range(rounds):
            comm.bcast(arr if comm.rank == 0 else None)
            comm.gather(arr)
            comm.scatter([arr] * comm.size if comm.rank == 0 else None)
            comm.reduce(arr, ReduceOp.SUM)

    # binomial trees / pairwise exchange vs the two-barrier slot
    # allgather: same results bit for bit, fewer synchronization hops
    return lambda: _spmd_seconds(body, nranks, modeled=False)


def _kernel_compositing():
    from repro.catalyst.compositor import render_composited
    from repro.catalyst.pipeline import RenderPipeline, RenderSpec
    from repro.perf import config
    from repro.vtkdata.arrays import DataArray
    from repro.vtkdata.dataset import ImageData

    # pb146-shaped workload: 2 arrays x 48^3 f64 over 8 ranks.  The
    # reference is the pre-optimization render path — gather every
    # volume fragment to rank 0, assemble, render there; optimized is
    # sort-last: local render + binary-swap depth compositing.
    nranks = 8
    nx = ny = nz = 48
    fx, fy, fz = nx // 2, ny // 2, nz // 2
    z, y, x = np.meshgrid(
        np.arange(nz, dtype=float),
        np.arange(ny, dtype=float),
        np.arange(nx, dtype=float),
        indexing="ij",
    )
    r = np.sqrt((x - nx / 2) ** 2 + (y - ny / 2) ** 2 + (z - nz / 2) ** 2)
    fields = {
        "q": np.cos(r * 0.35) + 0.05 * np.sin(x + y),
        "t": np.cos(r * 0.5) * 0.8 + 0.1 * np.sin(y + z),
    }
    frags = []
    for oz in range(0, nz, fz):
        for oy in range(0, ny, fy):
            for ox in range(0, nx, fx):
                payload = {
                    n: f[oz:oz + fz, oy:oy + fy, ox:ox + fx].copy()
                    for n, f in fields.items()
                }
                frags.append(
                    ((float(ox), float(oy), float(oz)), (fx, fy, fz), payload)
                )
    gdims = (nx, ny, nz)
    pipeline = RenderPipeline(
        specs=[
            RenderSpec(kind="contour", array="q", isovalue=0.3, color_array="t"),
            RenderSpec(kind="slice", array="t", axis="y"),
        ],
        width=128, height=128, name="gate",
    )

    def assemble():
        image = ImageData(dims=gdims, origin=(0, 0, 0), spacing=(1, 1, 1))
        for name, f in fields.items():
            image.add_array(DataArray(name, f.ravel()))
        return image

    def body(comm):
        mine = [f for i, f in enumerate(frags) if i % comm.size == comm.rank]
        if config.enabled():
            render_composited(
                comm, pipeline, mine, gdims, (0, 0, 0), (1, 1, 1),
                step=0, time=0.0, method="binary_swap",
            )
        else:
            gathered = comm.gather(mine)
            if gathered is not None:
                pipeline.render(assemble(), step=0, time=0.0)

    return lambda: _spmd_seconds(body, nranks, modeled=True)


def _kernel_serving():
    from repro.bench.serving import synthetic_frames
    from repro.serve import FrameHub

    # frame fan-out to a standing client population.  Optimized shares
    # one interned payload across the store and every session; the
    # reference path copies per client and scans the ring for dupes —
    # the dispatch lives inside FrameStore.put / FrameHub.publish.
    payloads = synthetic_frames(count=8, size=96)
    nclients, nframes = 48, 80

    def run():
        hub = FrameHub(history=16, default_depth=4)
        for i in range(nclients):
            hub.connect(label=f"gate-{i}")
        for i in range(nframes):
            hub.publish("gate", step=i, time=i * 1e-2,
                        data=payloads[i % len(payloads)])
        hub.close()

    return run


def _kernel_serving_mesh():
    from repro.serve import ServeMesh

    from repro.bench.serving import synthetic_frames

    # the same fan-out workload as `serving`, but through the sharded
    # relay mesh: publish is O(relays) inbox appends and the per-client
    # work happens on the relay pump threads.  Under naive_mode the
    # ServeMesh snapshot routes through the flat FrameHub (per-client
    # offers inline on the publisher, copy-per-client store path), so
    # reference vs optimized is flat-hub vs mesh on identical frames.
    payloads = synthetic_frames(count=8, size=96)
    nclients, nframes = 48, 80

    def run():
        mesh = ServeMesh(
            relays=4, history=16, default_depth=4, poll_interval_s=0.0005
        )
        for i in range(nclients):
            mesh.connect(label=f"gate-{i}")
        for i in range(nframes):
            mesh.publish("gate", step=i, time=i * 1e-2,
                         data=payloads[i % len(payloads)])
        if not mesh.naive:
            # publish returns before fan-out completes; the honest
            # comparison waits until every relay has serviced the run
            deadline = time.perf_counter() + 5.0
            while time.perf_counter() < deadline and any(
                relay.pump.frames_ingested < nframes
                for relay in mesh._relays.values()
            ):
                time.sleep(0.0002)
        mesh.close()

    return run


def _kernel_recovery():
    from repro.bench.fleet import measure_recovery

    # endpoint-loss makespan: optimized is the elastic fleet (lease
    # detection, hash-ring reroute, replay on the survivor — every
    # step commits); the reference is the static split, where the
    # orphaned streams burn retry budgets and drop their steps
    return lambda: measure_recovery()


def _kernel_live_telemetry():
    from repro.bench.live_telemetry import measure_live_run
    from repro.perf import config as perf_config

    # the instrumented fleet run: correlation tags, ring collectors,
    # streaming aggregation, SLO watchdog.  Under naive_mode the plane
    # stays attached but the runner falls back to the uninstrumented
    # static split (perf off disables the fleet path), matching the
    # recovery row's reference semantics; the strict <5% on-vs-off
    # budget is asserted separately in tests/test_observe_live.py.
    def run() -> float:
        return measure_live_run(with_plane=perf_config.enabled())["seconds"]

    return run


def _kernel_compression():
    from repro.bench.compression import gate_step_seconds, measure_compression
    from repro.perf import config as perf_config

    # modeled 1120-rank in-transit step with the wire codec in the
    # path: optimized replays the *measured* delta-rle velocity+
    # pressure ratio (floor 4x at relative 1e-3, enforced inside);
    # the reference is the same step uncompressed.  The measurement
    # is cached, so the warm-up pays for the solves once.
    measure_compression()
    return lambda: gate_step_seconds(compressed=perf_config.enabled())


def _kernel_device_render():
    from repro.bench.device_render import gate_step_seconds, measure_device_render
    from repro.perf import config as perf_config

    # modeled 1120-rank in situ overhead: optimized is the
    # device-resident pipeline (tile-only D2H, no host staging, GPU
    # render kernels, floor 1.5x reduction enforced inside); the
    # reference is the host-resident gather.  The underlying pb146
    # profile measurement is cached, so the warm-up pays once.
    measure_device_render()
    return lambda: gate_step_seconds(device=perf_config.enabled())


KERNELS = {
    "gather_scatter_setup": _kernel_gather_scatter_setup,
    "stiffness_apply": _kernel_stiffness_apply,
    "cg_solve": _kernel_cg_solve,
    "solver_step": _kernel_solver_step,
    "rasterize_mesh": _kernel_rasterize_mesh,
    "marshal_roundtrip": _kernel_marshal_roundtrip,
    "collectives": _kernel_collectives,
    "compositing": _kernel_compositing,
    "serving": _kernel_serving,
    "serving_mesh": _kernel_serving_mesh,
    "recovery": _kernel_recovery,
    "live_telemetry": _kernel_live_telemetry,
    "compression": _kernel_compression,
    "device_render": _kernel_device_render,
}


def _best_of(fn, repeats: int) -> float:
    """Best measurement over `repeats` runs.

    A kernel that returns a plain float reports its *own* measured
    seconds (the SPMD kernels return per-rank CPU / machine-modeled
    time); anything else is timed wall-clock here.
    """
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - t0
        best = min(best, out if type(out) is float else elapsed)
    return best


def compare_to_baseline(
    baseline: dict, current: dict, threshold: float = THRESHOLD
) -> list[str]:
    """Regression messages for kernels slower than threshold x baseline.

    Pure function over the two ``kernels`` mappings so the fail path is
    testable without timing anything.
    """
    failures = []
    for name, cur in current.items():
        base = baseline.get(name)
        if not base or "baseline_s" not in base:
            continue
        allowed = threshold * base["baseline_s"]
        if cur["latest_s"] > allowed:
            failures.append(
                f"{name}: {cur['latest_s'] * 1e3:.3f} ms exceeds "
                f"{threshold:.2f}x baseline "
                f"({base['baseline_s'] * 1e3:.3f} ms -> allowed "
                f"{allowed * 1e3:.3f} ms)"
            )
    return failures


@dataclass
class GateReport:
    ok: bool
    path: Path
    kernels: dict
    failures: list[str] = field(default_factory=list)
    allocation_stats: dict = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"{'kernel':<22} {'reference':>11} {'optimized':>11} "
            f"{'speedup':>8} {'baseline':>11}  status",
        ]
        for name, k in self.kernels.items():
            lines.append(
                f"{name:<22} {k['reference_s'] * 1e3:>9.3f}ms "
                f"{k['latest_s'] * 1e3:>9.3f}ms {k['speedup']:>7.2f}x "
                f"{k['baseline_s'] * 1e3:>9.3f}ms  {k['status']}"
            )
        if self.failures:
            lines.append("")
            lines.extend(f"FAIL {msg}" for msg in self.failures)
        lines.append("")
        lines.append(
            f"gate {'PASSED' if self.ok else 'FAILED'} "
            f"(threshold {THRESHOLD:.2f}x, baseline {self.path})"
        )
        return "\n".join(lines)


def run_gate(
    path: str | Path = BASELINE_FILE,
    update_baseline: bool = False,
    repeats: int = 5,
    kernels: dict | None = None,
) -> GateReport:
    """Measure the gated kernels and compare against the baseline file.

    Writes the refreshed ``BENCH_10.json`` (new kernels adopt their
    current timing as baseline; existing baselines are preserved unless
    `update_baseline`).
    """
    path = Path(path)
    kernels = KERNELS if kernels is None else kernels
    previous = {}
    if path.exists():
        previous = json.loads(path.read_text()).get("kernels", {})

    current: dict[str, dict] = {}
    for name, builder in kernels.items():
        fn = builder()
        fn()  # warm-up: build plans, fill the arena pools
        latest = _best_of(fn, repeats)
        with naive_mode():
            fn()
            reference = _best_of(fn, repeats)
        current[name] = {
            "latest_s": latest,
            "reference_s": reference,
            "speedup": reference / latest if latest > 0 else float("inf"),
        }

    failures = compare_to_baseline(previous, current)
    failed = {f.split(":", 1)[0] for f in failures}
    for name, cur in current.items():
        base = previous.get(name, {}).get("baseline_s")
        if update_baseline or base is None:
            base = cur["latest_s"]
        cur["baseline_s"] = base
        cur["status"] = "FAIL" if name in failed else "ok"

    arena = get_arena()
    plans = get_plan_cache()
    allocation_stats = {
        "arena": arena.stats(),
        "plan_cache": {"hits": plans.hits, "misses": plans.misses,
                       "plans": len(plans)},
    }
    report = GateReport(
        ok=not failures,
        path=path,
        kernels=current,
        failures=failures,
        allocation_stats=allocation_stats,
    )
    path.write_text(json.dumps({
        "schema": SCHEMA,
        "threshold": THRESHOLD,
        "kernels": current,
        "allocation_stats": allocation_stats,
    }, indent=2, sort_keys=True) + "\n")
    return report
