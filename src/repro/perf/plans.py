"""Plan cache for tensor-contraction kernels.

``np.einsum(..., optimize=True)`` re-derives a contraction order on
every call; for the small SEM operators that planning overhead rivals
the arithmetic.  A :class:`PlanCache` memoizes whatever a kernel needs
to skip per-call setup — an ``np.einsum_path`` result, a reshape
geometry for a BLAS-shaped rewrite, a precomputed constant — keyed by
``(op, shape, dtype)`` style tuples.

One cache lives per thread (= per SPMD rank), mirroring the
``repro.observe`` session pattern: ranks never contend on a lock, and
plans are rebuilt per rank at negligible cost.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable

import numpy as np

__all__ = ["PlanCache", "get_plan_cache"]


class PlanCache:
    """Memoize per-``(op, shape, dtype)`` kernel plans.

    ``get`` is the generic entry point; ``einsum`` is a convenience for
    subscripts-based contractions that caches the ``np.einsum_path``
    optimal order once and replays it on every subsequent call.
    """

    def __init__(self) -> None:
        self._plans: dict[Hashable, Any] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        try:
            plan = self._plans[key]
        except KeyError:
            self.misses += 1
            plan = self._plans[key] = builder()
        else:
            self.hits += 1
        return plan

    def einsum(self, subscripts: str, *operands: np.ndarray, out=None):
        """``np.einsum`` with a cached contraction path."""
        key = (
            "einsum",
            subscripts,
            tuple(op.shape for op in operands),
            tuple(op.dtype.char for op in operands),
        )
        path = self.get(
            key,
            lambda: np.einsum_path(subscripts, *operands, optimize="optimal")[0],
        )
        return np.einsum(subscripts, *operands, out=out, optimize=path)

    def clear(self) -> None:
        self._plans.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._plans)


_tls = threading.local()


def get_plan_cache() -> PlanCache:
    """The calling thread's (= rank's) plan cache."""
    cache = getattr(_tls, "cache", None)
    if cache is None:
        cache = _tls.cache = PlanCache()
    return cache
