"""Posthoc (offline) analysis over checkpoint series.

The traditional workflow the paper's in situ approach competes with:
dump, then analyze later.  Having it implemented makes the comparison
concrete — and it is what you reach for when a run already happened.

- :mod:`repro.posthoc.series` — discover and load ``.fld`` dump series
  (any rank count; reassembled to global fields),
- :mod:`repro.posthoc.stats` — temporal statistics (mean, RMS
  fluctuation) over a series,
- :mod:`repro.posthoc.movie` — offline rendering of a series into a
  PNG frame sequence through the same Catalyst pipeline the in situ
  path uses.
"""

from repro.posthoc.series import FldSeries
from repro.posthoc.stats import temporal_mean, temporal_rms
from repro.posthoc.movie import render_series

__all__ = ["FldSeries", "temporal_mean", "temporal_rms", "render_series"]
