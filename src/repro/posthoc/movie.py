"""Offline rendering: dump series -> PNG frame sequence.

Runs the same Catalyst pipeline the in situ path uses, but over data
read back from disk.  Rebuilding the mesh needs the case definition
(a .fld dump stores fields, not geometry — matching Nek, whose mesh
lives in a separate file).
"""

from __future__ import annotations

from pathlib import Path

from repro.catalyst.pipeline import RenderPipeline, RenderSpec
from repro.insitu.adaptor import NekDataAdaptor
from repro.nekrs.config import CaseDefinition
from repro.nekrs.solver import NekRSSolver
from repro.parallel import SerialCommunicator
from repro.posthoc.series import FldSeries
from repro.sensei.analyses.catalyst_adaptor import gather_uniform_volume
from repro.util.apng import ApngWriter
from repro.util.png import encode_png

_FIELD_TARGETS = (
    "velocity_x", "velocity_y", "velocity_z", "pressure", "temperature",
)


def render_series(
    series: FldSeries,
    case: CaseDefinition,
    output_dir,
    arrays: tuple[str, ...] = ("pressure",),
    specs: list[RenderSpec] | None = None,
    width: int = 512,
    height: int = 512,
    frame_delay_ms: int = 120,
) -> list[Path]:
    """Render every dump of `series`; returns the written frame paths.

    `case` must describe the mesh the series was written from (shape,
    extent, order) — mismatches are detected and rejected.
    """
    comm = SerialCommunicator()
    solver = NekRSSolver(case, comm)
    _, first_fields = series.load(series.steps[0])
    global_shape = next(iter(first_fields.values())).shape
    if global_shape != solver.mesh.field_shape():
        raise ValueError(
            f"case mesh {solver.mesh.field_shape()} does not match series "
            f"dumps {global_shape} (reassembled); pass the case the run used"
        )

    if specs is None:
        specs = [RenderSpec(kind="slice", array=arrays[0], axis="y")]
    pipeline = RenderPipeline(
        specs=specs, width=width, height=height, name=series.case
    )
    adaptor = NekDataAdaptor(solver)
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)

    frames: list[Path] = []
    # one self-playing animated PNG per output stream, built
    # incrementally from the once-encoded frame bytes — the series
    # never lives in memory twice
    writers: dict[str, ApngWriter] = {}
    for header, fields in series.iter_loaded():
        for name, arr in fields.items():
            target = {
                "velocity_x": solver.u, "velocity_y": solver.v,
                "velocity_z": solver.w, "pressure": solver.p,
                "temperature": solver.T,
            }.get(name)
            if target is not None:
                target[:] = arr
            elif name in solver.scalars:
                solver.scalars[name][:] = arr
        adaptor.release_data()
        adaptor.set_data_time_step(header.step)
        adaptor.set_data_time(header.time)
        image = gather_uniform_volume(comm, adaptor, "uniform", tuple(arrays))
        for name, frame in pipeline.render(image, header.step, header.time):
            data = encode_png(frame)
            path = output_dir / f"{name}_{header.step:06d}.png"
            path.write_bytes(data)
            frames.append(path)
            writer = writers.get(name)
            if writer is None:
                writer = writers[name] = ApngWriter(
                    output_dir / f"{name}.apng", delay_ms=frame_delay_ms
                )
            writer.add_encoded(data)

    for name, writer in writers.items():
        path = output_dir / f"{name}.apng"
        writer.close()
        if writer.frames > 1:
            frames.append(path)
        else:
            path.unlink()  # a single frame is not an animation
    return frames
