"""Discovery and loading of .fld dump series.

A "dump" is the set of per-rank files one checkpoint action wrote
(``<case>0.f<step>.r<rank>``); a *series* is all dumps under one
directory.  Loading reassembles each rank's element slab into global
fields using the same block partition the writing mesh used, so a
series written on any rank count reads back as one coherent field.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.nekrs.checkpoint import CheckpointHeader, read_checkpoint
from repro.parallel.partition import block_range

_NAME_RE = re.compile(r"^(?P<case>.+)0\.f(?P<step>\d{5})\.r(?P<rank>\d{4})$")


@dataclass(frozen=True)
class DumpInfo:
    step: int
    time: float
    size: int                       # rank count that wrote it
    paths: tuple[Path, ...]         # one per rank, ordered by rank
    field_names: tuple[str, ...]


class FldSeries:
    """All dumps of one case under a directory, ordered by step."""

    def __init__(self, case: str, dumps: list[DumpInfo]):
        self.case = case
        self.dumps = sorted(dumps, key=lambda d: d.step)

    @classmethod
    def discover(cls, directory, case: str | None = None) -> "FldSeries":
        directory = Path(directory)
        groups: dict[tuple[str, int], dict[int, Path]] = {}
        for path in directory.iterdir():
            m = _NAME_RE.match(path.name)
            if not m:
                continue
            if case is not None and m.group("case") != case:
                continue
            key = (m.group("case"), int(m.group("step")))
            groups.setdefault(key, {})[int(m.group("rank"))] = path
        if not groups:
            raise FileNotFoundError(
                f"no .fld dumps{f' for case {case!r}' if case else ''} "
                f"under {directory}"
            )
        cases = {c for c, _ in groups}
        if len(cases) > 1:
            raise ValueError(
                f"multiple cases in {directory}: {sorted(cases)}; pass case="
            )
        found_case = next(iter(cases))
        dumps = []
        for (c, step), by_rank in groups.items():
            header, _ = read_checkpoint(by_rank[0])
            ranks = sorted(by_rank)
            if ranks != list(range(header.size)):
                raise ValueError(
                    f"dump at step {step} is incomplete: have ranks {ranks}, "
                    f"expected 0..{header.size - 1}"
                )
            dumps.append(
                DumpInfo(
                    step=step,
                    time=header.time,
                    size=header.size,
                    paths=tuple(by_rank[r] for r in ranks),
                    field_names=header.field_names,
                )
            )
        return cls(found_case, dumps)

    @property
    def steps(self) -> list[int]:
        return [d.step for d in self.dumps]

    @property
    def field_names(self) -> tuple[str, ...]:
        return self.dumps[0].field_names

    def __len__(self) -> int:
        return len(self.dumps)

    def load(self, step: int) -> tuple[CheckpointHeader, dict[str, np.ndarray]]:
        """Load one dump, reassembled into global (E_total, ...) fields.

        Writers own contiguous element slabs (block partition of the
        lexicographic order), so global element index = slab offset +
        local index.
        """
        dump = next((d for d in self.dumps if d.step == step), None)
        if dump is None:
            raise KeyError(f"series has no dump at step {step}; have {self.steps}")
        headers = []
        pieces = []
        for path in dump.paths:
            header, fields = read_checkpoint(path)
            headers.append(header)
            pieces.append(fields)
        local_counts = [h.field_shape[0] for h in headers]
        total_e = sum(local_counts)
        nq = headers[0].field_shape[1]
        out: dict[str, np.ndarray] = {
            name: np.empty((total_e, nq, nq, nq)) for name in dump.field_names
        }
        for rank, (header, fields) in enumerate(zip(headers, pieces)):
            lo, hi = block_range(total_e, header.size, rank)
            if hi - lo != header.field_shape[0]:
                raise ValueError(
                    f"rank {rank} slab size mismatch in dump {step} "
                    "(was this written with a non-slab partition?)"
                )
            for name in dump.field_names:
                out[name][lo:hi] = fields[name]
        return headers[0], out

    def iter_loaded(self):
        """Yield (header, fields) for every dump in step order."""
        for dump in self.dumps:
            yield self.load(dump.step)
