"""Temporal statistics over dump series.

Classic turbulence post-processing: time-mean fields and RMS
fluctuations accumulated over the dumps of a series.  Single-pass
(Welford over fields), so arbitrarily long series stream through
constant memory.
"""

from __future__ import annotations

import numpy as np

from repro.posthoc.series import FldSeries


def _accumulate(series: FldSeries, array: str):
    count = 0
    mean = None
    m2 = None
    for _, fields in series.iter_loaded():
        if array not in fields:
            raise KeyError(
                f"series has no array {array!r}; have {series.field_names}"
            )
        value = fields[array]
        count += 1
        if mean is None:
            mean = value.copy()
            m2 = np.zeros_like(value)
        else:
            delta = value - mean
            mean += delta / count
            m2 += delta * (value - mean)
    return count, mean, m2


def temporal_mean(series: FldSeries, array: str) -> np.ndarray:
    """Time-average of one field over all dumps."""
    count, mean, _ = _accumulate(series, array)
    if count == 0:
        raise ValueError("empty series")
    return mean


def temporal_rms(series: FldSeries, array: str) -> np.ndarray:
    """RMS fluctuation about the time mean (population convention)."""
    count, _, m2 = _accumulate(series, array)
    if count == 0:
        raise ValueError("empty series")
    return np.sqrt(m2 / count)
