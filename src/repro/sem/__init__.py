"""Spectral element method (SEM) infrastructure.

This package is the numerical substrate under the NekRS-analog solver:
Gauss-Lobatto-Legendre quadrature and differentiation, tensor-product
operator application on hexahedral elements, structured hex meshes with
global (continuous-Galerkin) node numbering, the direct-stiffness
gather-scatter operation (the role gslib plays in Nek), discrete
operators (mass, stiffness, Helmholtz, gradient, divergence), and a
preconditioned conjugate-gradient solver whose inner products reduce
across ranks.

Field convention: a scalar field is an ndarray of shape
``(E, Nq, Nq, Nq)`` — E local elements, ``Nq = order + 1`` GLL nodes
per direction, indexed ``[e, k, j, i]`` with i fastest along x.
"""

from repro.sem.quadrature import gll_nodes_weights, lagrange_interpolation_matrix, derivative_matrix
from repro.sem.mesh import BoxMesh, BoundaryTag
from repro.sem.geometry import GeometricFactors
from repro.sem.gather_scatter import GatherScatter
from repro.sem.operators import SEMOperators
from repro.sem.krylov import cg_solve, CGResult
from repro.sem.tensor import apply_1d_x, apply_1d_y, apply_1d_z, local_grad

__all__ = [
    "gll_nodes_weights",
    "lagrange_interpolation_matrix",
    "derivative_matrix",
    "BoxMesh",
    "BoundaryTag",
    "GeometricFactors",
    "GatherScatter",
    "SEMOperators",
    "cg_solve",
    "CGResult",
    "apply_1d_x",
    "apply_1d_y",
    "apply_1d_z",
    "local_grad",
]
