"""Quadrature over-integration ("dealiasing") of the advection term.

Collocation evaluation of ``(u . grad) f`` multiplies two degree-N
polynomials and *interpolates* the degree-2N product back at the N+1
GLL nodes — the aliasing error that destabilizes marginally resolved
turbulence.  NekRS's standard fix (the 3/2 rule) evaluates the product
on a finer Gauss grid and L2-projects it back onto P_N.

Per direction, with J the (M x Nq) interpolation to M Gauss points and
W their weights, the projection back is

    P = (J^T W J)^{-1} J^T W        (an Nq x M matrix)

and the 3-D operators are tensor products of J and P.  ``J^T W J`` is
the 1-D mass matrix on the fine quadrature — symmetric positive
definite and tiny, so its inverse is precomputed once.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.sem.quadrature import (
    gauss_nodes_weights,
    gll_nodes_weights,
    lagrange_interpolation_matrix,
)
from repro.sem.tensor import apply_3d


@lru_cache(maxsize=32)
def _operators(order: int, fine_count: int) -> tuple[np.ndarray, np.ndarray]:
    """(J interp-to-fine, P project-back) for one direction."""
    gll, _ = gll_nodes_weights(order)
    fine, weights = gauss_nodes_weights(fine_count)
    J = lagrange_interpolation_matrix(gll, fine)            # (M, Nq)
    JtW = J.T * weights[None, :]                            # (Nq, M)
    mass = JtW @ J                                          # (Nq, Nq), SPD
    P = np.linalg.solve(mass, JtW)                          # (Nq, M)
    return J, P


def dealias_points(order: int) -> int:
    """The 3/2-rule fine-grid size for polynomial order N."""
    return int(np.ceil(3 * (order + 1) / 2))


def to_fine(field: np.ndarray, order: int, fine_count: int | None = None) -> np.ndarray:
    """Interpolate an (E, Nq, Nq, Nq) field to the fine Gauss grid."""
    m = fine_count or dealias_points(order)
    J, _ = _operators(order, m)
    return apply_3d(J, J, J, field)

def project_back(
    fine_field: np.ndarray, order: int, fine_count: int | None = None
) -> np.ndarray:
    """L2-project an (E, M, M, M) fine-grid field back onto P_N."""
    m = fine_count or dealias_points(order)
    _, P = _operators(order, m)
    return apply_3d(P, P, P, fine_field)


def dealiased_product(
    a: np.ndarray, b: np.ndarray, order: int, fine_count: int | None = None
) -> np.ndarray:
    """The L2 projection of the pointwise product a*b onto P_N.

    Exact (alias-free) whenever deg(a*b) <= 2*M - 1, which the 3/2
    rule guarantees for two degree-N factors.
    """
    m = fine_count or dealias_points(order)
    af = to_fine(a, order, m)
    bf = to_fine(b, order, m)
    return project_back(af * bf, order, m)
