"""Direct-stiffness summation (gather-scatter), the role of gslib in Nek.

Continuous Galerkin SEM stores coincident interface nodes redundantly
(once per touching element).  The gather-scatter operator ``QQ^T`` sums
every copy of a shared node and writes the sum back to all copies —
first among local elements, then across ranks.

Setup exchanges the ranks' global-id sets once to find the *interface
ids* (ids owned by more than one rank); afterwards each application
does one dense allreduce over the interface values.  At the in-process
scales we execute this is both simple and fast; the communication
volume it meters (interface count x 8 bytes per application) is what
the machine model replays at leadership scale.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.comm import Communicator, ReduceOp

from repro.perf import config


def interface_ids_reference(all_sets: list[np.ndarray]) -> np.ndarray:
    """Original O(total-ids) Python-dict discovery, kept for the gate."""
    counts: dict[int, int] = {}
    for ids in all_sets:
        for gid in ids:
            counts[int(gid)] = counts.get(int(gid), 0) + 1
    shared = sorted(gid for gid, c in counts.items() if c > 1)
    return np.array(shared, dtype=np.int64)


def find_interface_ids(all_sets: list[np.ndarray]) -> np.ndarray:
    """Ids appearing in more than one rank's (already-unique) id set."""
    if not config.enabled():
        return interface_ids_reference(all_sets)
    # each per-rank set is unique, so an id's total count across the
    # concatenation equals the number of ranks holding it
    uniq, counts = np.unique(np.concatenate(all_sets), return_counts=True)
    return np.ascontiguousarray(uniq[counts > 1], dtype=np.int64)


class GatherScatter:
    """QQ^T over a distributed global numbering.

    Parameters
    ----------
    global_ids:
        int64 array, any shape, giving the global id of every local
        node; coincident nodes share an id.
    comm:
        communicator across which ids may be shared.
    """

    def __init__(self, global_ids: np.ndarray, comm: Communicator):
        self.comm = comm
        self.shape = global_ids.shape
        flat = np.ascontiguousarray(global_ids, dtype=np.int64).ravel()
        self.local_unique, self.inverse = np.unique(flat, return_inverse=True)
        self.num_local_unique = len(self.local_unique)

        # Find ids shared with other ranks (interface ids).
        all_sets = comm.allgather(self.local_unique)
        if comm.size == 1:
            self.interface_ids = np.empty(0, dtype=np.int64)
        else:
            self.interface_ids = find_interface_ids(all_sets)
        # positions of my unique ids inside the interface vector
        mine_mask = np.isin(self.local_unique, self.interface_ids, assume_unique=True)
        self.my_interface_local = np.nonzero(mine_mask)[0]
        self.my_interface_global = np.searchsorted(
            self.interface_ids, self.local_unique[self.my_interface_local]
        )
        self._multiplicity: np.ndarray | None = None
        self._inv_multiplicity: np.ndarray | None = None

    # -- core --------------------------------------------------------------
    def __call__(self, field: np.ndarray) -> np.ndarray:
        """Return QQ^T field (sum over all copies of each node)."""
        if field.shape != self.shape:
            raise ValueError(
                f"field shape {field.shape} does not match numbering {self.shape}"
            )
        summed = np.bincount(
            self.inverse, weights=field.ravel(), minlength=self.num_local_unique
        )
        if self.comm.size > 1 and len(self.interface_ids):
            iface = np.zeros(len(self.interface_ids))
            iface[self.my_interface_global] = summed[self.my_interface_local]
            iface = self.comm.allreduce_array(iface, ReduceOp.SUM)
            summed[self.my_interface_local] = iface[self.my_interface_global]
        return summed[self.inverse].reshape(self.shape)

    @property
    def multiplicity(self) -> np.ndarray:
        """Number of copies of each node (gs applied to ones)."""
        if self._multiplicity is None:
            self._multiplicity = self(np.ones(self.shape))
        return self._multiplicity

    def average(self, field: np.ndarray) -> np.ndarray:
        """Make a redundant field single-valued by averaging copies."""
        return self(field) / self.multiplicity

    @property
    def inv_multiplicity(self) -> np.ndarray:
        if self._inv_multiplicity is None:
            self._inv_multiplicity = 1.0 / self.multiplicity
        return self._inv_multiplicity

    def assembled_norm_sq(self, field: np.ndarray) -> float:
        """Sum of squares over *assembled* (deduplicated) nodes, global.

        Weighs each redundant copy by 1/multiplicity so every global
        node counts exactly once, then reduces across ranks.
        """
        local = float((field * field * self.inv_multiplicity).sum())
        return float(self.comm.allreduce(local, ReduceOp.SUM))
