"""Geometric factors for SEM operators.

For each element the mapping from the reference cube [-1,1]^3 to
physical space yields the Jacobian J and the metric derivatives
(dr/dx, ds/dy, dt/dz).  BoxMesh elements are axis-aligned, so the
metric tensor is diagonal and constant per element — but the factors
are stored as full per-quad-point arrays, which is the layout general
curvilinear SEM uses, so the operator code is geometry-agnostic.

Stored arrays (all shaped like fields, ``(E, Nq, Nq, Nq)``):

``mass``
    w3d * J — the diagonal lumped mass matrix ("B" in Nek).
``grr, gss, gtt``
    w3d * J * (dr/dx)^2 etc. — diagonal stiffness factors ("G").
``rx, sy, tz``
    metric derivatives for chain-rule physical gradients.
"""

from __future__ import annotations

import numpy as np

from repro.sem.mesh import BoxMesh


class GeometricFactors:
    def __init__(self, mesh: BoxMesh):
        self.mesh = mesh
        nq = mesh.nq
        w = mesh.weights_1d
        w3d = w[None, :, None, None] * w[None, None, :, None] * w[None, None, None, :]

        hx, hy, hz = mesh.elem_sizes
        jac = (hx / 2.0) * (hy / 2.0) * (hz / 2.0)
        shape = mesh.field_shape()

        self.jacobian = np.full(shape, jac)
        self.mass = np.broadcast_to(w3d * jac, shape).copy()

        rx, sy, tz = 2.0 / hx, 2.0 / hy, 2.0 / hz
        self.rx = np.full(shape, rx)
        self.sy = np.full(shape, sy)
        self.tz = np.full(shape, tz)

        self.grr = self.mass * rx * rx
        self.gss = self.mass * sy * sy
        self.gtt = self.mass * tz * tz

    @property
    def total_volume_local(self) -> float:
        """Sum of quadrature weights = volume of the local elements."""
        return float(self.mass.sum())
