"""Spectral resampling of SEM fields onto uniform grids.

Rendering and image-data analyses want regularly sampled data; because
the SEM solution is polynomial inside each element, resampling is exact
spectral interpolation: one small dense matrix per direction maps the
Nq GLL values to `s` uniform samples.  Each element becomes an
``s x s x s`` block of the global uniform grid.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.sem.mesh import BoxMesh
from repro.sem.quadrature import (
    gll_nodes_weights,
    lagrange_interpolation_matrix,
    uniform_nodes,
)
from repro.sem.tensor import apply_3d


@lru_cache(maxsize=64)
def _resample_matrix(order: int, samples: int) -> np.ndarray:
    nodes, _ = gll_nodes_weights(order)
    targets = uniform_nodes(samples, include_ends=False)
    return lagrange_interpolation_matrix(nodes, targets)


def resample_field(mesh: BoxMesh, field: np.ndarray, samples: int) -> np.ndarray:
    """Interpolate a field to `samples`^3 uniform points per element.

    Returns shape ``(E_local, samples, samples, samples)`` with the
    same [e, k, j, i] axis convention as SEM fields.
    """
    if field.shape != mesh.field_shape():
        raise ValueError(
            f"field shape {field.shape} does not match mesh {mesh.field_shape()}"
        )
    J = _resample_matrix(mesh.order, samples)
    return apply_3d(J, J, J, field)


def grid_dims(mesh: BoxMesh, samples: int) -> tuple[int, int, int]:
    """Global uniform-grid dimensions (nx, ny, nz)."""
    ex, ey, ez = mesh.shape
    return (ex * samples, ey * samples, ez * samples)


def grid_spacing(mesh: BoxMesh, samples: int) -> tuple[float, float, float]:
    hx, hy, hz = mesh.elem_sizes
    return (hx / samples, hy / samples, hz / samples)


def local_blocks(
    mesh: BoxMesh, field: np.ndarray, samples: int
) -> list[tuple[tuple[int, int, int], np.ndarray]]:
    """Resample and return [(block_offset_xyz, block_zyx_array), ...].

    `block_offset_xyz` is the (ix, iy, iz) cell offset of the block in
    the global grid; the block array is indexed [k, j, i] (z slowest).
    """
    res = resample_field(mesh, field, samples)
    out = []
    for e in range(mesh.num_elements):
        ex, ey, ez = mesh.elem_lattice[e]
        out.append(((int(ex) * samples, int(ey) * samples, int(ez) * samples), res[e]))
    return out


def assemble_global_grid(
    mesh: BoxMesh,
    blocks: list[tuple[tuple[int, int, int], np.ndarray]],
    samples: int,
    fill: float = 0.0,
) -> np.ndarray:
    """Place blocks (possibly gathered from all ranks) into the global
    uniform grid, indexed [k, j, i] (shape nz, ny, nx)."""
    nx, ny, nz = grid_dims(mesh, samples)
    grid = np.full((nz, ny, nx), fill)
    for (ox, oy, oz), block in blocks:
        s = block.shape[0]
        grid[oz : oz + s, oy : oy + s, ox : ox + s] = block
    return grid
