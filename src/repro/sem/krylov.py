"""Preconditioned conjugate gradients with rank-reduced inner products.

This is the workhorse linear solver of the NekRS analog: the pressure
Poisson and velocity/temperature Helmholtz systems are SPD after
assembly + masking, so Jacobi-preconditioned CG converges without
drama.  Inner products use the assembled dot product (every global dof
counted once) and reduce across ranks through the communicator, which
is exactly where NekRS spends its allreduce traffic.

The default path borrows its vectors (r, z, p and one temporary) from
the per-rank workspace arena and updates them in place, so an
iteration allocates nothing beyond whatever ``apply_op`` returns.
Every in-place update keeps the reference path's elementwise operand
order, so the iterates are bit-for-bit identical to
:func:`cg_solve_reference` (kept for the equivalence tests and the
bench gate, and selected by ``repro.perf.naive_mode``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.perf import config
from repro.perf.arena import get_arena


@dataclass
class CGResult:
    x: np.ndarray
    iterations: int
    residual: float
    initial_residual: float
    converged: bool

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CGResult(iters={self.iterations}, res={self.residual:.3e}, "
            f"converged={self.converged})"
        )


def cg_solve_reference(
    apply_op: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    dot: Callable[[np.ndarray, np.ndarray], float],
    precond: np.ndarray | None = None,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iterations: int = 500,
    project_nullspace: Callable[[np.ndarray], np.ndarray] | None = None,
) -> CGResult:
    """Original allocating PCG, kept as the gate/equivalence reference."""
    x = np.zeros_like(b) if x0 is None else x0.copy()
    if project_nullspace is not None:
        x = project_nullspace(x)

    r = b - apply_op(x) if x0 is not None else b.copy()
    if project_nullspace is not None:
        r = project_nullspace(r)

    z = r * precond if precond is not None else r
    rz = dot(r, z)
    r0 = float(np.sqrt(max(dot(r, r), 0.0)))
    if r0 == 0.0:
        return CGResult(x, 0, 0.0, 0.0, True)
    target = tol * r0

    p = z.copy()
    res = r0
    for it in range(1, max_iterations + 1):
        Ap = apply_op(p)
        pAp = dot(p, Ap)
        if pAp <= 0:
            # operator lost positive-definiteness (masking error or
            # roundoff on a tiny system) -- bail out with best iterate
            return CGResult(x, it - 1, res, r0, False)
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        if project_nullspace is not None:
            r = project_nullspace(r)
        res = float(np.sqrt(max(dot(r, r), 0.0)))
        if res <= target:
            if project_nullspace is not None:
                x = project_nullspace(x)
            return CGResult(x, it, res, r0, True)
        z = r * precond if precond is not None else r
        rz_new = dot(r, z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p

    if project_nullspace is not None:
        x = project_nullspace(x)
    return CGResult(x, max_iterations, res, r0, False)


def cg_solve(
    apply_op: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    dot: Callable[[np.ndarray, np.ndarray], float],
    precond: np.ndarray | None = None,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iterations: int = 500,
    project_nullspace: Callable[[np.ndarray], np.ndarray] | None = None,
) -> CGResult:
    """Solve ``A x = b`` by PCG.

    Parameters
    ----------
    apply_op:
        applies the assembled, masked SPD operator.
    b:
        right-hand side, already assembled and masked.
    dot:
        global inner product (reduces over ranks).
    precond:
        diagonal preconditioner (elementwise inverse already applied,
        i.e. this array multiplies the residual); None = identity.
    project_nullspace:
        optional projector applied to iterates/residuals (used to pin
        the pressure mean for the all-Neumann Poisson problem).
    tol:
        relative tolerance on the preconditioned residual norm.
    """
    if not config.enabled():
        return cg_solve_reference(
            apply_op, b, dot, precond=precond, x0=x0, tol=tol,
            max_iterations=max_iterations, project_nullspace=project_nullspace,
        )

    arena = get_arena()
    # x escapes in the result, so it is a real allocation; the working
    # vectors are borrowed and released on every exit path.
    x = np.zeros_like(b) if x0 is None else x0.copy()
    if project_nullspace is not None:
        x = project_nullspace(x)

    r = arena.borrow(b.shape, b.dtype)
    p = arena.borrow(b.shape, b.dtype)
    tmp = arena.borrow(b.shape, b.dtype)
    borrowed = [r, p, tmp]
    if precond is not None:
        z = arena.borrow(b.shape, b.dtype)
        borrowed.append(z)
    else:
        z = r  # the reference path aliases z = r too
    try:
        if x0 is not None:
            np.subtract(b, apply_op(x), out=r)
        else:
            np.copyto(r, b)
        if project_nullspace is not None:
            np.copyto(r, project_nullspace(r))

        if precond is not None:
            np.multiply(r, precond, out=z)
        rz = dot(r, z)
        r0 = float(np.sqrt(max(dot(r, r), 0.0)))
        if r0 == 0.0:
            return CGResult(x, 0, 0.0, 0.0, True)
        target = tol * r0

        np.copyto(p, z)
        res = r0
        for it in range(1, max_iterations + 1):
            Ap = apply_op(p)
            pAp = dot(p, Ap)
            if pAp <= 0:
                return CGResult(x, it - 1, res, r0, False)
            alpha = rz / pAp
            np.multiply(p, alpha, out=tmp)
            x += tmp
            np.multiply(Ap, alpha, out=tmp)
            r -= tmp
            if project_nullspace is not None:
                np.copyto(r, project_nullspace(r))
            res = float(np.sqrt(max(dot(r, r), 0.0)))
            if res <= target:
                if project_nullspace is not None:
                    x = project_nullspace(x)
                return CGResult(x, it, res, r0, True)
            if precond is not None:
                np.multiply(r, precond, out=z)
            rz_new = dot(r, z)
            beta = rz_new / rz
            rz = rz_new
            # p = z + beta * p, reusing p's storage (float add commutes
            # bitwise, so this matches the reference exactly)
            p *= beta
            p += z
        if project_nullspace is not None:
            x = project_nullspace(x)
        return CGResult(x, max_iterations, res, r0, False)
    finally:
        arena.release(*borrowed)
