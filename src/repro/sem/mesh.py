"""Structured hexahedral spectral-element meshes.

``BoxMesh`` tiles a rectangular box with ``Ex x Ey x Ez`` axis-aligned
hexahedral elements of polynomial order N and distributes contiguous
slabs of elements across the ranks of a communicator.  It provides:

- GLL node physical coordinates per local element,
- a *global continuous numbering* of GLL nodes (the input to
  gather-scatter; coincident nodes on element interfaces share an id,
  with optional periodic wrap per direction),
- boundary-face node masks tagged XMIN..ZMAX for boundary conditions.

Element order is lexicographic with x fastest; the rank partition is a
block partition of that linear order, matching how Nek distributes
elements in slabs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.parallel.partition import block_range
from repro.sem.quadrature import gll_nodes_weights


class BoundaryTag(enum.Enum):
    """Domain boundary faces of the box."""

    XMIN = "xmin"
    XMAX = "xmax"
    YMIN = "ymin"
    YMAX = "ymax"
    ZMIN = "zmin"
    ZMAX = "zmax"


@dataclass(frozen=True)
class BoxExtent:
    lo: tuple[float, float, float]
    hi: tuple[float, float, float]

    def __post_init__(self):
        for a, b in zip(self.lo, self.hi):
            if not b > a:
                raise ValueError(f"degenerate box extent: {self.lo} .. {self.hi}")

    @property
    def lengths(self) -> tuple[float, float, float]:
        return tuple(b - a for a, b in zip(self.lo, self.hi))


class BoxMesh:
    """A distributed box mesh of spectral elements (see module doc)."""

    def __init__(
        self,
        shape: tuple[int, int, int],
        extent: BoxExtent | tuple = ((0.0, 0.0, 0.0), (1.0, 1.0, 1.0)),
        order: int = 5,
        periodic: tuple[bool, bool, bool] = (False, False, False),
        rank: int = 0,
        size: int = 1,
        partition: str = "slab",
    ):
        if not isinstance(extent, BoxExtent):
            extent = BoxExtent(tuple(extent[0]), tuple(extent[1]))
        ex, ey, ez = shape
        if min(ex, ey, ez) < 1:
            raise ValueError(f"element shape must be positive, got {shape}")
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        for d in range(3):
            if periodic[d] and shape[d] < 2:
                raise ValueError(
                    "periodic directions need >= 2 elements so an element "
                    "does not neighbor itself"
                )
        self.shape = (ex, ey, ez)
        self.extent = extent
        self.order = order
        self.nq = order + 1
        self.periodic = tuple(periodic)
        self.rank = rank
        self.size = size
        self.num_global_elements = ex * ey * ez

        if partition == "slab":
            lo, hi = block_range(self.num_global_elements, size, rank)
            self.elem_ids = np.arange(lo, hi, dtype=np.int64)
        elif partition == "morton":
            from repro.parallel.partition import morton_partition

            self.elem_ids = morton_partition(self.shape, size)[rank]
        else:
            raise ValueError(
                f"unknown partition {partition!r}; expected slab|morton"
            )
        self.partition = partition
        self.num_elements = len(self.elem_ids)

        # Element lattice coordinates (x fastest).
        eix = self.elem_ids % ex
        eiy = (self.elem_ids // ex) % ey
        eiz = self.elem_ids // (ex * ey)
        self.elem_lattice = np.stack([eix, eiy, eiz], axis=1)

        lengths = extent.lengths
        self.elem_sizes = np.array(
            [lengths[0] / ex, lengths[1] / ey, lengths[2] / ez]
        )
        self.elem_origins = (
            np.asarray(extent.lo)[None, :] + self.elem_lattice * self.elem_sizes[None, :]
        )

        # GLL coordinates of local nodes, fields shaped (E, Nq, Nq, Nq).
        ref, self.weights_1d = gll_nodes_weights(order)
        half = self.elem_sizes / 2.0
        # per-direction node offsets within an element
        offx = half[0] * (ref + 1.0)
        offy = half[1] * (ref + 1.0)
        offz = half[2] * (ref + 1.0)
        E, nq = self.num_elements, self.nq
        self.x = np.broadcast_to(
            self.elem_origins[:, 0, None, None, None] + offx[None, None, None, :],
            (E, nq, nq, nq),
        ).copy()
        self.y = np.broadcast_to(
            self.elem_origins[:, 1, None, None, None] + offy[None, None, :, None],
            (E, nq, nq, nq),
        ).copy()
        self.z = np.broadcast_to(
            self.elem_origins[:, 2, None, None, None] + offz[None, :, None, None],
            (E, nq, nq, nq),
        ).copy()

        self.global_ids = self._build_global_ids()
        self._boundary_cache: dict[BoundaryTag, np.ndarray] = {}

    # -- numbering -------------------------------------------------------
    def _lattice_extent(self) -> tuple[int, int, int]:
        """Global GLL lattice size per direction (periodic dirs wrap)."""
        n = self.order
        return tuple(
            self.shape[d] * n + (0 if self.periodic[d] else 1) for d in range(3)
        )

    def _build_global_ids(self) -> np.ndarray:
        n = self.order
        nq = self.nq
        nx, ny, nz = self._lattice_extent()
        i = np.arange(nq)
        gx = (self.elem_lattice[:, 0, None] * n + i[None, :]) % nx   # (E, nq)
        gy = (self.elem_lattice[:, 1, None] * n + i[None, :]) % ny
        gz = (self.elem_lattice[:, 2, None] * n + i[None, :]) % nz
        ids = (
            gz[:, :, None, None].astype(np.int64) * (ny * nx)
            + gy[:, None, :, None] * nx
            + gx[:, None, None, :]
        )
        return ids

    @property
    def num_global_nodes(self) -> int:
        nx, ny, nz = self._lattice_extent()
        return nx * ny * nz

    # -- fields ------------------------------------------------------------
    def field_shape(self) -> tuple[int, int, int, int]:
        return (self.num_elements, self.nq, self.nq, self.nq)

    def zero_field(self) -> np.ndarray:
        return np.zeros(self.field_shape())

    def coords(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self.x, self.y, self.z

    # -- boundaries ----------------------------------------------------------
    _TAG_INFO = {
        BoundaryTag.XMIN: (0, 0),
        BoundaryTag.XMAX: (0, 1),
        BoundaryTag.YMIN: (1, 0),
        BoundaryTag.YMAX: (1, 1),
        BoundaryTag.ZMIN: (2, 0),
        BoundaryTag.ZMAX: (2, 1),
    }

    def boundary_nodes(self, tag: BoundaryTag) -> np.ndarray:
        """Boolean field marking local GLL nodes on a domain boundary.

        Periodic directions have no boundary: returns all-False.
        """
        cached = self._boundary_cache.get(tag)
        if cached is not None:
            return cached
        axis, side = self._TAG_INFO[tag]
        mask = np.zeros(self.field_shape(), dtype=bool)
        if not self.periodic[axis]:
            extreme = self.shape[axis] - 1 if side else 0
            on_elems = self.elem_lattice[:, axis] == extreme
            node_idx = self.order if side else 0
            # axis 0 = x -> last field axis; axis 2 = z -> first field axis
            field_axis = 3 - axis
            indexer: list = [on_elems, slice(None), slice(None), slice(None)]
            indexer[field_axis] = node_idx
            mask[tuple(indexer)] = True
        self._boundary_cache[tag] = mask
        return mask

    def boundary_union(self, tags) -> np.ndarray:
        """Union of boundary node masks over several tags."""
        out = np.zeros(self.field_shape(), dtype=bool)
        for tag in tags:
            out |= self.boundary_nodes(tag)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<BoxMesh {self.shape} order={self.order} "
            f"rank={self.rank}/{self.size} E_local={self.num_elements}>"
        )
