"""Discrete SEM operators: mass, stiffness, Helmholtz, gradient, divergence.

All operators act on fields shaped ``(E, Nq, Nq, Nq)`` and are *local*
(unassembled): solvers compose them with gather-scatter and boundary
masks.  The weak Laplacian follows the standard factored form

    A f = D_r^T (G_rr D_r f) + D_s^T (G_ss D_s f) + D_t^T (G_tt D_t f)

with the geometric factors of :class:`repro.sem.geometry.GeometricFactors`
(diagonal metric — axis-aligned elements).
"""

from __future__ import annotations

import numpy as np

from repro.parallel.comm import Communicator, ReduceOp
from repro.sem.geometry import GeometricFactors
from repro.sem.gather_scatter import GatherScatter
from repro.sem.mesh import BoxMesh
from repro.sem.quadrature import derivative_matrix
from repro.sem.tensor import (
    apply_1d_x,
    apply_1d_y,
    apply_1d_z,
    local_grad,
    local_grad_transpose,
)


class SEMOperators:
    """Operator bundle for one mesh + communicator."""

    def __init__(self, mesh: BoxMesh, comm: Communicator):
        self.mesh = mesh
        self.comm = comm
        self.geom = GeometricFactors(mesh)
        self.D = derivative_matrix(mesh.order)
        self.gs = GatherScatter(mesh.global_ids, comm)
        self._volume: float | None = None
        self._ndofs: float | None = None

    # -- inner products ----------------------------------------------------
    def dot(self, u: np.ndarray, v: np.ndarray) -> float:
        """Global assembled l2 inner product (each global dof once)."""
        local = float((u * v * self.gs.inv_multiplicity).sum())
        return float(self.comm.allreduce(local, ReduceOp.SUM))

    def norm(self, u: np.ndarray) -> float:
        return float(np.sqrt(max(self.dot(u, u), 0.0)))

    def integrate(self, u: np.ndarray) -> float:
        """Global integral of u over the domain (mass-weighted sum).

        The mass factors are per-element quadrature weights, so summing
        over all local nodes integrates each element exactly once; no
        multiplicity correction applies (unlike :meth:`dot`).
        """
        local = float((self.geom.mass * u).sum())
        return float(self.comm.allreduce(local, ReduceOp.SUM))

    @property
    def volume(self) -> float:
        if self._volume is None:
            self._volume = self.integrate(np.ones(self.mesh.field_shape()))
        return self._volume

    def mean(self, u: np.ndarray) -> float:
        return self.integrate(u) / self.volume

    def project_out_mean(self, u: np.ndarray) -> np.ndarray:
        """Remove the volume (mass-weighted) average.

        Use for *reporting* fields defined up to a constant.  Inside CG
        on the singular all-Neumann system use
        :meth:`project_out_nullspace` instead: the algebraic null
        vector of the assembled operator is the constant DOF vector,
        whose orthogonal complement is defined by the *unweighted*
        assembled dot product, not the L2(Omega) one — projecting with
        the wrong mean leaves an inconsistent residual component that
        compounds and diverges the iteration.
        """
        return u - self.mean(u)

    @property
    def num_global_dofs(self) -> float:
        """Number of assembled (deduplicated) DOFs across all ranks."""
        if self._ndofs is None:
            ones = np.ones(self.mesh.field_shape())
            self._ndofs = self.dot(ones, ones)
        return self._ndofs

    def project_out_nullspace(self, u: np.ndarray) -> np.ndarray:
        """Remove the algebraic constant mode (assembled-dot mean)."""
        ones = np.ones(self.mesh.field_shape())
        return u - self.dot(u, ones) / self.num_global_dofs

    # -- local operators -----------------------------------------------------
    def mass_apply(self, f: np.ndarray) -> np.ndarray:
        """B f (diagonal lumped mass, unassembled)."""
        return self.geom.mass * f

    def stiffness_apply(self, f: np.ndarray) -> np.ndarray:
        """Weak Laplacian A f (unassembled)."""
        fr, fs, ft = local_grad(self.D, f)
        return local_grad_transpose(
            self.D, self.geom.grr * fr, self.geom.gss * fs, self.geom.gtt * ft
        )

    def helmholtz_apply(self, f: np.ndarray, h1: float, h0) -> np.ndarray:
        """(h1 A + h0 B) f; h0 may be a scalar or a per-node field
        (spatially varying reaction term, e.g. Brinkman penalty)."""
        out = self.stiffness_apply(f)
        if h1 != 1.0:
            out *= h1
        out += (h0 * self.geom.mass) * f
        return out

    def stiffness_diagonal(self, h1: float = 1.0, h0=0.0) -> np.ndarray:
        """Diagonal of the *assembled* Helmholtz operator (for Jacobi).

        diag(D_r^T G D_r) at node (k,j,i) is sum_m D[m,i]^2 G[e,k,j,m]
        (and permutations), then gather-scattered.
        """
        D2 = self.D * self.D
        diag = np.einsum("mi,ekjm->ekji", D2, self.geom.grr, optimize=True)
        diag += np.einsum("mj,ekmi->ekji", D2, self.geom.gss, optimize=True)
        diag += np.einsum("mk,emji->ekji", D2, self.geom.gtt, optimize=True)
        diag *= h1
        diag += h0 * self.geom.mass
        return self.gs(diag)

    # -- differential operators (collocation / strong form) -------------------
    def grad(self, f: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pointwise physical gradient (unassembled; chain rule)."""
        fr, fs, ft = local_grad(self.D, f)
        return self.geom.rx * fr, self.geom.sy * fs, self.geom.tz * ft

    def div(self, u: np.ndarray, v: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Pointwise divergence du/dx + dv/dy + dw/dz."""
        out = self.geom.rx * apply_1d_x(self.D, u)
        out += self.geom.sy * apply_1d_y(self.D, v)
        out += self.geom.tz * apply_1d_z(self.D, w)
        return out

    def convect(self, f: np.ndarray, u: np.ndarray, v: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Convective derivative (u . grad) f, pointwise (collocation)."""
        fx, fy, fz = self.grad(f)
        return u * fx + v * fy + w * fz

    def convect_dealiased(
        self, f: np.ndarray, u: np.ndarray, v: np.ndarray, w: np.ndarray
    ) -> np.ndarray:
        """(u . grad) f with quadrature over-integration (3/2 rule).

        Gradients are computed spectrally at the GLL nodes (exact),
        then the velocity-gradient products are evaluated on the finer
        Gauss grid and L2-projected back — removing the aliasing error
        of the collocation product.
        """
        from repro.sem.dealias import dealias_points, project_back, to_fine

        order = self.mesh.order
        m = dealias_points(order)
        fx, fy, fz = self.grad(f)
        out_fine = to_fine(u, order, m) * to_fine(fx, order, m)
        out_fine += to_fine(v, order, m) * to_fine(fy, order, m)
        out_fine += to_fine(w, order, m) * to_fine(fz, order, m)
        return project_back(out_fine, order, m)

    # -- assembly helpers ----------------------------------------------------
    def assemble(self, f: np.ndarray) -> np.ndarray:
        """QQ^T f (direct-stiffness sum)."""
        return self.gs(f)

    def continuize(self, f: np.ndarray) -> np.ndarray:
        """Average redundant copies so the field is single-valued."""
        return self.gs.average(f)
