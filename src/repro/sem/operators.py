"""Discrete SEM operators: mass, stiffness, Helmholtz, gradient, divergence.

All operators act on fields shaped ``(E, Nq, Nq, Nq)`` and are *local*
(unassembled): solvers compose them with gather-scatter and boundary
masks.  The weak Laplacian follows the standard factored form

    A f = D_r^T (G_rr D_r f) + D_s^T (G_ss D_s f) + D_t^T (G_tt D_t f)

with the geometric factors of :class:`repro.sem.geometry.GeometricFactors`
(diagonal metric — axis-aligned elements).

Every operator accepts an optional ``out=`` buffer and draws its
internal temporaries from the per-rank workspace arena, so solver hot
loops run allocation-free; ``repro.perf.naive_mode`` restores the
original allocating expressions (operand order is preserved, so the
two paths agree bitwise wherever no contraction is re-associated).
"""

from __future__ import annotations

import numpy as np

from repro.parallel.comm import Communicator, ReduceOp
from repro.perf import config
from repro.perf.arena import get_arena
from repro.perf.plans import get_plan_cache
from repro.sem.geometry import GeometricFactors
from repro.sem.gather_scatter import GatherScatter
from repro.sem.mesh import BoxMesh
from repro.sem.quadrature import derivative_matrix
from repro.sem.tensor import (
    apply_1d_x,
    apply_1d_y,
    apply_1d_z,
    local_grad,
    local_grad_transpose,
)


def _into(result: np.ndarray, out: np.ndarray | None) -> np.ndarray:
    if out is None:
        return result
    out[...] = result
    return out


class SEMOperators:
    """Operator bundle for one mesh + communicator."""

    def __init__(self, mesh: BoxMesh, comm: Communicator):
        self.mesh = mesh
        self.comm = comm
        self.geom = GeometricFactors(mesh)
        self.D = derivative_matrix(mesh.order)
        self.gs = GatherScatter(mesh.global_ids, comm)
        self._volume: float | None = None
        self._ndofs: float | None = None
        self._ones: np.ndarray | None = None
        # persistent reduction buffers keyed by (shape, dtype): the
        # inner products run every CG iteration, where even an arena
        # borrow/release pair is measurable overhead
        self._reduce_tmps: dict[tuple, np.ndarray] = {}

    @property
    def _ones_field(self) -> np.ndarray:
        """Cached constant-1 field (treat as read-only)."""
        if self._ones is None:
            self._ones = np.ones(self.mesh.field_shape())
        return self._ones

    # -- inner products ----------------------------------------------------
    def dot(self, u: np.ndarray, v: np.ndarray) -> float:
        """Global assembled l2 inner product (each global dof once)."""
        if not config.enabled():
            local = float((u * v * self.gs.inv_multiplicity).sum())
        else:
            # same elementwise products and pairwise sum as the naive
            # expression, so the two paths agree bitwise
            tmp = self._reduce_tmp(u.shape, u.dtype)
            np.multiply(u, v, out=tmp)
            tmp *= self.gs.inv_multiplicity
            local = float(tmp.sum())
        return float(self.comm.allreduce(local, ReduceOp.SUM))

    def _reduce_tmp(self, shape, dtype) -> np.ndarray:
        tmp = self._reduce_tmps.get((shape, dtype))
        if tmp is None:
            tmp = self._reduce_tmps[(shape, dtype)] = np.empty(shape, dtype)
        return tmp

    def norm(self, u: np.ndarray) -> float:
        return float(np.sqrt(max(self.dot(u, u), 0.0)))

    def integrate(self, u: np.ndarray) -> float:
        """Global integral of u over the domain (mass-weighted sum).

        The mass factors are per-element quadrature weights, so summing
        over all local nodes integrates each element exactly once; no
        multiplicity correction applies (unlike :meth:`dot`).
        """
        if not config.enabled():
            local = float((self.geom.mass * u).sum())
        else:
            tmp = self._reduce_tmp(u.shape, u.dtype)
            np.multiply(self.geom.mass, u, out=tmp)
            local = float(tmp.sum())
        return float(self.comm.allreduce(local, ReduceOp.SUM))

    @property
    def volume(self) -> float:
        if self._volume is None:
            self._volume = self.integrate(self._ones_field)
        return self._volume

    def mean(self, u: np.ndarray) -> float:
        return self.integrate(u) / self.volume

    def project_out_mean(self, u: np.ndarray) -> np.ndarray:
        """Remove the volume (mass-weighted) average.

        Use for *reporting* fields defined up to a constant.  Inside CG
        on the singular all-Neumann system use
        :meth:`project_out_nullspace` instead: the algebraic null
        vector of the assembled operator is the constant DOF vector,
        whose orthogonal complement is defined by the *unweighted*
        assembled dot product, not the L2(Omega) one — projecting with
        the wrong mean leaves an inconsistent residual component that
        compounds and diverges the iteration.
        """
        return u - self.mean(u)

    @property
    def num_global_dofs(self) -> float:
        """Number of assembled (deduplicated) DOFs across all ranks."""
        if self._ndofs is None:
            ones = self._ones_field
            self._ndofs = self.dot(ones, ones)
        return self._ndofs

    def project_out_nullspace(self, u: np.ndarray) -> np.ndarray:
        """Remove the algebraic constant mode (assembled-dot mean)."""
        return u - self.dot(u, self._ones_field) / self.num_global_dofs

    # -- local operators -----------------------------------------------------
    def mass_apply(self, f: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """B f (diagonal lumped mass, unassembled)."""
        if not config.enabled():
            return _into(self.geom.mass * f, out)
        if out is None:
            return self.geom.mass * f
        return np.multiply(self.geom.mass, f, out=out)

    def stiffness_apply(self, f: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Weak Laplacian A f (unassembled)."""
        if not config.enabled():
            fr, fs, ft = local_grad(self.D, f)
            return _into(
                local_grad_transpose(
                    self.D,
                    self.geom.grr * fr, self.geom.gss * fs, self.geom.gtt * ft,
                ),
                out,
            )
        with get_arena().scratch(f.shape, f.dtype, n=3) as (fr, fs, ft):
            local_grad(self.D, f, out=(fr, fs, ft))
            fr *= self.geom.grr
            fs *= self.geom.gss
            ft *= self.geom.gtt
            return local_grad_transpose(self.D, fr, fs, ft, out=out)

    def helmholtz_apply(self, f: np.ndarray, h1: float, h0,
                        out: np.ndarray | None = None) -> np.ndarray:
        """(h1 A + h0 B) f; h0 may be a scalar or a per-node field
        (spatially varying reaction term, e.g. Brinkman penalty)."""
        if not config.enabled():
            res = self.stiffness_apply(f)
            if h1 != 1.0:
                res *= h1
            res += (h0 * self.geom.mass) * f
            return _into(res, out)
        out = self.stiffness_apply(f, out=out)
        if h1 != 1.0:
            out *= h1
        with get_arena().scratch(f.shape, f.dtype) as tmp:
            np.multiply(h0, self.geom.mass, out=tmp)
            tmp *= f
            out += tmp
        return out

    def stiffness_diagonal(self, h1: float = 1.0, h0=0.0) -> np.ndarray:
        """Diagonal of the *assembled* Helmholtz operator (for Jacobi).

        diag(D_r^T G D_r) at node (k,j,i) is sum_m D[m,i]^2 G[e,k,j,m]
        (and permutations), then gather-scattered.
        """
        D2 = self.D * self.D
        if not config.enabled():
            diag = np.einsum("mi,ekjm->ekji", D2, self.geom.grr, optimize=True)
            diag += np.einsum("mj,ekmi->ekji", D2, self.geom.gss, optimize=True)
            diag += np.einsum("mk,emji->ekji", D2, self.geom.gtt, optimize=True)
            diag *= h1
            diag += h0 * self.geom.mass
            return self.gs(diag)
        cache = get_plan_cache()
        shape = self.mesh.field_shape()
        with get_arena().scratch(shape, n=2) as (diag, tmp):
            cache.einsum("mi,ekjm->ekji", D2, self.geom.grr, out=diag)
            cache.einsum("mj,ekmi->ekji", D2, self.geom.gss, out=tmp)
            diag += tmp
            cache.einsum("mk,emji->ekji", D2, self.geom.gtt, out=tmp)
            diag += tmp
            diag *= h1
            np.multiply(h0, self.geom.mass, out=tmp)
            diag += tmp
            return self.gs(diag)  # gs returns a fresh array; diag stays pooled

    # -- differential operators (collocation / strong form) -------------------
    def grad(self, f: np.ndarray, out=None) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pointwise physical gradient (unassembled; chain rule).

        Pass ``out=(fx, fy, fz)`` to reuse buffers.
        """
        if not config.enabled():
            fr, fs, ft = local_grad(self.D, f)
            res = (self.geom.rx * fr, self.geom.sy * fs, self.geom.tz * ft)
            if out is None:
                return res
            for o, r in zip(out, res):
                o[...] = r
            return tuple(out)
        if out is None:
            out = (np.empty_like(f), np.empty_like(f), np.empty_like(f))
        fx, fy, fz = local_grad(self.D, f, out=out)
        fx *= self.geom.rx
        fy *= self.geom.sy
        fz *= self.geom.tz
        return fx, fy, fz

    def div(self, u: np.ndarray, v: np.ndarray, w: np.ndarray,
            out: np.ndarray | None = None) -> np.ndarray:
        """Pointwise divergence du/dx + dv/dy + dw/dz."""
        if not config.enabled():
            res = self.geom.rx * apply_1d_x(self.D, u)
            res += self.geom.sy * apply_1d_y(self.D, v)
            res += self.geom.tz * apply_1d_z(self.D, w)
            return _into(res, out)
        out = apply_1d_x(self.D, u, out=out)
        out *= self.geom.rx
        with get_arena().scratch(out.shape, out.dtype) as tmp:
            apply_1d_y(self.D, v, out=tmp)
            tmp *= self.geom.sy
            out += tmp
            apply_1d_z(self.D, w, out=tmp)
            tmp *= self.geom.tz
            out += tmp
        return out

    def convect(self, f: np.ndarray, u: np.ndarray, v: np.ndarray, w: np.ndarray,
                out: np.ndarray | None = None) -> np.ndarray:
        """Convective derivative (u . grad) f, pointwise (collocation)."""
        if not config.enabled():
            fx, fy, fz = self.grad(f)
            return _into(u * fx + v * fy + w * fz, out)
        with get_arena().scratch(f.shape, f.dtype, n=3) as (fx, fy, fz):
            self.grad(f, out=(fx, fy, fz))
            if out is None:
                out = np.multiply(u, fx)
            else:
                np.multiply(u, fx, out=out)
            fy *= v
            out += fy
            fz *= w
            out += fz
        return out

    def convect_dealiased(
        self, f: np.ndarray, u: np.ndarray, v: np.ndarray, w: np.ndarray
    ) -> np.ndarray:
        """(u . grad) f with quadrature over-integration (3/2 rule).

        Gradients are computed spectrally at the GLL nodes (exact),
        then the velocity-gradient products are evaluated on the finer
        Gauss grid and L2-projected back — removing the aliasing error
        of the collocation product.
        """
        from repro.sem.dealias import dealias_points, project_back, to_fine

        order = self.mesh.order
        m = dealias_points(order)
        fx, fy, fz = self.grad(f)
        out_fine = to_fine(u, order, m) * to_fine(fx, order, m)
        out_fine += to_fine(v, order, m) * to_fine(fy, order, m)
        out_fine += to_fine(w, order, m) * to_fine(fz, order, m)
        return project_back(out_fine, order, m)

    # -- assembly helpers ----------------------------------------------------
    def assemble(self, f: np.ndarray) -> np.ndarray:
        """QQ^T f (direct-stiffness sum)."""
        return self.gs(f)

    def continuize(self, f: np.ndarray) -> np.ndarray:
        """Average redundant copies so the field is single-valued."""
        return self.gs.average(f)
