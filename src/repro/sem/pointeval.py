"""Spectral evaluation of SEM fields at arbitrary physical points.

The SEM solution is a polynomial inside every element, so sampling it
anywhere is exact interpolation — no lossy resampling.  This is what
gslib's ``findpts``/``findpts_eval`` provides to Nek (history points,
particle coupling, interpolation-based post-processing).

For the axis-aligned box meshes here, point location is arithmetic:
element indices come from dividing by the element size, and reference
coordinates from the affine map; evaluation contracts the tensor
product of 1-D Lagrange basis rows.

Distributed use: each rank evaluates the points that fall in *its*
elements and contributes zero elsewhere; an allreduce-sum assembles
the full answer (every point is owned by exactly one rank).
"""

from __future__ import annotations

import numpy as np

from repro.parallel.comm import Communicator, ReduceOp
from repro.sem.mesh import BoxMesh
from repro.sem.quadrature import gll_nodes_weights, lagrange_interpolation_matrix


class PointLocator:
    """Locates physical points in a BoxMesh and evaluates fields there."""

    def __init__(self, mesh: BoxMesh):
        self.mesh = mesh
        self._nodes, _ = gll_nodes_weights(mesh.order)
        # map global element id -> local slot for this rank
        self._local_slot = {int(e): i for i, e in enumerate(mesh.elem_ids)}

    # -- location ----------------------------------------------------------
    def locate(self, points: np.ndarray):
        """For each point: (global element id, reference coords in [-1,1]^3).

        Points outside the domain get element id -1.  Points exactly on
        element interfaces are assigned to the lower-index element.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        mesh = self.mesh
        lo = np.asarray(mesh.extent.lo)
        hi = np.asarray(mesh.extent.hi)
        sizes = mesh.elem_sizes
        shape = np.asarray(mesh.shape)

        inside = np.all((pts >= lo - 1e-12) & (pts <= hi + 1e-12), axis=1)
        rel = (pts - lo) / sizes
        lattice = np.clip(np.floor(rel).astype(np.int64), 0, shape - 1)
        # reference coordinate in [-1, 1] within the owning element
        ref = 2.0 * (rel - lattice) - 1.0
        np.clip(ref, -1.0, 1.0, out=ref)
        elem = (
            lattice[:, 2] * shape[0] * shape[1]
            + lattice[:, 1] * shape[0]
            + lattice[:, 0]
        )
        elem[~inside] = -1
        return elem, ref

    # -- evaluation --------------------------------------------------------
    def evaluate_local(self, field: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Evaluate at points owned by this rank; 0 for points elsewhere."""
        if field.shape != self.mesh.field_shape():
            raise ValueError(
                f"field shape {field.shape} does not match mesh "
                f"{self.mesh.field_shape()}"
            )
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        elem, ref = self.locate(pts)
        out = np.zeros(len(pts))
        for i, (e, (rx, ry, rz)) in enumerate(zip(elem, ref)):
            slot = self._local_slot.get(int(e))
            if slot is None:
                continue
            lx = lagrange_interpolation_matrix(self._nodes, np.array([rx]))[0]
            ly = lagrange_interpolation_matrix(self._nodes, np.array([ry]))[0]
            lz = lagrange_interpolation_matrix(self._nodes, np.array([rz]))[0]
            # field[e, k, j, i]: contract z (k), then y (j), then x (i)
            out[i] = np.einsum(
                "k,j,i,kji->", lz, ly, lx, field[slot], optimize=True
            )
        return out

    def evaluate(
        self, field: np.ndarray, points: np.ndarray, comm: Communicator
    ) -> np.ndarray:
        """Distributed evaluation: exact values at every in-domain point.

        Collective over `comm`.  Out-of-domain points return NaN.
        """
        local = self.evaluate_local(field, points)
        total = comm.allreduce_array(local, ReduceOp.SUM)
        elem, _ = self.locate(points)
        total = np.asarray(total, dtype=float)
        total[elem < 0] = np.nan
        return total
