"""Gauss-Lobatto-Legendre quadrature and spectral differentiation.

The SEM discretizes each element with the tensor product of 1-D GLL
nodes: polynomial order N gives ``Nq = N + 1`` nodes including both
endpoints.  This module provides the nodes/weights, the spectral
differentiation matrix on those nodes, and barycentric Lagrange
interpolation to arbitrary points (used by visualization resampling).

References: Deville, Fischer & Mund, *High-Order Methods for
Incompressible Fluid Flow*, ch. 2; Berrut & Trefethen, *Barycentric
Lagrange Interpolation*.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from numpy.polynomial import legendre as npleg


@lru_cache(maxsize=64)
def _gll_cached(order: int) -> tuple[tuple[float, ...], tuple[float, ...]]:
    if order < 1:
        raise ValueError(f"polynomial order must be >= 1, got {order}")
    n = order
    if n == 1:
        x = np.array([-1.0, 1.0])
    else:
        # Interior GLL nodes are the roots of P_N'(x).
        coeffs = np.zeros(n + 1)
        coeffs[n] = 1.0
        dcoeffs = npleg.legder(coeffs)
        interior = npleg.legroots(dcoeffs)
        x = np.concatenate(([-1.0], np.sort(interior), [1.0]))
    # Weights: w_i = 2 / (N (N+1) P_N(x_i)^2)
    pn = npleg.legval(x, np.eye(n + 1)[n])
    w = 2.0 / (n * (n + 1) * pn**2)
    return tuple(x.tolist()), tuple(w.tolist())


def gll_nodes_weights(order: int) -> tuple[np.ndarray, np.ndarray]:
    """GLL nodes and quadrature weights on [-1, 1] for a given order.

    >>> x, w = gll_nodes_weights(2)
    >>> np.allclose(x, [-1, 0, 1]) and np.allclose(w, [1/3, 4/3, 1/3])
    True
    """
    x, w = _gll_cached(order)
    return np.array(x), np.array(w)


def _barycentric_weights(nodes: np.ndarray) -> np.ndarray:
    diffs = nodes[:, None] - nodes[None, :]
    np.fill_diagonal(diffs, 1.0)
    return 1.0 / diffs.prod(axis=1)


def derivative_matrix(order: int) -> np.ndarray:
    """Spectral differentiation matrix D on the GLL nodes.

    ``(D @ f)`` gives df/dx at the nodes for f sampled at the nodes,
    exact for polynomials of degree <= order.
    """
    x, _ = gll_nodes_weights(order)
    n = len(x)
    bw = _barycentric_weights(x)
    D = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            if i != j:
                D[i, j] = (bw[j] / bw[i]) / (x[i] - x[j])
    # Diagonal by negative row-sum (derivative of constants is zero).
    np.fill_diagonal(D, -D.sum(axis=1))
    return D


def lagrange_interpolation_matrix(nodes: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Matrix J with ``J @ f`` evaluating the interpolant of f (sampled
    at `nodes`) at `targets`.  Barycentric form, stable for GLL nodes.
    """
    nodes = np.asarray(nodes, dtype=float)
    targets = np.atleast_1d(np.asarray(targets, dtype=float))
    bw = _barycentric_weights(nodes)
    J = np.zeros((len(targets), len(nodes)))
    for t, xt in enumerate(targets):
        diff = xt - nodes
        exact = np.isclose(diff, 0.0, atol=1e-14)
        if exact.any():
            J[t, np.argmax(exact)] = 1.0
            continue
        terms = bw / diff
        J[t] = terms / terms.sum()
    return J


def gauss_nodes_weights(count: int) -> tuple[np.ndarray, np.ndarray]:
    """Gauss-Legendre nodes/weights on [-1, 1] (no endpoints).

    Exact for polynomials of degree 2*count - 1 — the quadrature
    over-integration (dealiasing) evaluates nonlinear products on.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    x, w = np.polynomial.legendre.leggauss(count)
    return x, w


def uniform_nodes(count: int, include_ends: bool = True) -> np.ndarray:
    """`count` uniformly spaced points on [-1, 1].

    With ``include_ends=False`` points sit at cell centers, which is
    what image resampling wants (no duplicated element-interface
    samples).
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if include_ends:
        if count == 1:
            return np.array([0.0])
        return np.linspace(-1.0, 1.0, count)
    step = 2.0 / count
    return -1.0 + step * (np.arange(count) + 0.5)
