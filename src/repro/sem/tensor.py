"""Tensor-product operator application.

The defining optimization of SEM (and of libParanumal's GPU kernels) is
that a 3-D operator with a tensor-product structure is applied as three
small dense matrix products per element instead of one large one:
O(E N^4) work instead of O(E N^6).  Fields are shaped
``(E, Nq, Nq, Nq)`` indexed ``[e, k, j, i]`` (i varies along x).

All functions are allocation-aware: they use einsum with controlled
output and avoid temporaries where NumPy allows.
"""

from __future__ import annotations

import numpy as np


def apply_1d_x(A: np.ndarray, f: np.ndarray) -> np.ndarray:
    """Apply A along the x (last) axis: out[e,k,j,a] = A[a,i] f[e,k,j,i]."""
    return np.einsum("ai,ekji->ekja", A, f, optimize=True)


def apply_1d_y(A: np.ndarray, f: np.ndarray) -> np.ndarray:
    """Apply A along the y axis: out[e,k,b,i] = A[b,j] f[e,k,j,i]."""
    return np.einsum("bj,ekji->ekbi", A, f, optimize=True)


def apply_1d_z(A: np.ndarray, f: np.ndarray) -> np.ndarray:
    """Apply A along the z axis: out[e,c,j,i] = A[c,k] f[e,k,j,i]."""
    return np.einsum("ck,ekji->ecji", A, f, optimize=True)


def apply_3d(Ax: np.ndarray, Ay: np.ndarray, Az: np.ndarray, f: np.ndarray) -> np.ndarray:
    """Full tensor-product apply (Az (x) Ay (x) Ax) f."""
    return apply_1d_z(Az, apply_1d_y(Ay, apply_1d_x(Ax, f)))


def local_grad(D: np.ndarray, f: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reference-space gradient (df/dr, df/ds, df/dt) of each element.

    `D` is the 1-D GLL differentiation matrix; r/s/t are the reference
    coordinates along x/y/z respectively.
    """
    fr = apply_1d_x(D, f)
    fs = apply_1d_y(D, f)
    ft = apply_1d_z(D, f)
    return fr, fs, ft


def local_grad_transpose(
    D: np.ndarray, gr: np.ndarray, gs: np.ndarray, gt: np.ndarray
) -> np.ndarray:
    """Adjoint of :func:`local_grad`: D_r^T gr + D_s^T gs + D_t^T gt.

    This is the element-local piece of the weak (integrated-by-parts)
    divergence/stiffness operators.
    """
    out = apply_1d_x(D.T, gr)
    out += apply_1d_y(D.T, gs)
    out += apply_1d_z(D.T, gt)
    return out


def flops_local_grad(num_elements: int, nq: int) -> int:
    """FLOP count of one local_grad call (for the performance model)."""
    # three tensor contractions, each 2 * Nq^4 flops per element
    return num_elements * 3 * 2 * nq**4
