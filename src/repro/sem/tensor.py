"""Tensor-product operator application.

The defining optimization of SEM (and of libParanumal's GPU kernels) is
that a 3-D operator with a tensor-product structure is applied as three
small dense matrix products per element instead of one large one:
O(E N^4) work instead of O(E N^6).  Fields are shaped
``(E, Nq, Nq, Nq)`` indexed ``[e, k, j, i]`` (i varies along x).

Two implementations coexist (see ``docs/performance.md``):

- the optimized path reshapes each contraction into a single BLAS
  ``np.matmul`` whose geometry is memoized in the per-rank
  :class:`repro.perf.PlanCache`, and writes into caller-provided
  ``out=`` buffers so hot loops allocate nothing;
- the ``*_reference`` functions keep the original per-call-planned
  einsums.  ``repro.perf.naive_mode`` routes the public entry points
  through them, which is how the equivalence tests and the bench gate
  obtain before/after numbers from one build.
"""

from __future__ import annotations

import numpy as np

from repro.perf import config
from repro.perf.arena import get_arena
from repro.perf.plans import get_plan_cache


# -- reference (pre-optimization) paths ---------------------------------

def apply_1d_x_reference(A: np.ndarray, f: np.ndarray) -> np.ndarray:
    return np.einsum("ai,ekji->ekja", A, f, optimize=True)


def apply_1d_y_reference(A: np.ndarray, f: np.ndarray) -> np.ndarray:
    return np.einsum("bj,ekji->ekbi", A, f, optimize=True)


def apply_1d_z_reference(A: np.ndarray, f: np.ndarray) -> np.ndarray:
    return np.einsum("ck,ekji->ecji", A, f, optimize=True)


def local_grad_transpose_reference(
    D: np.ndarray, gr: np.ndarray, gs: np.ndarray, gt: np.ndarray
) -> np.ndarray:
    out = apply_1d_x_reference(D.T, gr)
    out += apply_1d_y_reference(D.T, gs)
    out += apply_1d_z_reference(D.T, gt)
    return out


# -- optimized paths ----------------------------------------------------

def _into(result: np.ndarray, out: np.ndarray | None) -> np.ndarray:
    if out is None:
        return result
    out[...] = result
    return out


def _plan_1d(op: str, A: np.ndarray, f: np.ndarray):
    """Reshape geometry for one 1-D apply, memoized per (op, shapes)."""
    cache = get_plan_cache()
    key = (op, A.shape, f.shape, A.dtype.char, f.dtype.char)

    def build():
        a = A.shape[0]
        E, K, J, I = f.shape
        if op == "a1x":
            return (E, K, J, a), (E * K * J, I), (E * K * J, a)
        if op == "a1y":
            return (E, K, a, I), (E * K, J, I), (E * K, a, I)
        return (E, a, J, I), (E, K, J * I), (E, a, J * I)

    return cache.get(key, build)


def _fast_ok(A: np.ndarray, f: np.ndarray, out: np.ndarray) -> bool:
    """The matmul rewrite needs viewable reshapes and one dtype."""
    return (
        f.flags.c_contiguous
        and out.flags.c_contiguous
        and A.dtype == f.dtype == out.dtype
    )


def apply_1d_x(A: np.ndarray, f: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Apply A along the x (last) axis: out[e,k,j,a] = A[a,i] f[e,k,j,i]."""
    if not config.enabled():
        return _into(apply_1d_x_reference(A, f), out)
    out_shape, f2, o2 = _plan_1d("a1x", A, f)
    if out is None:
        out = np.empty(out_shape, np.result_type(A, f))
    if _fast_ok(A, f, out):
        np.matmul(f.reshape(f2), A.T, out=out.reshape(o2))
    else:
        get_plan_cache().einsum("ai,ekji->ekja", A, f, out=out)
    return out


def apply_1d_y(A: np.ndarray, f: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Apply A along the y axis: out[e,k,b,i] = A[b,j] f[e,k,j,i]."""
    if not config.enabled():
        return _into(apply_1d_y_reference(A, f), out)
    out_shape, f3, o3 = _plan_1d("a1y", A, f)
    if out is None:
        out = np.empty(out_shape, np.result_type(A, f))
    if _fast_ok(A, f, out):
        np.matmul(A, f.reshape(f3), out=out.reshape(o3))
    else:
        get_plan_cache().einsum("bj,ekji->ekbi", A, f, out=out)
    return out


def apply_1d_z(A: np.ndarray, f: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Apply A along the z axis: out[e,c,j,i] = A[c,k] f[e,k,j,i]."""
    if not config.enabled():
        return _into(apply_1d_z_reference(A, f), out)
    out_shape, f3, o3 = _plan_1d("a1z", A, f)
    if out is None:
        out = np.empty(out_shape, np.result_type(A, f))
    if _fast_ok(A, f, out):
        np.matmul(A, f.reshape(f3), out=out.reshape(o3))
    else:
        get_plan_cache().einsum("ck,ekji->ecji", A, f, out=out)
    return out


def apply_3d(
    Ax: np.ndarray, Ay: np.ndarray, Az: np.ndarray, f: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Full tensor-product apply (Az (x) Ay (x) Ax) f.

    Handles rectangular factors (dealiasing interpolation changes the
    per-axis extent); intermediates come from the workspace arena.
    """
    if not config.enabled():
        return _into(
            apply_1d_z_reference(Az, apply_1d_y_reference(Ay, apply_1d_x_reference(Ax, f))),
            out,
        )
    E, K, J, _ = f.shape
    dtype = np.result_type(Ax, f)
    arena = get_arena()
    t1 = arena.borrow((E, K, J, Ax.shape[0]), dtype)
    t2 = arena.borrow((E, K, Ay.shape[0], Ax.shape[0]), dtype)
    try:
        apply_1d_x(Ax, f, out=t1)
        apply_1d_y(Ay, t1, out=t2)
        out = apply_1d_z(Az, t2, out=out)
    finally:
        arena.release(t1, t2)
    return out


def local_grad(
    D: np.ndarray, f: np.ndarray,
    out: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reference-space gradient (df/dr, df/ds, df/dt) of each element.

    `D` is the 1-D GLL differentiation matrix; r/s/t are the reference
    coordinates along x/y/z respectively.  Pass ``out=(fr, fs, ft)`` to
    reuse buffers.
    """
    if out is None:
        return apply_1d_x(D, f), apply_1d_y(D, f), apply_1d_z(D, f)
    fr, fs, ft = out
    apply_1d_x(D, f, out=fr)
    apply_1d_y(D, f, out=fs)
    apply_1d_z(D, f, out=ft)
    return fr, fs, ft


def local_grad_transpose(
    D: np.ndarray, gr: np.ndarray, gs: np.ndarray, gt: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Adjoint of :func:`local_grad`: D_r^T gr + D_s^T gs + D_t^T gt.

    This is the element-local piece of the weak (integrated-by-parts)
    divergence/stiffness operators.
    """
    if not config.enabled():
        return _into(local_grad_transpose_reference(D, gr, gs, gt), out)
    DT = D.T  # a strided view; BLAS consumes it without a copy
    out = apply_1d_x(DT, gr, out=out)
    with get_arena().scratch(out.shape, out.dtype) as tmp:
        apply_1d_y(DT, gs, out=tmp)
        out += tmp
        apply_1d_z(DT, gt, out=tmp)
        out += tmp
    return out


def flops_local_grad(num_elements: int, nq: int) -> int:
    """FLOP count of one local_grad call (for the performance model)."""
    # three tensor contractions, each 2 * Nq^4 flops per element
    return num_elements * 3 * 2 * nq**4
