"""SENSEI-style generic in situ interface.

Mirrors the architecture of the SENSEI project (Ayachit et al. 2016)
that the paper builds on:

- :class:`DataAdaptor` — the interface simulations implement to expose
  their data in VTK-model terms (Listing 2 of the paper),
- :class:`AnalysisAdaptor` — the interface analysis back ends
  implement (Catalyst, histogram, I/O, ADIOS transport, ...),
- :class:`ConfigurableAnalysis` — an AnalysisAdaptor that reads the
  XML configuration of Listing 1 and dispatches to the configured
  back ends at their configured frequencies *at runtime, without
  recompiling the simulation* — the paper's headline flexibility,
- stock analyses under ``repro.sensei.analyses``.

The simulation-side glue (bridge) lives in ``repro.insitu.bridge``.
"""

from repro.sensei.data_adaptor import DataAdaptor
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.metadata import MeshMetadata, ArrayMetadata
from repro.sensei.configurable import ConfigurableAnalysis, parse_analysis_xml

__all__ = [
    "DataAdaptor",
    "AnalysisAdaptor",
    "MeshMetadata",
    "ArrayMetadata",
    "ConfigurableAnalysis",
    "parse_analysis_xml",
]
