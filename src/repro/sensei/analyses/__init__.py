"""Stock AnalysisAdaptors and their XML factory registry.

Each factory has signature ``factory(comm, attributes, output_dir)``
where `attributes` are the remaining XML attributes of the
``<analysis>`` element.  Types mirror SENSEI's stock analyses plus the
two back ends the paper uses (catalyst, adios/SST).
"""

from __future__ import annotations

from pathlib import Path

from repro.parallel.comm import Communicator
from repro.sensei.analyses.histogram import HistogramAnalysis
from repro.sensei.analyses.autocorrelation import AutocorrelationAnalysis
from repro.sensei.analyses.posthoc_io import VTKPosthocIO
from repro.sensei.analyses.slice_extract import SliceExtract
from repro.sensei.analyses.catalyst_adaptor import CatalystAnalysisAdaptor
from repro.sensei.analyses.adios_adaptor import ADIOSAnalysisAdaptor
from repro.sensei.analyses.binning import DataBinning
from repro.sensei.analyses.particles import ParticleTracer
from repro.sensei.analyses.steering import DivergenceGuard, SteadyStateDetector
from repro.sensei.analyses.compressed_io import CompressedIO
from repro.sensei.analyses.probe import HistoryPoints

__all__ = [
    "CompressedIO",
    "HistoryPoints",
    "HistogramAnalysis",
    "AutocorrelationAnalysis",
    "VTKPosthocIO",
    "SliceExtract",
    "CatalystAnalysisAdaptor",
    "ADIOSAnalysisAdaptor",
    "DataBinning",
    "ParticleTracer",
    "DivergenceGuard",
    "SteadyStateDetector",
    "default_factories",
]


def default_factories() -> dict:
    """Registry mapping XML type names to adaptor factories."""
    return {
        "histogram": _make_histogram,
        "autocorrelation": _make_autocorrelation,
        "PosthocIO": _make_posthoc,
        "vtkposthocio": _make_posthoc,
        "slice": _make_slice,
        "catalyst": _make_catalyst,
        "adios": _make_adios,
        "sst": _make_adios,
        "binning": _make_binning,
        "particles": _make_particles,
        "divergence_guard": _make_divergence_guard,
        "steady_state": _make_steady_state,
        "compressed_io": _make_compressed_io,
        "history_points": _make_history_points,
    }


def _make_histogram(comm: Communicator, attrs: dict, output_dir: Path):
    return HistogramAnalysis(
        comm,
        mesh_name=attrs.get("mesh", "mesh"),
        array_name=attrs.get("array", "pressure"),
        bins=int(attrs.get("bins", "32")),
        output_dir=output_dir if attrs.get("file", "1") not in ("0", "no") else None,
    )


def _make_autocorrelation(comm: Communicator, attrs: dict, output_dir: Path):
    return AutocorrelationAnalysis(
        comm,
        mesh_name=attrs.get("mesh", "mesh"),
        array_name=attrs.get("array", "pressure"),
        window=int(attrs.get("window", "10")),
        k_max=int(attrs.get("kmax", "3")),
    )


def _make_posthoc(comm: Communicator, attrs: dict, output_dir: Path):
    arrays = attrs.get("arrays", "pressure,velocity_x,velocity_y,velocity_z")
    return VTKPosthocIO(
        comm,
        output_dir=Path(attrs.get("output", str(output_dir))),
        mesh_name=attrs.get("mesh", "mesh"),
        arrays=tuple(a.strip() for a in arrays.split(",") if a.strip()),
        encoding=attrs.get("encoding", "appended"),
    )


def _make_slice(comm: Communicator, attrs: dict, output_dir: Path):
    return SliceExtract(
        comm,
        mesh_name=attrs.get("mesh", "uniform"),
        array_name=attrs.get("array", "pressure"),
        axis=attrs.get("axis", "y"),
        position=float(attrs["position"]) if "position" in attrs else None,
        output_dir=Path(attrs.get("output", str(output_dir))),
    )


def _make_catalyst(comm: Communicator, attrs: dict, output_dir: Path):
    return CatalystAnalysisAdaptor.from_xml_attributes(comm, attrs, output_dir)


def _make_adios(comm: Communicator, attrs: dict, output_dir: Path):
    return ADIOSAnalysisAdaptor.from_xml_attributes(comm, attrs)


def _make_binning(comm: Communicator, attrs: dict, output_dir: Path):
    axes = tuple(a.strip() for a in attrs.get("axes", "z").split(",") if a.strip())
    return DataBinning(
        comm,
        array_name=attrs.get("array", "temperature"),
        axes=axes,
        bins=int(attrs.get("bins", "16")),
        mesh_name=attrs.get("mesh", "mesh"),
        output_dir=output_dir if attrs.get("file", "1") not in ("0", "no") else None,
    )


def _make_particles(comm: Communicator, attrs: dict, output_dir: Path):
    return ParticleTracer(
        comm,
        num_particles=int(attrs.get("count", "64")),
        mesh_name=attrs.get("mesh", "uniform"),
        seed=int(attrs.get("seed", "7")),
        output_dir=output_dir if attrs.get("file", "1") not in ("0", "no") else None,
    )


def _make_divergence_guard(comm: Communicator, attrs: dict, output_dir: Path):
    return DivergenceGuard(
        comm,
        array_name=attrs.get("array", "velocity_magnitude"),
        limit=float(attrs.get("limit", "1e6")),
        mesh_name=attrs.get("mesh", "mesh"),
    )


def _make_compressed_io(comm: Communicator, attrs: dict, output_dir: Path):
    arrays = tuple(
        a.strip() for a in attrs.get("arrays", "pressure").split(",") if a.strip()
    )
    return CompressedIO(
        comm,
        output_dir=Path(attrs.get("output", str(output_dir))),
        arrays=arrays,
        error_bound=float(attrs.get("error_bound", "1e-4")),
        mesh_name=attrs.get("mesh", "mesh"),
    )


def _make_history_points(comm: Communicator, attrs: dict, output_dir: Path):
    """points="x1,y1,z1; x2,y2,z2; ..." in the XML attribute."""
    import numpy as np

    raw = attrs.get("points", "0.5,0.5,0.5")
    points = np.array(
        [[float(c) for c in triple.split(",")] for triple in raw.split(";")]
    )
    arrays = tuple(
        a.strip() for a in attrs.get("arrays", "pressure").split(",") if a.strip()
    )
    return HistoryPoints(
        comm,
        points,
        arrays=arrays,
        output_dir=output_dir if attrs.get("file", "1") not in ("0", "no") else None,
    )


def _make_steady_state(comm: Communicator, attrs: dict, output_dir: Path):
    return SteadyStateDetector(
        comm,
        array_name=attrs.get("array", "velocity_magnitude"),
        tolerance=float(attrs.get("tolerance", "1e-6")),
        patience=int(attrs.get("patience", "3")),
        mesh_name=attrs.get("mesh", "mesh"),
    )
