"""The ADIOS AnalysisAdaptor: the send side of the in transit workflow.

Instead of analyzing in place, this adaptor marshals the requested
meshes/arrays into ADIOS step payloads and ships them through an
engine — SST (staged, streaming, the paper's configuration) or BPFile
(file-staged).  A SENSEI data consumer on the endpoint reconstructs a
DataAdaptor from the stream (``repro.insitu.streamed``) and runs its
own XML-configured analyses, completing the paper's
"endpoint of our workflow is always a SENSEI data consumer" design.

Geometry is streamed once (first step) unless the mesh deforms;
arrays are streamed every invocation.
"""

from __future__ import annotations

import json

import numpy as np

from repro.observe.live.correlate import StepTag
from repro.observe.session import get_telemetry
from repro.parallel.comm import Communicator
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import DataAdaptor
from repro.vtkdata.dataset import ImageData, UnstructuredGrid


class ADIOSAnalysisAdaptor(AnalysisAdaptor):
    def __init__(
        self,
        comm: Communicator,
        engine,                       # SSTWriterEngine or BPFileWriterEngine
        mesh_name: str = "mesh",
        arrays: tuple[str, ...] = ("pressure",),
        stream_geometry_once: bool = True,
    ):
        self.comm = comm
        self.engine = engine
        self.mesh_name = mesh_name
        self.arrays = tuple(arrays)
        self.stream_geometry_once = stream_geometry_once
        self._geometry_sent = False
        self.steps_sent = 0
        self.bytes_sent = 0

    # -- fault-tolerance surface (used by the Bridge degradation layer) ----
    @property
    def fault_log(self):
        """The transport's FaultLog, when the engine is broker-backed."""
        broker = getattr(self.engine, "broker", None)
        return broker.stats.faults if broker is not None else None

    def mark_transport_down(self) -> None:
        """Fail writers fast instead of retrying against a dead endpoint."""
        broker = getattr(self.engine, "broker", None)
        if broker is not None:
            broker.mark_endpoint_down()

    @classmethod
    def from_xml_attributes(cls, comm: Communicator, attrs: dict):
        """XML path supports the file-staged engine only; SST engines
        carry live broker objects and are constructed by the in
        transit runner."""
        from repro.adios.engine import BPFileWriterEngine

        engine_type = attrs.get("engine", "BPFile")
        if engine_type != "BPFile":
            raise ValueError(
                "XML-configured adios analysis supports engine=BPFile; "
                "SST streams are wired programmatically by the runner"
            )
        engine = BPFileWriterEngine(
            attrs.get("stream", "sensei"),
            attrs.get("directory", "."),
            writer_rank=comm.rank,
        )
        arrays = tuple(
            a.strip() for a in attrs.get("arrays", "pressure").split(",") if a.strip()
        )
        return cls(comm, engine, mesh_name=attrs.get("mesh", "mesh"), arrays=arrays)

    # -- helpers -----------------------------------------------------------
    def _metadata_for(self, data: DataAdaptor):
        for i in range(data.get_number_of_meshes()):
            m = data.get_mesh_metadata(i)
            if m.name == self.mesh_name:
                return m
        raise KeyError(f"no mesh named {self.mesh_name!r}")

    def execute(self, data: DataAdaptor) -> bool:
        broker = getattr(self.engine, "broker", None)
        if broker is not None and broker.endpoint_down.is_set():
            # fail before staging a step the transport cannot deliver
            from repro.faults.errors import EndpointDownError

            raise EndpointDownError("SST endpoint marked down")
        meta = self._metadata_for(data)
        mesh = data.get_mesh(self.mesh_name)
        for name in self.arrays:
            data.add_array(mesh, self.mesh_name, "point", name)

        engine = self.engine
        engine.set_step_info(data.get_data_time_step(), data.get_data_time())
        engine.begin_step()
        live = get_telemetry().live
        if live.enabled:
            # correlation tag rides the RBP2 attribute header; the
            # consumer side decodes it to stitch the step's timeline
            tag = StepTag(
                run_id=live.run_id,
                step=data.get_data_time_step(),
                stream=self.comm.rank,
            )
            engine.put_attribute("corr", tag.encode())
        engine.put_attribute("mesh_name", self.mesh_name)
        engine.put_attribute("arrays", ",".join(self.arrays))
        engine.put_attribute("extra", json.dumps(meta.extra))
        engine.put_attribute("num_blocks", str(meta.num_blocks))

        blocks = [
            (i, b) for i, b in enumerate(mesh.blocks) if b is not None
        ]
        engine.put("block_ids", np.asarray([i for i, _ in blocks], dtype=np.int64))

        send_geometry = not (self.stream_geometry_once and self._geometry_sent)
        engine.put_attribute("has_geometry", "1" if send_geometry else "0")
        nbytes = 0
        for index, block in blocks:
            prefix = f"block{index}"
            if isinstance(block, UnstructuredGrid):
                if send_geometry:
                    engine.put(f"{prefix}/points", block.points)
                    engine.put(f"{prefix}/cells", block.cells)
                    nbytes += block.points.nbytes + block.cells.nbytes
                for name in self.arrays:
                    vals = block.point_data[name].values
                    engine.put(f"{prefix}/array/{name}", vals)
                    nbytes += vals.nbytes
            elif isinstance(block, ImageData):
                if send_geometry:
                    geom = np.asarray(
                        list(block.origin) + list(block.spacing) + list(block.dims),
                        dtype=np.float64,
                    )
                    engine.put(f"{prefix}/geom", geom)
                    nbytes += geom.nbytes
                for name in self.arrays:
                    vals = block.point_data[name].values
                    engine.put(f"{prefix}/array/{name}", vals)
                    nbytes += vals.nbytes
            else:
                raise TypeError(f"cannot stream block type {type(block).__name__}")
        engine.end_step()
        if send_geometry:
            self._geometry_sent = True
        self.steps_sent += 1
        self.bytes_sent += nbytes
        return True

    def finalize(self) -> None:
        self.engine.close()
