"""Temporal autocorrelation — another SENSEI stock analysis.

Maintains a sliding window of the global spatial mean and variance of
one array and reports lag-k autocorrelation coefficients of the mean
signal.  Useful as a cheap "is the flow statistically stationary yet"
probe, and in this repo as a second lightweight in situ consumer for
overhead experiments.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.parallel.comm import Communicator, ReduceOp
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import DataAdaptor


@dataclass
class AutocorrelationResult:
    step: int
    mean: float
    coefficients: np.ndarray   # lag 1..k_max (NaN when undefined)


class AutocorrelationAnalysis(AnalysisAdaptor):
    def __init__(
        self,
        comm: Communicator,
        mesh_name: str = "mesh",
        array_name: str = "pressure",
        window: int = 10,
        k_max: int = 3,
    ):
        if window < 2:
            raise ValueError("window must be >= 2")
        if not 1 <= k_max < window:
            raise ValueError("need 1 <= k_max < window")
        self.comm = comm
        self.mesh_name = mesh_name
        self.array_name = array_name
        self.window = window
        self.k_max = k_max
        self._signal: deque[float] = deque(maxlen=window)
        self.results: list[AutocorrelationResult] = []

    def execute(self, data: DataAdaptor) -> bool:
        mesh = data.get_mesh(self.mesh_name)
        data.add_array(mesh, self.mesh_name, "point", self.array_name)
        local_sum = 0.0
        local_n = 0
        for block in mesh.local_blocks():
            vals = block.point_data[self.array_name].values
            local_sum += float(vals.sum())
            local_n += vals.size
        total = self.comm.allreduce(local_sum, ReduceOp.SUM)
        count = self.comm.allreduce(local_n, ReduceOp.SUM)
        mean = total / max(count, 1)
        self._signal.append(mean)

        coeffs = np.full(self.k_max, np.nan)
        sig = np.asarray(self._signal)
        if len(sig) >= 3:
            centered = sig - sig.mean()
            denom = float(centered @ centered)
            if denom > 0:
                for k in range(1, min(self.k_max, len(sig) - 1) + 1):
                    coeffs[k - 1] = float(centered[k:] @ centered[:-k]) / denom
        self.results.append(
            AutocorrelationResult(
                step=data.get_data_time_step(), mean=mean, coefficients=coeffs
            )
        )
        return True
