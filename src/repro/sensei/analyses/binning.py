"""Data binning: reduce a field onto a coarse spatial grid of statistics.

SENSEI's DataBinning analysis in miniature: bin one array by two
coordinate axes and reduce (mean/min/max/count) per bin.  The classic
use is horizontally-averaged profiles in convection (bin temperature
by z) or span-averaged maps in channel flows — tiny outputs computed
from full-resolution in-memory data.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.parallel.comm import Communicator, ReduceOp
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import DataAdaptor

_AXES = {"x": 0, "y": 1, "z": 2}


@dataclass
class BinningResult:
    step: int
    axis_names: tuple[str, ...]
    edges: tuple[np.ndarray, ...]
    mean: np.ndarray
    count: np.ndarray


class DataBinning(AnalysisAdaptor):
    """Bin `array` over one or two coordinate axes; reduce the mean."""

    def __init__(
        self,
        comm: Communicator,
        array_name: str = "temperature",
        axes: tuple[str, ...] = ("z",),
        bins: int = 16,
        mesh_name: str = "mesh",
        output_dir: Path | str | None = None,
    ):
        if not 1 <= len(axes) <= 2:
            raise ValueError("bin over one or two axes")
        for a in axes:
            if a not in _AXES:
                raise ValueError(f"unknown axis {a!r}")
        if bins < 1:
            raise ValueError("bins must be >= 1")
        self.comm = comm
        self.array_name = array_name
        self.axes = tuple(axes)
        self.bins = bins
        self.mesh_name = mesh_name
        self.output_dir = Path(output_dir) if output_dir else None
        self.results: list[BinningResult] = []

    def execute(self, data: DataAdaptor) -> bool:
        mesh = data.get_mesh(self.mesh_name)
        data.add_array(mesh, self.mesh_name, "point", self.array_name)

        # collect local values + coordinates
        values = []
        coords = {a: [] for a in self.axes}
        for block in mesh.local_blocks():
            values.append(block.point_data[self.array_name].values.ravel())
            for a in self.axes:
                coords[a].append(block.points[:, _AXES[a]])
        vals = np.concatenate(values) if values else np.empty(0)
        axcoords = [
            np.concatenate(coords[a]) if coords[a] else np.empty(0)
            for a in self.axes
        ]

        # global bin edges from coordinate extents
        edges = []
        for arr in axcoords:
            lo = self.comm.allreduce(
                float(arr.min()) if arr.size else np.inf, ReduceOp.MIN
            )
            hi = self.comm.allreduce(
                float(arr.max()) if arr.size else -np.inf, ReduceOp.MAX
            )
            if hi <= lo:
                hi = lo + 1.0
            edges.append(np.linspace(lo, hi, self.bins + 1))

        shape = (self.bins,) * len(self.axes)
        local_sum = np.zeros(shape)
        local_cnt = np.zeros(shape, dtype=np.int64)
        if vals.size:
            idx = [
                np.clip(np.digitize(arr, e) - 1, 0, self.bins - 1)
                for arr, e in zip(axcoords, edges)
            ]
            np.add.at(local_sum, tuple(idx), vals)
            np.add.at(local_cnt, tuple(idx), 1)

        total = self.comm.allreduce_array(local_sum, ReduceOp.SUM)
        count = self.comm.allreduce_array(local_cnt, ReduceOp.SUM)
        with np.errstate(invalid="ignore", divide="ignore"):
            mean = np.where(count > 0, total / count, np.nan)

        result = BinningResult(
            step=data.get_data_time_step(),
            axis_names=self.axes,
            edges=tuple(edges),
            mean=mean,
            count=count,
        )
        self.results.append(result)
        if self.comm.is_root and self.output_dir is not None:
            self._write(result)
        return True

    def _write(self, r: BinningResult) -> None:
        self.output_dir.mkdir(parents=True, exist_ok=True)
        name = f"binning_{self.array_name}_{'_'.join(self.axes)}.txt"
        with open(self.output_dir / name, "a") as f:
            f.write(f"# step {r.step}\n")
            if len(self.axes) == 1:
                centers = 0.5 * (r.edges[0][:-1] + r.edges[0][1:])
                for c, m, n in zip(centers, r.mean, r.count):
                    f.write(f"{c:.6g} {m:.6g} {n}\n")
            else:
                for i in range(self.bins):
                    f.write(
                        " ".join(f"{v:.6g}" for v in np.atleast_1d(r.mean[i])) + "\n"
                    )
