"""The Catalyst AnalysisAdaptor: in situ image rendering.

The paper's in situ configuration: "data is copied from the GPU to the
CPU and subsequently passed to SENSEI, which employs the Catalyst
Adaptor for rendering tasks."  Here the adaptor

1. requests the ``uniform`` mesh (spectrally resampled ImageData
   fragments, one per element) and the arrays its pipeline needs —
   the step that pulls data across the device boundary,
2. gathers the fragments to rank 0 and assembles the global volume
   (the paper's endpoint renders a global view the same way),
3. runs the render pipeline — a "pythonscript" file, exactly like
   ParaView Catalyst, or a declarative :class:`RenderPipeline` —
4. writes the resulting PNGs and accounts their bytes (the
   storage-economy numerator).
"""

from __future__ import annotations

from pathlib import Path
from time import perf_counter

import numpy as np

from repro.catalyst.pipeline import RenderPipeline, RenderSpec, load_pipeline_script
from repro.observe.session import get_telemetry
from repro.parallel.comm import Communicator
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import DataAdaptor
from repro.util.png import encode_png
from repro.util.timing import StopWatch
from repro.vtkdata.arrays import DataArray
from repro.vtkdata.dataset import ImageData


def local_uniform_fragments(
    data: DataAdaptor,
    mesh_name: str,
    arrays: tuple[str, ...],
) -> tuple[tuple, np.ndarray, np.ndarray, list]:
    """This rank's uniform-mesh fragments plus the global grid metadata.

    Returns ``(global_dims, global_origin, global_spacing, fragments)``
    with fragments as ``(origin, dims, {name: volume})`` — the unit of
    work both the gather path and the sort-last compositor consume.
    """
    meta = None
    for i in range(data.get_number_of_meshes()):
        m = data.get_mesh_metadata(i)
        if m.name == mesh_name:
            meta = m
            break
    if meta is None:
        raise KeyError(f"data adaptor provides no mesh named {mesh_name!r}")
    gdims = tuple(meta.extra["global_dims"])
    gorigin = np.asarray(meta.extra["origin"], dtype=float)
    gspacing = np.asarray(meta.extra["spacing"], dtype=float)

    mesh = data.get_mesh(mesh_name)
    for name in arrays:
        data.add_array(mesh, mesh_name, "point", name)

    fragments = []
    for block in mesh.local_blocks():
        if not isinstance(block, ImageData):
            raise TypeError(
                f"mesh {mesh_name!r} blocks must be ImageData fragments"
            )
        payload = {
            name: block.as_volume(name) for name in arrays
        }
        fragments.append((block.origin, block.dims, payload))
    return gdims, gorigin, gspacing, fragments


def gather_uniform_volume_device(
    comm: Communicator,
    data: DataAdaptor,
    mesh_name: str,
    arrays: tuple[str, ...],
    device,
):
    """Device twin of :func:`gather_uniform_volume`.

    Fragments come from the data adaptor's
    ``device_uniform_fragments`` — :class:`DeviceMemory` payloads that
    never crossed PCIe.  Raw device views travel rank-to-rank (modeled
    GPUDirect: network-metered, never ledger-charged) and the root
    scatters them into device-arena global volumes with the
    ``catalyst.scatter`` kernel, zero-filled exactly like the host
    path's ``np.zeros``.  Returns ``(image, borrowed)`` on the root —
    `image` wraps raw device views, `borrowed` the arena buffers the
    caller must release after rendering — and ``(None, [])`` elsewhere.
    """
    from repro.occa.device import DeviceMemory
    from repro.occa.kernels import install_render_kernels

    fetch = getattr(data, "device_uniform_fragments", None)
    if fetch is None:
        raise TypeError(
            "residency='device' requires a device-capable data adaptor "
            "(one providing device_uniform_fragments)"
        )
    gdims, gorigin, gspacing, fragments = fetch(arrays)
    raw_frags = [
        (
            origin,
            dims,
            {
                name: vol._raw() if isinstance(vol, DeviceMemory) else vol
                for name, vol in payload.items()
            },
        )
        for origin, dims, payload in fragments
    ]
    gathered = comm.gather(raw_frags)
    if not comm.is_root:
        return None, []

    kern = install_render_kernels(device)
    nx, ny, nz = gdims
    image = ImageData(dims=gdims, origin=tuple(gorigin), spacing=tuple(gspacing))
    borrowed = []
    volumes = {}
    for name in arrays:
        mem = device.arena.borrow((nz, ny, nx), np.float64)
        mem.fill(0.0)
        borrowed.append(mem)
        volumes[name] = mem
    for chunk in gathered:
        for origin, dims, payload in chunk:
            off = np.rint((np.asarray(origin) - gorigin) / gspacing).astype(int)
            for name, vol in payload.items():
                kern.scatter(volumes[name], vol, tuple(int(x) for x in off))
    for name, mem in volumes.items():
        image.add_array(DataArray(name, mem._raw().reshape(-1)))
    return image, borrowed


def gather_uniform_volume(
    comm: Communicator,
    data: DataAdaptor,
    mesh_name: str,
    arrays: tuple[str, ...],
) -> ImageData | None:
    """Assemble the global uniform volume on rank 0 (None elsewhere).

    Expects the mesh's metadata ``extra`` to carry ``global_dims``,
    ``origin`` and ``spacing``, and its blocks to be ImageData
    fragments whose origins locate them in the global grid.
    """
    gdims, gorigin, gspacing, fragments = local_uniform_fragments(
        data, mesh_name, arrays
    )
    gathered = comm.gather(fragments)
    if not comm.is_root:
        return None

    nx, ny, nz = gdims
    image = ImageData(dims=gdims, origin=tuple(gorigin), spacing=tuple(gspacing))
    volumes = {name: np.zeros((nz, ny, nx)) for name in arrays}
    for chunk in gathered:
        for origin, dims, payload in chunk:
            off = np.rint((np.asarray(origin) - gorigin) / gspacing).astype(int)
            ox, oy, oz = off
            fx, fy, fz = dims
            for name, vol in payload.items():
                volumes[name][oz : oz + fz, oy : oy + fy, ox : ox + fx] = vol
    for name, vol in volumes.items():
        image.add_array(DataArray(name, vol.ravel()))
    return image


class CatalystAnalysisAdaptor(AnalysisAdaptor):
    """Render images from the simulation's uniform mesh."""

    def __init__(
        self,
        comm: Communicator,
        render,                      # callable(image, step, time) -> [(name, rgb)]
        arrays: tuple[str, ...],
        mesh_name: str = "uniform",
        output_dir: Path | str = ".",
        compositing: str = "gather",
        residency: str = "host",
    ):
        if compositing not in ("gather", "binary_swap", "direct_send"):
            raise ValueError(
                f"compositing must be gather|binary_swap|direct_send, "
                f"got {compositing!r}"
            )
        if residency not in ("host", "device"):
            raise ValueError(
                f"residency must be host|device, got {residency!r}"
            )
        self.comm = comm
        if isinstance(render, RenderPipeline):
            self.pipeline: RenderPipeline | None = render
            self.render = render.render
        else:
            self.pipeline = None
            self.render = render
        if compositing != "gather" and self.pipeline is None:
            raise ValueError(
                "sort-last compositing requires a declarative RenderPipeline "
                "(pythonscript pipelines render on the assembled volume only)"
            )
        if residency == "device" and self.pipeline is None:
            raise ValueError(
                "residency='device' requires a declarative RenderPipeline "
                "(pythonscript pipelines expect host arrays)"
            )
        self.compositing = compositing
        self.residency = residency
        self.arrays = tuple(arrays)
        self.mesh_name = mesh_name
        self.output_dir = Path(output_dir)
        self.watch = StopWatch()
        self.images_written = 0
        self.image_bytes = 0
        self.peak_staging_bytes = 0
        #: optional live-serving hook, ``publisher(name, step, time,
        #: png_bytes)`` — called with the *exact* bytes written to disk
        #: (encode-once), so streamed frames are byte-identical to the
        #: files.  Set by :func:`repro.serve.attach_serving`.
        self.publisher = None

    # -- construction -----------------------------------------------------
    @classmethod
    def from_xml_attributes(cls, comm: Communicator, attrs: dict, output_dir: Path):
        """Build from <analysis type="catalyst" .../> attributes.

        ``pipeline="pythonscript" filename="script.py"`` loads a
        ParaView-Catalyst-style script; otherwise a declarative
        pipeline is built from `array`, `isovalue`, `slice_axis`, ...
        """
        mesh_name = attrs.get("mesh", "uniform")
        pipeline_kind = attrs.get("pipeline", "builtin")
        compositing = attrs.get("compositing", "gather")
        residency = attrs.get("residency", "host")
        if pipeline_kind == "pythonscript":
            if compositing != "gather":
                raise ValueError(
                    "compositing=... is only supported with the builtin "
                    "pipeline; pythonscript renders the assembled volume"
                )
            if residency != "host":
                raise ValueError(
                    "residency='device' is only supported with the builtin "
                    "pipeline; pythonscript pipelines expect host arrays"
                )
            filename = attrs.get("filename")
            if not filename:
                raise ValueError("pythonscript pipeline needs filename=...")
            render = load_pipeline_script(filename)
            arrays = tuple(
                a.strip()
                for a in attrs.get("arrays", "pressure").split(",")
                if a.strip()
            )
            return cls(comm, render, arrays, mesh_name, output_dir)

        array = attrs.get("array", "pressure")
        color_array = attrs.get("color_array", array)
        specs = []
        if "isovalue" in attrs:
            specs.append(
                RenderSpec(
                    kind="contour",
                    array=array,
                    isovalue=float(attrs["isovalue"]),
                    color_array=color_array,
                    colormap=attrs.get("colormap", "viridis"),
                )
            )
        specs.append(
            RenderSpec(
                kind="slice",
                array=color_array,
                axis=attrs.get("slice_axis", "y"),
                position=float(attrs["slice_position"])
                if "slice_position" in attrs
                else None,
                colormap=attrs.get("colormap", "viridis"),
            )
        )
        pipeline = RenderPipeline(
            specs=specs,
            width=int(attrs.get("width", "512")),
            height=int(attrs.get("height", "512")),
            name=attrs.get("name", "catalyst"),
        )
        arrays = tuple(dict.fromkeys([array, color_array]))
        return cls(
            comm, pipeline, arrays, mesh_name, output_dir,
            compositing=compositing, residency=residency,
        )

    # -- execution -----------------------------------------------------------
    def execute(self, data: DataAdaptor) -> bool:
        step = data.get_data_time_step()
        time = data.get_data_time()
        tel = get_telemetry()
        live = tel.live
        device = None
        if self.residency == "device":
            device = getattr(data, "device", None)
            if device is None:
                raise TypeError(
                    "residency='device' requires a device-capable data "
                    "adaptor (one exposing its OCCA device)"
                )
        if self.compositing != "gather" and self.comm.size > 1:
            # sort-last: render local fragments, composite framebuffers
            from repro.catalyst.compositor import render_composited

            t0 = perf_counter() if live.enabled else 0.0
            with self.watch.phase("gather"), tel.tracer.span(
                "catalyst.fragments", step=step, residency=self.residency
            ):
                if device is not None:
                    gdims, gorigin, gspacing, fragments = (
                        data.device_uniform_fragments(self.arrays)
                    )
                else:
                    gdims, gorigin, gspacing, fragments = (
                        local_uniform_fragments(
                            data, self.mesh_name, self.arrays
                        )
                    )
            if live.enabled:
                live.stage("composite", step, t0, perf_counter())
            local_bytes = sum(
                vol.nbytes
                for _origin, _dims, payload in fragments
                for vol in payload.values()
            )
            if device is None:
                # host residency stages the resampled working set in
                # host memory; device residency keeps it on the GPU
                self.peak_staging_bytes = max(
                    self.peak_staging_bytes, local_bytes
                )
            tel.memory.observe("catalyst.framebuffer", local_bytes)
            t0 = perf_counter() if live.enabled else 0.0
            with self.watch.phase("render"), tel.tracer.span(
                "catalyst.render", step=step, compositing=self.compositing
            ):
                outputs = render_composited(
                    self.comm,
                    self.pipeline,
                    fragments,
                    gdims,
                    gorigin,
                    gspacing,
                    step,
                    time,
                    method=self.compositing,
                    device=device,
                )
            if live.enabled:
                live.stage("render", step, t0, perf_counter())
        else:
            borrowed = []
            t0 = perf_counter() if live.enabled else 0.0
            with self.watch.phase("gather"), tel.tracer.span(
                "catalyst.gather", step=step, residency=self.residency
            ):
                if device is not None:
                    image, borrowed = gather_uniform_volume_device(
                        self.comm, data, self.mesh_name, self.arrays, device
                    )
                else:
                    image = gather_uniform_volume(
                        self.comm, data, self.mesh_name, self.arrays
                    )
            if live.enabled:
                live.stage("composite", step, t0, perf_counter())
            outputs = None
            if image is not None:
                if device is None:
                    self.peak_staging_bytes = max(
                        self.peak_staging_bytes, image.nbytes
                    )
                tel.memory.observe("catalyst.framebuffer", image.nbytes)
                t0 = perf_counter() if live.enabled else 0.0
                with self.watch.phase("render"), tel.tracer.span(
                    "catalyst.render", step=step
                ):
                    if device is not None:
                        from repro.occa.device import DeviceMemory
                        from repro.occa.kernels import install_render_kernels

                        # whole-pipeline fused launch on the assembled
                        # device volume; frames stay device-resident
                        outputs = install_render_kernels(device).render(
                            self.render, image, step, time
                        )
                        outputs = [
                            (name, DeviceMemory(device, rgb))
                            for name, rgb in outputs
                        ]
                    else:
                        outputs = self.render(image, step, time)
                if live.enabled:
                    live.stage("render", step, t0, perf_counter())
            if borrowed:
                device.arena.release(*borrowed)
        if outputs is not None:
            self.output_dir.mkdir(parents=True, exist_ok=True)
            with self.watch.phase("write"), tel.tracer.span("catalyst.write", step=step):
                written = 0
                for name, rgb in outputs:
                    rgb = self._to_host_frame(rgb, step, tel)
                    t0 = perf_counter() if live.enabled else 0.0
                    data = encode_png(rgb)
                    if live.enabled:
                        t1 = perf_counter()
                        live.stage("encode", step, t0, t1)
                    path = self.output_dir / f"{name}_{step:06d}.png"
                    path.write_bytes(data)
                    written += len(data)
                    self.images_written += 1
                    if self.publisher is not None:
                        self.publisher(name, step, time, data)
                    if live.enabled:
                        live.stage("deliver", step, t1, perf_counter())
                self.image_bytes += written
            if tel.enabled:
                tel.metrics.counter(
                    "repro_catalyst_images_total", "PNG images rendered in situ"
                ).inc(len(outputs))
                tel.metrics.counter(
                    "repro_catalyst_image_bytes_total", "PNG bytes written in situ"
                ).inc(written)
        return True

    def _to_host_frame(self, rgb, step: int, tel) -> "np.ndarray":
        """Materialize one frame on the host for encoding.

        Host residency: the frame already is a host array.  Device
        residency: this is the *single* metered D2H of the step — the
        composited tile, a few hundred KB, where the host path shipped
        the full resampled working set — traced as ``catalyst.d2h``.
        """
        from repro.occa.device import DeviceMemory

        if not isinstance(rgb, DeviceMemory):
            return rgb
        with tel.tracer.span("catalyst.d2h", step=step, nbytes=rgb.nbytes):
            host = rgb.copy_to_host()
        self.peak_staging_bytes = max(self.peak_staging_bytes, host.nbytes)
        return host
