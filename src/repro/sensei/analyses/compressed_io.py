"""CompressedIO: error-bounded compressed field dumps.

The data-reduction middle point between the paper's two extremes: raw
checkpoints keep everything (19 GB), rendered images keep two views
(6.5 MB); an error-bounded compressed dump keeps *every gridpoint* to
a guaranteed tolerance at a fraction of the raw volume.  One file per
block per dump, mirroring the checkpoint layout.
"""

from __future__ import annotations

from pathlib import Path

from repro.parallel.comm import Communicator, ReduceOp
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import DataAdaptor
from repro.util.compress import compress_field


class CompressedIO(AnalysisAdaptor):
    def __init__(
        self,
        comm: Communicator,
        output_dir,
        arrays: tuple[str, ...] = ("pressure",),
        error_bound: float = 1e-4,
        mesh_name: str = "mesh",
    ):
        if error_bound <= 0:
            raise ValueError("error_bound must be positive")
        self.comm = comm
        self.output_dir = Path(output_dir)
        self.arrays = tuple(arrays)
        self.error_bound = error_bound
        self.mesh_name = mesh_name
        self.bytes_written = 0
        self.raw_bytes = 0
        self.dumps = 0

    def execute(self, data: DataAdaptor) -> bool:
        step = data.get_data_time_step()
        mesh = data.get_mesh(self.mesh_name)
        for name in self.arrays:
            data.add_array(mesh, self.mesh_name, "point", name)
        self.output_dir.mkdir(parents=True, exist_ok=True)
        for index, block in enumerate(mesh.blocks):
            if block is None:
                continue
            for name in self.arrays:
                values = block.point_data[name].values
                payload = compress_field(values, self.error_bound)
                path = (
                    self.output_dir
                    / f"{name}_{step:06d}_b{index:04d}.szl"
                )
                path.write_bytes(payload)
                self.bytes_written += len(payload)
                self.raw_bytes += values.nbytes
        self.dumps += 1
        return True

    @property
    def achieved_ratio(self) -> float:
        """Raw/compressed ratio over everything written so far."""
        return self.raw_bytes / self.bytes_written if self.bytes_written else 0.0

    def total_bytes_global(self) -> int:
        return int(self.comm.allreduce(self.bytes_written, ReduceOp.SUM))
