"""Parallel histogram — SENSEI's canonical minimal analysis.

Computes a global histogram of one array: a MIN/MAX allreduce fixes
the bin edges, local counts are summed with another allreduce, and
rank 0 optionally appends a text report per invocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.parallel.comm import Communicator, ReduceOp
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import DataAdaptor


@dataclass
class HistogramResult:
    step: int
    time: float
    array: str
    edges: np.ndarray
    counts: np.ndarray

    @property
    def total(self) -> int:
        return int(self.counts.sum())


class HistogramAnalysis(AnalysisAdaptor):
    def __init__(
        self,
        comm: Communicator,
        mesh_name: str = "mesh",
        array_name: str = "pressure",
        bins: int = 32,
        output_dir: Path | None = None,
    ):
        if bins < 1:
            raise ValueError("bins must be >= 1")
        self.comm = comm
        self.mesh_name = mesh_name
        self.array_name = array_name
        self.bins = bins
        self.output_dir = Path(output_dir) if output_dir is not None else None
        self.results: list[HistogramResult] = []

    def _collect_values(self, data: DataAdaptor) -> np.ndarray:
        mesh = data.get_mesh(self.mesh_name)
        data.add_array(mesh, self.mesh_name, "point", self.array_name)
        chunks = []
        for block in mesh.local_blocks():
            arr = block.point_data[self.array_name].values
            chunks.append(arr.ravel())
        return np.concatenate(chunks) if chunks else np.empty(0)

    def execute(self, data: DataAdaptor) -> bool:
        values = self._collect_values(data)
        local_min = float(values.min()) if values.size else np.inf
        local_max = float(values.max()) if values.size else -np.inf
        vmin = self.comm.allreduce(local_min, ReduceOp.MIN)
        vmax = self.comm.allreduce(local_max, ReduceOp.MAX)
        if not np.isfinite(vmin) or not np.isfinite(vmax):
            vmin, vmax = 0.0, 1.0
        if vmax <= vmin:
            vmax = vmin + 1.0
        edges = np.linspace(vmin, vmax, self.bins + 1)
        counts, _ = np.histogram(values, bins=edges)
        counts = self.comm.allreduce_array(counts.astype(np.int64), ReduceOp.SUM)
        result = HistogramResult(
            step=data.get_data_time_step(),
            time=data.get_data_time(),
            array=self.array_name,
            edges=edges,
            counts=counts,
        )
        self.results.append(result)
        if self.comm.is_root and self.output_dir is not None:
            self._write(result)
        return True

    def _write(self, result: HistogramResult) -> None:
        self.output_dir.mkdir(parents=True, exist_ok=True)
        path = self.output_dir / f"histogram_{self.array_name}.txt"
        with open(path, "a") as f:
            f.write(f"# step {result.step} time {result.time:.6g}\n")
            for lo, hi, c in zip(result.edges[:-1], result.edges[1:], result.counts):
                f.write(f"{lo:.6g} {hi:.6g} {c}\n")
