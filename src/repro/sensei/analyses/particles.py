"""In situ particle (tracer) advection.

A classic in situ analysis the posthoc world cannot do well: passive
tracers need the velocity field at *every* step, which is exactly the
data checkpointing throws away between dumps.  The tracer cloud is
advected through the instantaneous velocity with RK2 (midpoint) on the
spectrally resampled uniform grid; trajectories are recorded and can
be dumped as CSV for later rendering.

Particles follow the flow across the whole (global) domain, so each
rank gathers the uniform fragments like the Catalyst adaptor does and
rank 0 owns the cloud (tracer counts are tiny next to field data).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.catalyst.slicefilter import trilinear_sample
from repro.parallel.comm import Communicator
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import DataAdaptor
from repro.sensei.analyses.catalyst_adaptor import gather_uniform_volume
from repro.util.rng import make_rng

_VELOCITY_ARRAYS = ("velocity_x", "velocity_y", "velocity_z")


class ParticleTracer(AnalysisAdaptor):
    def __init__(
        self,
        comm: Communicator,
        num_particles: int = 64,
        mesh_name: str = "uniform",
        seed: int = 7,
        seed_box: tuple | None = None,   # ((x0,y0,z0),(x1,y1,z1))
        output_dir: Path | str | None = None,
    ):
        if num_particles < 1:
            raise ValueError("need at least one particle")
        self.comm = comm
        self.mesh_name = mesh_name
        self.num_particles = num_particles
        self.seed = seed
        self.seed_box = seed_box
        self.output_dir = Path(output_dir) if output_dir else None
        self.positions: np.ndarray | None = None   # root rank only
        self.trajectory: list[np.ndarray] = []
        self._last_time: float | None = None

    def _seed_particles(self, image) -> np.ndarray:
        rng = make_rng(self.seed)
        if self.seed_box is not None:
            lo = np.asarray(self.seed_box[0], dtype=float)
            hi = np.asarray(self.seed_box[1], dtype=float)
        else:
            dims = np.asarray(image.dims, dtype=float)
            lo = np.asarray(image.origin, dtype=float)
            hi = lo + (dims - 1) * np.asarray(image.spacing, dtype=float)
        return lo + rng.random((self.num_particles, 3)) * (hi - lo)

    def _sample_velocity(self, image, pts: np.ndarray) -> np.ndarray:
        vel = np.zeros_like(pts)
        for i, name in enumerate(_VELOCITY_ARRAYS):
            vel[:, i] = trilinear_sample(
                image.as_volume(name), image.origin, image.spacing, pts, fill=0.0
            )
        return vel

    def execute(self, data: DataAdaptor) -> bool:
        image = gather_uniform_volume(
            self.comm, data, self.mesh_name, _VELOCITY_ARRAYS
        )
        time = data.get_data_time()
        # non-root ranks only participate in the gather
        if image is None:
            return True

        if self.positions is None:
            self.positions = self._seed_particles(image)
            self.trajectory.append(self.positions.copy())
            self._last_time = time
            return True

        dt = time - (self._last_time if self._last_time is not None else time)
        if dt > 0:
            # RK2 midpoint through the frozen field of this step
            k1 = self._sample_velocity(image, self.positions)
            mid = self.positions + 0.5 * dt * k1
            k2 = self._sample_velocity(image, mid)
            self.positions = self.positions + dt * k2
            self._clamp_into(image)
        self.trajectory.append(self.positions.copy())
        self._last_time = time
        return True

    def _clamp_into(self, image) -> None:
        lo = np.asarray(image.origin, dtype=float)
        hi = lo + (np.asarray(image.dims) - 1) * np.asarray(image.spacing)
        np.clip(self.positions, lo, hi, out=self.positions)

    def finalize(self) -> None:
        if self.output_dir is None or self.positions is None:
            return
        if not self.comm.is_root:
            return
        self.output_dir.mkdir(parents=True, exist_ok=True)
        path = self.output_dir / "tracers.csv"
        with open(path, "w") as f:
            f.write("snapshot,particle,x,y,z\n")
            for s, snap in enumerate(self.trajectory):
                for p, (x, y, z) in enumerate(snap):
                    f.write(f"{s},{p},{x:.9g},{y:.9g},{z:.9g}\n")

    @property
    def displacement(self) -> np.ndarray:
        """Per-particle net displacement since seeding (root rank)."""
        if len(self.trajectory) < 2:
            return np.zeros((self.num_particles, 3))
        return self.trajectory[-1] - self.trajectory[0]
