"""VTKPosthocIO: write received data to disk as VTU/VTM files.

This is the "Checkpointing" measurement point of the in transit
experiment (Section 4.2): the SENSEI endpoint writes the pressure and
velocity fields to the storage system as VTU files — one .vtu per
block per dump plus a .vtm index from rank 0.  Bytes written are
tracked; they feed the storage-economy numbers.
"""

from __future__ import annotations

from pathlib import Path

from repro.parallel.comm import Communicator, ReduceOp
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import DataAdaptor
from repro.vtkdata.dataset import UnstructuredGrid
from repro.vtkdata.writers import write_vtm, write_vtu


class VTKPosthocIO(AnalysisAdaptor):
    def __init__(
        self,
        comm: Communicator,
        output_dir,
        mesh_name: str = "mesh",
        arrays: tuple[str, ...] = ("pressure",),
        encoding: str = "appended",
    ):
        self.comm = comm
        self.output_dir = Path(output_dir)
        self.mesh_name = mesh_name
        self.arrays = tuple(arrays)
        self.encoding = encoding
        self.bytes_written = 0
        self.files_written = 0
        self.dumps = 0

    def execute(self, data: DataAdaptor) -> bool:
        step = data.get_data_time_step()
        mesh = data.get_mesh(self.mesh_name)
        for name in self.arrays:
            data.add_array(mesh, self.mesh_name, "point", name)

        self.output_dir.mkdir(parents=True, exist_ok=True)
        local_files: list[tuple[int, str]] = []
        for index, block in enumerate(mesh.blocks):
            if block is None or not isinstance(block, UnstructuredGrid):
                continue
            fname = f"{self.mesh_name}_{step:06d}_b{index:04d}.vtu"
            nbytes = write_vtu(self.output_dir / fname, block, self.encoding)
            self.bytes_written += nbytes
            self.files_written += 1
            local_files.append((index, fname))

        # rank 0 writes the multiblock index over everyone's pieces
        all_files = self.comm.gather(local_files)
        if self.comm.is_root:
            num_blocks = self.comm.size if mesh.num_blocks == 0 else mesh.num_blocks
            entries: list[str | None] = [None] * num_blocks
            for chunk in all_files:
                for index, fname in chunk:
                    if index >= len(entries):
                        entries.extend([None] * (index + 1 - len(entries)))
                    entries[index] = fname
            nbytes = write_vtm(
                self.output_dir / f"{self.mesh_name}_{step:06d}.vtm", entries
            )
            self.bytes_written += nbytes
            self.files_written += 1
        self.dumps += 1
        return True

    def total_bytes_global(self) -> int:
        """Aggregate bytes written across all ranks."""
        return int(self.comm.allreduce(self.bytes_written, ReduceOp.SUM))
