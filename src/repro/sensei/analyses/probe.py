"""History points: exact time series at fixed probe locations.

Nek's classic ``hpts`` capability as a SENSEI analysis: a set of probe
coordinates is sampled *spectrally* (exact polynomial evaluation via
:class:`repro.sem.pointeval.PointLocator`) at every invocation and
appended to an in-memory series plus an optional CSV.  This needs the
solver-side adaptor (it touches SEM fields directly), which is exactly
how history points work in production — they live with the simulation,
not the visualization endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.parallel.comm import Communicator
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import DataAdaptor


@dataclass
class ProbeSample:
    step: int
    time: float
    values: dict[str, np.ndarray] = field(default_factory=dict)


class HistoryPoints(AnalysisAdaptor):
    def __init__(
        self,
        comm: Communicator,
        points: np.ndarray,
        arrays: tuple[str, ...] = ("pressure",),
        output_dir: Path | str | None = None,
    ):
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError("points must be (P, 3)")
        if len(points) == 0:
            raise ValueError("need at least one probe point")
        self.comm = comm
        self.points = points
        self.arrays = tuple(arrays)
        self.output_dir = Path(output_dir) if output_dir else None
        self.samples: list[ProbeSample] = []
        self._locator = None

    def execute(self, data: DataAdaptor) -> bool:
        # history points need solver-side access: the NekDataAdaptor
        solver = getattr(data, "solver", None)
        if solver is None:
            raise TypeError(
                "HistoryPoints requires the simulation-side NekDataAdaptor"
            )
        if self._locator is None:
            from repro.sem.pointeval import PointLocator

            self._locator = PointLocator(solver.mesh)

        sample = ProbeSample(
            step=data.get_data_time_step(), time=data.get_data_time()
        )
        for name in self.arrays:
            host = data._host_field(name)
            if host.ndim != 4:
                raise ValueError(f"probe arrays must be scalar fields, not {name!r}")
            sample.values[name] = self._locator.evaluate(
                host, self.points, self.comm
            )
        self.samples.append(sample)
        return True

    def finalize(self) -> None:
        if self.output_dir is None or not self.comm.is_root:
            return
        self.output_dir.mkdir(parents=True, exist_ok=True)
        path = self.output_dir / "history_points.csv"
        with open(path, "w") as f:
            header = ["step", "time", "probe", "x", "y", "z"] + list(self.arrays)
            f.write(",".join(header) + "\n")
            for s in self.samples:
                for p, (x, y, z) in enumerate(self.points):
                    row = [str(s.step), f"{s.time:.9g}", str(p),
                           f"{x:.9g}", f"{y:.9g}", f"{z:.9g}"]
                    row += [f"{s.values[a][p]:.9g}" for a in self.arrays]
                    f.write(",".join(row) + "\n")

    def series(self, array: str, probe: int) -> np.ndarray:
        """Time series of one array at one probe index."""
        return np.array([s.values[array][probe] for s in self.samples])
