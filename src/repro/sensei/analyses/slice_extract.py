"""SliceExtract: pull an axis-aligned plane out of the uniform mesh.

Gathers the rank-local uniform fragments to rank 0, assembles the
global volume, slices it, and writes the plane as a .vti ImageData
file — a cheap "extract" analysis in the SENSEI tradition.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.catalyst.slicefilter import axis_slice
from repro.parallel.comm import Communicator
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import DataAdaptor
from repro.sensei.analyses.catalyst_adaptor import gather_uniform_volume
from repro.vtkdata.arrays import DataArray
from repro.vtkdata.dataset import ImageData
from repro.vtkdata.writers import write_vti


class SliceExtract(AnalysisAdaptor):
    def __init__(
        self,
        comm: Communicator,
        mesh_name: str = "uniform",
        array_name: str = "pressure",
        axis: str = "y",
        position: float | None = None,
        output_dir: Path | str = ".",
    ):
        if axis not in ("x", "y", "z"):
            raise ValueError("axis must be x|y|z")
        self.comm = comm
        self.mesh_name = mesh_name
        self.array_name = array_name
        self.axis = axis
        self.position = position
        self.output_dir = Path(output_dir)
        self.bytes_written = 0
        self.slices_written = 0

    def execute(self, data: DataAdaptor) -> bool:
        image = gather_uniform_volume(
            self.comm, data, self.mesh_name, (self.array_name,)
        )
        if image is None:     # non-root ranks
            return True
        world_axis = {"x": 0, "y": 1, "z": 2}[self.axis]
        lo = image.origin[world_axis]
        hi = lo + (image.dims[world_axis] - 1) * image.spacing[world_axis]
        position = self.position if self.position is not None else 0.5 * (lo + hi)
        plane = axis_slice(
            image.as_volume(self.array_name),
            self.axis,
            position,
            origin=image.origin,
            spacing=image.spacing,
        )
        # write the plane as a flat ImageData (1-deep in the sliced axis)
        rows, cols = plane.shape
        out = ImageData(dims=(cols, rows, 1), spacing=(1.0, 1.0, 1.0))
        out.add_array(DataArray(self.array_name, plane.ravel()))
        self.output_dir.mkdir(parents=True, exist_ok=True)
        step = data.get_data_time_step()
        path = self.output_dir / f"slice_{self.array_name}_{self.axis}_{step:06d}.vti"
        self.bytes_written += write_vti(path, out)
        self.slices_written += 1
        return True
