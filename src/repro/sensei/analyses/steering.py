"""Computational steering: let an analysis stop (or checkpoint) the run.

SENSEI's execute() returning False asks the simulation to stop; this
module provides the two standard guards every long campaign wants
in situ:

- :class:`DivergenceGuard` — stop when the solution blows up (NaN or a
  runaway norm), saving the allocation instead of burning it on a
  diverged run;
- :class:`SteadyStateDetector` — stop when the solution stops changing,
  because every further step is wasted compute.
"""

from __future__ import annotations

import numpy as np

from repro.observe.session import get_telemetry
from repro.parallel.comm import Communicator, ReduceOp
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import DataAdaptor

#: reasons a steering guard/trigger can fire, used as the counter label
TRIP_REASONS = ("nan", "runaway_norm", "steady", "trigger")


def record_trip(comm: Communicator, reason: str, step: int, **extra) -> None:
    """Record a steering trip in telemetry: an instant on every rank
    (so per-rank traces show where the decision landed) and a
    ``repro_steering_trips_<reason>_total`` counter on rank 0 only (so
    aggregated metrics count each collective decision once)."""
    if reason not in TRIP_REASONS:
        raise ValueError(f"reason must be one of {TRIP_REASONS}, got {reason!r}")
    tel = get_telemetry()
    if not tel.enabled:
        return
    tel.tracer.instant("steering.trip", reason=reason, step=step, **extra)
    if comm.is_root:
        tel.metrics.counter(
            f"repro_steering_trips_{reason}_total",
            f"Steering trips with reason {reason!r}",
        ).inc()


class DivergenceGuard(AnalysisAdaptor):
    """Request stop when max|array| exceeds a limit or turns NaN."""

    def __init__(
        self,
        comm: Communicator,
        array_name: str = "velocity_magnitude",
        limit: float = 1e6,
        mesh_name: str = "mesh",
    ):
        if limit <= 0:
            raise ValueError("limit must be positive")
        self.comm = comm
        self.array_name = array_name
        self.limit = limit
        self.mesh_name = mesh_name
        self.tripped_at: int | None = None

    def execute(self, data: DataAdaptor) -> bool:
        mesh = data.get_mesh(self.mesh_name)
        data.add_array(mesh, self.mesh_name, "point", self.array_name)
        local_max = 0.0
        local_bad = False
        for block in mesh.local_blocks():
            vals = block.point_data[self.array_name].values
            if vals.size:
                local_bad = local_bad or not np.isfinite(vals).all()
                finite = vals[np.isfinite(vals)]
                if finite.size:
                    local_max = max(local_max, float(np.abs(finite).max()))
        worst = self.comm.allreduce(local_max, ReduceOp.MAX)
        any_bad = self.comm.allreduce(local_bad, ReduceOp.LOR)
        if any_bad or worst > self.limit:
            self.tripped_at = data.get_data_time_step()
            record_trip(
                self.comm,
                "nan" if any_bad else "runaway_norm",
                self.tripped_at,
                array=self.array_name,
                worst=worst,
            )
            return False
        return True


class SteadyStateDetector(AnalysisAdaptor):
    """Request stop when the field's change per step falls below tol.

    Tracks the relative L2 change of one array between consecutive
    invocations; `patience` consecutive below-tolerance observations
    trigger the stop (a single quiet step is not steady state).
    """

    def __init__(
        self,
        comm: Communicator,
        array_name: str = "velocity_magnitude",
        tolerance: float = 1e-6,
        patience: int = 3,
        mesh_name: str = "mesh",
    ):
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.comm = comm
        self.array_name = array_name
        self.tolerance = tolerance
        self.patience = patience
        self.mesh_name = mesh_name
        self._previous: np.ndarray | None = None
        self._quiet = 0
        self.converged_at: int | None = None
        self.history: list[float] = []

    def execute(self, data: DataAdaptor) -> bool:
        mesh = data.get_mesh(self.mesh_name)
        data.add_array(mesh, self.mesh_name, "point", self.array_name)
        chunks = [
            block.point_data[self.array_name].values.ravel()
            for block in mesh.local_blocks()
        ]
        current = np.concatenate(chunks) if chunks else np.empty(0)

        if self._previous is not None and current.size == self._previous.size:
            diff2 = float(np.sum((current - self._previous) ** 2))
            norm2 = float(np.sum(self._previous**2))
            diff2 = self.comm.allreduce(diff2, ReduceOp.SUM)
            norm2 = self.comm.allreduce(norm2, ReduceOp.SUM)
            change = np.sqrt(diff2 / norm2) if norm2 > 0 else np.inf
            self.history.append(change)
            if change < self.tolerance:
                self._quiet += 1
            else:
                self._quiet = 0
            if self._quiet >= self.patience:
                self.converged_at = data.get_data_time_step()
                self._previous = current.copy()
                record_trip(
                    self.comm, "steady", self.converged_at,
                    array=self.array_name, change=change,
                )
                return False
        self._previous = current.copy()
        return True
