"""The AnalysisAdaptor interface.

Analysis back ends (Catalyst rendering, histogramming, posthoc I/O,
ADIOS transport, ...) implement ``execute``; SENSEI's bridge invokes it
with a DataAdaptor every time the simulation offers data.  Returning
False asks the simulation to stop (SENSEI's steering hook).
"""

from __future__ import annotations

import abc

from repro.sensei.data_adaptor import DataAdaptor


class AnalysisAdaptor(abc.ABC):
    @abc.abstractmethod
    def execute(self, data: DataAdaptor) -> bool:
        """Run the analysis against the current simulation state."""

    def finalize(self) -> None:
        """Flush/close resources at end of run (optional override)."""
