"""XML-configured analysis dispatch (paper Listing 1).

A SENSEI run is configured by an XML document::

    <sensei>
      <analysis type="catalyst" pipeline="pythonscript"
                filename="analysis.py" frequency="100" />
      <analysis type="histogram" mesh="mesh" array="pressure"
                bins="32" frequency="10" />
    </sensei>

``ConfigurableAnalysis`` parses this, instantiates the requested
back-end adaptors from a registry, and at each ``execute`` invokes the
ones whose frequency divides the current step.  Swapping analyses is an
XML edit — no recompilation of the simulation, the paper's key
flexibility claim.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from pathlib import Path

from repro.parallel.comm import Communicator
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import DataAdaptor


class ConfigError(ValueError):
    """Malformed SENSEI XML configuration."""


@dataclass(frozen=True)
class AnalysisSpec:
    """One <analysis .../> element."""

    type: str
    frequency: int
    enabled: bool
    attributes: dict

    @classmethod
    def from_element(cls, elem: ET.Element) -> "AnalysisSpec":
        attrs = dict(elem.attrib)
        atype = attrs.pop("type", None)
        if not atype:
            raise ConfigError("<analysis> element missing required 'type'")
        try:
            frequency = int(attrs.pop("frequency", "1"))
        except ValueError as exc:
            raise ConfigError(f"bad frequency on analysis {atype!r}") from exc
        if frequency < 1:
            raise ConfigError(f"frequency must be >= 1 on analysis {atype!r}")
        enabled = attrs.pop("enabled", "1") not in ("0", "false", "no")
        return cls(type=atype, frequency=frequency, enabled=enabled, attributes=attrs)


def parse_analysis_xml(source: str) -> list[AnalysisSpec]:
    """Parse XML text (or a path to an .xml file) into analysis specs."""
    text = source
    if not source.lstrip().startswith("<"):
        text = Path(source).read_text()
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ConfigError(f"invalid SENSEI XML: {exc}") from exc
    if root.tag != "sensei":
        raise ConfigError(f"root element must be <sensei>, got <{root.tag}>")
    return [AnalysisSpec.from_element(e) for e in root.findall("analysis")]


class ConfigurableAnalysis(AnalysisAdaptor):
    """AnalysisAdaptor that fans out to XML-configured back ends."""

    def __init__(
        self,
        comm: Communicator,
        config: str,
        output_dir: str | Path = ".",
        extra_factories: dict | None = None,
    ):
        from repro.sensei.analyses import default_factories

        self.comm = comm
        self.output_dir = Path(output_dir)
        self.specs = [s for s in parse_analysis_xml(config) if s.enabled]
        factories = dict(default_factories())
        if extra_factories:
            factories.update(extra_factories)
        self.adaptors: list[tuple[AnalysisSpec, AnalysisAdaptor]] = []
        for spec in self.specs:
            factory = factories.get(spec.type)
            if factory is None:
                raise ConfigError(
                    f"unknown analysis type {spec.type!r}; known: "
                    f"{sorted(factories)}"
                )
            adaptor = factory(comm, spec.attributes, self.output_dir)
            self.adaptors.append((spec, adaptor))

    def execute(self, data: DataAdaptor) -> bool:
        """Run every due analysis; returns False if any requests stop."""
        step = data.get_data_time_step()
        keep_going = True
        for spec, adaptor in self.adaptors:
            if step % spec.frequency == 0:
                keep_going = adaptor.execute(data) and keep_going
        return keep_going

    def finalize(self) -> None:
        for _, adaptor in self.adaptors:
            adaptor.finalize()

    @property
    def active_types(self) -> list[str]:
        return [spec.type for spec, _ in self.adaptors]
