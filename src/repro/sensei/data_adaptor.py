"""The DataAdaptor interface (paper Listing 2).

Simulation codes extend this class to relay their data, aligned with
the VTK data model, to whatever AnalysisAdaptor is configured.  The
concrete NekRS adaptor lives in ``repro.insitu.adaptor``.
"""

from __future__ import annotations

import abc

from repro.parallel.comm import Communicator
from repro.sensei.metadata import MeshMetadata
from repro.vtkdata.dataset import MultiBlockDataSet


class DataAdaptor(abc.ABC):
    """Presents simulation state as meshes + arrays on demand."""

    def __init__(self, comm: Communicator):
        self.comm = comm
        self._time = 0.0
        self._step = 0

    # -- time ------------------------------------------------------------
    def set_data_time(self, time: float) -> None:
        self._time = time

    def get_data_time(self) -> float:
        return self._time

    def set_data_time_step(self, step: int) -> None:
        self._step = step

    def get_data_time_step(self) -> int:
        return self._step

    # -- structure ---------------------------------------------------------
    @abc.abstractmethod
    def get_number_of_meshes(self) -> int:
        """How many distinct meshes the simulation can provide."""

    @abc.abstractmethod
    def get_mesh_metadata(self, index: int) -> MeshMetadata:
        """Metadata for mesh `index` (cheap; no bulk data movement)."""

    @abc.abstractmethod
    def get_mesh(self, name: str, structure_only: bool = False) -> MultiBlockDataSet:
        """Geometry/topology of a mesh as one block per rank.

        With ``structure_only`` the blocks carry no coordinates either
        — just shape information.  Array data is attached separately
        via :meth:`add_array`, so analyses pay only for what they use.
        """

    @abc.abstractmethod
    def add_array(self, mesh: MultiBlockDataSet, mesh_name: str, association: str, array_name: str) -> None:
        """Attach a named simulation array to a mesh previously
        obtained from :meth:`get_mesh`.  This is the step that crosses
        the GPU->CPU boundary in an OCCA-backed simulation."""

    @abc.abstractmethod
    def release_data(self) -> None:
        """Drop any host-side staging the adaptor created this step."""
