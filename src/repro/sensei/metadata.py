"""Mesh/array metadata exchanged before any heavy data moves.

SENSEI's ``GetMeshMetadata`` lets an analysis discover what the
simulation can provide (meshes, arrays, centerings, block decomposition,
sizes) and request only what it needs — the contract that keeps the
coupling zero-copy until an analysis actually asks for an array.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ArrayMetadata:
    name: str
    association: str          # "point" | "cell"
    components: int = 1

    def __post_init__(self):
        if self.association not in ("point", "cell"):
            raise ValueError(f"bad association {self.association!r}")
        if self.components < 1:
            raise ValueError("components must be >= 1")


@dataclass
class MeshMetadata:
    """Description of one mesh a DataAdaptor can serve."""

    name: str
    num_blocks: int                       # global block count (= ranks)
    local_block_ids: tuple[int, ...]      # blocks this rank owns
    num_points_local: int
    num_cells_local: int
    arrays: tuple[ArrayMetadata, ...] = ()
    bounds: tuple = ()                    # ((x0,x1),(y0,y1),(z0,z1)) global
    step: int = 0
    time: float = 0.0
    extra: dict = field(default_factory=dict)

    def array(self, name: str) -> ArrayMetadata:
        for a in self.arrays:
            if a.name == name:
                return a
        raise KeyError(f"mesh {self.name!r} has no array {name!r}")

    @property
    def array_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.arrays)
