"""``repro.serve`` — the live in situ visualization service.

The paper's pipeline renders frames to disk; this package turns it
into a *service*: the Catalyst adaptor publishes each composited frame
(PNG bytes + step/time metadata) into a :class:`FrameHub`, which fans
out to any number of concurrently connected clients with per-client
rate limiting and drop-to-latest backpressure — slow clients skip
frames, they never stall the simulation (the consumer-side analog of
the SST ``Discard`` policy).  A :class:`SteeringBus` carries client
commands (pause/resume/stop, contour value, colormap, camera orbit)
back into the run, applied collectively at step boundaries.  Two
transports speak to the hub: a deterministic in-process loopback and a
dependency-free ``asyncio`` HTTP server (MJPEG-style multipart PNG
streams, JSON status, APNG replay of the history ring).

Layering::

    CatalystAnalysisAdaptor --publisher--> FrameHub -- Session x N
                                             |            |
         SteeringEndpoint <-- SteeringBus <--+-- LoopbackClient
                 |                           +-- HttpFrameServer
         RenderPipeline params                      (asyncio)

At scale the flat hub is replaced by the :class:`ServeMesh`: the
publisher pushes each frame once to K :class:`RelayHub` shards
(consistent-hash client placement, per-relay :class:`SessionPump`
multiplexing, content-addressed :class:`EdgeCache` for replays and
late joiners) — ``python -m repro serve --relays K``.

Load-test it with :mod:`repro.bench.serving`; run it with
``python -m repro serve``.  See ``docs/serving.md``.
"""

from repro.serve.framestore import EdgeCache, Frame, FrameStore
from repro.serve.hub import FrameHub, HubFull
from repro.serve.mesh import RelayHub, ServeMesh
from repro.serve.pump import MeshSession, SessionPump
from repro.serve.service import attach_serving
from repro.serve.session import Session, SessionStats
from repro.serve.steering import (
    STEER_KINDS,
    SteerCommand,
    SteeringBus,
    SteeringEndpoint,
)
from repro.serve.transport import HttpFrameServer, LoopbackClient

__all__ = [
    "EdgeCache",
    "Frame",
    "FrameStore",
    "FrameHub",
    "HubFull",
    "MeshSession",
    "RelayHub",
    "ServeMesh",
    "Session",
    "SessionPump",
    "SessionStats",
    "SteerCommand",
    "SteeringBus",
    "SteeringEndpoint",
    "STEER_KINDS",
    "LoopbackClient",
    "HttpFrameServer",
    "attach_serving",
]
