"""Frame storage for the in situ service: latest slots, history, dedup.

The hub publishes one :class:`Frame` per rendered output stream (the
"pipeline" name the Catalyst adaptor writes, e.g. ``catalyst_surface``).
A :class:`FrameStore` keeps, per stream,

- a *latest-frame slot* — what a newly connected client sees first and
  what ``GET /frame/<stream>`` serves,
- a bounded *history ring* — the replay window ``GET /replay/<stream>``
  packs into an APNG,
- *content-hash dedup* — a quiescent flow renders the same pixels step
  after step; identical PNG payloads are interned once and shared by
  every Frame that references them (the ``repro.perf`` naive mode
  retains the copy-per-frame reference path for the gate's
  before/after measurement).

The store charges its unique payload bytes to the
:class:`~repro.observe.memory.MemoryMeter` under ``serve.framestore``,
so ``python -m repro trace`` runs show the serving window next to the
solver and staging categories.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro.observe.session import get_telemetry
from repro.perf import config as perf_config

__all__ = ["Frame", "FrameStore", "EdgeCache"]


@dataclass(frozen=True)
class Frame:
    """One published frame: PNG bytes plus step/time/stream metadata."""

    stream: str        # output stream name, e.g. "catalyst_surface"
    step: int
    time: float
    data: bytes        # encoded PNG, byte-identical to the on-disk file
    digest: str        # content hash of `data`
    seq: int           # hub-wide publish sequence number
    published_at: float = 0.0   # perf_counter timestamp at publish
    encoding: str = "png"       # payload encoding ("png", "rbp3", ...)
    raw_nbytes: int = 0         # pre-codec bytes, when `data` is compressed

    @property
    def nbytes(self) -> int:
        return len(self.data)

    @property
    def bytes_saved(self) -> int:
        """Bytes the codec shaved off this payload (0 when uncompressed)."""
        return max(0, self.raw_nbytes - len(self.data))


def content_digest(data: bytes) -> str:
    """Stable content hash used for frame dedup."""
    return hashlib.blake2b(data, digest_size=16).hexdigest()


@dataclass
class _Interned:
    data: bytes
    refs: int = 0


class EdgeCache:
    """Content-addressed LRU of already-encoded frames, one per relay.

    The serving mesh's edge tier: frames are keyed by the blake2b
    interning digest the :class:`FrameStore` already computes
    (:func:`content_digest`), so a replayed or late-joining client
    whose relay still holds the bytes is served **without touching the
    publisher**.  A converged flow that renders the same pixels step
    after step collapses to one cached entry per stream — the ingest
    path records those as hits too, which is what the
    ``repro_serve_cache_{hits,misses}_total`` counters in
    ``observe top``'s serve line measure.

    Thread-safety is the caller's job: the relay's
    :class:`~repro.serve.pump.SessionPump` owns the cache and touches
    it only under its own condition lock.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._frames: OrderedDict[str, Frame] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._frames)

    def __contains__(self, digest: str) -> bool:
        return digest in self._frames

    def put(self, frame: Frame) -> bool:
        """Insert (LRU-refreshing); True when the digest was new.

        A re-inserted digest counts as a *hit* — the payload was
        already at the edge, so this publish cost the relay nothing.
        """
        digest = frame.digest
        if digest in self._frames:
            self._frames.move_to_end(digest)
            # keep the newest metadata (step/seq) for the shared bytes
            self._frames[digest] = frame
            self.hits += 1
            return False
        self._frames[digest] = frame
        self.misses += 1
        while len(self._frames) > self.capacity:
            self._frames.popitem(last=False)
            self.evictions += 1
        return True

    def get(self, digest: str) -> Frame | None:
        """Cached frame for `digest`, counting the hit/miss."""
        frame = self._frames.get(digest)
        if frame is None:
            self.misses += 1
            return None
        self._frames.move_to_end(digest)
        self.hits += 1
        return frame

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def payload_bytes(self) -> int:
        return sum(f.nbytes for f in self._frames.values())

    def stats(self) -> dict:
        return {
            "entries": len(self._frames),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "payload_bytes": self.payload_bytes,
        }


class FrameStore:
    """Thread-safe per-stream latest slot + bounded history ring."""

    def __init__(self, history: int = 32):
        if history < 1:
            raise ValueError("history must be >= 1")
        self.history = history
        self._latest: dict[str, Frame] = {}
        self._rings: dict[str, deque[Frame]] = {}
        self._interned: dict[str, _Interned] = {}
        self._lock = threading.Lock()
        self.frames_stored = 0
        self.frames_deduped = 0
        self.peak_payload_bytes = 0
        # raw-vs-stored accounting for codec-encoded (non-PNG) frames
        self.codec_raw_bytes = 0
        self.codec_wire_bytes = 0

    # -- writing -----------------------------------------------------------
    def put(
        self, stream: str, step: int, time: float, data: bytes,
        seq: int, published_at: float = 0.0,
        encoding: str = "png", raw_nbytes: int = 0,
    ) -> Frame:
        """Store one frame; returns the (possibly payload-shared) Frame."""
        digest = content_digest(data)
        with self._lock:
            if perf_config.enabled():
                slot = self._interned.get(digest)
                if slot is None:
                    slot = self._interned[digest] = _Interned(bytes(data))
                else:
                    self.frames_deduped += 1
                slot.refs += 1
                payload = slot.data
            else:
                # reference path: every frame owns a private copy and the
                # ring is scanned linearly for duplicates (counted only);
                # bytearray round-trip forces the copy even for bytes input
                payload = bytes(bytearray(data))
                for old in self._rings.get(stream, ()):
                    if old.data == payload:
                        self.frames_deduped += 1
                        break
            frame = Frame(
                stream=stream, step=step, time=time, data=payload,
                digest=digest, seq=seq, published_at=published_at,
                encoding=encoding, raw_nbytes=raw_nbytes,
            )
            if raw_nbytes:
                self.codec_raw_bytes += raw_nbytes
                self.codec_wire_bytes += len(payload)
            ring = self._rings.get(stream)
            if ring is None:
                ring = self._rings[stream] = deque()
            ring.append(frame)
            if len(ring) > self.history:
                self._release(ring.popleft())
            self._latest[stream] = frame
            self.frames_stored += 1
            total = self._payload_bytes_locked()
            self.peak_payload_bytes = max(self.peak_payload_bytes, total)
        get_telemetry().memory.observe("serve.framestore", total)
        return frame

    def _release(self, frame: Frame) -> None:
        slot = self._interned.get(frame.digest)
        if slot is not None and slot.data is frame.data:
            slot.refs -= 1
            if slot.refs <= 0:
                del self._interned[frame.digest]

    # -- reading -----------------------------------------------------------
    def latest(self, stream: str) -> Frame | None:
        with self._lock:
            return self._latest.get(stream)

    def frames(self, stream: str) -> list[Frame]:
        """The history ring for `stream`, oldest first."""
        with self._lock:
            return list(self._rings.get(stream, ()))

    def streams(self) -> list[str]:
        with self._lock:
            return sorted(self._rings)

    def _payload_bytes_locked(self) -> int:
        total = sum(len(s.data) for s in self._interned.values())
        for ring in self._rings.values():
            for f in ring:
                slot = self._interned.get(f.digest)
                if slot is None or slot.data is not f.data:
                    total += f.nbytes     # naive-mode private copy
        return total

    @property
    def payload_bytes(self) -> int:
        """Unique payload bytes currently held (dedup-aware)."""
        with self._lock:
            return self._payload_bytes_locked()

    def stats(self) -> dict:
        with self._lock:
            return {
                "streams": sorted(self._rings),
                "frames_stored": self.frames_stored,
                "frames_deduped": self.frames_deduped,
                "payload_bytes": self._payload_bytes_locked(),
                "peak_payload_bytes": self.peak_payload_bytes,
                "history": self.history,
                "ring_depth": {s: len(r) for s, r in self._rings.items()},
                "codec_raw_bytes": self.codec_raw_bytes,
                "codec_wire_bytes": self.codec_wire_bytes,
                "codec_bytes_saved": max(
                    0, self.codec_raw_bytes - self.codec_wire_bytes
                ),
            }
