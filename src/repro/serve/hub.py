"""The frame hub: publish once, fan out to every connected client.

The :class:`FrameHub` sits between the Catalyst adaptor (which calls
:meth:`FrameHub.publish` from rank 0's simulation thread — the
``publisher`` hook) and any number of client sessions.  Publishing is
strictly non-blocking: the frame is stored (latest slot + history ring
+ dedup, see :mod:`repro.serve.framestore`) and *offered* to each
session, whose drop-to-latest queue absorbs slow consumers.  The hub
therefore never stalls the simulation — the invariant the serving
bench's "zero hub stalls" row pins down.

Fan-out shares one interned payload across all sessions; the
``repro.perf`` naive mode retains the copy-per-client reference path so
``python -m repro bench --gate`` measures the before/after honestly
(the ``serving`` gate row).

Telemetry: every publish runs under a ``serve.publish`` span and
maintains ``repro_serve_*`` metrics (clients gauge, frames published /
sent / dropped, bytes out); the store charges ``serve.framestore`` to
the memory meter.
"""

from __future__ import annotations

import threading
import time as _time
from dataclasses import replace

from repro.observe.session import get_telemetry
from repro.perf import config as perf_config
from repro.serve.framestore import Frame, FrameStore
from repro.serve.session import Session

__all__ = ["FrameHub", "HubFull"]


class HubFull(RuntimeError):
    """Raised when connect() would exceed the hub's client budget."""


class FrameHub:
    """Multi-client frame fan-out with per-session backpressure."""

    def __init__(
        self,
        history: int = 32,
        default_depth: int = 2,
        max_clients: int | None = None,
        clock=_time.perf_counter,
        stall_threshold_s: float = 0.25,
    ):
        self.store = FrameStore(history)
        self.default_depth = default_depth
        self.max_clients = max_clients
        self._clock = clock
        self._sessions: dict[int, Session] = {}
        self._lock = threading.Lock()
        self._seq = 0
        self._next_sid = 0
        self.closed = False
        #: a "stall" is a publish() that took suspiciously long — with
        #: non-blocking offers this should never fire; the bench asserts 0
        self.stall_threshold_s = stall_threshold_s
        self.stalls = 0
        self.max_publish_s = 0.0
        self.frames_published = 0
        self.peak_clients = 0

    # -- client lifecycle --------------------------------------------------
    def connect(
        self,
        streams: tuple[str, ...] | None = None,
        depth: int | None = None,
        max_fps: float | None = None,
        label: str = "",
    ) -> Session:
        """Register a new client session (raises :class:`HubFull`)."""
        tel = get_telemetry()
        with self._lock:
            if self.closed:
                raise HubFull("hub is closed")
            if self.max_clients is not None and len(self._sessions) >= self.max_clients:
                raise HubFull(
                    f"hub at max_clients={self.max_clients}; connection refused"
                )
            sid = self._next_sid
            self._next_sid += 1
            session = Session(
                sid,
                streams=streams,
                depth=depth if depth is not None else self.default_depth,
                max_fps=max_fps,
                label=label,
                clock=self._clock,
                on_delivered=self._on_delivered,
                on_close=self._reap,
            )
            self._sessions[sid] = session
            count = len(self._sessions)
            self.peak_clients = max(self.peak_clients, count)
        if tel.enabled:
            tel.metrics.gauge(
                "repro_serve_clients", "Connected serving clients", agg="max"
            ).set(count)
            tel.tracer.instant("serve.connect", sid=sid, label=session.label)
        return session

    def disconnect(self, session: Session) -> None:
        # closing fires the session's on_close hook, which releases the
        # budget slot (see _reap); nothing else to do here
        session.close()

    def _reap(self, session: Session) -> None:
        """Release a closed session's budget slot *immediately*.

        Fired by ``Session.close`` — whether the client went through
        :meth:`disconnect` or its transport closed the session directly
        (e.g. an HTTP stream dropping mid-publish).  Before this hook a
        directly-closed session kept occupying a ``max_clients`` slot
        until the next publish sweep noticed it; under churn that
        refused new connections the budget actually had room for.
        """
        with self._lock:
            self._sessions.pop(session.sid, None)
            count = len(self._sessions)
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.gauge(
                "repro_serve_clients", "Connected serving clients", agg="max"
            ).set(count)
            tel.tracer.instant("serve.disconnect", sid=session.sid)

    def _on_delivered(self, frame: Frame) -> None:
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter(
                "repro_serve_frames_sent_total", "Frames delivered to clients"
            ).inc()
            tel.metrics.counter(
                "repro_serve_bytes_out_total", "Frame payload bytes delivered"
            ).inc(frame.nbytes)

    # -- publishing --------------------------------------------------------
    def publish(self, stream: str, step: int, time: float, data: bytes,
                encoding: str = "png", raw_nbytes: int = 0) -> Frame:
        """Store + fan out one frame.  Non-blocking; the publisher hook.

        Signature matches the Catalyst adaptor's ``publisher`` callback:
        ``publisher(name, step, time, png_bytes)``.  Codec-encoded field
        frames pass ``encoding="rbp3"`` plus their pre-codec size.
        """
        tel = get_telemetry()
        t0 = self._clock()
        with tel.tracer.span("serve.publish", stream=stream, step=step):
            with self._lock:
                seq = self._seq
                self._seq += 1
                sessions = list(self._sessions.values())
            frame = self.store.put(
                stream, step, time, data, seq, published_at=t0,
                encoding=encoding, raw_nbytes=raw_nbytes,
            )
            dropped_before = sum(s.stats.dropped for s in sessions)
            share = perf_config.enabled()
            for session in sessions:
                # bytes(frame.data) would be a no-op (immutable); round-trip
                # through bytearray to force a genuine per-client copy
                session.offer(
                    frame
                    if share
                    else replace(frame, data=bytes(bytearray(frame.data)))
                )
            dropped = sum(s.stats.dropped for s in sessions) - dropped_before
        elapsed = self._clock() - t0
        self.max_publish_s = max(self.max_publish_s, elapsed)
        if elapsed > self.stall_threshold_s:
            self.stalls += 1
            tel.live.event("publish_stall")
        self.frames_published += 1
        if tel.live.enabled:
            tel.live.note_frame(stream, step, t0)
        if tel.enabled:
            tel.metrics.counter(
                "repro_serve_frames_published_total", "Frames published to the hub"
            ).inc()
            if dropped:
                tel.metrics.counter(
                    "repro_serve_frames_dropped_total",
                    "Frames evicted by drop-to-latest backpressure",
                ).inc(dropped)
        return frame

    # -- queries -----------------------------------------------------------
    @property
    def clients(self) -> int:
        with self._lock:
            return len(self._sessions)

    def sessions(self) -> list[Session]:
        with self._lock:
            return list(self._sessions.values())

    def stats(self) -> dict:
        with self._lock:
            sessions = list(self._sessions.values())
        return {
            "clients": len(sessions),
            "peak_clients": self.peak_clients,
            "frames_published": self.frames_published,
            "stalls": self.stalls,
            "max_publish_ms": self.max_publish_s * 1e3,
            "store": self.store.stats(),
            "sessions": {s.label: s.stats.as_dict() for s in sessions},
        }

    def close(self) -> None:
        """Close every session; publishes become no-ops for clients."""
        with self._lock:
            self.closed = True
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()
